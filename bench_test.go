package repro

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at the
// Small scale once per iteration; the rendered result of the last
// iteration is printed with -v via b.Log. The ns/op column is host CPU
// cost of the whole experiment; the scientific output is the table.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// or regenerate a single figure at a larger scale with
// cmd/ibridge-bench.

import (
	"testing"

	"repro/internal/experiments"
)

// benchScale keeps `go test -bench=.` under a few minutes of host time.
var benchScale = experiments.Small

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", tbl.Render())
		}
	}
}

// Tables.

func BenchmarkTableI(b *testing.B)   { benchmarkExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)  { benchmarkExperiment(b, "table2") }
func BenchmarkTableIII(b *testing.B) { benchmarkExperiment(b, "table3") }

// Figures.

func BenchmarkFig2a(b *testing.B)    { benchmarkExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)    { benchmarkExperiment(b, "fig2b") }
func BenchmarkFig2Hist(b *testing.B) { benchmarkExperiment(b, "fig2hist") }
func BenchmarkFig3(b *testing.B)     { benchmarkExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)     { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchmarkExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)    { benchmarkExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)    { benchmarkExperiment(b, "fig13") }

// Ablations (DESIGN.md A1–A5).

func BenchmarkAblationMagnification(b *testing.B) { benchmarkExperiment(b, "ablation-magnification") }
func BenchmarkAblationPartition(b *testing.B)     { benchmarkExperiment(b, "ablation-partition") }
func BenchmarkAblationEWMA(b *testing.B)          { benchmarkExperiment(b, "ablation-ewma") }
func BenchmarkAblationSSDLog(b *testing.B)        { benchmarkExperiment(b, "ablation-ssdlog") }
func BenchmarkAblationWriteback(b *testing.B)     { benchmarkExperiment(b, "ablation-writeback") }

// Extensions beyond the paper: the ROMIO software alternatives its
// related-work section discusses.

func BenchmarkExtCollective(b *testing.B) { benchmarkExperiment(b, "ext-collective") }
func BenchmarkExtSieving(b *testing.B)    { benchmarkExperiment(b, "ext-sieving") }
func BenchmarkExtPLFS(b *testing.B)       { benchmarkExperiment(b, "ext-plfs") }
func BenchmarkExtReadahead(b *testing.B)  { benchmarkExperiment(b, "ext-readahead") }
