// Package ssd models a SATA solid-state drive. The model captures the two
// SSD properties iBridge relies on: service time is insensitive to the
// *location* of reads (no mechanical positioning), and sequential writes
// are substantially faster than random writes (the paper's Table II SSD
// shows 140 MB/s vs 30 MB/s at 4 KB), which is why iBridge writes into the
// SSD strictly log-structured.
package ssd

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// Spec holds the SSD model parameters, calibrated to the paper's Table II
// device (HP 120 GB SATA SSD).
type Spec struct {
	// CapacityBytes is the size of the LBN space.
	CapacityBytes int64
	// ReadBW and WriteBW are peak transfer rates in bytes/second.
	ReadBW  float64
	WriteBW float64
	// RandReadLat and RandWriteLat are the per-operation latencies paid
	// when a request does not continue the preceding access (FTL lookup
	// for reads; read-modify-write and mapping churn for writes).
	RandReadLat  sim.Duration
	RandWriteLat sim.Duration
	// SeqLat is the (small) per-operation overhead of an access that
	// continues exactly where the previous one ended.
	SeqLat sim.Duration
}

// DefaultSpec returns the model of the evaluation platform's SSD. At 4 KB:
// sequential read ≈ 157 MB/s, random read ≈ 62 MB/s, sequential write
// ≈ 136 MB/s, random write ≈ 31 MB/s — the Table II values.
func DefaultSpec() Spec {
	return Spec{
		CapacityBytes: 120e9,
		ReadBW:        172e6, // media rate; 160 MB/s effective at 4 KB with SeqLat
		WriteBW:       150e6, // media rate; 140 MB/s effective at 4 KB with SeqLat
		RandReadLat:   40 * sim.Microsecond,
		RandWriteLat:  105 * sim.Microsecond,
		SeqLat:        2 * sim.Microsecond,
	}
}

// SSD is a simulated solid-state drive. Like the disk, the medium serves
// one request at a time; schedulers (Noop for SSDs, per the paper's
// evaluation setup) handle ordering.
type SSD struct {
	e    *sim.Engine
	spec Spec
	name string
	mu   *sim.Semaphore

	lastEnd [2]int64 // per-Op position after the previous access

	stats        device.Stats
	idleSince    sim.Time
	inFlight     int
	bytesWritten int64 // lifetime writes, for wear accounting (Fig. 13)
	probe        device.Probe
}

// SetProbe installs an observer for served requests (nil disables).
func (s *SSD) SetProbe(p device.Probe) { s.probe = p }

// New returns an SSD with the given spec.
func New(e *sim.Engine, name string, spec Spec) *SSD {
	return &SSD{
		e:       e,
		spec:    spec,
		name:    name,
		mu:      sim.NewSemaphore(e, 1),
		lastEnd: [2]int64{-1, -1},
	}
}

// Name implements device.Device.
func (s *SSD) Name() string { return s.name }

// Spec returns the SSD's model parameters.
func (s *SSD) Spec() Spec { return s.spec }

// Stats implements device.Device.
func (s *SSD) Stats() *device.Stats { return &s.stats }

// Capacity implements device.Device.
func (s *SSD) Capacity() int64 { return s.spec.CapacityBytes }

// BytesWritten returns lifetime bytes written, the wear metric the paper's
// threshold discussion (Section III-G) trades throughput against.
func (s *SSD) BytesWritten() int64 { return s.bytesWritten }

// IdleSince implements device.Device.
func (s *SSD) IdleSince() sim.Time {
	if s.inFlight > 0 {
		return s.e.Now()
	}
	return s.idleSince
}

// serviceParts computes the model service time of r given the device's
// current per-op position, split into the per-operation latency and the
// media transfer time.
func (s *SSD) serviceParts(r device.Request) (lat, xfer sim.Duration) {
	lat = s.spec.SeqLat
	if r.LBN != s.lastEnd[r.Op] {
		if r.Op == device.Read {
			lat = s.spec.RandReadLat
		} else {
			lat = s.spec.RandWriteLat
		}
	}
	bw := s.spec.ReadBW
	if r.Op == device.Write {
		bw = s.spec.WriteBW
	}
	return lat, sim.Duration(float64(r.Bytes()) / bw * float64(sim.Second))
}

// serviceTime computes the model service time of r.
func (s *SSD) serviceTime(r device.Request) sim.Duration {
	lat, xfer := s.serviceParts(r)
	return lat + xfer
}

// EstimateService implements device.Device.
func (s *SSD) EstimateService(r device.Request) sim.Duration {
	return s.serviceTime(r)
}

// Serve implements device.Device.
func (s *SSD) Serve(p *sim.Proc, r device.Request) sim.Duration {
	if r.Sectors <= 0 {
		return 0
	}
	s.inFlight++
	s.mu.Acquire(p)
	lat, xfer := s.serviceParts(r)
	t := lat + xfer
	p.Sleep(t)

	s.lastEnd[r.Op] = r.End()
	s.stats.Ops[r.Op]++
	s.stats.Bytes[r.Op] += r.Bytes()
	s.stats.BusyTime += t
	if r.Op == device.Write {
		s.bytesWritten += r.Bytes()
	}
	s.inFlight--
	if s.inFlight == 0 {
		s.idleSince = p.Now()
	}
	if s.probe != nil {
		s.probe.ObserveIO(r, lat, xfer)
	}
	s.mu.Release()
	return t
}
