package ssd

import (
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// bench runs n requests of the given op and pattern and returns MB/s.
func bench(t *testing.T, op device.Op, random bool, sectors int64) float64 {
	t.Helper()
	e := sim.New()
	s := New(e, "ssd0", DefaultSpec())
	rng := sim.NewRNG(5)
	const nReq = 500
	e.Go("io", func(p *sim.Proc) {
		lbn := int64(0)
		for i := 0; i < nReq; i++ {
			if random {
				lbn = rng.Range(0, s.Capacity()/device.SectorSize-sectors)
			}
			s.Serve(p, device.Request{Op: op, LBN: lbn, Sectors: sectors})
			lbn += sectors
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return float64(nReq*sectors*device.SectorSize) / sim.Duration(e.Now()).Seconds() / 1e6
}

// TestTableIICalibration checks all four SSD rows of the paper's Table II
// at 4 KB requests: 160/60/140/30 MB/s.
func TestTableIICalibration(t *testing.T) {
	cases := []struct {
		name   string
		op     device.Op
		random bool
		lo, hi float64
	}{
		{"seq-read", device.Read, false, 150, 165},
		{"rand-read", device.Read, true, 55, 70},
		{"seq-write", device.Write, false, 130, 145},
		{"rand-write", device.Write, true, 27, 35},
	}
	for _, c := range cases {
		got := bench(t, c.op, c.random, 8) // 4 KB
		if got < c.lo || got > c.hi {
			t.Errorf("%s = %.1f MB/s, want in [%.0f, %.0f]", c.name, got, c.lo, c.hi)
		}
	}
}

func TestReadInsensitiveToLocation(t *testing.T) {
	// For large requests, random reads approach sequential reads — the
	// property that lets the SSD serve fragments without penalty.
	seq := bench(t, device.Read, false, 128)
	rnd := bench(t, device.Read, true, 128)
	if rnd < 0.9*seq {
		t.Fatalf("64 KB random read %.1f MB/s vs sequential %.1f MB/s; expected near parity", rnd, seq)
	}
}

func TestSequentialWriteAdvantage(t *testing.T) {
	seq := bench(t, device.Write, false, 8)
	rnd := bench(t, device.Write, true, 8)
	if seq/rnd < 3 {
		t.Fatalf("seq/rand write ratio %.1f, want ≥3 (the log-structuring motivation)", seq/rnd)
	}
}

func TestPerOpSequentialityTracking(t *testing.T) {
	// Interleaved reads and writes to two separate sequential streams
	// must both count as sequential: the model tracks position per op.
	e := sim.New()
	s := New(e, "ssd0", DefaultSpec())
	var total sim.Duration
	e.Go("io", func(p *sim.Proc) {
		rl, wl := int64(0), int64(1<<20)
		for i := 0; i < 50; i++ {
			total += s.Serve(p, device.Request{Op: device.Read, LBN: rl, Sectors: 8})
			total += s.Serve(p, device.Request{Op: device.Write, LBN: wl, Sectors: 8})
			rl += 8
			wl += 8
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	spec := DefaultSpec()
	// After the first pair, every op should pay only SeqLat.
	maxExpected := 2*(spec.RandReadLat+spec.RandWriteLat) +
		98*spec.SeqLat +
		sim.Duration(50*4096.0/spec.ReadBW*float64(sim.Second)) +
		sim.Duration(50*4096.0/spec.WriteBW*float64(sim.Second))
	if total > maxExpected+sim.Microsecond {
		t.Fatalf("interleaved streams cost %v, want ≤%v (per-op tracking broken)", total, maxExpected)
	}
}

func TestWearAccounting(t *testing.T) {
	e := sim.New()
	s := New(e, "ssd0", DefaultSpec())
	e.Go("io", func(p *sim.Proc) {
		s.Serve(p, device.Request{Op: device.Write, LBN: 0, Sectors: 16})
		s.Serve(p, device.Request{Op: device.Read, LBN: 0, Sectors: 16})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.BytesWritten() != 16*device.SectorSize {
		t.Fatalf("BytesWritten = %d, want %d (reads must not count)", s.BytesWritten(), 16*device.SectorSize)
	}
}

func TestEstimateMatchesServe(t *testing.T) {
	e := sim.New()
	s := New(e, "ssd0", DefaultSpec())
	e.Go("io", func(p *sim.Proc) {
		r := device.Request{Op: device.Write, LBN: 4096, Sectors: 8}
		est := s.EstimateService(r)
		got := s.Serve(p, r)
		if est != got {
			t.Errorf("estimate %v != served %v", est, got)
		}
		// Now contiguous: estimate must drop to sequential latency.
		r2 := device.Request{Op: device.Write, LBN: r.End(), Sectors: 8}
		if s.EstimateService(r2) >= est {
			t.Errorf("contiguous estimate %v not cheaper than random %v", s.EstimateService(r2), est)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestZeroLengthRequestFree(t *testing.T) {
	e := sim.New()
	s := New(e, "ssd0", DefaultSpec())
	e.Go("io", func(p *sim.Proc) {
		if d := s.Serve(p, device.Request{Op: device.Read, LBN: 0, Sectors: 0}); d != 0 {
			t.Errorf("zero-length request cost %v", d)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
