// Package cluster assembles a full simulated storage cluster — data
// servers with their devices and storage stacks, the metadata exchange,
// and the parallel file system — for one experiment run, and collects the
// metrics the paper's tables and figures report.
package cluster

import (
	"fmt"

	"repro/internal/blktrace"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stripe"
)

// Mode selects the storage stack at every data server.
type Mode int

// The three system configurations the paper compares.
const (
	// Stock is the baseline: all I/O to the hard disk (Figures 2–4
	// "stock system", Figure 10 "Disk-only").
	Stock Mode = iota
	// IBridge is the paper's scheme: disk plus SSD cache for fragments
	// and regular random requests.
	IBridge
	// SSDOnly stores everything on the SSD at its file location
	// (Figure 10's "SSD-only").
	SSDOnly
)

func (m Mode) String() string {
	switch m {
	case Stock:
		return "stock"
	case IBridge:
		return "ibridge"
	default:
		return "ssd-only"
	}
}

// Config describes one cluster instance.
type Config struct {
	// Servers is the number of data servers (8 on the paper's testbed).
	Servers int
	// StripeUnit is the striping unit in bytes (64 KB default).
	StripeUnit int64
	// Handlers bounds concurrent I/O jobs per server.
	Handlers int
	Mode     Mode
	// IBridge configures the bridges when Mode == IBridge.
	IBridge core.Config
	// FragmentThreshold and RandomThreshold are the client-side
	// thresholds (20 KB defaults); used only in IBridge mode.
	FragmentThreshold int64
	RandomThreshold   int64
	HDD               hdd.Spec
	SSD               ssd.Spec
	Net               pfs.NetModel
	// Readahead wraps every server's store with kernel-style
	// sequential readahead (128 KB windows). Off by default: the
	// calibrated experiments model the paper's flushed-cache
	// methodology; the ext-readahead experiment turns it on.
	Readahead bool
	// Trace attaches blktrace collectors to the disk queues.
	Trace bool
	Seed  uint64
	// Obs is the observability sink shared by all cluster instances of
	// one run (metrics registry, request-flow tracer, T_i telemetry).
	// nil disables instrumentation entirely — the zero-cost path.
	Obs *obs.Set
	// Faults, when set, applies the plan's simulated-device clauses:
	// duration-triggered `ssdfail=srvN@DUR` clauses schedule an SSD
	// failure on server N's bridge at virtual time DUR (IBridge mode
	// only; the bridge degrades to the disk path). Wire-level clauses
	// are ignored here — the simulated cluster has no sockets.
	Faults *faults.Plan
}

// DefaultConfig mirrors the paper's evaluation platform: 8 data servers,
// 64 KB striping unit, the Table II devices, and iBridge defaults.
func DefaultConfig() Config {
	return Config{
		Servers:    8,
		StripeUnit: stripe.DefaultUnit,
		// PVFS2's Trove layer performs synchronous file I/O with a
		// small number of concurrent operations per server; the block
		// queue never sees the whole client population at once.
		Handlers:          4,
		Mode:              Stock,
		IBridge:           core.DefaultConfig(),
		FragmentThreshold: 20 * 1024,
		RandomThreshold:   20 * 1024,
		HDD:               hdd.DefaultSpec(),
		SSD:               ssd.DefaultSpec(),
		Net:               pfs.DefaultNet(),
		Seed:              1,
	}
}

// Cluster is one assembled simulation instance. A Cluster runs exactly
// one workload (engines are single-use); construct a fresh Cluster per
// data point.
type Cluster struct {
	Engine     *sim.Engine
	FS         *pfs.FileSystem
	Disks      []*hdd.Disk
	SSDs       []*ssd.SSD
	Bridges    []*core.Bridge
	Collectors []*blktrace.Collector
	Exchange   *core.Exchange
	cfg        Config
}

// New builds a cluster per cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("cluster: %d servers", cfg.Servers)
	}
	if cfg.StripeUnit <= 0 {
		cfg.StripeUnit = stripe.DefaultUnit
	}
	e := sim.New()
	c := &Cluster{Engine: e, cfg: cfg}
	// Resolve the observability bundles once; every accessor is nil-safe
	// and returns a nil concrete pointer when disabled, so components see
	// either a live sink or the zero-cost nil. The explicit != nil guards
	// before Set*Probe calls keep a typed nil from becoming a non-nil
	// interface value.
	run := cfg.Obs.NextRun()
	tr := cfg.Obs.Tracer()
	hddM := cfg.Obs.DeviceMetrics("hdd")
	ssdM := cfg.Obs.DeviceMetrics("ssd")
	diskQM := cfg.Obs.QueueMetrics("iosched.hdd")
	ssdQM := cfg.Obs.QueueMetrics("iosched.ssd")
	bridgeM := cfg.Obs.BridgeMetrics()
	if em := cfg.Obs.EngineMetrics(); em != nil {
		e.SetProbe(em)
	}
	// Per-component generators are derived independently of cluster
	// mode so that e.g. disk i draws the same rotational latencies in
	// stock and iBridge runs — A/B comparisons differ only in
	// mechanism, not in noise.
	componentRNG := func(kind uint64, i int) *sim.RNG {
		return sim.NewRNG(cfg.Seed*0x9E3779B97F4A7C15 + kind*0x1000193 + uint64(i))
	}
	stores := make([]pfs.Store, cfg.Servers)
	if cfg.Mode == IBridge {
		c.Exchange = core.NewExchange(e, cfg.IBridge.ReportPeriod)
	}
	for i := 0; i < cfg.Servers; i++ {
		var tracer iosched.Tracer
		if cfg.Trace {
			col := blktrace.New(fmt.Sprintf("srv%d", i))
			c.Collectors = append(c.Collectors, col)
			tracer = col
		}
		disk := hdd.New(e, fmt.Sprintf("hdd%d", i), cfg.HDD, componentRNG(1, i))
		if hddM != nil {
			disk.SetProbe(hddM)
		}
		c.Disks = append(c.Disks, disk)
		diskQ := iosched.New(e, disk, iosched.DiskDefaults(), tracer)
		diskQ.SetMetrics(diskQM)
		switch cfg.Mode {
		case Stock:
			stores[i] = pfs.NewDiskStore(diskQ)
		case SSDOnly:
			sd := ssd.New(e, fmt.Sprintf("ssd%d", i), cfg.SSD)
			if ssdM != nil {
				sd.SetProbe(ssdM)
			}
			c.SSDs = append(c.SSDs, sd)
			sq := iosched.New(e, sd, iosched.SSDDefaults(), tracer)
			sq.SetMetrics(ssdQM)
			stores[i] = pfs.NewSSDStore(sq)
		case IBridge:
			sd := ssd.New(e, fmt.Sprintf("ssd%d", i), cfg.SSD)
			if ssdM != nil {
				sd.SetProbe(ssdM)
			}
			c.SSDs = append(c.SSDs, sd)
			ssdQ := iosched.New(e, sd, iosched.SSDDefaults(), nil)
			ssdQ.SetMetrics(ssdQM)
			b := core.NewBridge(e, cfg.IBridge, i, disk, diskQ, ssdQ, c.Exchange, componentRNG(2, i))
			b.SetObs(bridgeM, tr, run)
			c.Bridges = append(c.Bridges, b)
			stores[i] = b
			if at, ok := cfg.Faults.SSDFailAt(fmt.Sprintf("srv%d", i)); ok {
				br, plan, srv := b, cfg.Faults, i
				e.Go(fmt.Sprintf("ssdfail%d", i), func(p *sim.Proc) {
					p.Sleep(sim.Duration(at))
					br.FailSSD(p)
					plan.NoteSSDFail()
					if tr != nil {
						// Mirror the injection into the sim trace at its
						// virtual fire time, so the Chrome timeline shows
						// the failure instant amid the request spans it
						// degrades.
						tr.Instant(p.Now(), run, fmt.Sprintf("srv%d", srv), "fault.ssdfail", 0)
					}
				})
			}
		}
	}
	if cfg.Readahead {
		for i := range stores {
			stores[i] = pfs.NewReadaheadStore(stores[i])
		}
	}
	if c.Exchange != nil {
		// The T_i telemetry hook rides the metadata-server broadcast
		// tick: each broadcast snapshots the T vector plus the bridges'
		// cumulative decision counters. Installed before Start so the
		// first tick is observed.
		if ts := cfg.Obs.TiSampler(fmt.Sprintf("run%d-%s", run, cfg.Mode)); ts != nil {
			bridges := c.Bridges
			c.Exchange.SetSampler(func(now sim.Time, view []float64) {
				var snap obs.TiSnapshot
				for _, b := range bridges {
					st := b.Stats()
					snap.BoostedOffloads += st.BoostedOffloads
					snap.PlainOffloads += st.PlainOffloads
					snap.Hits += st.Hits
					snap.Misses += st.Misses
					snap.Evictions += st.Evictions
				}
				ts.Sample(now, view, snap)
			})
		}
		c.Exchange.Start()
	}
	fs, err := pfs.NewFileSystem(e, pfs.Config{
		Layout:   stripe.Layout{Unit: cfg.StripeUnit, Servers: cfg.Servers},
		Net:      cfg.Net,
		Handlers: cfg.Handlers,
	}, stores)
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		fs.SetObs(cfg.Obs.PFSMetrics(), tr, run)
	}
	c.FS = fs
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Client returns a client appropriate for the cluster mode: with
// iBridge's fragment flagging when the bridges are present.
func (c *Cluster) Client() *pfs.Client {
	if c.cfg.Mode == IBridge {
		return pfs.NewIBridgeClient(c.FS, c.cfg.FragmentThreshold, c.cfg.RandomThreshold)
	}
	return pfs.NewClient(c.FS)
}

// Workload is the body of one experiment: it runs inside a driver
// process, spawning rank processes as needed, and returns when all
// application I/O has completed.
type Workload func(c *Cluster, p *sim.Proc)

// Result carries the metrics of one run.
type Result struct {
	// Elapsed is application time: start to last rank completion.
	Elapsed sim.Duration
	// FlushTime is the additional time to write dirty cached data back
	// after the program terminated (the paper includes it: "to make
	// our comparison fair and conservative").
	FlushTime sim.Duration
	// Bytes is application bytes moved (both directions).
	Bytes int64
	// Requests and AvgServiceTime are client-observed (Table III).
	Requests       int64
	AvgServiceTime sim.Duration
	// SSDFraction is the fraction of server bytes served at the SSD.
	SSDFraction float64
	// PeakSSDUsage is cluster-wide peak cache occupancy in bytes.
	PeakSSDUsage int64
	// Bridge aggregates iBridge statistics across servers.
	Bridge core.Stats
	// Blocks is the merged block-level dispatch distribution (nil
	// unless Config.Trace).
	Blocks *blktrace.Collector
}

// ThroughputMBps returns application throughput over Elapsed+FlushTime in
// MB/s (decimal, as the paper reports).
func (r Result) ThroughputMBps() float64 {
	total := r.Elapsed + r.FlushTime
	if total <= 0 {
		return 0
	}
	return float64(r.Bytes) / total.Seconds() / 1e6
}

// Run executes w on the cluster and gathers metrics. It may be called
// once per Cluster.
func (c *Cluster) Run(w Workload) (Result, error) {
	var res Result
	c.Engine.Go("driver", func(p *sim.Proc) {
		w(c, p)
		res.Elapsed = sim.Duration(p.Now())
		c.FS.Flush(p)
		res.FlushTime = sim.Duration(p.Now()) - res.Elapsed
		c.Engine.Halt()
	})
	if err := c.Engine.Run(); err != nil {
		return res, err
	}
	st := c.FS.Stats()
	res.Bytes = st.TotalBytes()
	res.Requests = st.Requests
	res.AvgServiceTime = st.AvgServiceTime()
	for _, b := range c.Bridges {
		res.Bridge.Add(b.Stats())
	}
	if len(c.Bridges) > 0 {
		res.SSDFraction = res.Bridge.SSDFraction()
		res.PeakSSDUsage = res.Bridge.PeakUsage
	}
	if len(c.Collectors) > 0 {
		merged := blktrace.New("cluster")
		for _, col := range c.Collectors {
			merged.Merge(col)
		}
		res.Blocks = merged
	}
	return res, nil
}

// DiskStats aggregates device statistics across all disks.
func (c *Cluster) DiskStats() device.Stats {
	var agg device.Stats
	for _, d := range c.Disks {
		s := d.Stats()
		for op := range agg.Ops {
			agg.Ops[op] += s.Ops[op]
			agg.Bytes[op] += s.Bytes[op]
			agg.SeqOps[op] += s.SeqOps[op]
		}
		agg.BusyTime += s.BusyTime
		agg.SeekTime += s.SeekTime
		agg.Seeks += s.Seeks
	}
	return agg
}
