package cluster_test

import (
	"fmt"
	"testing"

	. "repro/internal/cluster"
	"repro/internal/workload"
)

// TestGridIBridgeNeverRegresses sweeps a grid of unaligned configurations
// and asserts the reproduction's core invariant: iBridge never loses to
// the stock system by more than run-to-run noise, and strictly wins where
// true fragments dominate.
func TestGridIBridgeNeverRegresses(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	type point struct {
		size, shift int64
		write       bool
	}
	grid := []point{
		{65 * workload.KB, 0, true},
		{33 * workload.KB, 0, true},
		{64 * workload.KB, 1 * workload.KB, true},
		{64 * workload.KB, 10 * workload.KB, true},
		{129 * workload.KB, 0, true},
	}
	run := func(mode Mode, pt point, seed uint64) float64 {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.Seed = seed
		cfg.IBridge.SSDCapacity = 512 << 20
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
			Procs: 32, RequestSize: pt.size, Shift: pt.shift,
			FileBytes: 64 * workload.MB, Write: pt.write,
			Jitter: workload.DefaultJitter, Seed: seed,
		}))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.ThroughputMBps()
	}
	for _, pt := range grid {
		pt := pt
		name := fmt.Sprintf("size=%dKB+%dKB", pt.size/1024, pt.shift/1024)
		t.Run(name, func(t *testing.T) {
			// Average two seeds to damp attractor noise.
			var stock, ib float64
			for seed := uint64(1); seed <= 2; seed++ {
				stock += run(Stock, pt, seed)
				ib += run(IBridge, pt, seed)
			}
			stock /= 2
			ib /= 2
			t.Logf("stock %.1f MB/s, iBridge %.1f MB/s (%+.0f%%)", stock, ib, 100*(ib/stock-1))
			if ib < 0.93*stock {
				t.Errorf("iBridge regressed: %.1f vs stock %.1f MB/s", ib, stock)
			}
		})
	}
}

// TestGridModesDeterministic verifies bit-identical reruns for all three
// storage modes on the same configuration.
func TestGridModesDeterministic(t *testing.T) {
	for _, mode := range []Mode{Stock, IBridge, SSDOnly} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			run := func() Result {
				cfg := DefaultConfig()
				cfg.Mode = mode
				cfg.IBridge.SSDCapacity = 256 << 20
				c, err := New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
					Procs: 16, RequestSize: 65 * workload.KB,
					FileBytes: 32 * workload.MB, Write: true,
					Jitter: workload.DefaultJitter,
				}))
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				return res
			}
			a, b := run(), run()
			if a.Elapsed != b.Elapsed || a.FlushTime != b.FlushTime || a.Bytes != b.Bytes {
				t.Fatalf("mode %v not deterministic: %+v vs %+v", mode, a, b)
			}
		})
	}
}
