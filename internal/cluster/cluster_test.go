package cluster_test

import (
	"testing"

	. "repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runMPIIO builds a cluster and runs one mpi-io-test configuration.
func runMPIIO(t *testing.T, mode Mode, reqSize, shift int64, write bool, procs int) Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.IBridge.SSDCapacity = 2 << 30
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs:       procs,
		RequestSize: reqSize,
		Shift:       shift,
		FileBytes:   256 * workload.MB,
		Write:       write,
		Jitter:      workload.DefaultJitter,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestAlignedBeatsUnalignedStock(t *testing.T) {
	aligned := runMPIIO(t, Stock, 64*workload.KB, 0, false, 16)
	unaligned := runMPIIO(t, Stock, 65*workload.KB, 0, false, 16)
	ta, tu := aligned.ThroughputMBps(), unaligned.ThroughputMBps()
	t.Logf("aligned %.1f MB/s, unaligned %.1f MB/s", ta, tu)
	if tu > 0.8*ta {
		t.Fatalf("unaligned %.1f MB/s not clearly below aligned %.1f MB/s", tu, ta)
	}
}

func TestColdIBridgeReadsMatchStock(t *testing.T) {
	// Without a prior run to populate the SSD, read misses go to the
	// disk exactly as in the stock system (Section II-B: "iBridge
	// cannot help with I/O efficiency of read requests if the
	// requested data have not yet been cached").
	stock := runMPIIO(t, Stock, 65*workload.KB, 0, false, 64)
	ib := runMPIIO(t, IBridge, 65*workload.KB, 0, false, 64)
	ts, ti := stock.ThroughputMBps(), ib.ThroughputMBps()
	if ti < 0.9*ts || ti > 1.1*ts {
		t.Fatalf("cold iBridge reads %.1f MB/s deviate from stock %.1f MB/s", ti, ts)
	}
}

// runWarmRead measures the second pass of a warmed read run.
func runWarmRead(t *testing.T, mode Mode, reqSize, shift int64) *workload.Report {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.IBridge.SSDCapacity = 2 << 30
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := &workload.Report{}
	if _, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs:       64,
		RequestSize: reqSize,
		Shift:       shift,
		FileBytes:   128 * workload.MB,
		Jitter:      workload.DefaultJitter,
		Warm:        true,
		Report:      rep,
	})); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestWarmIBridgeReadsBeatStock(t *testing.T) {
	// The +10KB-offset pattern: every parent has a 10KB fragment that
	// a prior run staged into the SSD.
	stock := runWarmRead(t, Stock, 64*workload.KB, 10*workload.KB)
	ib := runWarmRead(t, IBridge, 64*workload.KB, 10*workload.KB)
	ts, ti := stock.ThroughputMBps(), ib.ThroughputMBps()
	t.Logf("warm +10KB reads: stock %.1f MB/s, ibridge %.1f MB/s", ts, ti)
	if ti <= 1.15*ts {
		t.Fatalf("warm iBridge reads %.1f MB/s not clearly above stock %.1f MB/s", ti, ts)
	}
}

func TestIBridgeClosesGapForWrites(t *testing.T) {
	// The +10KB-offset pattern: every parent carries a 10KB fragment,
	// the configuration where iBridge's write-side benefit is largest.
	stock := runMPIIO(t, Stock, 64*workload.KB, 10*workload.KB, true, 64)
	ib := runMPIIO(t, IBridge, 64*workload.KB, 10*workload.KB, true, 64)
	ts, ti := stock.ThroughputMBps(), ib.ThroughputMBps()
	t.Logf("stock %.1f MB/s, ibridge %.1f MB/s (ssd frac %.2f)", ts, ti, ib.SSDFraction)
	if ti <= 1.2*ts {
		t.Fatalf("iBridge writes %.1f MB/s not clearly above stock %.1f MB/s", ti, ts)
	}
	// The 65KB case must still not regress.
	stock65 := runMPIIO(t, Stock, 65*workload.KB, 0, true, 64)
	ib65 := runMPIIO(t, IBridge, 65*workload.KB, 0, true, 64)
	if ib65.ThroughputMBps() < stock65.ThroughputMBps() {
		t.Fatalf("iBridge 65KB writes regressed: %.1f vs %.1f MB/s",
			ib65.ThroughputMBps(), stock65.ThroughputMBps())
	}
}

func TestIBridgeNeutralOnAligned(t *testing.T) {
	stock := runMPIIO(t, Stock, 64*workload.KB, 0, false, 64)
	ib := runMPIIO(t, IBridge, 64*workload.KB, 0, false, 64)
	ts, ti := stock.ThroughputMBps(), ib.ThroughputMBps()
	t.Logf("stock %.1f MB/s, ibridge %.1f MB/s", ts, ti)
	if ib.SSDFraction > 0.01 {
		t.Fatalf("iBridge redirected %.1f%% of aligned traffic", ib.SSDFraction*100)
	}
	if ti < 0.9*ts || ti > 1.1*ts {
		t.Fatalf("iBridge changed aligned throughput: %.1f vs %.1f MB/s", ti, ts)
	}
}

func TestDeterministicResults(t *testing.T) {
	a := runMPIIO(t, IBridge, 65*workload.KB, 0, true, 16)
	b := runMPIIO(t, IBridge, 65*workload.KB, 0, true, 16)
	if a.Elapsed != b.Elapsed || a.Bytes != b.Bytes {
		t.Fatalf("runs differ: %v/%d vs %v/%d", a.Elapsed, a.Bytes, b.Elapsed, b.Bytes)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs: 16, RequestSize: 64 * workload.KB, FileBytes: 64 * workload.MB,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Blocks == nil || res.Blocks.Requests() == 0 {
		t.Fatal("no block trace collected")
	}
}

func TestOffsetShiftHurtsStock(t *testing.T) {
	base := runMPIIO(t, Stock, 64*workload.KB, 0, false, 64)
	shifted := runMPIIO(t, Stock, 64*workload.KB, 10*workload.KB, false, 64)
	tb, ts := base.ThroughputMBps(), shifted.ThroughputMBps()
	t.Logf("no shift %.1f MB/s, 10KB shift %.1f MB/s", tb, ts)
	if ts > 0.85*tb {
		t.Fatalf("10KB shift %.1f MB/s not clearly below aligned %.1f MB/s", ts, tb)
	}
}

func TestSSDOnlyMode(t *testing.T) {
	res := runMPIIO(t, SSDOnly, 65*workload.KB, 0, true, 16)
	if res.ThroughputMBps() <= 0 {
		t.Fatal("SSD-only produced no throughput")
	}
}

func TestFlushTimeCountedForIBridgeWrites(t *testing.T) {
	res := runMPIIO(t, IBridge, 65*workload.KB, 0, true, 16)
	// Dirty fragments must be written back; flush may be quick if idle
	// writeback already drained them, but the field must be sane.
	if res.FlushTime < 0 {
		t.Fatalf("negative flush time %v", res.FlushTime)
	}
	if res.Bridge.WritebackBytes == 0 {
		t.Fatal("no writeback happened at all")
	}
}

func TestResultMetricsSane(t *testing.T) {
	res := runMPIIO(t, IBridge, 65*workload.KB, 0, true, 16)
	if res.Bytes != 256*workload.MB/(65*workload.KB)/16*16*65*workload.KB {
		// iters = FileBytes/(procs*size), each proc iters requests.
		t.Logf("bytes = %d", res.Bytes)
	}
	if res.Requests == 0 || res.AvgServiceTime <= 0 {
		t.Fatalf("requests %d, avg service %v", res.Requests, res.AvgServiceTime)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero-server cluster accepted")
	}
}

func TestBTIOWorkloadRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = IBridge
	cfg.IBridge.SSDCapacity = 1 << 30
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var btres workload.BTIOResult
	_, err = c.Run(workload.BTIO(workload.BTIOConfig{
		Procs:          9,
		DataBytes:      32 * workload.MB,
		Steps:          4,
		ComputePerStep: 10 * sim.Millisecond,
	}, &btres))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if btres.IOTime <= 0 || btres.TotalTime <= btres.IOTime {
		t.Fatalf("BTIO timing: io %v, total %v", btres.IOTime, btres.TotalTime)
	}
}
