package mpiio

import (
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// collectiveWorld builds a world with access to the FS stats for
// verifying what reached the servers.
func collectiveWorld(t *testing.T, e *sim.Engine, ranks int) (*World, *pfs.FileSystem) {
	return testWorld(t, e, ranks)
}

func TestCollectiveWriteAggregatesAligned(t *testing.T) {
	e := sim.New()
	w, fs := collectiveWorld(t, e, 4)
	col := NewCollective(w, DefaultCollective())
	const unit = 64 * 1024
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("col", func(r *Rank) {
			// Each rank contributes 4 small strided pieces; together
			// they tile [0, 16*4KB*4) sparsely... use contiguous tiling:
			// rank i piece j at (j*4 + i) * 4KB.
			var pieces []Piece
			for j := 0; j < 4; j++ {
				pieces = append(pieces, Piece{Off: int64(j*4+r.ID) * 4096, Len: 4096})
			}
			col.Write(r, pieces)
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := fs.Stats()
	// 16 pieces of 4KB tile [0, 64KB): one aligned 64KB aggregated
	// write from one aggregator.
	if st.Requests != 1 {
		t.Fatalf("aggregated requests = %d, want 1", st.Requests)
	}
	if st.Fragments != 0 {
		t.Fatalf("collective write produced %d fragments", st.Fragments)
	}
	if st.TotalBytes() != unit {
		t.Fatalf("aggregated bytes = %d, want %d", st.TotalBytes(), unit)
	}
}

func TestCollectiveReadCoversPieces(t *testing.T) {
	e := sim.New()
	w, fs := collectiveWorld(t, e, 4)
	col := NewCollective(w, DefaultCollective())
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("col", func(r *Rank) {
			col.Read(r, []Piece{{Off: int64(r.ID) * 100 * 1024, Len: 8 * 1024}})
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := fs.Stats()
	// Four scattered 8KB pieces → four aligned 64KB domain reads.
	if st.Requests == 0 {
		t.Fatal("no aggregated reads issued")
	}
	if st.TotalBytes() < 4*8*1024 {
		t.Fatalf("aggregated reads cover %d bytes, less than the pieces", st.TotalBytes())
	}
	for _, s := range []int64{st.TotalBytes()} {
		if s%(64*1024) != 0 {
			t.Fatalf("aggregated read bytes %d not unit-aligned", s)
		}
	}
}

func TestCollectiveReusable(t *testing.T) {
	e := sim.New()
	w, fs := collectiveWorld(t, e, 2)
	col := NewCollective(w, DefaultCollective())
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("col", func(r *Rank) {
			for round := 0; round < 3; round++ {
				off := int64(round)*1<<20 + int64(r.ID)*32*1024
				col.Write(r, []Piece{{Off: off, Len: 32 * 1024}})
			}
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fs.Stats().Requests != 3 {
		t.Fatalf("requests = %d, want 3 (one aggregated write per round)", fs.Stats().Requests)
	}
}

func TestCollectiveExchangeCostsTime(t *testing.T) {
	run := func(bw float64) sim.Duration {
		e := sim.New()
		w, _ := collectiveWorld(t, e, 4)
		cfg := DefaultCollective()
		cfg.ExchangeBW = bw
		col := NewCollective(w, cfg)
		var elapsed sim.Duration
		e.Go("driver", func(p *sim.Proc) {
			done := w.Spawn("col", func(r *Rank) {
				col.Write(r, []Piece{{Off: int64(r.ID) * 16 * 1024, Len: 16 * 1024}})
			})
			done.Wait(p)
			elapsed = sim.Duration(p.Now())
			e.Halt()
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return elapsed
	}
	fast, slow := run(3.2e9), run(1e6)
	if slow <= fast {
		t.Fatalf("slow exchange (%v) not slower than fast (%v)", slow, fast)
	}
}

func TestSieveRead(t *testing.T) {
	e := sim.New()
	w, fs := collectiveWorld(t, e, 1)
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("sieve", func(r *Rank) {
			// Four 2KB pieces 14KB apart: one covering read.
			var pieces []Piece
			for j := 0; j < 4; j++ {
				pieces = append(pieces, Piece{Off: int64(j) * 16 * 1024, Len: 2 * 1024})
			}
			moved := Sieve(r, pieces, false, SieveConfig{MaxHole: 64 * 1024})
			want := int64(3*16*1024 + 2*1024)
			if moved != want {
				t.Errorf("sieve moved %d bytes, want %d", moved, want)
			}
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fs.Stats().Requests != 1 {
		t.Fatalf("requests = %d, want 1 covering read", fs.Stats().Requests)
	}
}

func TestSieveWriteIsReadModifyWrite(t *testing.T) {
	e := sim.New()
	w, fs := collectiveWorld(t, e, 1)
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("sieve", func(r *Rank) {
			pieces := []Piece{{Off: 0, Len: 1024}, {Off: 8192, Len: 1024}}
			Sieve(r, pieces, true, SieveConfig{MaxHole: 64 * 1024})
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fs.Stats().Requests != 2 {
		t.Fatalf("requests = %d, want 2 (read + write of the cover)", fs.Stats().Requests)
	}
}

func TestSieveRespectsMaxHole(t *testing.T) {
	e := sim.New()
	w, fs := collectiveWorld(t, e, 1)
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("sieve", func(r *Rank) {
			pieces := []Piece{{Off: 0, Len: 1024}, {Off: 10 << 20, Len: 1024}}
			Sieve(r, pieces, false, SieveConfig{MaxHole: 4096})
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fs.Stats().Requests != 2 {
		t.Fatalf("requests = %d, want 2 separate extents", fs.Stats().Requests)
	}
	if fs.Stats().TotalBytes() != 2048 {
		t.Fatalf("moved %d bytes, want 2048 (no hole read)", fs.Stats().TotalBytes())
	}
}

func TestSieveEmpty(t *testing.T) {
	e := sim.New()
	w, _ := collectiveWorld(t, e, 1)
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("sieve", func(r *Rank) {
			if moved := Sieve(r, nil, false, SieveConfig{}); moved != 0 {
				t.Errorf("empty sieve moved %d", moved)
			}
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
