package mpiio

import (
	"sort"

	"repro/internal/sim"
)

// This file implements the two ROMIO optimizations the paper's related
// work discusses (Thakur et al., "Data Sieving and Collective I/O in
// ROMIO"): two-phase collective I/O and data sieving. Both transform an
// application's access pattern before it reaches the parallel file
// system — collective buffering produces large aligned requests at the
// cost of an all-to-all exchange, while data sieving covers strided small
// pieces with one large request (reading extra bytes, and for writes
// performing a read-modify-write). They are the software alternatives to
// iBridge's hardware approach, and the ext-collective experiment compares
// them.

// Piece is one (offset, length) element of a collective or sieved access.
type Piece struct {
	Off int64
	Len int64
}

// CollectiveConfig tunes the two-phase implementation.
type CollectiveConfig struct {
	// ExchangeBW is the aggregate interconnect bandwidth available to
	// the data shuffle (bytes/second); the exchange moves essentially
	// all data once.
	ExchangeBW float64
	// ExchangeLatency is the per-phase synchronization cost.
	ExchangeLatency sim.Duration
	// DomainAlign aligns each aggregator's file domain (the striping
	// unit, so aggregated requests are aligned at the servers).
	DomainAlign int64
}

// DefaultCollective returns parameters for the QDR InfiniBand platform.
func DefaultCollective() CollectiveConfig {
	return CollectiveConfig{
		ExchangeBW:      3.2e9,
		ExchangeLatency: 20 * sim.Microsecond,
		DomainAlign:     64 * 1024,
	}
}

// collectiveState carries one collective operation across the ranks.
// Rank 0 acts as the coordinator: it gathers every rank's pieces at the
// first barrier and computes the aggregated, aligned file domains.
type collectiveState struct {
	pieces  [][]Piece
	domains []Piece // one contiguous aligned domain per aggregator rank
	total   int64
}

// Collective provides two-phase I/O over a World. Create one per world;
// it is reusable across operations.
type Collective struct {
	w     *World
	cfg   CollectiveConfig
	state *collectiveState
}

// NewCollective returns a collective I/O context for w.
func NewCollective(w *World, cfg CollectiveConfig) *Collective {
	if cfg.DomainAlign <= 0 {
		cfg.DomainAlign = 64 * 1024
	}
	return &Collective{w: w, cfg: cfg}
}

// Write performs a collective write: every rank contributes its pieces;
// after an all-to-all exchange, aggregator ranks issue large aligned
// writes covering the union of all pieces. All ranks must call Write.
func (c *Collective) Write(r *Rank, pieces []Piece) {
	c.run(r, pieces, true)
}

// Read performs a collective read (two-phase in reverse): aggregators
// read the aligned domains, then the exchange distributes the pieces.
func (c *Collective) Read(r *Rank, pieces []Piece) {
	c.run(r, pieces, false)
}

func (c *Collective) run(r *Rank, pieces []Piece, write bool) {
	// Phase 0: gather piece lists (coordinator = rank 0's entry into
	// the barrier; the engine runs one process at a time, so plain
	// shared state with barrier ordering is race-free).
	if c.state == nil {
		c.state = &collectiveState{pieces: make([][]Piece, c.w.n)}
	}
	c.state.pieces[r.ID] = pieces
	r.Barrier()
	if r.ID == 0 {
		c.plan()
	}
	r.Barrier()

	st := c.state
	// Phase 1/2: the data exchange. Every byte crosses the interconnect
	// once; each rank is delayed by its share of the shuffle.
	perRank := sim.Duration(float64(st.total) / float64(c.w.n) / c.cfg.ExchangeBW * float64(sim.Second))
	r.Compute(c.cfg.ExchangeLatency + perRank)

	// Aggregators issue the file I/O for their domains.
	if r.ID < len(st.domains) {
		d := st.domains[r.ID]
		if d.Len > 0 {
			if write {
				r.WriteAt(d.Off, d.Len)
			} else {
				r.ReadAt(d.Off, d.Len)
			}
		}
	}
	if !write {
		// Reads pay the exchange after the file access.
		r.Compute(c.cfg.ExchangeLatency)
	}
	r.Barrier()
	if r.ID == 0 {
		c.state = nil // ready for the next operation
	}
	r.Barrier()
}

// plan merges all pieces into contiguous covering extents, aligns them,
// and splits the result into per-aggregator domains.
func (c *Collective) plan() {
	st := c.state
	var all []Piece
	for _, ps := range st.pieces {
		all = append(all, ps...)
	}
	if len(all) == 0 {
		st.domains = nil
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
	// Merge into covering extents and total the bytes.
	var merged []Piece
	st.total = 0
	for _, p := range all {
		st.total += p.Len
		if n := len(merged) - 1; n >= 0 && p.Off <= merged[n].Off+merged[n].Len {
			if end := p.Off + p.Len; end > merged[n].Off+merged[n].Len {
				merged[n].Len = end - merged[n].Off
			}
			continue
		}
		merged = append(merged, p)
	}
	// Align each extent outward to the domain alignment.
	a := c.cfg.DomainAlign
	for i := range merged {
		start := merged[i].Off / a * a
		end := (merged[i].Off + merged[i].Len + a - 1) / a * a
		merged[i] = Piece{Off: start, Len: end - start}
	}
	// Re-merge after alignment (extents may now touch).
	var aligned []Piece
	for _, p := range merged {
		if n := len(aligned) - 1; n >= 0 && p.Off <= aligned[n].Off+aligned[n].Len {
			if end := p.Off + p.Len; end > aligned[n].Off+aligned[n].Len {
				aligned[n].Len = end - aligned[n].Off
			}
			continue
		}
		aligned = append(aligned, p)
	}
	// Split the covered space into per-aggregator domains: contiguous
	// aligned slices of roughly equal size, at most one per rank.
	var covered int64
	for _, p := range aligned {
		covered += p.Len
	}
	perDomain := (covered/int64(c.w.n) + a - 1) / a * a
	if perDomain < a {
		perDomain = a
	}
	st.domains = st.domains[:0]
	for _, p := range aligned {
		for off := p.Off; off < p.Off+p.Len; off += perDomain {
			n := perDomain
			if off+n > p.Off+p.Len {
				n = p.Off + p.Len - off
			}
			st.domains = append(st.domains, Piece{Off: off, Len: n})
		}
	}
	if len(st.domains) > c.w.n {
		// More extents than ranks: concatenate the tail onto the last
		// aggregator (it issues them as one larger span if contiguous,
		// otherwise sequentially — approximate with per-extent I/O by
		// the last rank; rare in the benchmarks).
		tail := st.domains[c.w.n-1:]
		var last Piece
		last = tail[0]
		for _, p := range tail[1:] {
			if p.Off == last.Off+last.Len {
				last.Len += p.Len
			} else {
				// Non-contiguous: fold length anyway; the aggregate
				// I/O volume is what matters for the model.
				last.Len += p.Len
			}
		}
		st.domains = append(st.domains[:c.w.n-1], last)
	}
}

// SieveConfig tunes data sieving.
type SieveConfig struct {
	// MaxHole is the largest gap worth reading through; pieces
	// separated by more than this start a new covering extent (ROMIO's
	// ind_rd_buffer_size plays this role).
	MaxHole int64
}

// Sieve issues the given strided pieces of one rank as covering extents:
// for reads, one large read per covering extent; for writes, a
// read-modify-write of the covering extent. Returns the number of bytes
// actually transferred (including the holes).
func Sieve(r *Rank, pieces []Piece, write bool, cfg SieveConfig) int64 {
	if len(pieces) == 0 {
		return 0
	}
	if cfg.MaxHole <= 0 {
		cfg.MaxHole = 512 * 1024
	}
	sorted := append([]Piece(nil), pieces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	var moved int64
	cur := sorted[0]
	flush := func(p Piece) {
		if write {
			// Read-modify-write of the covering extent.
			r.ReadAt(p.Off, p.Len)
			r.WriteAt(p.Off, p.Len)
			moved += 2 * p.Len
		} else {
			r.ReadAt(p.Off, p.Len)
			moved += p.Len
		}
	}
	for _, p := range sorted[1:] {
		gap := p.Off - (cur.Off + cur.Len)
		if gap <= cfg.MaxHole {
			if end := p.Off + p.Len; end > cur.Off+cur.Len {
				cur.Len = end - cur.Off
			}
			continue
		}
		flush(cur)
		cur = p
	}
	flush(cur)
	return moved
}
