// Package mpiio provides a minimal MPI-IO-style programming layer over
// the simulated parallel file system: a World of ranks, barriers, and
// independent file reads/writes. The paper's benchmarks (mpi-io-test,
// ior-mpi-io, BTIO) are expressed against this layer in
// internal/workload.
package mpiio

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// World is a group of MPI ranks sharing a file and a barrier.
type World struct {
	e       *sim.Engine
	n       int
	barrier *sim.Barrier
	client  *pfs.Client
	file    *pfs.File
}

// NewWorld creates a world of n ranks doing I/O on file through client.
func NewWorld(e *sim.Engine, client *pfs.Client, file *pfs.File, n int) *World {
	if n <= 0 {
		panic("mpiio: world size must be positive")
	}
	return &World{e: e, n: n, barrier: sim.NewBarrier(e, n), client: client, file: file}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// File returns the world's shared file.
func (w *World) File() *pfs.File { return w.file }

// Rank is one MPI process.
type Rank struct {
	ID     int
	P      *sim.Proc
	w      *World
	client *pfs.Client
}

// Spawn launches fn as every rank's body and returns a counter that
// reaches zero when all ranks have finished. Each rank gets its own
// origin-tagged client so the server-side CFQ scheduler sees it as a
// distinct process.
func (w *World) Spawn(name string, fn func(r *Rank)) *sim.Counter {
	done := sim.NewCounter(w.e, w.n)
	for i := 0; i < w.n; i++ {
		i := i
		rc := w.client.WithOrigin(int32(i + 1))
		w.e.Go(fmt.Sprintf("%s:rank%d", name, i), func(p *sim.Proc) {
			fn(&Rank{ID: i, P: p, w: w, client: rc})
			done.Done()
		})
	}
	return done
}

// Barrier synchronizes all ranks (MPI_Barrier).
func (r *Rank) Barrier() { r.w.barrier.Wait(r.P) }

// ReadAt issues a synchronous read and returns its service time.
func (r *Rank) ReadAt(off, n int64) sim.Duration {
	return r.client.Read(r.P, r.w.file, off, n)
}

// WriteAt issues a synchronous write and returns its service time.
func (r *Rank) WriteAt(off, n int64) sim.Duration {
	return r.client.Write(r.P, r.w.file, off, n)
}

// Compute models a computation phase of duration d.
func (r *Rank) Compute(d sim.Duration) { r.P.Sleep(d) }
