package mpiio

import (
	"testing"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
)

func testWorld(t *testing.T, e *sim.Engine, ranks int) (*World, *pfs.FileSystem) {
	t.Helper()
	rng := sim.NewRNG(1)
	stores := make([]pfs.Store, 4)
	for i := range stores {
		d := hdd.New(e, "hdd", hdd.DefaultSpec(), rng.Fork())
		stores[i] = pfs.NewDiskStore(iosched.New(e, d, iosched.DiskDefaults(), nil))
	}
	fs, err := pfs.NewFileSystem(e, pfs.Config{
		Layout: stripe.Layout{Unit: 64 * 1024, Servers: 4},
	}, stores)
	if err != nil {
		t.Fatalf("NewFileSystem: %v", err)
	}
	f, err := fs.Create("data", 64<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return NewWorld(e, pfs.NewClient(fs), f, ranks), fs
}

func TestSpawnRunsAllRanks(t *testing.T) {
	e := sim.New()
	w, _ := testWorld(t, e, 8)
	seen := make([]bool, 8)
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("job", func(r *Rank) {
			seen[r.ID] = true
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("rank %d did not run", i)
		}
	}
}

func TestRanksHaveDistinctOrigins(t *testing.T) {
	e := sim.New()
	w, fs := testWorld(t, e, 4)
	_ = fs
	origins := map[int32]bool{}
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("job", func(r *Rank) {
			origins[r.client.Origin] = true
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(origins) != 4 {
		t.Fatalf("%d distinct origins, want 4", len(origins))
	}
	if origins[0] {
		t.Fatal("rank used the zero origin reserved for server-internal traffic")
	}
}

func TestBarrierAcrossRanks(t *testing.T) {
	e := sim.New()
	w, _ := testWorld(t, e, 4)
	var after []sim.Time
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("job", func(r *Rank) {
			r.Compute(sim.Duration(r.ID) * sim.Millisecond)
			r.Barrier()
			after = append(after, r.P.Now())
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, at := range after {
		if at != sim.Time(3*sim.Millisecond) {
			t.Fatalf("rank passed barrier at %v, want 3ms", at)
		}
	}
}

func TestReadWriteThroughRanks(t *testing.T) {
	e := sim.New()
	w, fs := testWorld(t, e, 2)
	e.Go("driver", func(p *sim.Proc) {
		done := w.Spawn("job", func(r *Rank) {
			off := int64(r.ID) * 64 * 1024
			if d := r.WriteAt(off, 64*1024); d <= 0 {
				t.Errorf("rank %d write latency %v", r.ID, d)
			}
			if d := r.ReadAt(off, 64*1024); d <= 0 {
				t.Errorf("rank %d read latency %v", r.ID, d)
			}
		})
		done.Wait(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := fs.Stats()
	if st.Requests != 4 {
		t.Fatalf("requests = %d, want 4", st.Requests)
	}
	if st.Bytes[device.Read] != 2*64*1024 || st.Bytes[device.Write] != 2*64*1024 {
		t.Fatalf("bytes = %v", st.Bytes)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	e := sim.New()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size world accepted")
		}
	}()
	NewWorld(e, nil, nil, 0)
}
