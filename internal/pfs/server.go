package pfs

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Server is one data server: a job queue drained by a pool of handler
// processes (modelling the pvfs2-server daemon's concurrent I/O jobs),
// each of which pushes the job's block request into the server's storage
// stack.
type Server struct {
	e        *sim.Engine
	id       int
	store    Store
	jobs     *sim.Queue[*job]
	handlers int

	// Extent allocation: files receive contiguous LBN ranges with an
	// allocation-group gap between them, like Ext2 block groups.
	nextLBN  int64
	capacity int64

	served int64

	// Observability sinks, installed by FileSystem.SetObs (nil when off).
	m    *obs.PFSMetrics
	tr   *obs.Tracer
	run  int32
	comp string
}

type job struct {
	req  *IORequest
	done func()
}

// allocGap is the spacing in sectors between consecutive file extents,
// so that distinct files are not artificially adjacent on disk.
const allocGap = 1 << 16 // 32 MB

func newServer(e *sim.Engine, id int, store Store, handlers int) *Server {
	s := &Server{
		e:        e,
		id:       id,
		store:    store,
		jobs:     sim.NewQueue[*job](e),
		handlers: handlers,
		nextLBN:  allocGap,
		capacity: 1 << 31, // sectors; 1 TB per server
		comp:     fmt.Sprintf("srv%d", id),
	}
	for h := 0; h < handlers; h++ {
		e.Go(fmt.Sprintf("srv%d-h%d", id, h), s.handle)
	}
	return s
}

// ID returns the server index.
func (s *Server) ID() int { return s.id }

// Store returns the server's storage stack.
func (s *Server) Store() Store { return s.store }

// Served returns the number of sub-requests this server has completed.
func (s *Server) Served() int64 { return s.served }

// allocate reserves a contiguous extent of the given byte length and
// returns its first LBN.
func (s *Server) allocate(bytes int64) (int64, error) {
	sectors := (bytes + device.SectorSize - 1) / device.SectorSize
	if s.nextLBN+sectors > s.capacity {
		return 0, fmt.Errorf("server %d: out of space", s.id)
	}
	base := s.nextLBN
	s.nextLBN += sectors + allocGap
	return base, nil
}

// enqueue submits a job to the server; done runs (in engine-callback
// context) when the job's I/O completes.
func (s *Server) enqueue(req *IORequest, done func()) {
	s.jobs.Push(&job{req: req, done: done})
}

// handle is one handler process: it drains the job queue forever (the
// process is terminated by the engine at the end of the simulation).
func (s *Server) handle(p *sim.Proc) {
	for {
		j, ok := s.jobs.Pop(p)
		if !ok {
			return
		}
		start := p.Now()
		s.store.Serve(p, j.req)
		if s.m != nil {
			s.m.SubServe.ObserveDur(p.Now().Sub(start))
		}
		if s.tr != nil {
			s.tr.Span(start, p.Now().Sub(start), s.run, s.comp, flowName(j.req), j.req.ID)
		}
		s.served++
		j.done()
	}
}

// flowName labels a sub-request's serve span with a static string (no
// per-request formatting on the traced path).
func flowName(r *IORequest) string {
	if r.Op == device.Read {
		if r.Fragment {
			return "read-frag"
		}
		if r.Random {
			return "read-rand"
		}
		return "read"
	}
	if r.Fragment {
		return "write-frag"
	}
	if r.Random {
		return "write-rand"
	}
	return "write"
}
