package pfs

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// ReadaheadStore wraps a Store with kernel-style sequential readahead:
// when the reads against a server-local file object advance monotonically
// (allowing small holes), each read is extended to an aligned window, so
// the disk sees large sequential requests even when the application's
// pieces are small or hole-y. Detection is per file object, matching the
// server reality the model stands in for: PVFS2's Trove reads each
// bstream through one shared descriptor, so the kernel's readahead sees
// the *interleaved* stream of all clients — which for striped sequential
// workloads is near-sequential even though each individual rank hops
// between servers. This is the OS layer whose behaviour the paper's
// Figure 5 reflects (128/256-sector dispatches with iBridge): once the
// fragments are served elsewhere, readahead rounds the remaining piece
// stream back into full windows.
//
// Readahead is a read-side mechanism; writes pass through unchanged.
type ReadaheadStore struct {
	inner Store
	// Window is the readahead window in bytes (128 KB, the Linux
	// default for the paper's era).
	Window int64
	// MaxStreams bounds the per-origin stream-tracking table.
	MaxStreams int

	streams map[int]*raStream
	order   []int
	stats   ReadaheadStats
}

// ReadaheadStats counts the wrapper's behaviour.
type ReadaheadStats struct {
	Reads          int64
	Extended       int64 // reads grown to a window
	ExtraBytes     int64 // bytes read beyond what was asked
	SequentialHits int64 // reads detected as stream continuations
	CacheHits      int64 // reads fully covered by prior readahead
}

type raStream struct {
	nextLBN        int64 // expected next read position
	streak         int   // consecutive sequential detections
	covFrom, covTo int64 // region already read ahead ("page cache")
}

// NewReadaheadStore wraps inner with a 128 KB readahead window.
func NewReadaheadStore(inner Store) *ReadaheadStore {
	return &ReadaheadStore{
		inner:      inner,
		Window:     128 * 1024,
		MaxStreams: 256,
		streams:    make(map[int]*raStream),
	}
}

// Stats returns the wrapper's counters.
func (s *ReadaheadStore) Stats() *ReadaheadStats { return &s.stats }

// Serve implements Store.
func (s *ReadaheadStore) Serve(p *sim.Proc, r *IORequest) {
	if r.Op != device.Read {
		s.inner.Serve(p, r)
		return
	}
	s.stats.Reads++
	st := s.stream(r.FileID)
	winSectors := s.Window / device.SectorSize
	// Fully covered by a prior readahead: a page-cache hit, no device
	// I/O at all — the whole point of reading ahead.
	if r.LBN >= st.covFrom && r.LBN+r.Sectors <= st.covTo {
		s.stats.CacheHits++
		s.stats.SequentialHits++
		st.streak++
		if end := r.LBN + r.Sectors; end > st.nextLBN {
			st.nextLBN = end
		}
		return
	}
	// Sequential-ish: the read starts at or slightly past the expected
	// position (holes up to half a window are read through, the same
	// forgiveness Linux's readahead heuristic applies).
	seq := st.nextLBN != 0 && r.LBN >= st.nextLBN && r.LBN-st.nextLBN <= winSectors/2
	if seq {
		st.streak++
		s.stats.SequentialHits++
	} else {
		st.streak = 0
	}
	if seq && st.streak >= 2 {
		// Extend to a window-aligned read covering the request plus
		// one lookahead window.
		startLBN := st.nextLBN
		endLBN := (r.LBN + r.Sectors + winSectors) / winSectors * winSectors
		extended := *r
		extended.LBN = startLBN
		extended.Sectors = endLBN - startLBN
		extended.Bytes = extended.Sectors * device.SectorSize
		s.stats.Extended++
		s.stats.ExtraBytes += (extended.Sectors - r.Sectors) * device.SectorSize
		s.inner.Serve(p, &extended)
		st.covFrom, st.covTo = startLBN, endLBN
		st.nextLBN = r.LBN + r.Sectors
		return
	}
	s.inner.Serve(p, r)
	st.nextLBN = r.LBN + r.Sectors
}

// Flush implements Store.
func (s *ReadaheadStore) Flush(p *sim.Proc) { s.inner.Flush(p) }

// stream returns (creating if needed) the tracking state for a file
// object, evicting the oldest stream at the table cap.
func (s *ReadaheadStore) stream(file int) *raStream {
	if st, ok := s.streams[file]; ok {
		return st
	}
	if len(s.streams) >= s.MaxStreams && len(s.order) > 0 {
		delete(s.streams, s.order[0])
		s.order = s.order[1:]
	}
	st := &raStream{}
	s.streams[file] = st
	s.order = append(s.order, file)
	return st
}

var _ Store = (*ReadaheadStore)(nil)
