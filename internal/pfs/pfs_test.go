package pfs

import (
	"testing"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/sim"
	"repro/internal/stripe"
)

// testFS builds a stock file system over nServers disk stores and
// returns it with the underlying disks.
func testFS(t *testing.T, e *sim.Engine, nServers int) (*FileSystem, []*hdd.Disk) {
	t.Helper()
	rng := sim.NewRNG(99)
	disks := make([]*hdd.Disk, nServers)
	stores := make([]Store, nServers)
	for i := range stores {
		disks[i] = hdd.New(e, "hdd", hdd.DefaultSpec(), rng.Fork())
		stores[i] = NewDiskStore(iosched.New(e, disks[i], iosched.DiskDefaults(), nil))
	}
	fs, err := NewFileSystem(e, Config{
		Layout: stripe.Layout{Unit: 64 * 1024, Servers: nServers},
	}, stores)
	if err != nil {
		t.Fatalf("NewFileSystem: %v", err)
	}
	return fs, disks
}

// run executes fn as a simulated process and halts the engine when it
// returns.
func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Go("test-main", func(p *sim.Proc) {
		fn(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCreateAndOpen(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 4)
	f, err := fs.Create("data", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := fs.Open("data")
	if err != nil || got != f {
		t.Fatalf("Open: %v, %v", got, err)
	}
	if _, err := fs.Create("data", 1<<20); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if _, err := fs.Create("empty", 0); err == nil {
		t.Fatal("zero-size create accepted")
	}
	run(t, e, func(p *sim.Proc) {})
}

func TestAlignedRequestSingleServer(t *testing.T) {
	e := sim.New()
	fs, disks := testFS(t, e, 4)
	f, _ := fs.Create("data", 10<<20)
	c := NewClient(fs)
	run(t, e, func(p *sim.Proc) {
		c.Read(p, f, 0, 64*1024)
	})
	// Only server 0 should have seen I/O.
	if disks[0].Stats().TotalOps() == 0 {
		t.Fatal("server 0 idle")
	}
	for i := 1; i < 4; i++ {
		if disks[i].Stats().TotalOps() != 0 {
			t.Fatalf("server %d served %d ops for an aligned single-unit request", i, disks[i].Stats().TotalOps())
		}
	}
	if fs.Stats().SubCount != 1 {
		t.Fatalf("SubCount = %d, want 1", fs.Stats().SubCount)
	}
}

func TestUnalignedRequestTwoServers(t *testing.T) {
	e := sim.New()
	fs, disks := testFS(t, e, 4)
	f, _ := fs.Create("data", 10<<20)
	c := NewClient(fs)
	run(t, e, func(p *sim.Proc) {
		c.Read(p, f, 0, 65*1024)
	})
	if disks[0].Stats().TotalOps() == 0 || disks[1].Stats().TotalOps() == 0 {
		t.Fatal("65KB request did not touch servers 0 and 1")
	}
	if fs.Stats().SubCount != 2 {
		t.Fatalf("SubCount = %d, want 2", fs.Stats().SubCount)
	}
}

func TestFragmentFlaggingOnlyWithIBridgeClient(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 4)
	f, _ := fs.Create("data", 10<<20)
	stock := NewClient(fs)
	ib := NewIBridgeClient(fs, 20*1024, 20*1024)
	run(t, e, func(p *sim.Proc) {
		stock.Read(p, f, 0, 65*1024)
		if fs.Stats().Fragments != 0 {
			t.Errorf("stock client flagged %d fragments", fs.Stats().Fragments)
		}
		ib.Read(p, f, 0, 65*1024)
		if fs.Stats().Fragments != 1 {
			t.Errorf("iBridge client flagged %d fragments, want 1", fs.Stats().Fragments)
		}
	})
}

func TestRequestServiceTimeAccounting(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 2)
	f, _ := fs.Create("data", 10<<20)
	c := NewClient(fs)
	var lat sim.Duration
	run(t, e, func(p *sim.Proc) {
		lat = c.Write(p, f, 0, 128*1024)
	})
	if lat <= 0 {
		t.Fatal("no latency")
	}
	st := fs.Stats()
	if st.Requests != 1 || st.Latency != lat {
		t.Fatalf("stats = %+v, lat = %v", st, lat)
	}
	if st.Bytes[device.Write] != 128*1024 {
		t.Fatalf("write bytes = %d", st.Bytes[device.Write])
	}
	if st.AvgServiceTime() != lat {
		t.Fatalf("AvgServiceTime = %v, want %v", st.AvgServiceTime(), lat)
	}
}

func TestSubRequestsRunConcurrently(t *testing.T) {
	// A request striped over k servers should complete in roughly the
	// time of one sub-request, not k of them.
	single := measureRequest(t, 1, 64*1024)
	striped := measureRequest(t, 8, 8*64*1024)
	if striped > 3*single {
		t.Fatalf("8-server striped request took %v vs single-unit %v; not concurrent", striped, single)
	}
}

func measureRequest(t *testing.T, servers int, size int64) sim.Duration {
	t.Helper()
	e := sim.New()
	fs, _ := testFS(t, e, servers)
	f, _ := fs.Create("data", 100<<20)
	c := NewClient(fs)
	var lat sim.Duration
	run(t, e, func(p *sim.Proc) {
		lat = c.Read(p, f, 0, size)
	})
	return lat
}

func TestOutOfRangeRequestPanics(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 2)
	f, _ := fs.Create("data", 1<<20)
	c := NewClient(fs)
	panicked := false
	e.Go("main", func(p *sim.Proc) {
		defer func() {
			panicked = recover() != nil
			e.Halt()
		}()
		c.Read(p, f, 1<<20-10, 100)
	})
	e.Run()
	if !panicked {
		t.Fatal("out-of-range request did not panic")
	}
}

func TestZeroLengthRequestFree(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 2)
	f, _ := fs.Create("data", 1<<20)
	c := NewClient(fs)
	run(t, e, func(p *sim.Proc) {
		if lat := c.Read(p, f, 0, 0); lat != 0 {
			t.Errorf("zero-length read latency %v", lat)
		}
	})
	if fs.Stats().Requests != 0 {
		t.Fatal("zero-length request counted")
	}
}

func TestDistinctFilesGetDistinctExtents(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 2)
	a, _ := fs.Create("a", 10<<20)
	b, _ := fs.Create("b", 10<<20)
	for s := 0; s < 2; s++ {
		if a.bases[s] == b.bases[s] {
			t.Fatalf("files share base LBN on server %d", s)
		}
	}
	run(t, e, func(p *sim.Proc) {})
}

func TestSectorRoundingForTinyRequests(t *testing.T) {
	// BTIO-style 2160-byte requests are not sector-aligned; the block
	// request must cover the byte extent.
	e := sim.New()
	fs, disks := testFS(t, e, 1)
	f, _ := fs.Create("data", 1<<20)
	c := NewClient(fs)
	run(t, e, func(p *sim.Proc) {
		c.Write(p, f, 1000, 2160) // bytes [1000, 3160) → sectors [1, 7)
	})
	st := disks[0].Stats()
	if st.Bytes[device.Write] != 6*device.SectorSize {
		t.Fatalf("device wrote %d bytes, want %d", st.Bytes[device.Write], 6*device.SectorSize)
	}
}

func TestFlushIsNoOpOnStockStores(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e, 4)
	var took sim.Duration
	run(t, e, func(p *sim.Proc) {
		start := p.Now()
		fs.Flush(p)
		took = p.Now().Sub(start)
	})
	if took != 0 {
		t.Fatalf("stock flush took %v", took)
	}
}
