package pfs

import (
	"testing"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/sim"
)

// raFixture builds a readahead store over a disk.
func raFixture(t *testing.T, e *sim.Engine) (*ReadaheadStore, *hdd.Disk) {
	t.Helper()
	d := hdd.New(e, "hdd", hdd.DefaultSpec(), sim.NewRNG(1))
	inner := NewDiskStore(iosched.New(e, d, iosched.DiskDefaults(), nil))
	return NewReadaheadStore(inner), d
}

func read(file int, lbn, sectors int64) *IORequest {
	return &IORequest{Op: device.Read, LBN: lbn, Sectors: sectors,
		Bytes: sectors * device.SectorSize, FileID: file}
}

func TestReadaheadExtendsSequentialStream(t *testing.T) {
	e := sim.New()
	ra, d := raFixture(t, e)
	e.Go("main", func(p *sim.Proc) {
		// Three sequential 8KB reads: by the third, readahead kicks in
		// and extends to the 128KB window.
		for i := int64(0); i < 3; i++ {
			ra.Serve(p, read(1, i*16, 16))
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ra.Stats().Extended == 0 {
		t.Fatal("sequential stream never extended")
	}
	if d.Stats().Bytes[device.Read] <= 3*8*1024 {
		t.Fatalf("device read only %d bytes; readahead did not grow the request", d.Stats().Bytes[device.Read])
	}
}

func TestReadaheadIgnoresRandomAccess(t *testing.T) {
	e := sim.New()
	ra, d := raFixture(t, e)
	e.Go("main", func(p *sim.Proc) {
		for _, lbn := range []int64{1 << 20, 5, 1 << 24, 900} {
			ra.Serve(p, read(1, lbn, 16))
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ra.Stats().Extended != 0 {
		t.Fatalf("random access extended %d times", ra.Stats().Extended)
	}
	if d.Stats().Bytes[device.Read] != 4*16*device.SectorSize {
		t.Fatalf("device read %d bytes, want exactly the requests", d.Stats().Bytes[device.Read])
	}
}

func TestReadaheadReadsThroughSmallHoles(t *testing.T) {
	// 54KB pieces with 10KB holes (the iBridge +10KB pattern after
	// fragment absorption) must be detected as one stream.
	e := sim.New()
	ra, _ := raFixture(t, e)
	e.Go("main", func(p *sim.Proc) {
		lbn := int64(0)
		for i := 0; i < 5; i++ {
			ra.Serve(p, read(1, lbn, 108)) // 54 KB
			lbn += 108 + 20                // 10 KB hole
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ra.Stats().SequentialHits < 4 {
		t.Fatalf("only %d sequential hits across the hole-y stream", ra.Stats().SequentialHits)
	}
	if ra.Stats().Extended == 0 {
		t.Fatal("hole-y stream never extended")
	}
}

func TestReadaheadTracksFilesIndependently(t *testing.T) {
	e := sim.New()
	ra, _ := raFixture(t, e)
	e.Go("main", func(p *sim.Proc) {
		// Interleaved: each file object is sequential in its own
		// region; together they alternate. Per-file tracking must
		// still detect both streams.
		for i := int64(0); i < 4; i++ {
			ra.Serve(p, read(1, i*16, 16))
			ra.Serve(p, read(2, 1<<20+i*16, 16))
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ra.Stats().SequentialHits < 6 {
		t.Fatalf("per-origin detection broken: %d hits", ra.Stats().SequentialHits)
	}
}

func TestReadaheadPassesWritesThrough(t *testing.T) {
	e := sim.New()
	ra, d := raFixture(t, e)
	e.Go("main", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			ra.Serve(p, &IORequest{Op: device.Write, LBN: i * 16, Sectors: 16,
				Bytes: 16 * device.SectorSize, FileID: 1})
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ra.Stats().Reads != 0 || ra.Stats().Extended != 0 {
		t.Fatal("writes entered the readahead path")
	}
	if d.Stats().Bytes[device.Write] != 4*16*device.SectorSize {
		t.Fatal("writes altered")
	}
}

func TestReadaheadStreamTableBounded(t *testing.T) {
	e := sim.New()
	ra, _ := raFixture(t, e)
	ra.MaxStreams = 8
	e.Go("main", func(p *sim.Proc) {
		for o := 1; o <= 50; o++ {
			ra.Serve(p, read(o, int64(o)*1000, 8))
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ra.streams) > 8 {
		t.Fatalf("stream table grew to %d", len(ra.streams))
	}
}
