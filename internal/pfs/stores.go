package pfs

import (
	"repro/internal/device"
	"repro/internal/iosched"
	"repro/internal/sim"
)

// DiskStore is the stock storage stack: every request goes to the hard
// disk behind a merging elevator queue (CFQ-style), as in the paper's
// baseline system.
type DiskStore struct {
	queue *iosched.Queue
}

// NewDiskStore wraps an elevator queue as a Store.
func NewDiskStore(q *iosched.Queue) *DiskStore { return &DiskStore{queue: q} }

// Queue exposes the underlying scheduler queue.
func (d *DiskStore) Queue() *iosched.Queue { return d.queue }

// Serve implements Store.
func (d *DiskStore) Serve(p *sim.Proc, r *IORequest) {
	d.queue.Submit(p, r.Request())
}

// Flush implements Store: the stock stack is write-through.
func (d *DiskStore) Flush(*sim.Proc) {}

// SSDStore serves everything from an SSD behind a Noop queue — the
// "SSD-only" configuration of the paper's Figure 10, where data lands at
// its file location on the SSD (so unlike iBridge's log, concurrent
// writes from many processes are scattered, paying the SSD's random-write
// penalty).
type SSDStore struct {
	queue *iosched.Queue
}

// NewSSDStore wraps a Noop queue over an SSD as a Store.
func NewSSDStore(q *iosched.Queue) *SSDStore { return &SSDStore{queue: q} }

// Queue exposes the underlying scheduler queue.
func (s *SSDStore) Queue() *iosched.Queue { return s.queue }

// Serve implements Store.
func (s *SSDStore) Serve(p *sim.Proc, r *IORequest) {
	s.queue.Submit(p, r.Request())
}

// Flush implements Store.
func (s *SSDStore) Flush(*sim.Proc) {}

// Ensure interface satisfaction.
var (
	_ Store          = (*DiskStore)(nil)
	_ Store          = (*SSDStore)(nil)
	_ iosched.Tracer = nilTracer{}
)

// nilTracer exists only for the compile-time check above.
type nilTracer struct{}

func (nilTracer) Dispatch(sim.Time, device.Request) {}
