package pfs

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
)

// Client issues file requests against a FileSystem. It performs the
// PVFS2-style client-side decomposition of a request into per-server
// sub-requests and, when a fragment threshold is configured (iBridge
// mode), flags fragments and attaches sibling-server lists.
//
// Clients are cheap handles: create one per simulated MPI rank or share
// one; they keep no per-request state.
type Client struct {
	fs *FileSystem
	// FragmentThreshold enables iBridge client-side flagging when > 0:
	// a sub-request of a multi-server parent smaller than this is
	// marked a fragment.
	FragmentThreshold int64
	// RandomThreshold marks whole requests smaller than this as
	// regular random requests (20 KB in the paper).
	RandomThreshold int64
	// Origin identifies the issuing process context; it propagates to
	// block-level requests so the server-side CFQ scheduler can group
	// them per process. Use WithOrigin to derive per-rank clients.
	Origin int32
}

// WithOrigin returns a copy of the client tagged with the given origin.
func (c *Client) WithOrigin(origin int32) *Client {
	cc := *c
	cc.Origin = origin
	return &cc
}

// NewClient returns a stock client (no iBridge flagging).
func NewClient(fs *FileSystem) *Client {
	return &Client{fs: fs}
}

// NewIBridgeClient returns a client with iBridge fragment flagging at the
// given thresholds.
func NewIBridgeClient(fs *FileSystem, fragmentThreshold, randomThreshold int64) *Client {
	return &Client{fs: fs, FragmentThreshold: fragmentThreshold, RandomThreshold: randomThreshold}
}

// Read issues a synchronous read of [off, off+length) and blocks p until
// every sub-request completes. It returns the request service time.
func (c *Client) Read(p *sim.Proc, f *File, off, length int64) sim.Duration {
	return c.request(p, f, device.Read, off, length)
}

// Write issues a synchronous write of [off, off+length) and blocks p
// until every sub-request completes. It returns the request service time.
func (c *Client) Write(p *sim.Proc, f *File, off, length int64) sim.Duration {
	return c.request(p, f, device.Write, off, length)
}

func (c *Client) request(p *sim.Proc, f *File, op device.Op, off, length int64) sim.Duration {
	if length <= 0 {
		return 0
	}
	if off < 0 || off+length > f.Size {
		panic(fmt.Sprintf("pfs: request [%d,%d) outside file %q of size %d", off, off+length, f.Name, f.Size))
	}
	start := p.Now()
	layout := c.fs.layout
	var subs = layout.Decompose(off, length)
	if c.FragmentThreshold > 0 {
		subs = layout.DecomposeFlagged(off, length, c.FragmentThreshold)
	}
	random := c.RandomThreshold > 0 && length < c.RandomThreshold

	var reqID int64
	if c.fs.tr != nil {
		c.fs.nextReq++
		reqID = c.fs.nextReq
	}

	done := sim.NewCounter(c.fs.e, len(subs))
	net := c.fs.net
	for i := range subs {
		sub := subs[i]
		req := &IORequest{
			Op:       op,
			FileID:   f.ID,
			ID:       reqID,
			Bytes:    sub.Length,
			Fragment: sub.Fragment,
			Siblings: sub.Siblings,
			Random:   random,
			Server:   sub.Server,
			Origin:   c.Origin,
		}
		// Translate the server-local byte extent to sectors on the
		// file's extent at that server.
		base := f.bases[sub.Server]
		startOff := sub.ServerOff
		req.LBN = base + startOff/device.SectorSize
		endOff := startOff + sub.Length
		req.Sectors = (endOff+device.SectorSize-1)/device.SectorSize - startOff/device.SectorSize

		// Request message: writes carry the data to the server.
		sendPayload := int64(64)
		if op == device.Write {
			sendPayload += sub.Length
		}
		srv := c.fs.servers[sub.Server]
		replyPayload := int64(64)
		if op == device.Read {
			replyPayload += sub.Length
		}
		c.fs.e.After(net.Delay(sendPayload), func() {
			srv.enqueue(req, func() {
				// Reply travels back to the client.
				c.fs.e.After(net.Delay(replyPayload), done.Done)
			})
		})
	}
	done.Wait(p)

	lat := p.Now().Sub(start)
	st := &c.fs.stats
	st.Requests++
	st.Bytes[op] += length
	st.Latency += lat
	st.SubCount += int64(len(subs))
	frags := int64(0)
	for _, s := range subs {
		if s.Fragment {
			frags++
		}
	}
	st.Fragments += frags
	if c.fs.m != nil {
		c.fs.m.Requests.Inc()
		c.fs.m.SubRequests.Add(int64(len(subs)))
		c.fs.m.Fragments.Add(frags)
		c.fs.m.Parent.ObserveDur(lat)
	}
	if c.fs.tr != nil {
		c.fs.tr.Span(start, lat, c.fs.run, "client", opName(op), reqID)
	}
	return lat
}

// opName returns a static label for op (no per-request formatting).
func opName(op device.Op) string {
	if op == device.Read {
		return "read"
	}
	return "write"
}
