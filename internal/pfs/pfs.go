// Package pfs implements a simulated striped parallel file system in the
// mould of PVFS2: a set of data servers each backed by a storage stack, a
// metadata service that places files, and a client that decomposes file
// requests into per-server sub-requests and issues them concurrently.
//
// The package defines the Store interface through which a data server
// serves block-level I/O; the stock system binds it to a disk behind a
// merging elevator (stores.go), and internal/core binds it to the iBridge
// hybrid disk+SSD stack. Requests flagged by the client as fragments carry
// their sibling-server list, exactly the information the paper's modified
// io_datafile_setup_msgpairs passes to pvfs2-server.
package pfs

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stripe"
)

// IORequest is one sub-request as seen by a data server's storage stack,
// already translated to the server's block address space.
type IORequest struct {
	Op     device.Op
	FileID int
	// ID identifies the parent file request this sub-request belongs
	// to, for request-flow tracing; all sub-requests of one parent
	// share it. Zero when tracing is off.
	ID      int64
	LBN     int64 // first sector on the server's disk
	Sectors int64
	Bytes   int64 // exact byte length before sector rounding
	// Fragment is the client-side iBridge flag: this sub-request is a
	// small piece of a parent that spans multiple servers.
	Fragment bool
	// Siblings are the other servers serving the same parent request
	// (set only when Fragment).
	Siblings []int
	// Random marks a regular random request in the paper's sense: the
	// whole parent request is smaller than the random threshold.
	Random bool
	// Server is the id of the data server this request was routed to.
	Server int
	// Origin is the issuing process context, for CFQ grouping.
	Origin int32
}

// Request returns the block-level request for the device layer.
func (r *IORequest) Request() device.Request {
	return device.Request{Op: r.Op, LBN: r.LBN, Sectors: r.Sectors, Origin: r.Origin}
}

func (r *IORequest) String() string {
	tag := ""
	if r.Fragment {
		tag = " frag"
	}
	if r.Random {
		tag += " rand"
	}
	return fmt.Sprintf("srv%d %s lbn=%d sectors=%d%s", r.Server, r.Op, r.LBN, r.Sectors, tag)
}

// Store is a data server's storage stack: it serves block-level requests,
// blocking the calling process in virtual time.
type Store interface {
	// Serve executes r to completion.
	Serve(p *sim.Proc, r *IORequest)
	// Flush writes out any buffered dirty state (iBridge's SSD cache);
	// the stock stores are write-through and Flush is a no-op. The
	// paper includes this flush in measured execution time "to make
	// our comparison fair and conservative".
	Flush(p *sim.Proc)
}

// NetModel is the interconnect model: per-message latency plus a byte
// cost. The evaluation platform's QDR InfiniBand is far from being the
// bottleneck, so a simple latency+bandwidth model suffices.
type NetModel struct {
	Latency     sim.Duration
	BytesPerSec float64
}

// DefaultNet models one rail of 4X QDR InfiniBand.
func DefaultNet() NetModel {
	return NetModel{Latency: 5 * sim.Microsecond, BytesPerSec: 3.2e9}
}

// Delay returns the one-way transfer time for a payload of n bytes.
func (m NetModel) Delay(n int64) sim.Duration {
	d := m.Latency
	if m.BytesPerSec > 0 {
		d += sim.Duration(float64(n) / m.BytesPerSec * float64(sim.Second))
	}
	return d
}

// File is an open striped file.
type File struct {
	ID   int
	Name string
	Size int64
	// bases[s] is the first LBN of this file's object on server s.
	bases []int64
}

// FileSystem is the simulated parallel file system: layout metadata plus
// the data servers. It plays the role of the PVFS2 metadata server for
// placement.
type FileSystem struct {
	e       *sim.Engine
	layout  stripe.Layout
	net     NetModel
	servers []*Server
	files   map[string]*File
	nextID  int
	stats   Stats

	// Observability (nil when off): request counters/latency histograms,
	// request-flow tracer, and the run id tagging trace events.
	m       *obs.PFSMetrics
	tr      *obs.Tracer
	run     int32
	nextReq int64 // parent request id source (only advanced when tracing)
}

// SetObs installs the observability sinks (any may be nil). Call before
// issuing requests; it propagates the tracer to the data servers.
func (fs *FileSystem) SetObs(m *obs.PFSMetrics, tr *obs.Tracer, run int32) {
	fs.m = m
	fs.tr = tr
	fs.run = run
	for _, srv := range fs.servers {
		srv.m = m
		srv.tr = tr
		srv.run = run
	}
}

// Stats aggregates client-observed request statistics.
type Stats struct {
	Requests  int64
	Bytes     [2]int64     // per device.Op
	Latency   sim.Duration // sum of request service times
	SubCount  int64
	Fragments int64
}

// AvgServiceTime returns the mean client-observed request service time
// (the Table III metric).
func (s *Stats) AvgServiceTime() sim.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.Latency / sim.Duration(s.Requests)
}

// TotalBytes returns bytes moved in both directions.
func (s *Stats) TotalBytes() int64 { return s.Bytes[device.Read] + s.Bytes[device.Write] }

// Config assembles a FileSystem.
type Config struct {
	Layout   stripe.Layout
	Net      NetModel
	Handlers int // concurrent I/O jobs per data server
}

// NewFileSystem builds the file system over the given per-server stores.
func NewFileSystem(e *sim.Engine, cfg Config, stores []Store) (*FileSystem, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if len(stores) != cfg.Layout.Servers {
		return nil, fmt.Errorf("pfs: %d stores for %d servers", len(stores), cfg.Layout.Servers)
	}
	if cfg.Handlers <= 0 {
		cfg.Handlers = 32
	}
	if cfg.Net.BytesPerSec == 0 && cfg.Net.Latency == 0 {
		cfg.Net = DefaultNet()
	}
	fs := &FileSystem{
		e:      e,
		layout: cfg.Layout,
		net:    cfg.Net,
		files:  make(map[string]*File),
	}
	fs.servers = make([]*Server, cfg.Layout.Servers)
	for i := range fs.servers {
		fs.servers[i] = newServer(e, i, stores[i], cfg.Handlers)
	}
	return fs, nil
}

// Layout returns the striping layout.
func (fs *FileSystem) Layout() stripe.Layout { return fs.layout }

// Net returns the interconnect model.
func (fs *FileSystem) Net() NetModel { return fs.net }

// Servers returns the data servers.
func (fs *FileSystem) Servers() []*Server { return fs.servers }

// Stats returns the aggregated client statistics.
func (fs *FileSystem) Stats() *Stats { return &fs.stats }

// Create allocates a file of the given size, placing one contiguous
// extent per data server (the Ext2-style extent allocation of the
// evaluation platform's server-local file systems).
func (fs *FileSystem) Create(name string, size int64) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("pfs: file %q exists", name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pfs: file size %d must be positive", size)
	}
	f := &File{ID: fs.nextID, Name: name, Size: size, bases: make([]int64, fs.layout.Servers)}
	fs.nextID++
	perServer := fs.layout.ServerBytes(size)
	for s, srv := range fs.servers {
		base, err := srv.allocate(perServer[s])
		if err != nil {
			return nil, fmt.Errorf("pfs: create %q: %w", name, err)
		}
		f.bases[s] = base
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file by name.
func (fs *FileSystem) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pfs: file %q not found", name)
	}
	return f, nil
}

// Flush flushes every server's store (dirty SSD cache data), blocking p
// until all servers complete.
func (fs *FileSystem) Flush(p *sim.Proc) {
	done := sim.NewCounter(fs.e, len(fs.servers))
	for _, srv := range fs.servers {
		srv := srv
		fs.e.Go(fmt.Sprintf("flush:srv%d", srv.id), func(fp *sim.Proc) {
			srv.store.Flush(fp)
			done.Done()
		})
	}
	done.Wait(p)
}
