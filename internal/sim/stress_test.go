package sim

import "testing"

// TestStressManyProcs runs thousands of interacting processes through
// shared primitives and checks global invariants plus determinism.
func TestStressManyProcs(t *testing.T) {
	run := func() (Time, int) {
		e := New()
		rng := NewRNG(2024)
		sem := NewSemaphore(e, 4)
		q := NewQueue[int](e)
		total := 0
		const producers = 50
		const perProducer = 20
		done := NewCounter(e, producers)
		for i := 0; i < producers; i++ {
			r := rng.Fork()
			e.Go("producer", func(p *Proc) {
				for k := 0; k < perProducer; k++ {
					p.Sleep(r.Duration(0, Millisecond))
					sem.Acquire(p)
					p.Sleep(r.Duration(0, 100*Microsecond))
					sem.Release()
					q.Push(1)
				}
				done.Done()
			})
		}
		for c := 0; c < 3; c++ {
			e.Go("consumer", func(p *Proc) {
				for {
					v, ok := q.Pop(p)
					if !ok {
						return
					}
					total += v
					p.Sleep(10 * Microsecond)
				}
			})
		}
		e.Go("closer", func(p *Proc) {
			done.Wait(p)
			q.Close()
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return e.Now(), total
	}
	t1, total1 := run()
	t2, total2 := run()
	if total1 != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", total1, producers*perProducer)
	}
	if t1 != t2 || total1 != total2 {
		t.Fatalf("stress run not deterministic: (%v,%d) vs (%v,%d)", t1, total1, t2, total2)
	}
}

const (
	producers   = 50
	perProducer = 20
)

// TestManyEngineInstancesNoLeak creates and destroys many engines with
// killed daemons; goroutine leaks would blow up memory/scheduling long
// before the test ends.
func TestManyEngineInstancesNoLeak(t *testing.T) {
	for i := 0; i < 200; i++ {
		e := New()
		for d := 0; d < 5; d++ {
			e.Go("daemon", func(p *Proc) {
				for {
					p.Sleep(Second)
				}
			})
		}
		e.Go("main", func(p *Proc) {
			p.Sleep(Millisecond)
			e.Halt()
		})
		if err := e.Run(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if e.Procs() != 0 {
			t.Fatalf("iteration %d leaked %d procs", i, e.Procs())
		}
	}
}

// TestChainedSpawns exercises deep spawn chains (each process spawns the
// next) to validate scheduling order under nesting.
func TestChainedSpawns(t *testing.T) {
	e := New()
	const depth = 500
	count := 0
	var spawn func(n int)
	spawn = func(n int) {
		e.Go("link", func(p *Proc) {
			p.Sleep(Microsecond)
			count++
			if n > 0 {
				spawn(n - 1)
			}
		})
	}
	spawn(depth)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != depth+1 {
		t.Fatalf("ran %d links, want %d", count, depth+1)
	}
	if e.Now() != Time(Duration(depth+1)*Microsecond) {
		t.Fatalf("clock %v, want %v", e.Now(), depth+1)
	}
}
