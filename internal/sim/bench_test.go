package sim

import "testing"

// The engine microbenchmarks measure raw event-loop cost in events per
// host second. They exist to quantify the hot-path overhaul (by-value
// 4-ary heap, same-instant fast path): run them before and after any
// engine change.

// BenchmarkEngineTimerWheel stresses the timer path: a single chain of
// After callbacks, each rescheduling itself at a later instant, plus a
// background population of pending timers so the heap has depth.
func BenchmarkEngineTimerWheel(b *testing.B) {
	const pending = 1024
	e := New()
	// Background timers far in the future give the heap realistic depth.
	for i := 0; i < pending; i++ {
		e.After(Duration(1+i)*3600*Second, func() {})
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Microsecond, tick)
		} else {
			e.Halt()
		}
	}
	b.ResetTimer()
	e.After(Microsecond, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineProcPingPong measures the process-resume handoff: two
// processes alternately waking each other at the current instant, the
// pattern underlying every queue push/pop pair in the cluster.
func BenchmarkEngineProcPingPong(b *testing.B) {
	e := New()
	var ping, pong *Proc
	rounds := 0
	// pong is spawned first so it has registered itself and parked before
	// ping's first Wake.
	e.Go("pong", func(p *Proc) {
		pong = p
		for {
			p.Block()
			e.Wake(ping)
		}
	})
	e.Go("ping", func(p *Proc) {
		ping = p
		for rounds < b.N {
			rounds++
			e.Wake(pong)
			p.Block()
		}
		e.Halt()
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	// Each round is two wakes and two resumes: four events.
	b.ReportMetric(float64(4*rounds)/b.Elapsed().Seconds(), "events/sec")
}

// TestEngineHotPathAllocFree is the alloc regression guard for the
// zero-cost-when-off observability contract: with no probe installed the
// event loop must not allocate per event. It runs the timer-wheel and
// many-procs benchmarks through testing.Benchmark and fails on any
// reported allocation.
func TestEngineHotPathAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"TimerWheel", BenchmarkEngineTimerWheel},
		{"ManyProcs", BenchmarkEngineManyProcs},
	} {
		res := testing.Benchmark(bm.fn)
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Errorf("%s: %d allocs/op, want 0 (engine hot path must stay allocation-free with observability off)",
				bm.name, allocs)
		}
	}
}

// BenchmarkEngineManyProcs measures heap-ordered resume with a realistic
// process population: 256 processes sleeping deterministic pseudo-random
// durations, as the cluster's rank/handler/daemon mix does.
func BenchmarkEngineManyProcs(b *testing.B) {
	const procs = 256
	e := New()
	rng := NewRNG(1)
	total := 0
	perProc := b.N/procs + 1
	for i := 0; i < procs; i++ {
		r := rng.Fork()
		e.Go("p", func(p *Proc) {
			for j := 0; j < perProc; j++ {
				p.Sleep(r.Duration(Microsecond, Millisecond))
				total++
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/sec")
}
