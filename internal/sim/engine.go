package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when the event queue drains while live
// processes remain blocked and the engine was not explicitly halted.
var ErrDeadlock = errors.New("sim: deadlock: no pending events but processes remain blocked")

// Engine is a deterministic discrete-event simulation engine. It owns the
// virtual clock and orchestrates the simulated processes so that exactly
// one runs at a time. An Engine must be created with New and is not safe
// for use by multiple host goroutines; all access happens either from the
// goroutine calling Run or from the single simulated process the engine is
// currently running.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	ctl     chan parkKind
	procs   map[int]*Proc
	nextID  int
	running *Proc
	halted  bool
	started bool
}

type parkKind int

const (
	parkBlocked parkKind = iota
	parkExited
)

type resumeMsg struct {
	kill bool
}

type event struct {
	at  Time
	seq uint64
	p   *Proc  // process to resume, or
	fn  func() // callback to run inline (must not block)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Proc is a simulated process. Each Proc is backed by a goroutine that the
// engine resumes one at a time; while a Proc is running it may freely read
// and mutate engine-owned state (devices, queues, ...) without locking.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan resumeMsg
	dead   bool
}

// killed is the panic sentinel used to unwind a process goroutine when the
// engine shuts down with processes still blocked.
type killed struct{}

// New returns a fresh Engine with the clock at zero.
func New() *Engine {
	return &Engine{
		ctl:   make(chan parkKind),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Halt requests that Run return after the current event completes.
// Typically called by a workload-completion process; any remaining daemon
// processes are then terminated by Run.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Procs returns the number of live simulated processes.
func (e *Engine) Procs() int { return len(e.procs) }

// Go creates a new simulated process named name and schedules it to start
// at the current virtual time. It may be called before Run or from within
// a running process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		id:     e.nextID,
		name:   name,
		resume: make(chan resumeMsg, 1),
	}
	e.nextID++
	e.procs[p.id] = p
	go p.main(fn)
	e.schedule(e.now, p, nil)
	return p
}

func (p *Proc) main(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				// Engine-initiated shutdown: report exit and stop quietly.
				p.dead = true
				delete(p.e.procs, p.id)
				p.e.ctl <- parkExited
				return
			}
			panic(r)
		}
	}()
	msg := <-p.resume
	if msg.kill {
		panic(killed{})
	}
	fn(p)
	p.dead = true
	delete(p.e.procs, p.id)
	p.e.ctl <- parkExited
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns p.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// schedule enqueues an event. Exactly one of p and fn must be non-nil.
func (e *Engine) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, p: p, fn: fn})
}

// After runs fn at the current time plus d. fn runs inline in the engine
// loop and must not block in virtual time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now.Add(d), nil, fn)
}

// park hands control back to the engine and blocks until resumed.
func (p *Proc) park() {
	p.e.ctl <- parkBlocked
	msg := <-p.resume
	if msg.kill {
		panic(killed{})
	}
}

// Sleep suspends the process for duration d of virtual time. Negative
// durations sleep zero time (yield).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now.Add(d), p, nil)
	p.park()
}

// Yield gives other processes scheduled at the current instant a chance to
// run before p continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Block parks the process with no scheduled wake-up. Another process (or
// an engine callback) must call Engine.Wake to resume it. Block is the
// foundation for the synchronization primitives in this package.
func (p *Proc) Block() { p.park() }

// Wake schedules proc to resume at the current virtual time. Waking a
// process that is not blocked via Block results in undefined behaviour;
// the primitives in this package guarantee one wake per block.
func (e *Engine) Wake(p *Proc) {
	if p.dead {
		return
	}
	e.schedule(e.now, p, nil)
}

// WakeAt schedules proc to resume at the given absolute time.
func (e *Engine) WakeAt(at Time, p *Proc) {
	if p.dead {
		return
	}
	e.schedule(at, p, nil)
}

// Run processes events until the engine is halted or the event queue
// drains. On return all remaining live processes have been terminated.
// It returns ErrDeadlock if the queue drained with processes still blocked
// and no explicit Halt, and nil otherwise.
func (e *Engine) Run() error {
	if e.started {
		panic("sim: Engine.Run called twice")
	}
	e.started = true
	for !e.halted && len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.p.dead {
			continue
		}
		e.running = ev.p
		ev.p.resume <- resumeMsg{}
		<-e.ctl
		e.running = nil
	}
	deadlocked := !e.halted && len(e.procs) > 0
	e.killAll()
	if deadlocked {
		return ErrDeadlock
	}
	return nil
}

// killAll terminates every remaining live process by unwinding its
// goroutine, so that repeated simulations do not leak goroutines.
func (e *Engine) killAll() {
	for len(e.procs) > 0 {
		var victim *Proc
		for _, p := range e.procs {
			victim = p
			break
		}
		victim.resume <- resumeMsg{kill: true}
		<-e.ctl
	}
}
