package sim

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDeadlock is returned by Run when the event queue drains while live
// processes remain blocked and the engine was not explicitly halted.
var ErrDeadlock = errors.New("sim: deadlock: no pending events but processes remain blocked")

// Engine is a deterministic discrete-event simulation engine. It owns the
// virtual clock and orchestrates the simulated processes so that exactly
// one runs at a time. An Engine must be created with New and is not safe
// for use by multiple host goroutines; all access happens either from the
// goroutine calling Run or from the single simulated process the engine is
// currently running. Distinct Engines share nothing, so independent
// simulations may run concurrently on separate host goroutines (the basis
// of internal/runner's parallel experiment harness).
type Engine struct {
	now    Time
	events eventHeap
	// nowq is the same-instant fast path: events scheduled at exactly the
	// current virtual time. Because seq grows monotonically, every entry
	// in nowq was scheduled after every heap entry with the same
	// timestamp, so draining the heap's now-events first and then nowq in
	// FIFO order preserves the global (at, seq) order without paying a
	// heap sift for the common Wake/Yield/After(0) case. The ring's
	// backing array is reused across drains — the event freelist.
	nowq    eventRing
	seq     uint64
	ctl     chan parkKind
	procs   map[int]*Proc
	nextID  int
	running *Proc
	halted  bool
	started bool
	// probe, when non-nil, observes each event (see Probe). The nil
	// check is the entire disabled-path cost.
	probe Probe
}

type parkKind int

const (
	parkBlocked parkKind = iota
	parkExited
)

type resumeMsg struct {
	kill bool
}

// event is stored by value in the heap and ring; scheduling an event
// performs no per-event allocation.
type event struct {
	at  Time
	seq uint64
	p   *Proc  // process to resume, or
	fn  func() // callback to run inline (must not block)
}

// eventHeap is a 4-ary min-heap of events ordered by (at, seq), stored by
// value: no interface boxing, no per-event heap allocation, and a 4-ary
// layout that halves the sift-down depth versus a binary heap for the
// deep timer populations the cluster builds (one pending timer per
// device/daemon).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The caller must ensure the
// heap is non-empty.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the fn/p references
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		min := i
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if s.less(c, min) {
				min = c
			}
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// eventRing is a FIFO of same-instant events backed by a reusable slice:
// head/tail indices walk the array and reset to zero whenever the ring
// drains, so steady-state operation performs no allocation at all.
type eventRing struct {
	buf  []event
	head int
}

func (r *eventRing) push(ev event) { r.buf = append(r.buf, ev) }

func (r *eventRing) len() int { return len(r.buf) - r.head }

func (r *eventRing) pop() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{} // release references
	r.head++
	if r.head == len(r.buf) {
		// Drained: rewind onto the same backing array.
		r.buf = r.buf[:0]
		r.head = 0
	}
	return ev
}

// Proc is a simulated process. Each Proc is backed by a goroutine that the
// engine resumes one at a time; while a Proc is running it may freely read
// and mutate engine-owned state (devices, queues, ...) without locking.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan resumeMsg
	dead   bool
}

// killed is the panic sentinel used to unwind a process goroutine when the
// engine shuts down with processes still blocked.
type killed struct{}

// New returns a fresh Engine with the clock at zero.
func New() *Engine {
	return &Engine{
		ctl:   make(chan parkKind),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Halt requests that Run return after the current event completes.
// Typically called by a workload-completion process; any remaining daemon
// processes are then terminated by Run.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Procs returns the number of live simulated processes.
func (e *Engine) Procs() int { return len(e.procs) }

// pending returns the number of schedulable events.
func (e *Engine) pending() int { return len(e.events) + e.nowq.len() }

// Go creates a new simulated process named name and schedules it to start
// at the current virtual time. It may be called before Run or from within
// a running process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		id:     e.nextID,
		name:   name,
		resume: make(chan resumeMsg, 1),
	}
	e.nextID++
	e.procs[p.id] = p
	go p.main(fn)
	e.schedule(e.now, p, nil)
	return p
}

func (p *Proc) main(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				// Engine-initiated shutdown: report exit and stop quietly.
				p.dead = true
				delete(p.e.procs, p.id)
				p.e.ctl <- parkExited
				return
			}
			panic(r)
		}
	}()
	msg := <-p.resume
	if msg.kill {
		panic(killed{})
	}
	fn(p)
	p.dead = true
	delete(p.e.procs, p.id)
	p.e.ctl <- parkExited
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns p.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// schedule enqueues an event. Exactly one of p and fn must be non-nil.
// Same-instant events take the ring fast path; future events go through
// the heap.
func (e *Engine) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", at, e.now))
	}
	e.seq++
	ev := event{at: at, seq: e.seq, p: p, fn: fn}
	if at == e.now {
		e.nowq.push(ev)
		return
	}
	e.events.push(ev)
}

// After runs fn at the current time plus d. fn runs inline in the engine
// loop and must not block in virtual time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now.Add(d), nil, fn)
}

// park hands control back to the engine and blocks until resumed.
func (p *Proc) park() {
	p.e.ctl <- parkBlocked
	msg := <-p.resume
	if msg.kill {
		panic(killed{})
	}
}

// Sleep suspends the process for duration d of virtual time. Negative
// durations sleep zero time (yield).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now.Add(d), p, nil)
	p.park()
}

// Yield gives other processes scheduled at the current instant a chance to
// run before p continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Block parks the process with no scheduled wake-up. Another process (or
// an engine callback) must call Engine.Wake to resume it. Block is the
// foundation for the synchronization primitives in this package.
func (p *Proc) Block() { p.park() }

// Wake schedules proc to resume at the current virtual time. Waking a
// process that is not blocked via Block results in undefined behaviour;
// the primitives in this package guarantee one wake per block.
func (e *Engine) Wake(p *Proc) {
	if p.dead {
		return
	}
	e.schedule(e.now, p, nil)
}

// WakeAt schedules proc to resume at the given absolute time.
func (e *Engine) WakeAt(at Time, p *Proc) {
	if p.dead {
		return
	}
	e.schedule(at, p, nil)
}

// next removes and returns the globally next event in (at, seq) order.
// Heap events at the current instant always precede ring events (they
// were scheduled before the clock reached now, hence carry smaller seqs);
// ring events precede any strictly later heap event.
func (e *Engine) next() event {
	if len(e.events) > 0 && (e.nowq.len() == 0 || e.events[0].at == e.now) {
		return e.events.pop()
	}
	return e.nowq.pop()
}

// Run processes events until the engine is halted or the event queue
// drains. On return all remaining live processes have been terminated.
// It returns ErrDeadlock if the queue drained with processes still blocked
// and no explicit Halt, and nil otherwise.
func (e *Engine) Run() error {
	if e.started {
		panic("sim: Engine.Run called twice")
	}
	e.started = true
	for !e.halted && e.pending() > 0 {
		ev := e.next()
		e.now = ev.at
		if e.probe != nil {
			e.probe.OnEvent(e.now, e.pending())
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.p.dead {
			continue
		}
		e.running = ev.p
		ev.p.resume <- resumeMsg{}
		<-e.ctl
		e.running = nil
	}
	deadlocked := !e.halted && len(e.procs) > 0
	e.killAll()
	if deadlocked {
		return ErrDeadlock
	}
	return nil
}

// killAll terminates every remaining live process by unwinding its
// goroutine, so that repeated simulations do not leak goroutines.
// Processes are killed in ascending id (creation) order so that any
// shutdown-order-sensitive accounting — post-halt device stats, unwind
// side effects — is reproducible run to run.
func (e *Engine) killAll() {
	for len(e.procs) > 0 {
		ids := make([]int, 0, len(e.procs))
		for id := range e.procs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			victim, ok := e.procs[id]
			if !ok {
				// Already unwound by a side effect of a prior kill.
				continue
			}
			victim.resume <- resumeMsg{kill: true}
			<-e.ctl
		}
	}
}
