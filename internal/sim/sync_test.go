package sim

import "testing"

func TestSemaphoreMutex(t *testing.T) {
	e := New()
	mu := NewSemaphore(e, 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		e.Go("worker", func(p *Proc) {
			mu.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Millisecond)
			inside--
			mu.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d inside", maxInside)
	}
	if e.Now() != Time(8*Millisecond) {
		t.Fatalf("serialized section took %v, want 8ms", e.Now())
	}
}

func TestSemaphoreCapacity(t *testing.T) {
	e := New()
	sem := NewSemaphore(e, 3)
	maxInside, inside := 0, 0
	for i := 0; i < 9; i++ {
		e.Go("w", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Millisecond)
			inside--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 3 {
		t.Fatalf("max concurrency %d, want 3", maxInside)
	}
	if e.Now() != Time(3*Millisecond) {
		t.Fatalf("took %v, want 3ms", e.Now())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := New()
	sem := NewSemaphore(e, 1)
	var order []int
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Sleep(10 * Millisecond)
		sem.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Duration(i+1) * Millisecond) // arrive in index order
			sem.Acquire(p)
			order = append(order, i)
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order %v", order)
		}
	}
}

func TestTryAcquireNoBarging(t *testing.T) {
	e := New()
	sem := NewSemaphore(e, 1)
	var got bool
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Sleep(5 * Millisecond)
		sem.Release()
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(Millisecond)
		sem.Acquire(p)
		p.Sleep(5 * Millisecond)
		sem.Release()
	})
	e.Go("trier", func(p *Proc) {
		p.Sleep(6 * Millisecond) // holder released, waiter owns it now
		got = sem.TryAcquire()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got {
		t.Fatal("TryAcquire barged past a queued waiter")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Millisecond)
			q.Push(i)
		}
		q.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	count := 0
	for i := 0; i < 4; i++ {
		e.Go("consumer", func(p *Proc) {
			for {
				_, ok := q.Pop(p)
				if !ok {
					return
				}
				count++
				p.Sleep(Millisecond)
			}
		})
	}
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			q.Push(i)
			p.Sleep(100 * Microsecond)
		}
		q.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 20 {
		t.Fatalf("consumed %d, want 20", count)
	}
}

func TestQueuePushFront(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	q.Push(2)
	q.PushFront(1)
	var got []int
	e.Go("c", func(p *Proc) {
		for q.Len() > 0 {
			v, _ := q.Pop(p)
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := New()
	const n = 6
	b := NewBarrier(e, n)
	var releaseTimes []Time
	for i := 0; i < n; i++ {
		i := i
		e.Go("rank", func(p *Proc) {
			p.Sleep(Duration(i) * Millisecond)
			b.Wait(p)
			releaseTimes = append(releaseTimes, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(releaseTimes) != n {
		t.Fatalf("%d ranks released, want %d", len(releaseTimes), n)
	}
	for _, rt := range releaseTimes {
		if rt != Time((n-1)*int(Millisecond)) {
			t.Fatalf("release at %v, want %v", rt, Time((n-1)*int(Millisecond)))
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	const n = 3
	b := NewBarrier(e, n)
	rounds := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e.Go("rank", func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(Duration(i+1) * Millisecond)
				b.Wait(p)
				rounds[i]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range rounds {
		if r != 5 {
			t.Fatalf("rank %d completed %d rounds, want 5", i, r)
		}
	}
}

func TestCounter(t *testing.T) {
	e := New()
	c := NewCounter(e, 3)
	var doneAt Time = -1
	e.Go("waiter", func(p *Proc) {
		c.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Duration(i) * Millisecond)
			c.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if doneAt != Time(3*Millisecond) {
		t.Fatalf("counter released at %v, want 3ms", doneAt)
	}
}

func TestCounterWaitZero(t *testing.T) {
	e := New()
	c := NewCounter(e, 0)
	ran := false
	e.Go("w", func(p *Proc) {
		c.Wait(p) // must not block
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestEventBroadcast(t *testing.T) {
	e := New()
	ev := NewEvent(e)
	released := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			ev.Wait(p)
			released++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(Millisecond)
		ev.Fire()
	})
	e.Go("late", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		ev.Wait(p) // already fired: returns immediately
		released++
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if released != 6 {
		t.Fatalf("released %d, want 6", released)
	}
}
