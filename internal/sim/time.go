// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine used to model the iBridge storage cluster in virtual
// time.
//
// Simulated processes are ordinary goroutines that run one at a time under
// control of an Engine: a process runs until it blocks (Sleep, semaphore,
// queue, barrier, ...), at which point control returns to the engine, which
// advances the virtual clock to the next scheduled event. Runs are fully
// deterministic: events with equal timestamps fire in scheduling order.
package sim

import "fmt"

// Time is an absolute point in virtual time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring package time but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns the time as a floating-point number of seconds since the
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// DurationOf converts a floating-point number of seconds to a Duration.
func DurationOf(seconds float64) Duration { return Duration(seconds * float64(Second)) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }
