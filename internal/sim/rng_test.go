package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestInt63nBounds(t *testing.T) {
	r := NewRNG(99)
	if err := quick.Check(func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	for n := 1; n <= 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Range(100, 200)
		if v < 100 || v >= 200 {
			t.Fatalf("Range(100,200) = %d", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Fork()
	// Child draws must not disturb the parent's sequence relative to a
	// reference generator that forked at the same point.
	ref := NewRNG(21)
	refChild := ref.Fork()
	_ = refChild
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestDurationBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		d := r.Duration(Millisecond, 2*Millisecond)
		if d < Millisecond || d >= 2*Millisecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if d := r.Duration(Second, Second); d != Second {
		t.Fatalf("degenerate range returned %v", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.0000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}
