package sim

import "testing"

func TestClockAdvances(t *testing.T) {
	e := New()
	var at Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestFIFOOrderAtSameInstant(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (order %v)", i, v, i, order)
		}
	}
}

func TestSleepOrdering(t *testing.T) {
	e := New()
	var order []string
	e.Go("late", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		order = append(order, "late")
	})
	e.Go("early", func(p *Proc) {
		p.Sleep(1 * Millisecond)
		order = append(order, "early")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order = %v", order)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := New()
	var childRan bool
	e.Go("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		e.Go("child", func(c *Proc) {
			c.Sleep(Millisecond)
			childRan = true
		})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
	if e.Now() != Time(2*Millisecond) {
		t.Fatalf("clock at %v, want 2ms", e.Now())
	}
}

func TestAfterCallback(t *testing.T) {
	e := New()
	var fired Time = -1
	e.After(3*Millisecond, func() { fired = e.Now() })
	// Keep a process alive so Run has something to do besides the callback.
	e.Go("idle", func(p *Proc) { p.Sleep(5 * Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != Time(3*Millisecond) {
		t.Fatalf("callback fired at %v, want 3ms", fired)
	}
}

func TestHaltKillsDaemons(t *testing.T) {
	e := New()
	ticks := 0
	e.Go("daemon", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	e.Go("main", func(p *Proc) {
		p.Sleep(3*Second + Millisecond)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ticks != 3 {
		t.Fatalf("daemon ticked %d times, want 3", ticks)
	}
	if e.Procs() != 0 {
		t.Fatalf("%d processes leaked", e.Procs())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	e.Go("stuck", func(p *Proc) {
		p.Block() // nobody will ever wake us
	})
	if err := e.Run(); err != ErrDeadlock {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if e.Procs() != 0 {
		t.Fatalf("%d processes leaked after deadlock", e.Procs())
	}
}

func TestWakeBlockedProc(t *testing.T) {
	e := New()
	var blocked *Proc
	var woke Time = -1
	e.Go("waiter", func(p *Proc) {
		blocked = p
		p.Block()
		woke = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(7 * Millisecond)
		e.Wake(blocked)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != Time(7*Millisecond) {
		t.Fatalf("woke at %v, want 7ms", woke)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := New()
		rng := NewRNG(42)
		var times []Time
		for i := 0; i < 20; i++ {
			e.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(rng.Duration(0, Millisecond))
				}
				times = append(times, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	e := New()
	done := false
	e.Go("p", func(p *Proc) {
		p.Sleep(-5)
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done || e.Now() != 0 {
		t.Fatalf("done=%v now=%v", done, e.Now())
	}
}
