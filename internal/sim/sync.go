package sim

// This file provides the synchronization primitives used by simulated
// processes. Because the engine runs exactly one process at a time, the
// primitives need no host-level locking; they only park and wake simulated
// processes deterministically (FIFO order).

// Semaphore is a counting semaphore for simulated processes. Waiters are
// served in FIFO order. A Semaphore with capacity 1 is a mutex.
type Semaphore struct {
	e       *Engine
	cap     int
	held    int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given capacity.
func NewSemaphore(e *Engine, capacity int) *Semaphore {
	if capacity <= 0 {
		panic("sim: semaphore capacity must be positive")
	}
	return &Semaphore{e: e, cap: capacity}
}

// Acquire blocks p until a unit of the semaphore is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.held < s.cap && len(s.waiters) == 0 {
		s.held++
		return
	}
	s.waiters = append(s.waiters, p)
	p.Block()
	// Ownership was transferred by Release; held already accounts for us.
}

// TryAcquire acquires a unit without blocking and reports whether it
// succeeded.
func (s *Semaphore) TryAcquire() bool {
	if s.held < s.cap && len(s.waiters) == 0 {
		s.held++
		return true
	}
	return false
}

// Release returns one unit to the semaphore, waking the oldest waiter if
// any. Ownership transfers directly to the woken waiter so no other
// process can barge in between.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.e.Wake(w)
		return
	}
	if s.held == 0 {
		panic("sim: semaphore released more times than acquired")
	}
	s.held--
}

// Held returns the number of units currently held.
func (s *Semaphore) Held() int { return s.held }

// Waiting returns the number of processes blocked in Acquire.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// Queue is an unbounded FIFO channel between simulated processes.
type Queue[T any] struct {
	e       *Engine
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{e: e}
}

// Push appends v and wakes one waiting consumer, if any.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sim: push on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// PushFront prepends v (used for re-queueing) and wakes one waiter.
func (q *Queue[T]) PushFront(v T) {
	if q.closed {
		panic("sim: push on closed queue")
	}
	q.items = append([]T{v}, q.items...)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.e.Wake(w)
	}
}

// Pop removes and returns the oldest item, blocking p while the queue is
// empty. The second result is false if the queue was closed and drained.
func (q *Queue[T]) Pop(p *Proc) (T, bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.Block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Close marks the queue closed and wakes all waiting consumers, whose Pop
// calls will return ok=false once the queue drains.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		q.e.Wake(w)
	}
	q.waiters = nil
}

// Barrier synchronizes a fixed group of n processes, as the MPI_Barrier of
// the simulated MPI ranks. It is reusable across generations.
type Barrier struct {
	e       *Engine
	n       int
	arrived int
	waiters []*Proc
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(e *Engine, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{e: e, n: n}
}

// Wait blocks p until n processes have called Wait, then releases all of
// them and resets for the next generation.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for _, w := range b.waiters {
			b.e.Wake(w)
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p)
	p.Block()
}

// Counter is a completion counter analogous to sync.WaitGroup for
// simulated processes.
type Counter struct {
	e       *Engine
	n       int
	waiters []*Proc
}

// NewCounter returns a counter with initial count n.
func NewCounter(e *Engine, n int) *Counter {
	return &Counter{e: e, n: n}
}

// Add increments the count by k (k may be negative).
func (c *Counter) Add(k int) {
	c.n += k
	if c.n < 0 {
		panic("sim: negative counter")
	}
	if c.n == 0 {
		c.release()
	}
}

// Done decrements the count by one.
func (c *Counter) Done() { c.Add(-1) }

// Count returns the current count.
func (c *Counter) Count() int { return c.n }

// Wait blocks p until the count reaches zero.
func (c *Counter) Wait(p *Proc) {
	if c.n == 0 {
		return
	}
	c.waiters = append(c.waiters, p)
	p.Block()
}

func (c *Counter) release() {
	for _, w := range c.waiters {
		c.e.Wake(w)
	}
	c.waiters = nil
}

// Event is a one-shot broadcast signal: processes wait until it fires.
type Event struct {
	e       *Engine
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event.
func NewEvent(e *Engine) *Event {
	return &Event{e: e}
}

// Fire releases all current and future waiters. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		ev.e.Wake(w)
	}
	ev.waiters = nil
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Wait blocks p until the event fires (returns immediately if already
// fired).
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.Block()
}
