package sim

// Probe observes the engine's event loop. It exists for the
// observability layer (internal/obs): the engine itself defines only
// this narrow interface so that instrumentation adds exactly one
// nil-pointer branch per event to the hot loop and nothing else — the
// disabled path stays at 0 allocs/op (asserted by this package's
// benchmark regression tests).
//
// Implementations run inline in the engine loop: they must not block,
// must not schedule events, and must not mutate engine state, so that
// an observed run is indistinguishable from an unobserved one.
type Probe interface {
	// OnEvent fires after the clock advances to an event's timestamp,
	// with the number of events still pending.
	OnEvent(now Time, pending int)
}

// SetProbe installs p (nil removes it). Call before Run.
func (e *Engine) SetProbe(p Probe) { e.probe = p }
