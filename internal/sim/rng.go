package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64). Every stochastic element of the simulation draws from an
// explicitly seeded RNG so that runs are reproducible across Go versions,
// unlike math/rand whose default generator may change.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child generator; useful for giving each
// simulated process its own stream without cross-coupling draw order.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64()}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int63n returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Range returns a pseudo-random int64 in [lo, hi). It panics if hi <= lo.
func (r *RNG) Range(lo, hi int64) int64 {
	return lo + r.Int63n(hi-lo)
}

// Duration returns a pseudo-random duration in [lo, hi).
func (r *RNG) Duration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)))
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
