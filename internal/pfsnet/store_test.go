package pfsnet

import (
	"bytes"
	"testing"
)

func TestMemStoreSparseSemantics(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.WriteAt(1, 100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if err := s.ReadAt(1, 98, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 'h', 'e', 'l', 'l', 'o', 0, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	if n, _ := s.Size(1); n != 105 {
		t.Fatalf("size = %d", n)
	}
	if n, _ := s.Size(2); n != 0 {
		t.Fatalf("missing object size = %d", n)
	}
	if err := s.WriteAt(1, -1, []byte("x")); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestFileStorePersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(7, 4096, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if err := s.ReadAt(7, 4096, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted" {
		t.Fatalf("got %q", got)
	}
	// Reads past EOF are zeros.
	tail := make([]byte, 8)
	if err := s.ReadAt(7, 1<<20, tail); err != nil {
		t.Fatal(err)
	}
	for _, b := range tail {
		if b != 0 {
			t.Fatal("EOF read not zero-filled")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the data survives.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got2 := make([]byte, 9)
	if err := s2.ReadAt(7, 4096, got2); err != nil {
		t.Fatal(err)
	}
	if string(got2) != "persisted" {
		t.Fatalf("after reopen got %q", got2)
	}
}

func TestDataServerWithFileStore(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataServerWithStore("127.0.0.1:0", true, fs)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, 4096)
	if err := c.WriteAt(f, 512, payload); err != nil { // random → log
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := c.ReadAt(f, 512, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file-store read mismatch")
	}
	c.Close()
	// Close flushes the log to the file store; reopening must find the
	// data in the object file.
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	onDisk := make([]byte, len(payload))
	if err := fs2.ReadAt(uint64(f.ID), 512, onDisk); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, payload) {
		t.Fatal("log flush did not persist the fragment to the object file")
	}
}

func TestClientFlushDrainsLog(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 2048)
	if err := c.WriteAt(f, 0, payload); err != nil {
		t.Fatal(err)
	}
	n, err := c.Flush(f)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("flushed %d bytes, want %d", n, len(payload))
	}
	st := ds.Stats()
	if st.FlushedBytes != int64(len(payload)) {
		t.Fatalf("server flushed = %d", st.FlushedBytes)
	}
	// Data still reads back after the mapping is gone.
	got := make([]byte, len(payload))
	if err := c.ReadAt(f, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost by flush")
	}
}
