package pfsnet

import (
	"bufio"
	"fmt"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stripe"
)

// MetaServer is the metadata service: it owns the namespace and the
// striping layout, and tells clients which data servers hold a file.
type MetaServer struct {
	ln        net.Listener
	unit      int64
	servers   []string // data server addresses, in stripe order
	ioTimeout time.Duration
	wm        *wireMetrics

	mu     sync.Mutex
	files  map[string]fileMeta
	nextID uint64
	// loadHints is the T_i broadcast vector (expected service time per
	// data server, milliseconds, stripe order). When set, Create/Open
	// replies carry it as trailing payload bytes old clients ignore;
	// hedging clients consume it for cold-start issue ordering.
	loadHints []float64

	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

type fileMeta struct {
	id   uint64
	size int64
}

// MetaConfig configures a metadata server beyond the common defaults.
type MetaConfig struct {
	// IOTimeout, when positive, bounds each frame read and reply write
	// so a stalled peer cannot pin a handler goroutine. 0 = off.
	IOTimeout time.Duration
	// FaultPlan, when set, wraps the listener with the plan's
	// connection faults; FaultScope names this server in the plan.
	FaultPlan  *faults.Plan
	FaultScope string
	// Obs, when set, receives wire-level metrics under "pfsnet.meta.*".
	Obs *obs.Registry
}

// NewMetaServer starts a metadata server on addr for a file system
// striped over the given data server addresses with the given unit.
func NewMetaServer(addr string, unit int64, dataServers []string) (*MetaServer, error) {
	return NewMetaServerConfig(addr, unit, dataServers, MetaConfig{})
}

// NewMetaServerConfig starts a metadata server with explicit
// configuration.
func NewMetaServerConfig(addr string, unit int64, dataServers []string, cfg MetaConfig) (*MetaServer, error) {
	if unit <= 0 {
		unit = stripe.DefaultUnit
	}
	if len(dataServers) == 0 {
		return nil, fmt.Errorf("pfsnet meta: no data servers")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MetaServer{
		ln:        cfg.FaultPlan.WrapListener(ln, cfg.FaultScope),
		unit:      unit,
		servers:   append([]string(nil), dataServers...),
		ioTimeout: cfg.IOTimeout,
		wm:        newWireMetrics(cfg.Obs, "pfsnet.meta."),
		files:     make(map[string]fileMeta),
		nextID:    1,
		quit:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the server's listen address.
func (s *MetaServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server, severing open client connections. It is
// idempotent, like DataServer.Close.
func (s *MetaServer) Close() error {
	var first bool
	s.closeOnce.Do(func() { close(s.quit); first = true })
	if !first {
		return nil
	}
	err := s.ln.Close()
	// Snapshot under the lock, sever outside it: Close on a TCP conn
	// can block, and handlers need connMu to unregister themselves.
	s.connMu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:allow detmaprange severing connections; close order is immaterial
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *MetaServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
				log.Printf("pfsnet meta: accept: %v", err)
				return
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *MetaServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	// Metadata traffic is a handful of round trips per file, so the
	// sequential loop serves both protocol versions; v2 peers still get
	// tagged replies (in order, which v2 permits).
	// The meta server never negotiates featTrace (features = 0): clients
	// therefore never flag metadata frames, and the sequential loop can
	// stay ignorant of trace contexts.
	ver, _, first, hasFirst, err := serverHandshake(br, bw, maxProtoVersion, 0)
	if err != nil {
		return
	}
	var firstp *frame
	if hasFirst {
		firstp = &first
	}
	serveFrames(conn, br, bw, ver, firstp, s.wm, s.ioTimeout, s.dispatch)
}

// dispatch executes one metadata request.
func (s *MetaServer) dispatch(op byte, payload []byte) (byte, []byte) {
	var reply []byte
	var err error
	switch op {
	case opCreate:
		reply, err = s.handleCreate(payload)
	case opOpen:
		reply, err = s.handleOpen(payload)
	default:
		err = fmt.Errorf("pfsnet meta: bad opcode %d", op)
	}
	if err != nil {
		putBuf(reply)
		return opError, errorPayload(err)
	}
	return opOK, reply
}

// SetLoadHints installs the T_i broadcast vector: one expected service
// time (milliseconds) per data server, in stripe order. A vector whose
// length does not match the server list is rejected; nil clears the
// broadcast. Subsequent Create/Open replies carry it to clients.
func (s *MetaServer) SetLoadHints(hints []float64) error {
	if hints != nil && len(hints) != len(s.servers) {
		return fmt.Errorf("pfsnet meta: %d load hints for %d servers", len(hints), len(s.servers))
	}
	cp := append([]float64(nil), hints...)
	s.mu.Lock()
	s.loadHints = cp
	s.mu.Unlock()
	return nil
}

// fileReplyLocked encodes id, size, unit, and the data server list,
// plus — when a T_i broadcast is installed — the trailing load-hint
// vector (count u32, float64 bits per server). Decoders ignore trailing
// payload bytes, so pre-hint clients parse the reply unchanged.
func (s *MetaServer) fileReplyLocked(m fileMeta) []byte {
	e := newEnc()
	e.u64(m.id)
	e.i64(m.size)
	e.i64(s.unit)
	e.u32(uint32(len(s.servers)))
	for _, srv := range s.servers {
		e.str(srv)
	}
	if len(s.loadHints) > 0 {
		e.u32(uint32(len(s.loadHints)))
		for _, h := range s.loadHints {
			e.u64(math.Float64bits(h))
		}
	}
	return e.b
}

// handleCreate payload: name str, size i64.
func (s *MetaServer) handleCreate(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	name := d.str()
	size := d.i64()
	if d.err != nil {
		return nil, d.err
	}
	if size <= 0 {
		return nil, fmt.Errorf("pfsnet meta: size %d must be positive", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("pfsnet meta: file %q exists", name)
	}
	m := fileMeta{id: s.nextID, size: size}
	s.nextID++
	s.files[name] = m
	return s.fileReplyLocked(m), nil
}

// handleOpen payload: name str.
func (s *MetaServer) handleOpen(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	name := d.str()
	if d.err != nil {
		return nil, d.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("pfsnet meta: file %q not found", name)
	}
	return s.fileReplyLocked(m), nil
}
