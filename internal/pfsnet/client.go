package pfsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stripe"
)

// Client accesses a pfsnet file system: it asks the metadata server for
// file placement, decomposes reads and writes into per-server
// sub-requests (flagging fragments when a threshold is configured), and
// issues the sub-requests concurrently over a small per-server
// connection pool.
//
// Against v2 peers every pooled connection is pipelined: a single writer
// goroutine drains a send queue through a corked bufio.Writer (many
// frames per syscall) and a single reader goroutine demuxes tagged
// replies to the waiting callers, so any number of sub-requests can be
// in flight per connection at once. Against v1 peers the client falls
// back to the legacy one-round-trip-per-connection discipline.
type Client struct {
	metaAddr string
	// FragmentThreshold enables iBridge client-side flagging when > 0.
	FragmentThreshold int64
	// RandomThreshold flags whole small requests as regular random.
	RandomThreshold int64
	// PoolSize is the number of connections kept per data server
	// (default 4). With v2 pipelining each connection multiplexes many
	// requests; a small pool still helps spread TCP windows and reader
	// wakeups.
	PoolSize int
	// MaxProto caps the wire protocol this client will negotiate
	// (0 means the latest; 1 forces the legacy protocol).
	MaxProto int
	// Obs, when set before the first request, receives wire-level
	// metrics under "pfsnet.client.*" (frames, bytes, in-flight depth,
	// send-queue wait) and the resilience metrics (retries,
	// deadline_exceeded, breaker state).
	Obs *obs.Registry

	// DialTimeout bounds connection establishment, including protocol
	// negotiation (0 = no timeout).
	DialTimeout time.Duration
	// IOTimeout bounds each frame exchange on a connection: a full v1
	// round trip, or — on pipelined v2 connections — how long a pending
	// reply may remain unanswered before the connection is declared
	// dead with ErrDeadline. 0 disables I/O deadlines.
	IOTimeout time.Duration
	// RequestTimeout bounds one data sub-request across all retry
	// attempts (0 = no bound beyond the per-attempt IOTimeout).
	RequestTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transport
	// failure of an idempotent data sub-request. NewClient defaults it
	// to 2; set -1 to disable retries.
	MaxRetries int
	// RetryBackoff is the base pause before the first retry; each
	// further attempt doubles it up to RetryBackoffMax, plus
	// deterministic jitter drawn from Seed. NewClient defaults these to
	// 2ms and 100ms.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// BreakerThreshold is the run of consecutive transport failures
	// after which a data server is marked degraded: further requests
	// fail fast with ErrServerDown while a single probe per window
	// checks for recovery. NewClient defaults it to 4; set -1 to
	// disable the breaker.
	BreakerThreshold int
	// Seed feeds the deterministic retry jitter (and is the knob that
	// makes two chaos runs sleep identically).
	Seed uint64
	// FaultPlan, when set before the first request, injects the plan's
	// connection faults into every connection this client dials;
	// FaultScope labels them (default "client").
	FaultPlan  *faults.Plan
	FaultScope string

	attempts  atomic.Uint64 // retry-jitter sequence
	openCount atomic.Int64  // breakers currently open, for the gauge

	mu       sync.Mutex
	wm       *wireMetrics
	rm       *resilienceMetrics
	meta     *conn
	data     map[string][]*conn
	next     map[string]int
	breakers map[string]*breaker
}

// Resilience defaults applied by NewClient. Overridable per client; -1
// disables the corresponding mechanism.
const (
	defaultMaxRetries       = 2
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultRetryBackoffMax  = 100 * time.Millisecond
	defaultBreakerThreshold = 4
)

var errConnClosed = errors.New("pfsnet: connection closed")

// conn is one pooled connection. After version negotiation a v2 conn
// runs a writer and a reader goroutine and multiplexes tagged calls; a
// v1 conn serializes one round trip at a time under mu.
type conn struct {
	nc        net.Conn
	ver       int
	wm        *wireMetrics
	br        *bufio.Reader
	bw        *bufio.Writer
	ioTimeout time.Duration

	// v1 state: mu is held across a full write+read round trip.
	mu sync.Mutex

	// v2 state.
	sendq   chan *wireCall
	dead    chan struct{}
	pendMu  sync.Mutex
	pending map[uint64]*wireCall
	nextTag uint64
	failed  error // set once, under pendMu, when the conn dies
}

// wireCall is one in-flight tagged request.
type wireCall struct {
	tag     uint64
	op      byte
	payload []byte // pooled copy owned by the conn's writer side
	enq     time.Time // for the queue-wait metric; zero when obs is off
	done    chan struct{}
	replyOp byte
	reply   []byte // pooled; the waiter releases it
	err     error
}

const connBufSize = 64 << 10

// dialOpts carries the per-client connection settings into dialConn.
type dialOpts struct {
	maxProto    int
	wm          *wireMetrics
	dialTimeout time.Duration
	ioTimeout   time.Duration
	plan        *faults.Plan
	scope       string
}

// dialOpts snapshots the client's connection settings (set before the
// first request, per the field contracts, so reading them unlocked is
// race-free).
func (c *Client) dialOpts(wm *wireMetrics) dialOpts {
	scope := c.FaultScope
	if scope == "" {
		scope = "client"
	}
	return dialOpts{
		maxProto:    c.MaxProto,
		wm:          wm,
		dialTimeout: c.DialTimeout,
		ioTimeout:   c.IOTimeout,
		plan:        c.FaultPlan,
		scope:       scope,
	}
}

// dialConn connects to addr and negotiates the protocol version. The
// dial is bounded by o.dialTimeout and the negotiation round trip by
// o.ioTimeout; a fault plan, when armed, injects its dial refusals and
// wraps the new connection.
func dialConn(addr string, o dialOpts) (*conn, error) {
	nc, err := o.plan.Dial(o.scope, "tcp", addr, o.dialTimeout)
	if err != nil {
		return nil, wrapTimeout(err)
	}
	c := &conn{
		nc:        nc,
		ver:       ProtoV1,
		wm:        o.wm,
		br:        bufio.NewReaderSize(nc, connBufSize),
		bw:        bufio.NewWriterSize(nc, connBufSize),
		ioTimeout: o.ioTimeout,
	}
	maxProto := o.maxProto
	if maxProto <= 0 || maxProto > maxProtoVersion {
		maxProto = maxProtoVersion
	}
	if maxProto >= ProtoV2 {
		if c.ioTimeout > 0 {
			nc.SetDeadline(time.Now().Add(c.ioTimeout))
		}
		if err := c.negotiate(maxProto); err != nil {
			nc.Close()
			return nil, wrapTimeout(err)
		}
		if c.ioTimeout > 0 {
			nc.SetDeadline(time.Time{})
		}
	}
	return c, nil
}

// negotiate sends the opHello and interprets the peer's answer: opOK
// carries the agreed version, opError means a v1 peer that rejected the
// unknown opcode (fall back silently).
func (c *conn) negotiate(maxProto int) error {
	e := newEnc()
	e.u32(uint32(maxProto))
	err := writeFrame(c.bw, ProtoV1, 0, opHello, e.b)
	putBuf(e.b)
	if err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	fr, err := readFrame(c.br, ProtoV1)
	if err != nil {
		return err
	}
	defer fr.release()
	switch fr.op {
	case opOK:
		d := dec{b: fr.payload}
		v := int(d.u32())
		if d.err != nil {
			return d.err
		}
		if v >= ProtoV2 {
			c.ver = ProtoV2
			c.startPipeline()
		}
		return nil
	case opError:
		return nil // legacy peer: stay on v1
	default:
		return fmt.Errorf("pfsnet: unexpected hello reply opcode %d (%w)", fr.op, ErrCorruptFrame)
	}
}

// startPipeline launches the writer and reader goroutines of a v2 conn.
func (c *conn) startPipeline() {
	c.sendq = make(chan *wireCall, 128)
	c.dead = make(chan struct{})
	c.pending = make(map[uint64]*wireCall)
	go c.writeLoop()
	go c.readLoop()
}

// writeLoop drains the send queue through the corked bufio.Writer: it
// keeps writing frames while more calls are queued and flushes only when
// the queue runs dry, so bursts of sub-requests share syscalls. The loop
// owns each queued call's payload buffer (callPipelined copied it in)
// and returns it to the pool once written — or on exit, for calls still
// queued when the conn dies, so a killed conn cannot race a caller that
// has already been failed by kill and moved on.
func (c *conn) writeLoop() {
	defer func() {
		for {
			select {
			case w := <-c.sendq:
				putBuf(w.payload)
			default:
				return
			}
		}
	}()
	for {
		select {
		case <-c.dead:
			return
		case w := <-c.sendq:
			c.wm.observeQueueWait(w.enq)
			if c.ioTimeout > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(c.ioTimeout))
			}
			err := writeFrame(c.bw, c.ver, w.tag, w.op, w.payload)
			n := len(w.payload)
			putBuf(w.payload)
			if err != nil {
				c.kill(wrapTimeout(err))
				return
			}
			c.wm.onTx(n)
			if len(c.sendq) == 0 {
				if err := c.bw.Flush(); err != nil {
					c.kill(wrapTimeout(err))
					return
				}
			}
		}
	}
}

// pendingCount returns the number of registered in-flight calls.
func (c *conn) pendingCount() int {
	c.pendMu.Lock()
	n := len(c.pending)
	c.pendMu.Unlock()
	return n
}

// readLoop demuxes tagged replies to their waiting callers. With an I/O
// timeout configured it arms a read deadline whenever replies are
// outstanding: a deadline expiring with calls pending means the server
// has gone quiet mid-exchange, and the conn is killed with ErrDeadline
// so every waiter unblocks promptly instead of stalling forever.
func (c *conn) readLoop() {
	for {
		if c.ioTimeout > 0 {
			if c.pendingCount() > 0 {
				c.nc.SetReadDeadline(time.Now().Add(c.ioTimeout))
			} else {
				c.nc.SetReadDeadline(time.Time{})
			}
		}
		fr, err := readFrame(c.br, c.ver)
		if err != nil {
			if isTimeout(err) && c.pendingCount() == 0 {
				// The deadline outlived the exchange it guarded; the conn
				// is idle and at a frame boundary, so keep serving it.
				continue
			}
			c.kill(wrapTimeout(err))
			return
		}
		c.wm.onRx(len(fr.payload))
		c.pendMu.Lock()
		w := c.pending[fr.tag]
		delete(c.pending, fr.tag)
		n := len(c.pending)
		c.pendMu.Unlock()
		if w == nil {
			fr.release() // reply for an abandoned tag
			continue
		}
		c.wm.setInflight(n)
		w.replyOp = fr.op
		w.reply = fr.payload
		close(w.done)
	}
}

// kill marks the conn dead, closes the socket, and fails every pending
// call so no waiter ever hangs on a broken connection.
func (c *conn) kill(err error) {
	c.pendMu.Lock()
	if c.failed != nil {
		c.pendMu.Unlock()
		return
	}
	c.failed = err
	close(c.dead)
	waiters := make([]*wireCall, 0, len(c.pending))
	for tag, w := range c.pending {
		delete(c.pending, tag)
		//lint:allow detmaprange waiters each unblock independently; completion order is unobservable
		waiters = append(waiters, w)
	}
	c.pendMu.Unlock()
	// Socket close and waiter wake-ups happen outside pendMu: Close can
	// block in the kernel, and a woken waiter may immediately issue a
	// follow-up call that needs the lock.
	c.nc.Close()
	for _, w := range waiters {
		w.err = err
		close(w.done)
	}
	c.wm.setInflight(0)
}

// close shuts the connection down. Pending v2 calls fail with
// errConnClosed.
func (c *conn) close() error {
	if c.ver >= ProtoV2 {
		c.kill(errConnClosed)
		return nil
	}
	return c.nc.Close()
}

// call performs one request/reply exchange and returns the pooled reply
// payload; the caller should putBuf it once decoded.
func (c *conn) call(op byte, payload []byte) ([]byte, error) {
	if c.ver >= ProtoV2 {
		return c.callPipelined(op, payload)
	}
	return c.callV1(op, payload)
}

func (c *conn) callV1(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ioTimeout > 0 {
		// One deadline covers the whole round trip; cleared on success
		// so an idle pooled conn cannot expire between calls. A timed-out
		// conn is left desynced mid-frame, but the caller drops it from
		// the pool on any transport error, including this one.
		c.nc.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.bw, ProtoV1, 0, op, payload); err != nil {
		return nil, wrapTimeout(err)
	}
	// v1 is strictly one exchange in flight per connection: the mutex
	// IS the wire serialization, so holding it across the round trip is
	// the protocol, not a contention bug.
	//lint:allow lockio v1 wire is serial by design; c.mu is the per-connection wire serialization
	if err := c.bw.Flush(); err != nil {
		return nil, wrapTimeout(err)
	}
	c.wm.onTx(len(payload))
	fr, err := readFrame(c.br, ProtoV1)
	if err != nil {
		return nil, wrapTimeout(err)
	}
	c.wm.onRx(len(fr.payload))
	return finishReply(fr.op, fr.payload)
}

func (c *conn) callPipelined(op byte, payload []byte) ([]byte, error) {
	// The writer consumes the payload asynchronously, possibly after this
	// call has already been failed by kill — so hand it a private pooled
	// copy and keep the caller's buffer entirely on this side.
	w := &wireCall{op: op, payload: getBuf(len(payload)), done: make(chan struct{})}
	copy(w.payload, payload)
	c.pendMu.Lock()
	if c.failed != nil {
		err := c.failed
		c.pendMu.Unlock()
		return nil, err
	}
	c.nextTag++
	w.tag = c.nextTag
	c.pending[w.tag] = w
	n := len(c.pending)
	c.pendMu.Unlock()
	c.wm.setInflight(n)
	if c.wm != nil {
		w.enq = time.Now()
	}
	select {
	case c.sendq <- w:
		// The writer (or its exit drain) now owns w.payload.
	case <-c.dead:
		// kill covers every registered call, including this one; the
		// payload copy never reached the writer.
		putBuf(w.payload)
	}
	if c.ioTimeout > 0 {
		// Push the reader's deadline out to cover this exchange.
		// SetReadDeadline interrupts a Read already blocked with no
		// deadline, so this re-arms a reader idling on a quiet conn.
		c.nc.SetReadDeadline(time.Now().Add(c.ioTimeout))
	}
	<-w.done
	if w.err != nil {
		return nil, w.err
	}
	return finishReply(w.replyOp, w.reply)
}

// finishReply maps a reply frame to (payload, error), releasing the
// pooled payload on the error paths.
func finishReply(op byte, payload []byte) ([]byte, error) {
	switch op {
	case opOK:
		return payload, nil
	case opError:
		err := replyError(payload)
		putBuf(payload)
		return nil, err
	default:
		putBuf(payload)
		return nil, fmt.Errorf("pfsnet: unexpected reply opcode %d (%w)", op, ErrCorruptFrame)
	}
}

// File is an open pfsnet file handle.
type File struct {
	ID      uint64
	Name    string
	Size    int64
	layout  stripe.Layout
	servers []string
}

// Layout returns the file's striping layout.
func (f *File) Layout() stripe.Layout { return f.layout }

// NewClient returns a client of the file system whose metadata server is
// at metaAddr, with the default resilience policy armed (bounded retries
// with backoff, per-server breaker; no deadlines unless configured).
func NewClient(metaAddr string) *Client {
	return &Client{
		metaAddr:         metaAddr,
		PoolSize:         4,
		MaxRetries:       defaultMaxRetries,
		RetryBackoff:     defaultRetryBackoff,
		RetryBackoffMax:  defaultRetryBackoffMax,
		BreakerThreshold: defaultBreakerThreshold,
		data:             make(map[string][]*conn),
		next:             make(map[string]int),
		breakers:         make(map[string]*breaker),
	}
}

// NewIBridgeClient returns a client with fragment flagging enabled at the
// given thresholds (20 KB in the paper).
func NewIBridgeClient(metaAddr string, fragmentThreshold, randomThreshold int64) *Client {
	c := NewClient(metaAddr)
	c.FragmentThreshold = fragmentThreshold
	c.RandomThreshold = randomThreshold
	return c
}

// Close closes all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	if c.meta != nil {
		first = c.meta.close()
		c.meta = nil
	}
	for addr, pool := range c.data {
		for _, cn := range pool {
			if err := cn.close(); err != nil && first == nil {
				first = err
			}
		}
		delete(c.data, addr)
	}
	return first
}

// wireMetricsLocked lazily resolves the client's wire metrics (c.mu
// held).
func (c *Client) wireMetricsLocked() *wireMetrics {
	if c.wm == nil && c.Obs != nil {
		c.wm = newWireMetrics(c.Obs, "pfsnet.client.")
	}
	return c.wm
}

// resMetrics lazily resolves the client's resilience metrics; nil when
// Obs is unset (all methods on a nil *resilienceMetrics are no-ops).
func (c *Client) resMetrics() *resilienceMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rm == nil && c.Obs != nil {
		c.rm = newResilienceMetrics(c.Obs)
	}
	return c.rm
}

// breakerFor returns addr's breaker, creating it lazily; nil when the
// breaker is disabled (every method on a nil *breaker is a no-op).
func (c *Client) breakerFor(addr string) *breaker {
	if c.BreakerThreshold < 0 {
		return nil
	}
	th := c.BreakerThreshold
	if th == 0 {
		th = defaultBreakerThreshold
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.breakers == nil {
		c.breakers = make(map[string]*breaker)
	}
	b := c.breakers[addr]
	if b == nil {
		b = &breaker{threshold: th}
		c.breakers[addr] = b
	}
	return b
}

// ServerDegraded reports whether the client's breaker currently marks
// the data server at addr degraded.
func (c *Client) ServerDegraded(addr string) bool {
	c.mu.Lock()
	b := c.breakers[addr]
	c.mu.Unlock()
	return b.isOpen()
}

func (c *Client) metaConn() (*conn, error) {
	c.mu.Lock()
	if c.meta != nil {
		cn := c.meta
		c.mu.Unlock()
		return cn, nil
	}
	wm := c.wireMetricsLocked()
	c.mu.Unlock()
	// Dial outside the lock: negotiation is a network round trip.
	cn, err := dialConn(c.metaAddr, c.dialOpts(wm))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.meta != nil { // lost a dial race; keep the winner
		cn.close()
		return c.meta, nil
	}
	c.meta = cn
	return cn, nil
}

// dataConn returns a pooled connection to addr, dialling lazily and
// rotating round-robin through the pool.
func (c *Client) dataConn(addr string) (*conn, error) {
	c.mu.Lock()
	size := c.PoolSize
	if size <= 0 {
		size = 1
	}
	pool := c.data[addr]
	if len(pool) >= size {
		i := c.next[addr] % len(pool)
		c.next[addr] = i + 1
		cn := pool[i]
		c.mu.Unlock()
		return cn, nil
	}
	wm := c.wireMetricsLocked()
	c.mu.Unlock()
	cn, err := dialConn(addr, c.dialOpts(wm))
	c.mu.Lock()
	defer c.mu.Unlock()
	pool = c.data[addr]
	if err != nil {
		if len(pool) > 0 {
			return pool[0], nil // degrade to what we have
		}
		return nil, err
	}
	if len(pool) >= size { // lost a dial race and the pool filled up
		cn.close()
		i := c.next[addr] % len(pool)
		c.next[addr] = i + 1
		return pool[i], nil
	}
	c.data[addr] = append(pool, cn)
	return cn, nil
}

// dropDataConn discards a broken pooled connection so the next call
// redials.
func (c *Client) dropDataConn(addr string, cn *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.data[addr]
	for i, have := range pool {
		if have == cn {
			cn.close()
			c.data[addr] = append(pool[:i], pool[i+1:]...)
			return
		}
	}
}

// dataCall performs one request against a data server under the client's
// resilience policy: up to MaxRetries additional attempts on transport
// failures (read and write sub-requests are idempotent, so retries are
// safe), bounded exponential backoff with deterministic jitter between
// attempts, a RequestTimeout budget across the whole sequence, and a
// per-server breaker that fails fast with ErrServerDown once addr has
// accumulated consecutive transport failures. Server-reported (remote)
// errors are never retried — the request reached the server, which also
// proves the server alive, so they count as breaker successes.
func (c *Client) dataCall(addr string, op byte, payload []byte) ([]byte, error) {
	rm := c.resMetrics()
	b := c.breakerFor(addr)
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var deadline time.Time
	if c.RequestTimeout > 0 {
		deadline = time.Now().Add(c.RequestTimeout)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		probe, err := b.acquire(addr)
		if err != nil {
			rm.onFastFail()
			return nil, err
		}
		reply, err := c.tryDataCall(addr, op, payload)
		if err == nil {
			c.recordOutcome(b, rm, probe, true)
			return reply, nil
		}
		if _, isRemote := err.(remoteError); isRemote {
			c.recordOutcome(b, rm, probe, true)
			return nil, err
		}
		c.recordOutcome(b, rm, probe, false)
		if errors.Is(err, ErrDeadline) {
			rm.onDeadline()
		}
		lastErr = err
		if attempt >= retries {
			return nil, lastErr
		}
		d := c.backoffDelay(attempt)
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			rm.onDeadline()
			return nil, fmt.Errorf("pfsnet: %s: request budget exhausted after %d attempts (%w): %v",
				addr, attempt+1, ErrDeadline, lastErr)
		}
		rm.onRetry()
		if d > 0 {
			time.Sleep(d)
		}
	}
}

// tryDataCall is one attempt of a data request: take a pooled conn,
// exchange, and drop the conn from the pool if the transport failed
// under it so the next attempt redials.
func (c *Client) tryDataCall(addr string, op byte, payload []byte) ([]byte, error) {
	cn, err := c.dataConn(addr)
	if err != nil {
		return nil, err
	}
	reply, err := cn.call(op, payload)
	if err != nil {
		if _, isRemote := err.(remoteError); !isRemote {
			c.dropDataConn(addr, cn)
		}
		return nil, err
	}
	return reply, nil
}

// recordOutcome feeds an attempt result to the breaker and keeps the
// open-breaker metrics in step with its state transitions.
func (c *Client) recordOutcome(b *breaker, rm *resilienceMetrics, probe, ok bool) {
	opened, closed := b.record(probe, ok)
	if opened {
		rm.onOpen(c.openCount.Add(1))
	}
	if closed {
		rm.onClose(c.openCount.Add(-1))
	}
}

// backoffDelay computes the pause before the retry following attempt
// (0-based): RetryBackoff·2^attempt capped at RetryBackoffMax, plus
// deterministic jitter of up to half the step drawn from the client
// Seed and a global attempt sequence — bounded exponential backoff
// whose timing is a pure function of the client's failure history.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		return 0
	}
	maxd := c.RetryBackoffMax
	if maxd <= 0 {
		maxd = defaultRetryBackoffMax
	}
	d := base << uint(min(attempt, 20))
	if d <= 0 || d > maxd {
		d = maxd
	}
	n := c.attempts.Add(1)
	jitter := time.Duration(faults.Mix64(c.Seed^n) % uint64(d/2+1))
	return d + jitter
}

func (c *Client) fileFromReply(name string, payload []byte) (*File, error) {
	d := dec{b: payload}
	f := &File{Name: name}
	f.ID = d.u64()
	f.Size = d.i64()
	unit := d.i64()
	n := d.u32()
	for i := uint32(0); i < n; i++ {
		f.servers = append(f.servers, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	f.layout = stripe.Layout{Unit: unit, Servers: len(f.servers)}
	return f, f.layout.Validate()
}

// metaCall performs one metadata request. On a transport failure the
// cached metadata connection is discarded so the next call redials
// instead of failing forever against a dead socket.
func (c *Client) metaCall(op byte, payload []byte) ([]byte, error) {
	mc, err := c.metaConn()
	if err != nil {
		return nil, err
	}
	reply, err := mc.call(op, payload)
	if err != nil {
		if _, isRemote := err.(remoteError); !isRemote {
			c.mu.Lock()
			if c.meta == mc {
				c.meta = nil
			}
			c.mu.Unlock()
			mc.close()
		}
		return nil, err
	}
	return reply, nil
}

// Create creates a file of the given size.
func (c *Client) Create(name string, size int64) (*File, error) {
	e := newEnc()
	e.str(name)
	e.i64(size)
	reply, err := c.metaCall(opCreate, e.b)
	putBuf(e.b)
	if err != nil {
		return nil, err
	}
	f, err := c.fileFromReply(name, reply)
	putBuf(reply)
	return f, err
}

// Open opens an existing file.
func (c *Client) Open(name string) (*File, error) {
	e := newEnc()
	e.str(name)
	reply, err := c.metaCall(opOpen, e.b)
	putBuf(e.b)
	if err != nil {
		return nil, err
	}
	f, err := c.fileFromReply(name, reply)
	putBuf(reply)
	return f, err
}

// subs decomposes a request, applying fragment flagging when configured.
func (c *Client) subs(f *File, off, length int64) []stripe.Sub {
	if c.FragmentThreshold > 0 {
		return f.layout.DecomposeFlagged(off, length, c.FragmentThreshold)
	}
	return f.layout.Decompose(off, length)
}

// writeSub issues one write sub-request.
func (c *Client) writeSub(f *File, off int64, p []byte, sub stripe.Sub, random bool) error {
	e := newEnc()
	e.u64(f.ID)
	e.i64(sub.ServerOff)
	var flags byte
	if sub.Fragment || random {
		flags |= 1
	}
	e.u8(flags)
	e.bytes(p[sub.FileOff-off : sub.FileOff-off+sub.Length])
	reply, err := c.dataCall(f.servers[sub.Server], opWrite, e.b)
	putBuf(e.b)
	putBuf(reply)
	return err
}

// WriteAt writes p at offset off, striping it over the data servers. It
// is synchronous: it returns once every data server has acknowledged its
// sub-request.
func (c *Client) WriteAt(f *File, off int64, p []byte) error {
	if err := c.checkRange(f, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	random := c.RandomThreshold > 0 && int64(len(p)) < c.RandomThreshold
	subs := c.subs(f, off, int64(len(p)))
	if len(subs) == 1 {
		return c.writeSub(f, off, p, subs[0], random)
	}
	errs := make(chan error, len(subs))
	for _, sub := range subs {
		sub := sub
		go func() {
			errs <- c.writeSub(f, off, p, sub, random)
		}()
	}
	var first error
	for range subs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// readSub issues one read sub-request and copies the result into p.
func (c *Client) readSub(f *File, off int64, p []byte, sub stripe.Sub) error {
	e := newEnc()
	e.u64(f.ID)
	e.i64(sub.ServerOff)
	e.i64(sub.Length)
	reply, err := c.dataCall(f.servers[sub.Server], opRead, e.b)
	putBuf(e.b)
	if err != nil {
		return err
	}
	d := dec{b: reply}
	data := d.bytes()
	if d.err != nil {
		putBuf(reply)
		return d.err
	}
	if int64(len(data)) != sub.Length {
		putBuf(reply)
		return fmt.Errorf("pfsnet: short read: %d of %d bytes", len(data), sub.Length)
	}
	copy(p[sub.FileOff-off:], data)
	putBuf(reply)
	return nil
}

// ReadAt reads len(p) bytes at offset off into p.
func (c *Client) ReadAt(f *File, off int64, p []byte) error {
	if err := c.checkRange(f, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	subs := c.subs(f, off, int64(len(p)))
	if len(subs) == 1 {
		return c.readSub(f, off, p, subs[0])
	}
	errs := make(chan error, len(subs))
	for _, sub := range subs {
		sub := sub
		go func() {
			errs <- c.readSub(f, off, p, sub)
		}()
	}
	var first error
	for range subs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush asks every data server to drain its fragment log for f back to
// the object store (pass nil to flush everything on every server).
// Returns the total bytes written back.
func (c *Client) Flush(f *File) (int64, error) {
	var servers []string
	var id uint64
	if f != nil {
		servers = f.servers
		id = f.ID
	} else {
		// Without a file we have no server list; flush via the cached
		// data connections.
		c.mu.Lock()
		for addr := range c.data {
			servers = append(servers, addr)
		}
		c.mu.Unlock()
		// Flush in a stable order so multi-server error/byte totals do
		// not depend on connection-map iteration order.
		sort.Strings(servers)
	}
	var total int64
	for _, addr := range servers {
		e := newEnc()
		e.u64(id)
		reply, err := c.dataCall(addr, opFlush, e.b)
		putBuf(e.b)
		if err != nil {
			return total, err
		}
		d := dec{b: reply}
		total += d.i64()
		putBuf(reply)
		if d.err != nil {
			return total, d.err
		}
	}
	return total, nil
}

func (c *Client) checkRange(f *File, off, length int64) error {
	if off < 0 || length < 0 || off+length > f.Size {
		return fmt.Errorf("pfsnet: request [%d,+%d) outside file %q of size %d", off, length, f.Name, f.Size)
	}
	return nil
}
