package pfsnet

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/stripe"
)

// Client accesses a pfsnet file system: it asks the metadata server for
// file placement, decomposes reads and writes into per-server
// sub-requests (flagging fragments when a threshold is configured), and
// issues the sub-requests concurrently over a small per-server
// connection pool.
type Client struct {
	metaAddr string
	// FragmentThreshold enables iBridge client-side flagging when > 0.
	FragmentThreshold int64
	// RandomThreshold flags whole small requests as regular random.
	RandomThreshold int64
	// PoolSize is the number of connections kept per data server
	// (default 4): concurrent sub-requests to one server would
	// otherwise serialize on a single socket.
	PoolSize int

	mu   sync.Mutex
	meta *conn
	data map[string][]*conn
	next map[string]int
}

// conn is one pooled connection with its own lock (one in-flight request
// per connection; concurrent sub-requests use distinct per-server
// connections).
type conn struct {
	mu sync.Mutex
	c  net.Conn
}

func (c *conn) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeMessage(c.c, op, payload); err != nil {
		return nil, err
	}
	msg, err := readMessage(c.c)
	if err != nil {
		return nil, err
	}
	if msg.op == opError {
		return nil, replyError(msg.payload)
	}
	if msg.op != opOK {
		return nil, fmt.Errorf("pfsnet: unexpected reply opcode %d", msg.op)
	}
	return msg.payload, nil
}

// File is an open pfsnet file handle.
type File struct {
	ID      uint64
	Name    string
	Size    int64
	layout  stripe.Layout
	servers []string
}

// Layout returns the file's striping layout.
func (f *File) Layout() stripe.Layout { return f.layout }

// NewClient returns a client of the file system whose metadata server is
// at metaAddr.
func NewClient(metaAddr string) *Client {
	return &Client{
		metaAddr: metaAddr,
		PoolSize: 4,
		data:     make(map[string][]*conn),
		next:     make(map[string]int),
	}
}

// NewIBridgeClient returns a client with fragment flagging enabled at the
// given thresholds (20 KB in the paper).
func NewIBridgeClient(metaAddr string, fragmentThreshold, randomThreshold int64) *Client {
	c := NewClient(metaAddr)
	c.FragmentThreshold = fragmentThreshold
	c.RandomThreshold = randomThreshold
	return c
}

// Close closes all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	if c.meta != nil {
		first = c.meta.c.Close()
		c.meta = nil
	}
	for addr, pool := range c.data {
		for _, cn := range pool {
			if err := cn.c.Close(); err != nil && first == nil {
				first = err
			}
		}
		delete(c.data, addr)
	}
	return first
}

func (c *Client) metaConn() (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.meta != nil {
		return c.meta, nil
	}
	nc, err := net.Dial("tcp", c.metaAddr)
	if err != nil {
		return nil, err
	}
	c.meta = &conn{c: nc}
	return c.meta, nil
}

// dataConn returns a pooled connection to addr, dialling lazily and
// rotating round-robin through the pool.
func (c *Client) dataConn(addr string) (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.PoolSize
	if size <= 0 {
		size = 1
	}
	pool := c.data[addr]
	if len(pool) < size {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			if len(pool) > 0 {
				return pool[0], nil // degrade to what we have
			}
			return nil, err
		}
		cn := &conn{c: nc}
		c.data[addr] = append(pool, cn)
		return cn, nil
	}
	i := c.next[addr] % len(pool)
	c.next[addr] = i + 1
	return pool[i], nil
}

// dropDataConn discards a broken pooled connection so the next call
// redials.
func (c *Client) dropDataConn(addr string, cn *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.data[addr]
	for i, have := range pool {
		if have == cn {
			cn.c.Close()
			c.data[addr] = append(pool[:i], pool[i+1:]...)
			return
		}
	}
}

// dataCall performs one request against a data server, transparently
// redialling once if the pooled connection has died (e.g. the server
// restarted). Read and write sub-requests are idempotent, so a retry is
// safe.
func (c *Client) dataCall(addr string, op byte, payload []byte) ([]byte, error) {
	cn, err := c.dataConn(addr)
	if err != nil {
		return nil, err
	}
	reply, err := cn.call(op, payload)
	if err == nil {
		return reply, nil
	}
	if _, isRemote := err.(remoteError); isRemote {
		return nil, err // the server answered; do not retry
	}
	// Transport failure: drop the connection and retry once.
	c.dropDataConn(addr, cn)
	cn, derr := c.dataConn(addr)
	if derr != nil {
		return nil, err
	}
	return cn.call(op, payload)
}

func (c *Client) fileFromReply(name string, payload []byte) (*File, error) {
	d := dec{b: payload}
	f := &File{Name: name}
	f.ID = d.u64()
	f.Size = d.i64()
	unit := d.i64()
	n := d.u32()
	for i := uint32(0); i < n; i++ {
		f.servers = append(f.servers, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	f.layout = stripe.Layout{Unit: unit, Servers: len(f.servers)}
	return f, f.layout.Validate()
}

// Create creates a file of the given size.
func (c *Client) Create(name string, size int64) (*File, error) {
	mc, err := c.metaConn()
	if err != nil {
		return nil, err
	}
	var e enc
	e.str(name)
	e.i64(size)
	reply, err := mc.call(opCreate, e.b)
	if err != nil {
		return nil, err
	}
	return c.fileFromReply(name, reply)
}

// Open opens an existing file.
func (c *Client) Open(name string) (*File, error) {
	mc, err := c.metaConn()
	if err != nil {
		return nil, err
	}
	var e enc
	e.str(name)
	reply, err := mc.call(opOpen, e.b)
	if err != nil {
		return nil, err
	}
	return c.fileFromReply(name, reply)
}

// subs decomposes a request, applying fragment flagging when configured.
func (c *Client) subs(f *File, off, length int64) []stripe.Sub {
	if c.FragmentThreshold > 0 {
		return f.layout.DecomposeFlagged(off, length, c.FragmentThreshold)
	}
	return f.layout.Decompose(off, length)
}

// WriteAt writes p at offset off, striping it over the data servers. It
// is synchronous: it returns once every data server has acknowledged its
// sub-request.
func (c *Client) WriteAt(f *File, off int64, p []byte) error {
	if err := c.checkRange(f, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	random := c.RandomThreshold > 0 && int64(len(p)) < c.RandomThreshold
	subs := c.subs(f, off, int64(len(p)))
	errs := make(chan error, len(subs))
	for _, sub := range subs {
		sub := sub
		go func() {
			var e enc
			e.u64(f.ID)
			e.i64(sub.ServerOff)
			var flags byte
			if sub.Fragment || random {
				flags |= 1
			}
			e.u8(flags)
			e.bytes(p[sub.FileOff-off : sub.FileOff-off+sub.Length])
			_, err := c.dataCall(f.servers[sub.Server], opWrite, e.b)
			errs <- err
		}()
	}
	var first error
	for range subs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadAt reads len(p) bytes at offset off into p.
func (c *Client) ReadAt(f *File, off int64, p []byte) error {
	if err := c.checkRange(f, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	subs := c.subs(f, off, int64(len(p)))
	errs := make(chan error, len(subs))
	for _, sub := range subs {
		sub := sub
		go func() {
			var e enc
			e.u64(f.ID)
			e.i64(sub.ServerOff)
			e.i64(sub.Length)
			reply, err := c.dataCall(f.servers[sub.Server], opRead, e.b)
			if err != nil {
				errs <- err
				return
			}
			d := dec{b: reply}
			data := d.bytes()
			if d.err != nil {
				errs <- d.err
				return
			}
			if int64(len(data)) != sub.Length {
				errs <- fmt.Errorf("pfsnet: short read: %d of %d bytes", len(data), sub.Length)
				return
			}
			copy(p[sub.FileOff-off:], data)
			errs <- nil
		}()
	}
	var first error
	for range subs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush asks every data server to drain its fragment log for f back to
// the object store (pass nil to flush everything on every server).
// Returns the total bytes written back.
func (c *Client) Flush(f *File) (int64, error) {
	var servers []string
	var id uint64
	if f != nil {
		servers = f.servers
		id = f.ID
	} else {
		// Without a file we have no server list; flush via the cached
		// data connections.
		c.mu.Lock()
		for addr := range c.data {
			servers = append(servers, addr)
		}
		c.mu.Unlock()
	}
	var total int64
	for _, addr := range servers {
		var e enc
		e.u64(id)
		reply, err := c.dataCall(addr, opFlush, e.b)
		if err != nil {
			return total, err
		}
		d := dec{b: reply}
		total += d.i64()
		if d.err != nil {
			return total, d.err
		}
	}
	return total, nil
}

func (c *Client) checkRange(f *File, off, length int64) error {
	if off < 0 || length < 0 || off+length > f.Size {
		return fmt.Errorf("pfsnet: request [%d,+%d) outside file %q of size %d", off, length, f.Name, f.Size)
	}
	return nil
}
