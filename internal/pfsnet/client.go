package pfsnet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/sketch"
	"repro/internal/stripe"
)

// Client accesses a pfsnet file system: it asks the metadata server for
// file placement, decomposes reads and writes into per-server
// sub-requests (flagging fragments when a threshold is configured), and
// issues the sub-requests concurrently over a small per-server
// connection pool.
//
// Against v2 peers every pooled connection is pipelined: a single writer
// goroutine drains a send queue into a vectored writer — frame headers
// and small payloads packed into pooled arena chunks, large payloads
// referenced in place — and submits each burst with one writev, while a
// single reader goroutine demuxes tagged replies to the waiting callers
// (scattering read data straight into the caller's buffer). Payload
// buffers follow the wire ownership contract (DESIGN §11): the caller
// encodes into a pooled buffer and hands it to the connection, which
// releases it exactly once. Against v1 peers the client falls back to
// the legacy one-round-trip-per-connection discipline.
type Client struct {
	metaAddr string
	// FragmentThreshold enables iBridge client-side flagging when > 0.
	FragmentThreshold int64
	// RandomThreshold flags whole small requests as regular random.
	RandomThreshold int64
	// PoolSize is the number of connections kept per data server
	// (default 1). With v2 pipelining one connection multiplexes many
	// requests, and sharing it lets the corked vectored writer batch
	// concurrent sub-requests into single writev submissions — on small
	// requests the syscall count, not bandwidth, is the bottleneck.
	// Raising it can help very large transfers spread TCP windows.
	PoolSize int
	// MaxProto caps the wire protocol this client will negotiate
	// (0 means the latest; 1 forces the legacy protocol).
	MaxProto int
	// DisableVectored forces v2 connections onto the legacy corked
	// bufio.Writer path instead of vectored (writev) submission — the
	// interop escape hatch, and the A/B knob for the wire benchmarks.
	DisableVectored bool
	// Obs, when set before the first request, receives wire-level
	// metrics under "pfsnet.client.*" (frames, bytes, in-flight depth,
	// send-queue wait, writev batching) and the resilience metrics
	// (retries, deadline_exceeded, breaker state). It also arms the
	// per-server latency sketches and their
	// "pfsnet.client.server.<addr>.<class>.{p50,p95,p99}" gauges.
	Obs *obs.Registry
	// Tracer, when set before the first request, records a parent span
	// per ReadAt/WriteAt and propagates its {traceID, parentSpanID}
	// context to data servers over connections whose hello negotiated
	// the featTrace wire extension (v1 and older-v2 peers silently see
	// untraced frames). Nil costs one pointer test per request.
	Tracer *obs.XTracer
	// TrackLatency arms the per-server windowed latency sketches even
	// without a metrics registry, so LatencySnapshot works standalone
	// (the straggler-aware read path's input).
	TrackLatency bool
	// SlowLog, when set before the first request, receives one JSON
	// line per ReadAt/WriteAt whose latency exceeds the op class's
	// sketch-derived p99 (after slowLogMinSamples observations warm the
	// sketch), with per-fragment server timings — a "wide event" for
	// tail debugging.
	SlowLog io.Writer

	// DialTimeout bounds connection establishment, including protocol
	// negotiation (0 = no timeout).
	DialTimeout time.Duration
	// IOTimeout bounds each frame exchange on a connection: a full v1
	// round trip, or — on pipelined v2 connections — how long a pending
	// reply may remain unanswered before the connection is declared
	// dead with ErrDeadline. 0 disables I/O deadlines.
	IOTimeout time.Duration
	// RequestTimeout bounds one data sub-request across all retry
	// attempts (0 = no bound beyond the per-attempt IOTimeout).
	RequestTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transport
	// failure of an idempotent data sub-request. NewClient defaults it
	// to 2; set -1 to disable retries.
	MaxRetries int
	// RetryBackoff is the base pause before the first retry; each
	// further attempt doubles it up to RetryBackoffMax, plus
	// deterministic jitter drawn from Seed. NewClient defaults these to
	// 2ms and 100ms.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// BreakerThreshold is the run of consecutive transport failures
	// after which a data server is marked degraded: further requests
	// fail fast with ErrServerDown while a single probe per window
	// checks for recovery. NewClient defaults it to 4; set -1 to
	// disable the breaker.
	BreakerThreshold int
	// Seed feeds the deterministic retry jitter (and is the knob that
	// makes two chaos runs sleep identically).
	Seed uint64
	// FaultPlan, when set before the first request, injects the plan's
	// connection faults into every connection this client dials;
	// FaultScope labels them (default "client"). Hedge connections are
	// labelled FaultScope+"-hedge", so a scoped latency clause can slow
	// the primary path while the hedge path stays fast — the
	// deterministic straggler for the A/B experiments.
	FaultPlan  *faults.Plan
	FaultScope string

	// Hedge enables straggler-aware hedged reads (set before the first
	// request): each read sub-request on a pipelined connection arms a
	// timer at the (server, read) sketch's HedgeQuantile; if the primary
	// has not answered by then, the read is re-issued on a separate
	// hedge connection (opReadDirect when the server negotiated
	// featCancel, plain opRead otherwise), the first reply wins, and the
	// loser is abandoned and cancelled server-side. Writes never hedge —
	// only reads are idempotent under duplicated execution order.
	// Disabled, the read path is bit-identical to the unhedged client.
	Hedge bool
	// HedgeQuantile is the sketch quantile the hedge timer fires at
	// (default 0.95). The delay is clamped to
	// [HedgeDelayFloor, HedgeDelayCap].
	HedgeQuantile float64
	// HedgeDelay, when positive, fixes the hedge timer outright,
	// bypassing the sketch — the knob that makes hedge timing
	// deterministic in tests and chaos runs.
	HedgeDelay time.Duration
	// HedgeDelayFloor/HedgeDelayCap bound the sketch-derived hedge delay
	// (defaults 2ms and 1s). A cold sketch falls back to the server's
	// T_i load hint scaled conservatively, or to the cap.
	HedgeDelayFloor time.Duration
	HedgeDelayCap   time.Duration
	// HedgeBudget caps hedges in flight across the whole client
	// (default 16) so a cluster-wide slowdown cannot double offered
	// load: with no token available the read falls open to a plain
	// unhedged wait and hedges_suppressed counts it. -1 removes the cap.
	HedgeBudget int

	attempts  atomic.Uint64 // retry-jitter sequence
	openCount atomic.Int64  // breakers currently open, for the gauge

	hedgeOnce sync.Once    // arms the token bucket from HedgeBudget
	hedgeTok  atomic.Int64 // hedge tokens currently available

	mu       sync.Mutex
	wm       *wireMetrics
	rm       *resilienceMetrics
	hm       *hedgeMetrics
	meta     *conn
	data     map[string][]*conn
	hdata    map[string]*conn // hedge connections, one per server
	next     map[string]int
	breakers map[string]*breaker

	// hintMu guards the T_i load-hint vector (server address → expected
	// service time, milliseconds) the metadata server broadcasts on
	// Create/Open replies; cold sketches fall back to it for issue
	// ordering and hedge delays.
	hintMu sync.Mutex
	hints  map[string]float64

	// latMu guards the lazily created latency sketches; slowMu
	// serializes SlowLog writes so concurrent slow events cannot
	// interleave JSON lines.
	latMu    sync.Mutex
	sketches map[latKey]*sketch.Sketch
	parentSk map[string]*sketch.Sketch
	slowMu   sync.Mutex
}

// Resilience defaults applied by NewClient. Overridable per client; -1
// disables the corresponding mechanism.
const (
	defaultMaxRetries       = 2
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultRetryBackoffMax  = 100 * time.Millisecond
	defaultBreakerThreshold = 4
)

var errConnClosed = errors.New("pfsnet: connection closed")

// conn is one pooled connection. After version negotiation a v2 conn
// runs a writer and a reader goroutine and multiplexes tagged calls; a
// v1 conn serializes one round trip at a time under mu.
type conn struct {
	nc        net.Conn
	ver       int
	vec       bool // v2 writer uses vectored submission
	wm        *wireMetrics
	br        *bufio.Reader
	bw        *bufio.Writer
	ioTimeout time.Duration

	// v1 state: mu is held across a full write+read round trip.
	mu sync.Mutex

	// v2 state.
	sendq    chan *wireCall
	dead     chan struct{}
	features uint32 // hello-negotiated feature bits (featTrace, ...)
	pendMu   sync.Mutex
	pending  map[uint64]*wireCall
	nextTag  uint64
	failed   error // set once, under pendMu, when the conn dies
}

// wireCall is one in-flight tagged request. Batch submission links
// calls through next: the chain is registered as a unit and the head
// alone crosses the send queue, so a striped request costs one channel
// operation and one flush however many sub-requests it fans into.
type wireCall struct {
	tag     uint64
	op      byte
	payload []byte    // pooled; owned by the conn once started
	next    *wireCall // rest of a batch chain
	enq     time.Time // for the queue-wait metric; zero when obs is off
	done    chan struct{}

	// tcID/tcSpan, when tcID is nonzero, make the writer emit this call
	// as a traced frame (trace context behind the header). Only set on
	// connections that negotiated featTrace.
	tcID, tcSpan uint64

	// scatter, when non-nil, asks the reader to deposit a successful
	// read reply's data directly here instead of a pooled intermediate;
	// scattered reports it did, scatterN how many bytes.
	scatter   []byte
	scattered bool
	scatterN  int

	replyOp byte
	reply   []byte // pooled; the waiter releases it
	err     error
}

const connBufSize = 64 << 10

// dialOpts carries the per-client connection settings into dialConn.
type dialOpts struct {
	maxProto    int
	features    uint32
	noVec       bool
	wm          *wireMetrics
	dialTimeout time.Duration
	ioTimeout   time.Duration
	plan        *faults.Plan
	scope       string
}

// dialOpts snapshots the client's connection settings (set before the
// first request, per the field contracts, so reading them unlocked is
// race-free).
func (c *Client) dialOpts(wm *wireMetrics) dialOpts {
	scope := c.FaultScope
	if scope == "" {
		scope = "client"
	}
	var features uint32
	if c.Tracer != nil {
		features = featTrace
	}
	if c.Hedge {
		// featCancel only matters to a hedging client; leaving it out of
		// the hello otherwise keeps the unhedged wire byte-identical.
		features |= featCancel
	}
	return dialOpts{
		maxProto:    c.MaxProto,
		features:    features,
		noVec:       c.DisableVectored,
		wm:          wm,
		dialTimeout: c.DialTimeout,
		ioTimeout:   c.IOTimeout,
		plan:        c.FaultPlan,
		scope:       scope,
	}
}

// dialConn connects to addr and negotiates the protocol version. The
// dial is bounded by o.dialTimeout and the negotiation round trip by
// o.ioTimeout; a fault plan, when armed, injects its dial refusals and
// wraps the new connection.
func dialConn(addr string, o dialOpts) (*conn, error) {
	nc, err := o.plan.Dial(o.scope, "tcp", addr, o.dialTimeout)
	if err != nil {
		return nil, wrapTimeout(err)
	}
	c := &conn{
		nc:        nc,
		ver:       ProtoV1,
		vec:       !o.noVec,
		wm:        o.wm,
		br:        bufio.NewReaderSize(nc, connBufSize),
		bw:        bufio.NewWriterSize(nc, connBufSize),
		ioTimeout: o.ioTimeout,
	}
	maxProto := o.maxProto
	if maxProto <= 0 || maxProto > maxProtoVersion {
		maxProto = maxProtoVersion
	}
	if maxProto >= ProtoV2 {
		if c.ioTimeout > 0 {
			nc.SetDeadline(time.Now().Add(c.ioTimeout))
		}
		if err := c.negotiate(maxProto, o.features); err != nil {
			nc.Close()
			return nil, wrapTimeout(err)
		}
		if c.ioTimeout > 0 {
			nc.SetDeadline(time.Time{})
		}
	}
	return c, nil
}

// negotiate sends the opHello and interprets the peer's answer: opOK
// carries the agreed version (and, from feature-aware servers, the
// agreed feature set), opError means a v1 peer that rejected the
// unknown opcode (fall back silently).
func (c *conn) negotiate(maxProto int, features uint32) error {
	e := newEnc()
	e.u32(uint32(maxProto))
	// The feature word always goes out — older servers ignore trailing
	// hello bytes and omit the word from their reply, which reads back
	// as "no features".
	e.u32(features)
	err := writeFrame(c.bw, ProtoV1, 0, opHello, e.b)
	putBuf(e.b)
	if err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	fr, err := readFrame(c.br, ProtoV1)
	if err != nil {
		return err
	}
	defer fr.release()
	switch fr.op {
	case opOK:
		d := dec{b: fr.payload}
		v := int(d.u32())
		if d.err != nil {
			return d.err
		}
		if len(fr.payload) >= 8 {
			c.features = d.u32() & features
			if d.err != nil {
				return d.err
			}
		}
		if v >= ProtoV2 {
			c.ver = ProtoV2
			c.startPipeline()
		} else {
			c.features = 0 // features are a v2 construct
		}
		return nil
	case opError:
		return nil // legacy peer: stay on v1
	default:
		return fmt.Errorf("pfsnet: unexpected hello reply opcode %d (%w)", fr.op, ErrCorruptFrame)
	}
}

// startPipeline launches the writer and reader goroutines of a v2 conn.
func (c *conn) startPipeline() {
	c.sendq = make(chan *wireCall, 128)
	c.dead = make(chan struct{})
	c.pending = make(map[uint64]*wireCall)
	go c.writeLoop()
	go c.readLoop()
}

// releaseChain returns every payload of a batch chain to the pool.
func releaseChain(w *wireCall) {
	for ; w != nil; w = w.next {
		putBuf(w.payload)
		w.payload = nil
	}
}

// drainSendq releases the payloads of calls still queued when the conn
// dies, so a killed conn cannot race a caller that has already been
// failed by kill and moved on.
func drainSendq(sendq chan *wireCall) {
	for {
		select {
		case w := <-sendq:
			releaseChain(w)
		default:
			return
		}
	}
}

// writeLoop drains the send queue onto the wire. The loop owns each
// queued call's payload (ownership transferred at start/startBatch) and
// releases it exactly once — after the write, or on exit for calls
// still queued when the conn dies.
func (c *conn) writeLoop() {
	if c.vec {
		c.writeLoopVec()
	} else {
		c.writeLoopBuffered()
	}
}

// writeLoopVec is the vectored writer: frames accumulate in the
// vecWriter (headers and small payloads packed into arena chunks, large
// payloads referenced zero-copy) and each burst goes to the kernel in a
// single writev when the queue runs dry.
func (c *conn) writeLoopVec() {
	vw := newVecWriter(c.nc, c.wm)
	defer vw.abandon()
	defer drainSendq(c.sendq)
	for {
		select {
		case <-c.dead:
			return
		case w := <-c.sendq:
			for ; w != nil; w = w.next {
				c.wm.observeQueueWait(w.enq)
				n := len(w.payload)
				var err error
				if w.tcID != 0 {
					err = vw.writeFrameCtx(w.tag, w.op, w.tcID, w.tcSpan, w.payload)
				} else {
					err = vw.writeFrame(c.ver, w.tag, w.op, w.payload)
				}
				w.payload = nil
				if err != nil {
					releaseChain(w.next)
					c.kill(err)
					return
				}
				c.wm.onTx(n)
			}
			if len(c.sendq) == 0 {
				if c.ioTimeout > 0 {
					c.nc.SetWriteDeadline(time.Now().Add(c.ioTimeout))
				}
				if err := vw.flush(); err != nil {
					c.kill(wrapTimeout(err))
					return
				}
			}
		}
	}
}

// writeLoopBuffered is the legacy corked bufio path (DisableVectored):
// it keeps writing frames while more calls are queued and flushes only
// when the queue runs dry, so bursts of sub-requests share syscalls.
func (c *conn) writeLoopBuffered() {
	defer drainSendq(c.sendq)
	for {
		select {
		case <-c.dead:
			return
		case w := <-c.sendq:
			for ; w != nil; w = w.next {
				c.wm.observeQueueWait(w.enq)
				if c.ioTimeout > 0 {
					c.nc.SetWriteDeadline(time.Now().Add(c.ioTimeout))
				}
				var err error
				if w.tcID != 0 {
					err = writeFrameCtx(c.bw, w.tag, w.op, w.tcID, w.tcSpan, w.payload)
				} else {
					err = writeFrame(c.bw, c.ver, w.tag, w.op, w.payload)
				}
				n := len(w.payload)
				putBuf(w.payload)
				w.payload = nil
				if err != nil {
					releaseChain(w.next)
					c.kill(wrapTimeout(err))
					return
				}
				c.wm.onTx(n)
			}
			if len(c.sendq) == 0 {
				if err := c.bw.Flush(); err != nil {
					c.kill(wrapTimeout(err))
					return
				}
			}
		}
	}
}

// pendingCount returns the number of registered in-flight calls.
func (c *conn) pendingCount() int {
	c.pendMu.Lock()
	n := len(c.pending)
	c.pendMu.Unlock()
	return n
}

// readLoop demuxes tagged replies to their waiting callers, scattering
// read data directly into caller buffers when the call asked for it.
// With an I/O timeout configured it arms a read deadline whenever
// replies are outstanding: a deadline expiring with calls pending means
// the server has gone quiet mid-exchange, and the conn is killed with
// ErrDeadline so every waiter unblocks promptly instead of stalling
// forever.
func (c *conn) readLoop() {
	for {
		if c.ioTimeout > 0 {
			if c.pendingCount() > 0 {
				c.nc.SetReadDeadline(time.Now().Add(c.ioTimeout))
			} else {
				c.nc.SetReadDeadline(time.Time{})
			}
		}
		var hdr [13]byte
		if nr, err := io.ReadFull(c.br, hdr[:]); err != nil {
			if isTimeout(err) && nr == 0 && c.pendingCount() == 0 {
				// The deadline outlived the exchange it guarded; the conn
				// is idle and at a frame boundary, so keep serving it.
				continue
			}
			c.kill(wrapTimeout(wrapTruncated(err)))
			return
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		if n < 9 || n > MaxMessage {
			c.kill(ErrTooLarge)
			return
		}
		tag := binary.BigEndian.Uint64(hdr[4:12])
		op := hdr[12]
		plen := int(n) - 9
		// Claim the waiter before touching the payload: once the tag is
		// out of pending, kill can no longer race this goroutine for the
		// call, so scattering into the caller's buffer is single-writer
		// and done is closed exactly once.
		c.pendMu.Lock()
		w := c.pending[tag]
		delete(c.pending, tag)
		np := len(c.pending)
		c.pendMu.Unlock()
		if w != nil && w.scatter != nil && op == opOK && plen >= 4 && plen-4 <= len(w.scatter) {
			if err := c.scatterInto(w, plen); err != nil {
				w.err = err
				close(w.done)
				c.kill(err)
				return
			}
			c.wm.onRx(plen)
			c.wm.onScatter(w.scatterN)
			c.wm.setInflight(np)
			close(w.done)
			continue
		}
		payload := getBuf(plen)
		if _, err := io.ReadFull(c.br, payload); err != nil {
			putBuf(payload)
			err = wrapTimeout(wrapTruncated(err))
			if w != nil {
				w.err = err
				close(w.done)
			}
			c.kill(err)
			return
		}
		c.wm.onRx(plen)
		if w == nil {
			putBuf(payload) // reply for an abandoned tag
			continue
		}
		c.wm.setInflight(np)
		w.replyOp = op
		w.reply = payload
		close(w.done)
	}
}

// scatterInto reads a read-reply payload (u32 length + data) of plen
// bytes directly into w.scatter, bypassing the pooled intermediate. The
// caller guarantees plen-4 fits the scatter buffer.
func (c *conn) scatterInto(w *wireCall, plen int) error {
	var lp [4]byte
	if _, err := io.ReadFull(c.br, lp[:]); err != nil {
		return wrapTimeout(wrapTruncated(err))
	}
	dn := int(binary.BigEndian.Uint32(lp[:]))
	if dn != plen-4 {
		return fmt.Errorf("pfsnet: read reply blob of %d bytes does not fill its frame (%w)", dn, ErrCorruptFrame)
	}
	if _, err := io.ReadFull(c.br, w.scatter[:dn]); err != nil {
		return wrapTimeout(wrapTruncated(err))
	}
	w.replyOp = opOK
	w.scattered = true
	w.scatterN = dn
	return nil
}

// kill marks the conn dead, closes the socket, and fails every pending
// call so no waiter ever hangs on a broken connection.
func (c *conn) kill(err error) {
	c.pendMu.Lock()
	if c.failed != nil {
		c.pendMu.Unlock()
		return
	}
	c.failed = err
	close(c.dead)
	waiters := make([]*wireCall, 0, len(c.pending))
	for tag, w := range c.pending {
		delete(c.pending, tag)
		//lint:allow detmaprange waiters each unblock independently; completion order is unobservable
		waiters = append(waiters, w)
	}
	c.pendMu.Unlock()
	// Socket close and waiter wake-ups happen outside pendMu: Close can
	// block in the kernel, and a woken waiter may immediately issue a
	// follow-up call that needs the lock.
	c.nc.Close()
	for _, w := range waiters {
		w.err = err
		close(w.done)
	}
	c.wm.setInflight(0)
}

// close shuts the connection down. Pending v2 calls fail with
// errConnClosed.
func (c *conn) close() error {
	if c.ver >= ProtoV2 {
		c.kill(errConnClosed)
		return nil
	}
	return c.nc.Close()
}

// call performs one request/reply exchange. Ownership of payload (a
// pooled buffer) transfers to the conn on entry — the conn releases it
// exactly once, on every path. The pooled reply belongs to the caller,
// who putBufs it once decoded.
func (c *conn) call(op byte, payload []byte) ([]byte, error) {
	reply, _, err := c.exchange(op, payload, nil, 0, 0)
	return reply, err
}

// exchange is call with an optional scatter destination (a non-nil dst
// asks for a successful read reply's data to land directly in dst, in
// which case the reply is nil and the int result is the byte count) and
// an optional trace context, applied only when the connection
// negotiated featTrace.
func (c *conn) exchange(op byte, payload, dst []byte, tcID, tcSpan uint64) ([]byte, int, error) {
	if c.ver >= ProtoV2 {
		w := &wireCall{op: op, payload: payload, scatter: dst, done: make(chan struct{})}
		if tcID != 0 && c.features&featTrace != 0 {
			w.tcID, w.tcSpan = tcID, tcSpan
		}
		if err := c.start(w); err != nil {
			return nil, 0, err
		}
		<-w.done
		return c.finishCall(w)
	}
	reply, err := c.callV1(op, payload)
	return reply, 0, err
}

func (c *conn) callV1(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer putBuf(payload) // ownership contract: the conn releases it
	if c.ioTimeout > 0 {
		// One deadline covers the whole round trip; cleared on success
		// so an idle pooled conn cannot expire between calls. A timed-out
		// conn is left desynced mid-frame, but the caller drops it from
		// the pool on any transport error, including this one.
		c.nc.SetDeadline(time.Now().Add(c.ioTimeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.bw, ProtoV1, 0, op, payload); err != nil {
		return nil, wrapTimeout(err)
	}
	// v1 is strictly one exchange in flight per connection: the mutex
	// IS the wire serialization, so holding it across the round trip is
	// the protocol, not a contention bug.
	//lint:allow lockio v1 wire is serial by design; c.mu is the per-connection wire serialization
	if err := c.bw.Flush(); err != nil {
		return nil, wrapTimeout(err)
	}
	c.wm.onTx(len(payload))
	fr, err := readFrame(c.br, ProtoV1)
	if err != nil {
		return nil, wrapTimeout(err)
	}
	c.wm.onRx(len(fr.payload))
	return finishReply(fr.op, fr.payload)
}

// start registers w and hands it (payload ownership included) to the
// writer. On a failed conn the payload is released and the conn's
// terminal error returned; otherwise w.done will be closed by the
// reader or by kill.
func (c *conn) start(w *wireCall) error {
	c.pendMu.Lock()
	if c.failed != nil {
		err := c.failed
		c.pendMu.Unlock()
		putBuf(w.payload)
		w.payload = nil
		return err
	}
	c.nextTag++
	w.tag = c.nextTag
	c.pending[w.tag] = w
	n := len(c.pending)
	c.pendMu.Unlock()
	c.wm.setInflight(n)
	if c.wm != nil {
		w.enq = time.Now()
	}
	select {
	case c.sendq <- w:
		// The writer (or its exit drain) now owns w.payload.
	case <-c.dead:
		// kill covers every registered call, including this one; the
		// payload never reached the writer.
		putBuf(w.payload)
		w.payload = nil
	}
	c.armReadDeadline()
	return nil
}

// startBatch registers a whole batch of calls and hands the chain to
// the writer through a single send-queue operation, so every frame of a
// striped request lands in one corked flush. Ownership of every payload
// transfers on entry, success or failure.
func (c *conn) startBatch(calls []*wireCall) error {
	c.pendMu.Lock()
	if c.failed != nil {
		err := c.failed
		c.pendMu.Unlock()
		for _, w := range calls {
			putBuf(w.payload)
			w.payload = nil
		}
		return err
	}
	var enq time.Time
	if c.wm != nil {
		enq = time.Now()
	}
	for i, w := range calls {
		c.nextTag++
		w.tag = c.nextTag
		w.enq = enq
		c.pending[w.tag] = w
		if i+1 < len(calls) {
			w.next = calls[i+1]
		}
	}
	n := len(c.pending)
	c.pendMu.Unlock()
	c.wm.setInflight(n)
	select {
	case c.sendq <- calls[0]:
	case <-c.dead:
		releaseChain(calls[0])
	}
	c.armReadDeadline()
	return nil
}

// armReadDeadline pushes the reader's deadline out to cover a freshly
// started exchange. SetReadDeadline interrupts a Read already blocked
// with no deadline, so this re-arms a reader idling on a quiet conn.
func (c *conn) armReadDeadline() {
	if c.ioTimeout > 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.ioTimeout))
	}
}

// finishCall maps a completed wireCall to (reply, scatteredBytes, error).
func (c *conn) finishCall(w *wireCall) ([]byte, int, error) {
	if w.err != nil {
		return nil, 0, w.err
	}
	if w.scattered {
		return nil, w.scatterN, nil
	}
	reply, err := finishReply(w.replyOp, w.reply)
	return reply, 0, err
}

// finishReply maps a reply frame to (payload, error), releasing the
// pooled payload on the error paths.
func finishReply(op byte, payload []byte) ([]byte, error) {
	switch op {
	case opOK:
		return payload, nil
	case opError:
		err := replyError(payload)
		putBuf(payload)
		return nil, err
	default:
		putBuf(payload)
		return nil, fmt.Errorf("pfsnet: unexpected reply opcode %d (%w)", op, ErrCorruptFrame)
	}
}

// File is an open pfsnet file handle.
type File struct {
	ID      uint64
	Name    string
	Size    int64
	layout  stripe.Layout
	servers []string
}

// Layout returns the file's striping layout.
func (f *File) Layout() stripe.Layout { return f.layout }

// NewClient returns a client of the file system whose metadata server is
// at metaAddr, with the default resilience policy armed (bounded retries
// with backoff, per-server breaker; no deadlines unless configured).
func NewClient(metaAddr string) *Client {
	return &Client{
		metaAddr:         metaAddr,
		PoolSize:         1,
		MaxRetries:       defaultMaxRetries,
		RetryBackoff:     defaultRetryBackoff,
		RetryBackoffMax:  defaultRetryBackoffMax,
		BreakerThreshold: defaultBreakerThreshold,
		data:             make(map[string][]*conn),
		next:             make(map[string]int),
		breakers:         make(map[string]*breaker),
	}
}

// NewIBridgeClient returns a client with fragment flagging enabled at the
// given thresholds (20 KB in the paper).
func NewIBridgeClient(metaAddr string, fragmentThreshold, randomThreshold int64) *Client {
	c := NewClient(metaAddr)
	c.FragmentThreshold = fragmentThreshold
	c.RandomThreshold = randomThreshold
	return c
}

// Close closes all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	if c.meta != nil {
		first = c.meta.close()
		c.meta = nil
	}
	for addr, pool := range c.data {
		for _, cn := range pool {
			if err := cn.close(); err != nil && first == nil {
				first = err
			}
		}
		delete(c.data, addr)
	}
	// Close hedge conns in a stable order so a multi-error Close reports
	// deterministically.
	haddrs := make([]string, 0, len(c.hdata))
	for addr := range c.hdata {
		haddrs = append(haddrs, addr)
	}
	sort.Strings(haddrs)
	for _, addr := range haddrs {
		if err := c.hdata[addr].close(); err != nil && first == nil {
			first = err
		}
		delete(c.hdata, addr)
	}
	return first
}

// wireMetricsLocked lazily resolves the client's wire metrics (c.mu
// held).
func (c *Client) wireMetricsLocked() *wireMetrics {
	if c.wm == nil && c.Obs != nil {
		c.wm = newWireMetrics(c.Obs, "pfsnet.client.")
	}
	return c.wm
}

// resMetrics lazily resolves the client's resilience metrics; nil when
// Obs is unset (all methods on a nil *resilienceMetrics are no-ops).
func (c *Client) resMetrics() *resilienceMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rm == nil && c.Obs != nil {
		c.rm = newResilienceMetrics(c.Obs)
	}
	return c.rm
}

// breakerFor returns addr's breaker, creating it lazily; nil when the
// breaker is disabled (every method on a nil *breaker is a no-op).
func (c *Client) breakerFor(addr string) *breaker {
	if c.BreakerThreshold < 0 {
		return nil
	}
	th := c.BreakerThreshold
	if th == 0 {
		th = defaultBreakerThreshold
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.breakers == nil {
		c.breakers = make(map[string]*breaker)
	}
	b := c.breakers[addr]
	if b == nil {
		b = &breaker{threshold: th}
		c.breakers[addr] = b
	}
	return b
}

// ServerDegraded reports whether the client's breaker currently marks
// the data server at addr degraded.
func (c *Client) ServerDegraded(addr string) bool {
	c.mu.Lock()
	b := c.breakers[addr]
	c.mu.Unlock()
	return b.isOpen()
}

// latKey identifies one per-server, per-op-class latency sketch.
type latKey struct {
	addr, class string
}

// slowLogMinSamples is the sketch warm-up before slow-request wide
// events fire: below it the p99 estimate is noise and every early
// request would log itself.
const slowLogMinSamples = 20

// opClass names the latency class of a data opcode.
func opClass(op byte) string {
	switch op {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opFlush:
		return "flush"
	default:
		return "other"
	}
}

// latArmed reports whether per-server latency sketches are on. Reads
// fields set before the first request, so it is race-free unlocked.
// Hedging arms them implicitly: the hedge timer is a sketch quantile.
func (c *Client) latArmed() bool { return c.TrackLatency || c.Obs != nil || c.Hedge }

// sketchFor returns the windowed latency sketch for (addr, class),
// creating it — and, when a registry is attached, its three quantile
// gauges — on first use. Nil when latency tracking is off: the hot
// path pays two pointer tests and nothing else.
func (c *Client) sketchFor(addr, class string) *sketch.Sketch {
	if !c.latArmed() {
		return nil
	}
	k := latKey{addr, class}
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if c.sketches == nil {
		c.sketches = make(map[latKey]*sketch.Sketch)
	}
	sk := c.sketches[k]
	if sk == nil {
		sk = sketch.New(0, 0)
		c.sketches[k] = sk
		if c.Obs != nil {
			prefix := "pfsnet.client.server." + addr + "." + class + "."
			for _, g := range []struct {
				name string
				q    float64
			}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
				q := g.q
				c.Obs.RegisterFunc(prefix+g.name, func() float64 { return sk.Quantile(q) })
			}
		}
	}
	return sk
}

// parentSketch returns the whole-request latency sketch for an op
// class — the reference distribution slow-request events compare
// against. Kept separate from the per-server sketches so fan-out
// requests do not skew per-server tails.
func (c *Client) parentSketch(class string) *sketch.Sketch {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if c.parentSk == nil {
		c.parentSk = make(map[string]*sketch.Sketch)
	}
	sk := c.parentSk[class]
	if sk == nil {
		sk = sketch.New(0, 0)
		c.parentSk[class] = sk
	}
	return sk
}

// ServerLatency is one row of LatencySnapshot: the recent (windowed)
// latency quantiles the client has observed against one data server
// for one op class, in milliseconds.
type ServerLatency struct {
	Server string
	Class  string
	Count  int64
	P50    float64
	P95    float64
	P99    float64
}

// LatencySnapshot returns the client's current per-server latency
// estimates, sorted by (Server, Class). The straggler-aware read path
// consumes this to pick hedging targets; tests use it to see a skewed
// server separate from its peers.
func (c *Client) LatencySnapshot() []ServerLatency {
	c.latMu.Lock()
	keys := make([]latKey, 0, len(c.sketches))
	for k := range c.sketches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr < keys[j].addr
		}
		return keys[i].class < keys[j].class
	})
	sks := make([]*sketch.Sketch, len(keys))
	for i, k := range keys {
		sks[i] = c.sketches[k]
	}
	c.latMu.Unlock()
	rows := make([]ServerLatency, len(keys))
	for i, k := range keys {
		qs := sks[i].Quantiles(0.50, 0.95, 0.99)
		rows[i] = ServerLatency{
			Server: k.addr, Class: k.class,
			Count: sks[i].Count(),
			P50:   qs[0], P95: qs[1], P99: qs[2],
		}
	}
	return rows
}

// FragTiming is one fragment (sub-request) line of a slow-request wide
// event: which server it went to, where, how long it took.
type FragTiming struct {
	Server string  `json:"server"`
	Off    int64   `json:"off"`
	Len    int64   `json:"len"`
	MS     float64 `json:"ms"`
	Err    string  `json:"err,omitempty"`
}

// parentReq is the per-ReadAt/WriteAt context threaded through the
// fan-out: the trace ids propagated to servers, and the per-fragment
// timings a slow-request event reports. Nil when neither tracing nor
// the slow log is armed — every touch point is pointer-guarded.
type parentReq struct {
	op    string
	class string
	trace uint64
	span  uint64
	start time.Time

	hedgesFired atomic.Int64
	hedgesWon   atomic.Int64

	mu    sync.Mutex
	frags []FragTiming
}

// noteHedge records a hedge fired under this parent request (won=false
// at issue time, won=true when the hedge reply beats the primary) for
// the slow-log wide event.
func (pr *parentReq) noteHedge(won bool) {
	if pr == nil {
		return
	}
	if won {
		pr.hedgesWon.Add(1)
	} else {
		pr.hedgesFired.Add(1)
	}
}

func (pr *parentReq) addFrag(server string, sub stripe.Sub, d time.Duration, err error) {
	if pr == nil {
		return
	}
	ft := FragTiming{Server: server, Off: sub.ServerOff, Len: sub.Length, MS: float64(d) / 1e6}
	if err != nil {
		ft.Err = err.Error()
	}
	pr.mu.Lock()
	pr.frags = append(pr.frags, ft)
	pr.mu.Unlock()
}

// startParent opens the per-request context, or returns nil when no
// observer wants it.
func (c *Client) startParent(op, class string) *parentReq {
	if c.Tracer == nil && c.SlowLog == nil {
		return nil
	}
	pr := &parentReq{op: op, class: class, start: time.Now()}
	if c.Tracer != nil {
		pr.trace = c.Tracer.NewID()
		pr.span = c.Tracer.NewID()
	}
	return pr
}

// slowEvent is the JSON shape of one slow-request wide event.
type slowEvent struct {
	TS    string  `json:"ts"`
	Op    string  `json:"op"`
	Trace string  `json:"trace,omitempty"`
	Off   int64   `json:"off"`
	Len   int64   `json:"len"`
	MS    float64 `json:"ms"`
	P99MS float64 `json:"p99_ms"`
	Err   string  `json:"err,omitempty"`
	// Hedge counters for this request: fired counts every hedge issued,
	// won those whose reply beat the primary.
	HedgesFired int64        `json:"hedges_fired,omitempty"`
	HedgesWon   int64        `json:"hedges_won,omitempty"`
	Frags       []FragTiming `json:"frags,omitempty"`
}

// finishParent closes the per-request context: it emits the client
// parent span and, when the request ran past the op class's current
// p99 (sampled before this request joins the distribution, so one
// slow request cannot raise its own bar), one wide-event JSON line
// with the per-fragment timings.
func (c *Client) finishParent(pr *parentReq, off, length int64, err error) {
	if pr == nil {
		return
	}
	dur := time.Since(pr.start)
	c.Tracer.Span(pr.trace, pr.span, 0, pr.op, pr.class, pr.start, dur)
	if c.SlowLog == nil {
		return
	}
	sk := c.parentSketch(pr.class)
	ms := float64(dur) / 1e6
	n := sk.Count()
	p99 := sk.Quantile(0.99)
	sk.Observe(ms)
	if n < slowLogMinSamples || ms <= p99 {
		return
	}
	pr.mu.Lock()
	frags := append([]FragTiming(nil), pr.frags...)
	pr.mu.Unlock()
	sort.Slice(frags, func(i, j int) bool {
		if frags[i].Server != frags[j].Server {
			return frags[i].Server < frags[j].Server
		}
		return frags[i].Off < frags[j].Off
	})
	ev := slowEvent{
		TS: time.Now().UTC().Format(time.RFC3339Nano),
		Op: pr.op, Off: off, Len: length,
		MS: ms, P99MS: p99, Frags: frags,
		HedgesFired: pr.hedgesFired.Load(),
		HedgesWon:   pr.hedgesWon.Load(),
	}
	if pr.trace != 0 {
		ev.Trace = fmt.Sprintf("%016x", pr.trace)
	}
	if err != nil {
		ev.Err = err.Error()
	}
	line, jerr := json.Marshal(ev)
	if jerr != nil {
		return
	}
	line = append(line, '\n')
	c.slowMu.Lock()
	c.SlowLog.Write(line) //lint:allow lockio slowMu exists only to keep wide-event lines atomic; cold path, past-p99 requests only
	c.slowMu.Unlock()
}

func (c *Client) metaConn() (*conn, error) {
	c.mu.Lock()
	if c.meta != nil {
		cn := c.meta
		c.mu.Unlock()
		return cn, nil
	}
	wm := c.wireMetricsLocked()
	c.mu.Unlock()
	// Dial outside the lock: negotiation is a network round trip.
	cn, err := dialConn(c.metaAddr, c.dialOpts(wm))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.meta != nil { // lost a dial race; keep the winner
		cn.close()
		return c.meta, nil
	}
	c.meta = cn
	return cn, nil
}

// dataConn returns a pooled connection to addr, dialling lazily and
// rotating round-robin through the pool.
func (c *Client) dataConn(addr string) (*conn, error) {
	c.mu.Lock()
	size := c.PoolSize
	if size <= 0 {
		size = 1
	}
	pool := c.data[addr]
	if len(pool) >= size {
		i := c.next[addr] % len(pool)
		c.next[addr] = i + 1
		cn := pool[i]
		c.mu.Unlock()
		return cn, nil
	}
	wm := c.wireMetricsLocked()
	c.mu.Unlock()
	cn, err := dialConn(addr, c.dialOpts(wm))
	c.mu.Lock()
	defer c.mu.Unlock()
	pool = c.data[addr]
	if err != nil {
		if len(pool) > 0 {
			return pool[0], nil // degrade to what we have
		}
		return nil, err
	}
	if len(pool) >= size { // lost a dial race and the pool filled up
		cn.close()
		i := c.next[addr] % len(pool)
		c.next[addr] = i + 1
		return pool[i], nil
	}
	c.data[addr] = append(pool, cn)
	return cn, nil
}

// dropDataConn discards a broken pooled connection so the next call
// redials.
func (c *Client) dropDataConn(addr string, cn *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.data[addr]
	for i, have := range pool {
		if have == cn {
			cn.close()
			c.data[addr] = append(pool[:i], pool[i+1:]...)
			return
		}
	}
}

// dataCall performs one request against a data server under the client's
// resilience policy: up to MaxRetries additional attempts on transport
// failures (read and write sub-requests are idempotent, so retries are
// safe), bounded exponential backoff with deterministic jitter between
// attempts, a RequestTimeout budget across the whole sequence, and a
// per-server breaker that fails fast with ErrServerDown once addr has
// accumulated consecutive transport failures. Server-reported (remote)
// errors are never retried — the request reached the server, which also
// proves the server alive, so they count as breaker successes.
//
// encode builds the request payload; it runs once per attempt because
// ownership of the encoded buffer transfers to the connection (DESIGN
// §11), so a retry needs a fresh one. dst, when non-nil, enables the
// scatter-read path of conn.exchange.
func (c *Client) dataCall(addr string, op byte, encode func() []byte, dst []byte, pr *parentReq) ([]byte, int, error) {
	rm := c.resMetrics()
	b := c.breakerFor(addr)
	sk := c.sketchFor(addr, opClass(op))
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var deadline time.Time
	if c.RequestTimeout > 0 {
		deadline = time.Now().Add(c.RequestTimeout)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		probe, err := b.acquire(addr)
		if err != nil {
			rm.onFastFail()
			return nil, 0, err
		}
		var t0 time.Time
		if sk != nil {
			t0 = time.Now()
		}
		reply, n, err := c.tryDataCall(addr, op, encode, dst, pr)
		if err == nil {
			if sk != nil {
				// One observation per successful attempt: what this server
				// actually delivered, not the whole retry sequence.
				sk.Observe(float64(time.Since(t0)) / 1e6)
			}
			c.recordOutcome(b, rm, probe, true)
			return reply, n, nil
		}
		if _, isRemote := err.(remoteError); isRemote {
			c.recordOutcome(b, rm, probe, true)
			return nil, 0, err
		}
		c.recordOutcome(b, rm, probe, false)
		if errors.Is(err, ErrDeadline) {
			rm.onDeadline()
		}
		lastErr = err
		if attempt >= retries {
			return nil, 0, lastErr
		}
		d := c.backoffDelay(attempt)
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			rm.onDeadline()
			return nil, 0, fmt.Errorf("pfsnet: %s: request budget exhausted after %d attempts (%w): %v",
				addr, attempt+1, ErrDeadline, lastErr)
		}
		rm.onRetry()
		if d > 0 {
			time.Sleep(d)
		}
	}
}

// tryDataCall is one attempt of a data request: take a pooled conn,
// exchange, and drop the conn from the pool if the transport failed
// under it so the next attempt redials.
func (c *Client) tryDataCall(addr string, op byte, encode func() []byte, dst []byte, pr *parentReq) ([]byte, int, error) {
	cn, err := c.dataConn(addr)
	if err != nil {
		return nil, 0, err
	}
	var tcID, tcSpan uint64
	if pr != nil {
		tcID, tcSpan = pr.trace, pr.span
	}
	var reply []byte
	var n int
	if c.hedgeEligible(op, cn) {
		reply, n, err = c.hedgedExchange(addr, cn, encode, dst, tcID, tcSpan, pr)
	} else {
		reply, n, err = cn.exchange(op, encode(), dst, tcID, tcSpan)
	}
	if err != nil {
		if _, isRemote := err.(remoteError); !isRemote {
			c.dropDataConn(addr, cn)
		}
		return nil, 0, err
	}
	return reply, n, nil
}

// recordOutcome feeds an attempt result to the breaker and keeps the
// open-breaker metrics in step with its state transitions.
func (c *Client) recordOutcome(b *breaker, rm *resilienceMetrics, probe, ok bool) {
	opened, closed := b.record(probe, ok)
	if opened {
		rm.onOpen(c.openCount.Add(1))
	}
	if closed {
		rm.onClose(c.openCount.Add(-1))
	}
}

// backoffDelay computes the pause before the retry following attempt
// (0-based): RetryBackoff·2^attempt capped at RetryBackoffMax, plus
// deterministic jitter of up to half the step drawn from the client
// Seed and a global attempt sequence — bounded exponential backoff
// whose timing is a pure function of the client's failure history.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		return 0
	}
	maxd := c.RetryBackoffMax
	if maxd <= 0 {
		maxd = defaultRetryBackoffMax
	}
	d := base << uint(min(attempt, 20))
	if d <= 0 || d > maxd {
		d = maxd
	}
	n := c.attempts.Add(1)
	jitter := time.Duration(faults.Mix64(c.Seed^n) % uint64(d/2+1))
	return d + jitter
}

func (c *Client) fileFromReply(name string, payload []byte) (*File, error) {
	d := dec{b: payload}
	f := &File{Name: name}
	f.ID = d.u64()
	f.Size = d.i64()
	unit := d.i64()
	n := d.u32()
	for i := uint32(0); i < n; i++ {
		f.servers = append(f.servers, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	// Optional trailing T_i load-hint vector (count u32 + float64 bits
	// per server, stripe order). Decoders ignore trailing payload bytes
	// by protocol contract, so servers that predate hints send nothing
	// and this block is skipped; a malformed vector is dropped rather
	// than failing the open.
	if len(d.b) >= 4 {
		hd := dec{b: d.b}
		hn := hd.u32()
		if int(hn) == len(f.servers) {
			hints := make(map[string]float64, hn)
			for i := uint32(0); i < hn; i++ {
				hints[f.servers[i]] = math.Float64frombits(hd.u64())
			}
			if hd.err == nil {
				c.SetLoadHints(hints)
			}
		}
	}
	f.layout = stripe.Layout{Unit: unit, Servers: len(f.servers)}
	return f, f.layout.Validate()
}

// metaCall performs one metadata request; ownership of payload transfers
// in (released here on the paths that never reach a connection). On a
// transport failure the cached metadata connection is discarded so the
// next call redials instead of failing forever against a dead socket.
func (c *Client) metaCall(op byte, payload []byte) ([]byte, error) {
	mc, err := c.metaConn()
	if err != nil {
		putBuf(payload)
		return nil, err
	}
	reply, err := mc.call(op, payload)
	if err != nil {
		if _, isRemote := err.(remoteError); !isRemote {
			c.mu.Lock()
			if c.meta == mc {
				c.meta = nil
			}
			c.mu.Unlock()
			mc.close()
		}
		return nil, err
	}
	return reply, nil
}

// Create creates a file of the given size.
func (c *Client) Create(name string, size int64) (*File, error) {
	e := newEnc()
	e.str(name)
	e.i64(size)
	reply, err := c.metaCall(opCreate, e.b)
	if err != nil {
		return nil, err
	}
	f, err := c.fileFromReply(name, reply)
	putBuf(reply)
	return f, err
}

// Open opens an existing file.
func (c *Client) Open(name string) (*File, error) {
	e := newEnc()
	e.str(name)
	reply, err := c.metaCall(opOpen, e.b)
	if err != nil {
		return nil, err
	}
	f, err := c.fileFromReply(name, reply)
	putBuf(reply)
	return f, err
}

// subs decomposes a request, applying fragment flagging when configured.
func (c *Client) subs(f *File, off, length int64) []stripe.Sub {
	if c.FragmentThreshold > 0 {
		return f.layout.DecomposeFlagged(off, length, c.FragmentThreshold)
	}
	return f.layout.Decompose(off, length)
}

// groupByServer splits subs into per-server groups, preserving the
// sub-request order within each group.
func groupByServer(subs []stripe.Sub, nsrv int) [][]stripe.Sub {
	per := make([][]stripe.Sub, nsrv)
	for _, sub := range subs {
		per[sub.Server] = append(per[sub.Server], sub)
	}
	groups := per[:0]
	for _, g := range per {
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}

// writeHdrSize is the encoded size of a write sub-request around its
// data: file u64 + off i64 + flags u8 + blob length prefix u32.
const writeHdrSize = 8 + 8 + 1 + 4

// encodeWrite builds one write sub-request payload in a pooled buffer
// sized for the whole message, so the single user-data copy lands
// directly in the buffer the wire will own.
func encodeWrite(f *File, off int64, p []byte, sub stripe.Sub, random bool) []byte {
	e := newEncN(writeHdrSize + int(sub.Length))
	e.u64(f.ID)
	e.i64(sub.ServerOff)
	var flags byte
	if sub.Fragment || random {
		flags |= 1
	}
	e.u8(flags)
	e.bytes(p[sub.FileOff-off : sub.FileOff-off+sub.Length])
	return e.b
}

// encodeRead builds one read sub-request payload.
func encodeRead(f *File, sub stripe.Sub) []byte {
	e := newEncN(24)
	e.u64(f.ID)
	e.i64(sub.ServerOff)
	e.i64(sub.Length)
	return e.b
}

// writeSub issues one write sub-request through the resilient path.
func (c *Client) writeSub(f *File, off int64, p []byte, sub stripe.Sub, random bool, pr *parentReq) error {
	addr := f.servers[sub.Server]
	var t0 time.Time
	if pr != nil {
		t0 = time.Now()
	}
	reply, _, err := c.dataCall(addr, opWrite, func() []byte {
		return encodeWrite(f, off, p, sub, random)
	}, nil, pr)
	putBuf(reply)
	if pr != nil {
		pr.addFrag(addr, sub, time.Since(t0), err)
	}
	return err
}

// writeSubs runs write sub-requests through the resilient per-sub path,
// concurrently when there are several.
func (c *Client) writeSubs(f *File, off int64, p []byte, subs []stripe.Sub, random bool, pr *parentReq) error {
	if len(subs) == 1 {
		return c.writeSub(f, off, p, subs[0], random, pr)
	}
	errs := make(chan error, len(subs))
	for _, sub := range subs {
		sub := sub
		go func() {
			errs <- c.writeSub(f, off, p, sub, random, pr)
		}()
	}
	var first error
	for range subs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// batchConn returns a pipelined conn to addr for batch submission, with
// addr's breaker. A nil conn means batching does not apply — breaker
// open (the per-sub path owns the probe/fail-fast semantics), dial
// failure, or a v1 peer — and the caller falls back to per-sub calls.
func (c *Client) batchConn(addr string) (*conn, *breaker) {
	b := c.breakerFor(addr)
	if b.isOpen() {
		return nil, b
	}
	cn, err := c.dataConn(addr)
	if err != nil || cn.ver < ProtoV2 {
		return nil, b
	}
	return cn, b
}

// writeGroup issues one server's write sub-requests. On a pipelined
// connection with a healthy breaker the whole group is registered as
// one chain and flushed in a single vectored write; subs whose batched
// attempt hit a transport failure are retried through the fully
// resilient per-sub path.
func (c *Client) writeGroup(f *File, off int64, p []byte, subs []stripe.Sub, random bool, pr *parentReq) error {
	if len(subs) == 1 {
		return c.writeSub(f, off, p, subs[0], random, pr)
	}
	addr := f.servers[subs[0].Server]
	cn, b := c.batchConn(addr)
	if cn == nil {
		return c.writeSubs(f, off, p, subs, random, pr)
	}
	sk := c.sketchFor(addr, "write")
	var tcID, tcSpan uint64
	if pr != nil && cn.features&featTrace != 0 {
		tcID, tcSpan = pr.trace, pr.span
	}
	calls := make([]*wireCall, len(subs))
	for i, sub := range subs {
		calls[i] = &wireCall{
			op:      opWrite,
			payload: encodeWrite(f, off, p, sub, random),
			done:    make(chan struct{}),
			tcID:    tcID,
			tcSpan:  tcSpan,
		}
	}
	var t0 time.Time
	if sk != nil || pr != nil {
		t0 = time.Now()
	}
	if err := cn.startBatch(calls); err != nil {
		return c.writeSubs(f, off, p, subs, random, pr)
	}
	rm := c.resMetrics()
	var retry []stripe.Sub
	var first error
	for i, w := range calls {
		<-w.done
		reply, _, err := cn.finishCall(w)
		var el time.Duration
		if sk != nil || pr != nil {
			el = time.Since(t0)
		}
		if err == nil {
			putBuf(reply)
			if sk != nil {
				sk.Observe(float64(el) / 1e6)
			}
			pr.addFrag(addr, subs[i], el, nil)
			c.recordOutcome(b, rm, false, true)
			continue
		}
		if _, isRemote := err.(remoteError); isRemote {
			pr.addFrag(addr, subs[i], el, err)
			c.recordOutcome(b, rm, false, true)
			if first == nil {
				first = err
			}
			continue
		}
		// Transport failure: the per-sub retry path records this sub's
		// fragment timing, so don't double-count it here.
		retry = append(retry, subs[i])
	}
	if len(retry) > 0 {
		c.dropDataConn(addr, cn)
		c.recordOutcome(b, rm, false, false)
		if err := c.writeSubs(f, off, p, retry, random, pr); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteAt writes p at offset off, striping it over the data servers. It
// is synchronous: it returns once every data server has acknowledged its
// sub-request. Each server's sub-requests go out as one batched flush;
// servers proceed in parallel.
func (c *Client) WriteAt(f *File, off int64, p []byte) error {
	if err := c.checkRange(f, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	pr := c.startParent("WriteAt", "write")
	err := c.writeAt(f, off, p, pr)
	c.finishParent(pr, off, int64(len(p)), err)
	return err
}

func (c *Client) writeAt(f *File, off int64, p []byte, pr *parentReq) error {
	random := c.RandomThreshold > 0 && int64(len(p)) < c.RandomThreshold
	subs := c.subs(f, off, int64(len(p)))
	if len(subs) == 1 {
		return c.writeSub(f, off, p, subs[0], random, pr)
	}
	groups := groupByServer(subs, len(f.servers))
	if len(groups) == 1 {
		return c.writeGroup(f, off, p, groups[0], random, pr)
	}
	c.orderGroups(f, groups, "write")
	errs := make(chan error, len(groups))
	for _, g := range groups {
		g := g
		go func() {
			errs <- c.writeGroup(f, off, p, g, random, pr)
		}()
	}
	var first error
	for range groups {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// finishRead validates a read result: either n bytes were already
// scattered into dst (reply nil), or reply is the pooled payload to
// decode and copy out — released here on every path.
func finishRead(reply []byte, n int, dst []byte, want int64) error {
	if reply == nil {
		if int64(n) != want {
			return fmt.Errorf("pfsnet: short read: %d of %d bytes", n, want)
		}
		return nil
	}
	d := dec{b: reply}
	data := d.bytes()
	if d.err != nil {
		putBuf(reply)
		return d.err
	}
	if int64(len(data)) != want {
		putBuf(reply)
		return fmt.Errorf("pfsnet: short read: %d of %d bytes", len(data), want)
	}
	copy(dst, data)
	putBuf(reply)
	return nil
}

// readSub issues one read sub-request through the resilient path,
// scattering the reply directly into p on pipelined connections.
func (c *Client) readSub(f *File, off int64, p []byte, sub stripe.Sub, pr *parentReq) error {
	addr := f.servers[sub.Server]
	dst := p[sub.FileOff-off : sub.FileOff-off+sub.Length]
	var t0 time.Time
	if pr != nil {
		t0 = time.Now()
	}
	reply, n, err := c.dataCall(addr, opRead, func() []byte {
		return encodeRead(f, sub)
	}, dst, pr)
	if pr != nil {
		pr.addFrag(addr, sub, time.Since(t0), err)
	}
	if err != nil {
		return err
	}
	return finishRead(reply, n, dst, sub.Length)
}

// readSubs runs read sub-requests through the resilient per-sub path,
// concurrently when there are several.
func (c *Client) readSubs(f *File, off int64, p []byte, subs []stripe.Sub, pr *parentReq) error {
	if len(subs) == 1 {
		return c.readSub(f, off, p, subs[0], pr)
	}
	errs := make(chan error, len(subs))
	for _, sub := range subs {
		sub := sub
		go func() {
			errs <- c.readSub(f, off, p, sub, pr)
		}()
	}
	var first error
	for range subs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// readGroup issues one server's read sub-requests, batched over one
// pipelined connection when possible (replies scatter straight into p);
// subs whose batched attempt hit a transport failure are retried
// through the fully resilient per-sub path.
func (c *Client) readGroup(f *File, off int64, p []byte, subs []stripe.Sub, pr *parentReq) error {
	if len(subs) == 1 {
		return c.readSub(f, off, p, subs[0], pr)
	}
	addr := f.servers[subs[0].Server]
	cn, b := c.batchConn(addr)
	if cn == nil {
		return c.readSubs(f, off, p, subs, pr)
	}
	sk := c.sketchFor(addr, "read")
	var tcID, tcSpan uint64
	if pr != nil && cn.features&featTrace != 0 {
		tcID, tcSpan = pr.trace, pr.span
	}
	calls := make([]*wireCall, len(subs))
	for i, sub := range subs {
		calls[i] = &wireCall{
			op:      opRead,
			payload: encodeRead(f, sub),
			scatter: p[sub.FileOff-off : sub.FileOff-off+sub.Length],
			done:    make(chan struct{}),
			tcID:    tcID,
			tcSpan:  tcSpan,
		}
	}
	var t0 time.Time
	if sk != nil || pr != nil {
		t0 = time.Now()
	}
	if err := cn.startBatch(calls); err != nil {
		return c.readSubs(f, off, p, subs, pr)
	}
	rm := c.resMetrics()
	hedged := c.Hedge && cn.ver >= ProtoV2
	var retry []stripe.Sub
	var first error
	for i, w := range calls {
		sub := subs[i]
		if hedged {
			c.awaitHedged(cn, w, addr, func() []byte { return encodeRead(f, sub) }, pr)
		} else {
			<-w.done
		}
		reply, n, err := cn.finishCall(w)
		var el time.Duration
		if sk != nil || pr != nil {
			el = time.Since(t0)
		}
		if err != nil {
			if _, isRemote := err.(remoteError); isRemote {
				pr.addFrag(addr, sub, el, err)
				c.recordOutcome(b, rm, false, true)
				if first == nil {
					first = err
				}
			} else {
				// Transport failure: the per-sub retry path records this
				// sub's fragment timing, so don't double-count it here.
				retry = append(retry, sub)
			}
			continue
		}
		if sk != nil {
			sk.Observe(float64(el) / 1e6)
		}
		pr.addFrag(addr, sub, el, nil)
		c.recordOutcome(b, rm, false, true)
		dst := p[sub.FileOff-off : sub.FileOff-off+sub.Length]
		if err := finishRead(reply, n, dst, sub.Length); err != nil && first == nil {
			first = err
		}
	}
	if len(retry) > 0 {
		c.dropDataConn(addr, cn)
		c.recordOutcome(b, rm, false, false)
		if err := c.readSubs(f, off, p, retry, pr); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadAt reads len(p) bytes at offset off into p. Each server's
// sub-requests go out as one batched flush and their replies scatter
// directly into p; servers proceed in parallel.
func (c *Client) ReadAt(f *File, off int64, p []byte) error {
	if err := c.checkRange(f, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	pr := c.startParent("ReadAt", "read")
	err := c.readAt(f, off, p, pr)
	c.finishParent(pr, off, int64(len(p)), err)
	return err
}

func (c *Client) readAt(f *File, off int64, p []byte, pr *parentReq) error {
	subs := c.subs(f, off, int64(len(p)))
	if len(subs) == 1 {
		return c.readSub(f, off, p, subs[0], pr)
	}
	groups := groupByServer(subs, len(f.servers))
	if len(groups) == 1 {
		return c.readGroup(f, off, p, groups[0], pr)
	}
	c.orderGroups(f, groups, "read")
	errs := make(chan error, len(groups))
	for _, g := range groups {
		g := g
		go func() {
			errs <- c.readGroup(f, off, p, g, pr)
		}()
	}
	var first error
	for range groups {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush asks every data server to drain its fragment log for f back to
// the object store (pass nil to flush everything on every server).
// Returns the total bytes written back.
func (c *Client) Flush(f *File) (int64, error) {
	var servers []string
	var id uint64
	if f != nil {
		servers = f.servers
		id = f.ID
	} else {
		// Without a file we have no server list; flush via the cached
		// data connections.
		c.mu.Lock()
		for addr := range c.data {
			servers = append(servers, addr)
		}
		c.mu.Unlock()
		// Flush in a stable order so multi-server error/byte totals do
		// not depend on connection-map iteration order.
		sort.Strings(servers)
	}
	var total int64
	for _, addr := range servers {
		reply, _, err := c.dataCall(addr, opFlush, func() []byte {
			e := newEnc()
			e.u64(id)
			return e.b
		}, nil, nil)
		if err != nil {
			return total, err
		}
		d := dec{b: reply}
		total += d.i64()
		putBuf(reply)
		if d.err != nil {
			return total, d.err
		}
	}
	return total, nil
}

func (c *Client) checkRange(f *File, off, length int64) error {
	if off < 0 || length < 0 || off+length > f.Size {
		return fmt.Errorf("pfsnet: request [%d,+%d) outside file %q of size %d", off, length, f.Name, f.Size)
	}
	return nil
}
