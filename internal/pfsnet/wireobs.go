package pfsnet

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// wireMetrics holds the wire-level observability hooks for one endpoint
// (client or data server). A nil *wireMetrics disables everything at the
// cost of one pointer test per event — the same zero-cost-when-off
// contract the rest of the repo's obs wiring follows.
type wireMetrics struct {
	framesTx *obs.Counter // frames written
	framesRx *obs.Counter // frames read
	bytesTx  *obs.Counter // payload bytes written
	bytesRx  *obs.Counter // payload bytes read
	inflight *obs.Gauge   // requests issued and not yet completed
	qwait    *obs.Hist    // ms from enqueue to wire write / worker start

	// Vectored-path metrics: how well the writev batching amortizes
	// syscalls, and how many payload bytes crossed the wire without an
	// intermediate stream-buffer copy (large iovec payloads on the send
	// side, scatter reads on the receive side).
	writevCalls    *obs.Counter // vectored flushes submitted
	writevFrames   *obs.Counter // frames carried by those flushes
	writevBatch    *obs.Hist    // frames per vectored flush
	copyAvoided    *obs.Counter // payload bytes moved with no intermediate copy
	scatterReads   *obs.Counter // replies scattered straight into caller buffers
}

// newWireMetrics resolves the endpoint's metrics in reg under prefix
// (e.g. "pfsnet.client."). Returns nil when reg is nil.
func newWireMetrics(reg *obs.Registry, prefix string) *wireMetrics {
	if reg == nil {
		return nil
	}
	armPoolMetrics(reg)
	return &wireMetrics{
		framesTx:     reg.Counter(prefix + "frames_tx"),
		framesRx:     reg.Counter(prefix + "frames_rx"),
		bytesTx:      reg.Counter(prefix + "bytes_tx"),
		bytesRx:      reg.Counter(prefix + "bytes_rx"),
		inflight:     reg.Gauge(prefix + "inflight"),
		qwait:        reg.Hist(prefix + "queue_wait_ms"),
		writevCalls:  reg.Counter(prefix + "writev_calls"),
		writevFrames: reg.Counter(prefix + "writev_frames"),
		writevBatch:  reg.Hist(prefix + "writev_frames_per_call"),
		copyAvoided:  reg.Counter(prefix + "copy_avoided_bytes"),
		scatterReads: reg.Counter(prefix + "scatter_reads"),
	}
}

func (m *wireMetrics) onWritev(frames int) {
	if m == nil || frames == 0 {
		return
	}
	m.writevCalls.Inc()
	m.writevFrames.Add(int64(frames))
	m.writevBatch.Observe(float64(frames))
}

func (m *wireMetrics) onCopyAvoided(n int) {
	if m == nil {
		return
	}
	m.copyAvoided.Add(int64(n))
}

func (m *wireMetrics) onScatter(n int) {
	if m == nil {
		return
	}
	m.scatterReads.Inc()
	m.copyAvoided.Add(int64(n))
}

// Pool ownership metrics. The buffer pool is package-global, so its
// foreign-put count lives in a global atomic; armPoolMetrics mirrors it
// into whichever registries are in play (idempotent per registry — the
// counter is shared monotonic state, and every registry sees the same
// process-wide total via the atomic).
var (
	poolForeignPuts atomic.Int64
	poolObs         atomic.Pointer[obs.Counter]
)

// notePoolForeignPut records a rejected foreign-capacity putBuf.
func notePoolForeignPut() {
	poolForeignPuts.Add(1)
	if c := poolObs.Load(); c != nil {
		c.Inc()
	}
}

// armPoolMetrics points the pool's foreign-put counter at reg.
func armPoolMetrics(reg *obs.Registry) {
	poolObs.Store(reg.Counter("pfsnet.pool.foreign_put"))
}

// PoolForeignPuts returns the process-wide count of foreign-capacity
// buffers rejected by the wire pool — nonzero in steady state means an
// ownership-transfer bug is churning heap somewhere.
func PoolForeignPuts() int64 { return poolForeignPuts.Load() }

func (m *wireMetrics) onTx(payloadBytes int) {
	if m == nil {
		return
	}
	m.framesTx.Inc()
	m.bytesTx.Add(int64(payloadBytes))
}

func (m *wireMetrics) onRx(payloadBytes int) {
	if m == nil {
		return
	}
	m.framesRx.Inc()
	m.bytesRx.Add(int64(payloadBytes))
}

func (m *wireMetrics) setInflight(n int) {
	if m == nil {
		return
	}
	m.inflight.Set(int64(n))
}

func (m *wireMetrics) observeQueueWait(enq time.Time) {
	if m == nil || enq.IsZero() {
		return
	}
	m.qwait.Observe(float64(time.Since(enq)) / float64(time.Millisecond))
}

// resilienceMetrics mirrors the client's retry/breaker activity into the
// obs registry. Same nil-sink contract as wireMetrics: a nil receiver
// turns every hook into a pointer test.
type resilienceMetrics struct {
	retries      *obs.Counter // transport-failure retries issued
	deadlines    *obs.Counter // attempts/requests lost to a deadline
	breakerOpens *obs.Counter // breaker open transitions
	fastFails    *obs.Counter // requests refused while a breaker was open
	breakersOpen *obs.Gauge   // breakers currently open
}

func newResilienceMetrics(reg *obs.Registry) *resilienceMetrics {
	if reg == nil {
		return nil
	}
	return &resilienceMetrics{
		retries:      reg.Counter("pfsnet.client.retries"),
		deadlines:    reg.Counter("pfsnet.client.deadline_exceeded"),
		breakerOpens: reg.Counter("pfsnet.client.breaker_opens"),
		fastFails:    reg.Counter("pfsnet.client.breaker_fastfails"),
		breakersOpen: reg.Gauge("pfsnet.client.breakers_open"),
	}
}

func (m *resilienceMetrics) onRetry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *resilienceMetrics) onDeadline() {
	if m == nil {
		return
	}
	m.deadlines.Inc()
}

func (m *resilienceMetrics) onFastFail() {
	if m == nil {
		return
	}
	m.fastFails.Inc()
}

func (m *resilienceMetrics) onOpen(nowOpen int64) {
	if m == nil {
		return
	}
	m.breakerOpens.Inc()
	m.breakersOpen.Set(nowOpen)
}

func (m *resilienceMetrics) onClose(nowOpen int64) {
	if m == nil {
		return
	}
	m.breakersOpen.Set(nowOpen)
}

// hedgeMetrics tracks the hedged-read machinery. Unlike wireMetrics it
// keeps local atomics alongside the optional registry mirrors: hedge
// counts feed deterministic test/chaos summaries via HedgeStats even
// when no registry is attached. A nil receiver (hedging never armed) is
// a no-op.
type hedgeMetrics struct {
	armed       atomic.Int64 // hedge timers started
	fired       atomic.Int64 // hedges actually issued to the wire
	won         atomic.Int64 // hedge replies that beat the primary
	wasted      atomic.Int64 // hedges fired whose primary won anyway
	suppressed  atomic.Int64 // hedges skipped for lack of a budget token
	cancelsSent atomic.Int64 // opCancel frames issued for losers

	// Registry mirrors; nil without an obs registry.
	cArmed, cFired, cWon, cWasted, cSuppressed, cCancels *obs.Counter
}

// newHedgeMetrics builds the client's hedge metrics; reg may be nil, in
// which case only the local atomics count.
func newHedgeMetrics(reg *obs.Registry) *hedgeMetrics {
	m := &hedgeMetrics{}
	if reg != nil {
		m.cArmed = reg.Counter("pfsnet.client.hedges_armed")
		m.cFired = reg.Counter("pfsnet.client.hedges_fired")
		m.cWon = reg.Counter("pfsnet.client.hedges_won")
		m.cWasted = reg.Counter("pfsnet.client.hedges_wasted")
		m.cSuppressed = reg.Counter("pfsnet.client.hedges_suppressed")
		m.cCancels = reg.Counter("pfsnet.client.cancels_sent")
	}
	return m
}

func bump(local *atomic.Int64, mirror *obs.Counter) {
	local.Add(1)
	if mirror != nil {
		mirror.Inc()
	}
}

func (m *hedgeMetrics) onArmed() {
	if m == nil {
		return
	}
	bump(&m.armed, m.cArmed)
}

func (m *hedgeMetrics) onFired() {
	if m == nil {
		return
	}
	bump(&m.fired, m.cFired)
}

func (m *hedgeMetrics) onWon() {
	if m == nil {
		return
	}
	bump(&m.won, m.cWon)
}

func (m *hedgeMetrics) onWasted() {
	if m == nil {
		return
	}
	bump(&m.wasted, m.cWasted)
}

func (m *hedgeMetrics) onSuppressed() {
	if m == nil {
		return
	}
	bump(&m.suppressed, m.cSuppressed)
}

func (m *hedgeMetrics) onCancelSent() {
	if m == nil {
		return
	}
	bump(&m.cancelsSent, m.cCancels)
}
