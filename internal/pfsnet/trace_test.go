package pfsnet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stripe"
)

// TestTracingInterop checks the featTrace hello extension in every
// pairing of tracing and non-tracing peers. The data path must be
// byte-identical in all of them: tracing changes frame headers, never
// payload bytes, and a peer that did not negotiate the feature never
// sees a trace context.
func TestTracingInterop(t *testing.T) {
	payload := make([]byte, 65*1024) // unaligned: exercises the fragment path
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cases := []struct {
		name         string
		serverMax    int
		serverNoFeat bool
		clientTrace  bool
		serverTrace  bool
		wantFeat     bool
	}{
		{"traced client, v1 server", 1, false, true, false, false},
		{"traced client, v2 server without tracing", 0, true, true, false, false},
		{"plain client, traced server", 0, false, false, true, false},
		{"traced client, traced server", 0, false, true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var srvTracer *obs.XTracer
			if tc.serverTrace {
				srvTracer = obs.NewXTracer("srv0", 0)
			}
			ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{
				Bridge:         true,
				MaxProto:       tc.serverMax,
				DisableTracing: tc.serverNoFeat,
				Tracer:         srvTracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()
			ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			defer ms.Close()

			c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
			var cliTracer *obs.XTracer
			if tc.clientTrace {
				cliTracer = obs.NewXTracer("client", 0)
				c.Tracer = cliTracer
			}

			f, err := c.Create("interop", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WriteAt(f, 0, payload); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if err := c.ReadAt(f, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("data mismatch")
			}

			// Every pooled data conn must have agreed on exactly the
			// expected feature set.
			c.mu.Lock()
			if len(c.data[ds.Addr()]) == 0 {
				c.mu.Unlock()
				t.Fatal("no pooled data connections")
			}
			for i, cn := range c.data[ds.Addr()] {
				if got := cn.features&featTrace != 0; got != tc.wantFeat {
					c.mu.Unlock()
					t.Fatalf("conn %d: featTrace=%v, want %v", i, got, tc.wantFeat)
				}
			}
			c.mu.Unlock()
			c.Close()

			if !tc.wantFeat {
				// No negotiated feature means no server-side spans, even
				// when the server brought a tracer.
				if n := srvTracer.Len(); n != 0 {
					t.Fatalf("server recorded %d spans without negotiating featTrace", n)
				}
				return
			}

			// Client side: one parent span per WriteAt/ReadAt.
			names := map[string]int{}
			byID := map[uint64]obs.XEvent{}
			for _, ev := range cliTracer.Events() {
				names[ev.Name]++
				if ev.Span != 0 {
					byID[ev.Span] = ev
				}
			}
			if names["WriteAt"] != 1 || names["ReadAt"] != 1 {
				t.Fatalf("client spans = %v, want one WriteAt and one ReadAt", names)
			}

			// Server side: the respond span closes after the flush, which
			// can trail the client's receive — poll briefly.
			want := []string{"queue-wait", "store", "respond"}
			deadline := time.Now().Add(2 * time.Second)
			var srvEvents []obs.XEvent
			for {
				srvEvents = srvTracer.Events()
				counts := map[string]int{}
				for _, ev := range srvEvents {
					counts[ev.Name]++
				}
				ok := true
				for _, n := range want {
					if counts[n] == 0 {
						ok = false
					}
				}
				if ok || time.Now().After(deadline) {
					if !ok {
						t.Fatalf("server span names = %v, want all of %v", counts, want)
					}
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			// Every server span must hang off a real client parent span
			// under the same trace id.
			for _, ev := range srvEvents {
				parent, ok := byID[ev.Parent]
				if !ok {
					t.Fatalf("server span %q parent %016x not found among client spans", ev.Name, ev.Parent)
				}
				if ev.Trace != parent.Trace {
					t.Fatalf("server span %q trace %016x != parent trace %016x", ev.Name, ev.Trace, parent.Trace)
				}
			}

			// The merged view must render both processes on one timeline.
			var buf bytes.Buffer
			if err := obs.WriteChromeX(&buf, append(cliTracer.Events(), srvEvents...)); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []struct {
					Name string                 `json:"name"`
					Ph   string                 `json:"ph"`
					Args map[string]interface{} `json:"args"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("merged trace is not valid JSON: %v", err)
			}
			procs := map[string]bool{}
			for _, ev := range doc.TraceEvents {
				if ev.Name == "process_name" {
					procs[ev.Args["name"].(string)] = true
				}
			}
			if !procs["client"] || !procs["srv0"] {
				t.Fatalf("merged trace processes = %v, want client and srv0", procs)
			}
		})
	}
}

// TestLatencySketchSeparation makes one of two data servers a straggler
// with a scoped latency fault and checks the client's windowed sketches
// tell the two servers apart.
func TestLatencySketchSeparation(t *testing.T) {
	// 25ms of injected straggle: wide enough that scheduler jitter or
	// race-detector overhead on the fast server cannot close the gap.
	plan := faults.MustParse("seed=7; latency=srv1:25ms")
	var addrs []string
	for i := 0; i < 2; i++ {
		scope := "srv0"
		var p *faults.Plan
		if i == 1 {
			scope, p = "srv1", plan
		}
		ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{
			Store:      NewMemStore(),
			FaultPlan:  p,
			FaultScope: scope,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		addrs = append(addrs, ds.Addr())
	}
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	c.TrackLatency = true
	defer c.Close()

	f, err := c.Create("skew", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{0xC3}, 64*1024)
	if err := c.WriteAt(f, 0, bytes.Repeat(block, 2)); err != nil {
		t.Fatal(err)
	}
	// Aligned single-server reads: even offsets land on srv0, odd on the
	// straggler. Enough of them to populate the sketch windows.
	got := make([]byte, 64*1024)
	for i := 0; i < 50; i++ {
		if err := c.ReadAt(f, int64(i%2)*64*1024, got); err != nil {
			t.Fatal(err)
		}
	}

	p95 := map[string]float64{}
	for _, row := range c.LatencySnapshot() {
		if row.Class == "read" {
			p95[row.Server] = row.P95
		}
	}
	slow, fast := p95[addrs[1]], p95[addrs[0]]
	if slow < 15.0 {
		t.Fatalf("straggler p95 = %.2fms, want >= 15ms from the injected 25ms latency", slow)
	}
	if slow <= fast*1.5 {
		t.Fatalf("sketches do not separate the straggler: srv1 p95 %.2fms vs srv0 p95 %.2fms", slow, fast)
	}
}

// TestSlowRequestLog drives the wide-event path directly: after the
// warm-up samples, a request past the class p99 must emit one JSON line
// carrying its fragment timings, and the fast requests none.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	c := NewClient("127.0.0.1:1") // never dialed: the slow log needs no conns
	c.SlowLog = &buf

	finish := func(age time.Duration, frag bool) {
		pr := c.startParent("ReadAt", "read")
		if pr == nil {
			t.Fatal("startParent returned nil with SlowLog set")
		}
		pr.start = time.Now().Add(-age)
		if frag {
			pr.addFrag("127.0.0.1:9", stripe.Sub{ServerOff: 4096, Length: 1024}, age, nil)
		}
		c.finishParent(pr, 0, 1024, nil)
	}
	for i := 0; i < 30; i++ {
		finish(time.Millisecond, false)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast requests logged: %q", buf.String())
	}
	finish(250*time.Millisecond, true)
	line := buf.Bytes()
	if len(line) == 0 {
		t.Fatal("slow request did not log a wide event")
	}
	var ev slowEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("wide event is not one JSON line: %v (%q)", err, line)
	}
	if ev.Op != "ReadAt" || ev.MS <= ev.P99MS {
		t.Fatalf("wide event = %+v, want op ReadAt slower than its p99", ev)
	}
	if len(ev.Frags) != 1 || ev.Frags[0].Server != "127.0.0.1:9" || ev.Frags[0].Len != 1024 {
		t.Fatalf("wide event frags = %+v, want the recorded fragment", ev.Frags)
	}
}

// TestTraceNilPathAllocs pins the zero-cost-when-nil contract for the
// per-request observability hooks: with no tracer, slow log, or
// registry, the parent-request and sketch paths must not allocate.
func TestTraceNilPathAllocs(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	allocs := testing.AllocsPerRun(1000, func() {
		pr := c.startParent("ReadAt", "read")
		pr.addFrag("x", stripe.Sub{}, 0, nil)
		c.finishParent(pr, 0, 0, nil)
		if c.sketchFor("x", "read") != nil {
			t.Fatal("sketchFor armed without a registry or TrackLatency")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-observability request path allocates %.1f/op, want 0", allocs)
	}
}
