package pfsnet

import (
	"sort"
	"time"

	"repro/internal/stripe"
)

// Straggler-aware hedged reads (DESIGN §13).
//
// A striped read completes only when its slowest fragment server does,
// so the client attacks the tail from two directions: it issues the
// predicted-slowest server group first (orderGroups), and it arms a
// per-sub-request hedge timer at a sketch quantile of that server's
// recent read latency (awaitHedged). A timer that fires re-issues the
// read on a dedicated hedge connection — as opReadDirect when the
// server negotiated featCancel, a plain opRead otherwise — while the
// primary stays in flight. The first reply wins; the loser is
// abandoned (its tag removed from the conn's pending map, so its late
// reply takes the readLoop's pooled-discard path) and, when the wire
// supports it, cancelled server-side with a fire-and-forget opCancel so
// queued work is dropped instead of executed.
//
// Buffer ownership under races (DESIGN §11): a hedge never scatters —
// its reply always lands in a pooled buffer — so the primary remains
// the only writer into the caller's destination. Whichever reply loses
// is released exactly once: by the readLoop's abandoned-tag discard if
// the abandon won the race, or right here if the loser's waiter was
// already claimed.

const (
	defaultHedgeQuantile   = 0.95
	defaultHedgeDelayFloor = 2 * time.Millisecond
	defaultHedgeDelayCap   = time.Second
	defaultHedgeBudget     = 16
	// hedgeMinSamples is the sketch warm-up before its quantile drives
	// the hedge timer; colder sketches fall back to the T_i load hint.
	hedgeMinSamples = 8
	// hedgeHintMultiplier scales a T_i load hint (expected service time)
	// into a hedge delay: hedging at ~2x the expected service time
	// roughly mimics a p95 trigger without latency history.
	hedgeHintMultiplier = 2
)

// hedgeEligible reports whether this attempt should run under a hedge
// timer: hedging on, a read (writes are not idempotent under duplicated
// execution order), and a pipelined conn (a v1 peer has no tags to
// abandon, so it degrades to the plain unhedged path).
func (c *Client) hedgeEligible(op byte, cn *conn) bool {
	return c.Hedge && op == opRead && cn.ver >= ProtoV2
}

// hedgeMetricsRef lazily resolves the client's hedge metrics. Unlike
// resMetrics it exists without a registry — the local atomics feed
// HedgeStats either way.
func (c *Client) hedgeMetricsRef() *hedgeMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hm == nil {
		c.hm = newHedgeMetrics(c.Obs)
	}
	return c.hm
}

// HedgeStats is a snapshot of the client's hedging counters.
type HedgeStats struct {
	Armed       int64 // hedge timers started
	Fired       int64 // hedges issued to the wire
	Won         int64 // hedge replies that beat the primary
	Wasted      int64 // fired hedges whose primary won anyway
	Suppressed  int64 // hedges skipped for lack of a budget token
	CancelsSent int64 // opCancel frames issued for losing requests
}

// HedgeStats returns the client's hedging counters. All zero when
// hedging is disabled.
func (c *Client) HedgeStats() HedgeStats {
	c.mu.Lock()
	m := c.hm
	c.mu.Unlock()
	if m == nil {
		return HedgeStats{}
	}
	return HedgeStats{
		Armed:       m.armed.Load(),
		Fired:       m.fired.Load(),
		Won:         m.won.Load(),
		Wasted:      m.wasted.Load(),
		Suppressed:  m.suppressed.Load(),
		CancelsSent: m.cancelsSent.Load(),
	}
}

// hedgedExchange is conn.exchange for an eligible read: it starts the
// primary call (scattering into dst as usual) and waits under a hedge
// timer.
func (c *Client) hedgedExchange(addr string, cn *conn, encode func() []byte, dst []byte, tcID, tcSpan uint64, pr *parentReq) ([]byte, int, error) {
	w := &wireCall{op: opRead, payload: encode(), scatter: dst, done: make(chan struct{})}
	if tcID != 0 && cn.features&featTrace != 0 {
		w.tcID, w.tcSpan = tcID, tcSpan
	}
	if err := cn.start(w); err != nil {
		return nil, 0, err
	}
	c.awaitHedged(cn, w, addr, encode, pr)
	return cn.finishCall(w)
}

// awaitHedged waits for a started primary read call, hedging it if the
// timer fires first. On return w is complete: either the primary's own
// result, or — when the hedge won — the hedge reply grafted onto w, so
// the caller's finishCall/finishRead path is identical either way.
func (c *Client) awaitHedged(cn *conn, w *wireCall, addr string, encode func() []byte, pr *parentReq) {
	hm := c.hedgeMetricsRef()
	hm.onArmed()
	timer := time.NewTimer(c.hedgeDelayFor(addr))
	select {
	case <-w.done:
		timer.Stop()
		return
	case <-timer.C:
	}
	if !c.acquireHedge() {
		// Budget exhausted: fail open to a plain unhedged wait.
		hm.onSuppressed()
		<-w.done
		return
	}
	defer c.releaseHedge()
	hc, err := c.hedgeConn(addr)
	if err != nil || hc.ver < ProtoV2 {
		// No hedge path (dial failed, or the server fell back to v1):
		// degrade to waiting on the primary.
		<-w.done
		return
	}
	op := byte(opRead)
	if hc.features&featCancel != 0 {
		op = opReadDirect
	}
	// The hedge never scatters: its reply lands in a pooled buffer so
	// the primary stays the sole writer into the caller's destination
	// even when both replies arrive.
	w2 := &wireCall{op: op, payload: encode(), done: make(chan struct{})}
	if pr != nil && pr.trace != 0 && hc.features&featTrace != 0 {
		w2.tcID, w2.tcSpan = pr.trace, pr.span
	}
	traced := c.Tracer != nil && pr != nil
	var t0 time.Time
	if traced {
		t0 = time.Now()
		c.Tracer.InstantNow("hedge.fired", addr)
	}
	if hc.start(w2) != nil {
		<-w.done
		return
	}
	hm.onFired()
	pr.noteHedge(false)
	won := false
	defer func() {
		if traced {
			c.Tracer.Span(pr.trace, c.Tracer.NewID(), pr.span, "hedge", addr, t0, time.Since(t0))
		}
		if won {
			hm.onWon()
			pr.noteHedge(true)
		} else {
			hm.onWasted()
		}
	}()
	select {
	case <-w.done:
		// Primary won. Abandon the hedge so its late reply is discarded
		// by the hedge conn's readLoop, and ask the server to drop it.
		if hc.abandon(w2) {
			if hc.sendCancel(w2.tag) {
				hm.onCancelSent()
			}
			return
		}
		// The hedge conn's reader claimed w2 before the abandon landed:
		// its reply is (about to be) complete and nothing downstream
		// will ever look at it. Wait out the close and release the
		// pooled reply here — the losing copy is freed exactly once
		// (DESIGN §11), on whichever side owns it after the race.
		<-w2.done
		putBuf(w2.reply)
		w2.reply = nil
		return
	case <-w2.done:
	}
	if w2.err != nil {
		// The hedge conn died under the hedge; drop it so the next
		// hedge redials, and fall back to the primary.
		c.dropHedgeConn(addr, hc)
		<-w.done
		return
	}
	if w2.replyOp != opOK {
		// Remote error on the hedge path (e.g. a v2 server without the
		// read-direct handler): release its payload and wait out the
		// primary, which remains authoritative.
		putBuf(w2.reply)
		w2.reply = nil
		<-w.done
		return
	}
	// The hedge reply is good. Try to abandon the primary; if the
	// reader already claimed it we must wait for it to complete and
	// arbitrate.
	if !cn.abandon(w) {
		<-w.done
		if w.err == nil && (w.scattered || w.replyOp == opOK) {
			// Double-reply race and the primary also succeeded: keep the
			// primary (it may have scattered into the caller's buffer
			// already) and release the hedge reply exactly once here.
			putBuf(w2.reply)
			w2.reply = nil
			return
		}
		// Primary lost the race (conn death or remote error): the hedge
		// reply saves the request. Release any primary error payload
		// before grafting.
		putBuf(w.reply)
		w.reply = nil
	} else if cn.sendCancel(w.tag) {
		hm.onCancelSent()
	}
	// Graft the hedge result onto the primary call: downstream
	// finishCall/finishRead handles it exactly as a pooled (unscattered)
	// primary reply.
	w.err = nil
	w.scattered = false
	w.scatterN = 0
	w.replyOp = w2.replyOp
	w.reply = w2.reply
	w2.reply = nil
	won = true
}

// abandon removes w from the conn's pending map, if it is still there.
// True means this caller now owns w's fate: the readLoop will discard
// w's late reply into the pool (the abandoned-tag path) and nothing
// will ever close w.done. False means the reader or kill already
// claimed w — the caller must wait on w.done and arbitrate.
func (c *conn) abandon(w *wireCall) bool {
	c.pendMu.Lock()
	_, ok := c.pending[w.tag]
	if ok {
		delete(c.pending, w.tag)
	}
	c.pendMu.Unlock()
	return ok
}

// sendCancel asks the peer to drop the queued request with the given
// tag. Fire-and-forget: opCancel never gets a reply, so the call is not
// registered in pending — it just rides the send queue. Only meaningful
// on a conn that negotiated featCancel; silently a no-op otherwise.
// Returns whether the cancel was handed to the writer.
func (c *conn) sendCancel(target uint64) bool {
	if c.ver < ProtoV2 || c.features&featCancel == 0 {
		return false
	}
	e := newEncN(8)
	e.u64(target)
	w := &wireCall{op: opCancel, payload: e.b}
	c.pendMu.Lock()
	if c.failed != nil {
		c.pendMu.Unlock()
		putBuf(w.payload)
		return false
	}
	c.nextTag++
	w.tag = c.nextTag
	c.pendMu.Unlock()
	select {
	case c.sendq <- w:
		return true
	case <-c.dead:
		putBuf(w.payload)
		return false
	}
}

// hedgeConn returns the dedicated hedge connection to addr, dialing it
// on first use. Hedges ride their own connection so a primary path
// stalled in the kernel (or under an injected latency plan scoped to
// the primary) cannot stall the hedge; the fault scope is
// FaultScope+"-hedge" so plans can treat the two paths differently.
func (c *Client) hedgeConn(addr string) (*conn, error) {
	c.mu.Lock()
	if cn := c.hdata[addr]; cn != nil {
		c.mu.Unlock()
		return cn, nil
	}
	wm := c.wireMetricsLocked()
	c.mu.Unlock()
	o := c.dialOpts(wm)
	o.scope += "-hedge"
	cn, err := dialConn(addr, o)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if have := c.hdata[addr]; have != nil { // lost a dial race; keep the winner
		cn.close()
		return have, nil
	}
	if c.hdata == nil {
		c.hdata = make(map[string]*conn)
	}
	c.hdata[addr] = cn
	return cn, nil
}

// dropHedgeConn discards a broken hedge connection so the next hedge
// redials.
func (c *Client) dropHedgeConn(addr string, cn *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hdata[addr] == cn {
		delete(c.hdata, addr)
		cn.close()
	}
}

// hedgeDelayFor computes the hedge timer for addr: the fixed HedgeDelay
// when set; else the read sketch's HedgeQuantile once warmed, falling
// back to the server's T_i load hint scaled by hedgeHintMultiplier, and
// to the cap with no signal at all — clamped to [floor, cap] either
// way so a cold or degenerate estimate cannot hedge instantly or never.
func (c *Client) hedgeDelayFor(addr string) time.Duration {
	if c.HedgeDelay > 0 {
		return c.HedgeDelay
	}
	lo := c.HedgeDelayFloor
	if lo <= 0 {
		lo = defaultHedgeDelayFloor
	}
	hi := c.HedgeDelayCap
	if hi <= 0 {
		hi = defaultHedgeDelayCap
	}
	if hi < lo {
		hi = lo
	}
	clamp := func(d time.Duration) time.Duration {
		if d < lo {
			return lo
		}
		if d > hi {
			return hi
		}
		return d
	}
	q := c.HedgeQuantile
	if q <= 0 || q >= 1 {
		q = defaultHedgeQuantile
	}
	if sk := c.sketchFor(addr, "read"); sk != nil && sk.Count() >= hedgeMinSamples {
		return clamp(time.Duration(sk.Quantile(q) * float64(time.Millisecond)))
	}
	if hint := c.loadHintFor(addr); hint > 0 {
		return clamp(time.Duration(hint * hedgeHintMultiplier * float64(time.Millisecond)))
	}
	return hi
}

// hedgeTokens arms the hedge budget on first use (reads HedgeBudget,
// set before the first request).
func (c *Client) hedgeTokens() *Client {
	c.hedgeOnce.Do(func() {
		n := c.HedgeBudget
		if n == 0 {
			n = defaultHedgeBudget
		}
		if n > 0 {
			c.hedgeTok.Store(int64(n))
		}
	})
	return c
}

// acquireHedge takes a hedge token, or reports that none is available —
// the budget that keeps a cluster-wide slowdown from doubling offered
// load. A negative HedgeBudget removes the cap.
func (c *Client) acquireHedge() bool {
	if c.HedgeBudget < 0 {
		return true
	}
	t := &c.hedgeTokens().hedgeTok
	for {
		n := t.Load()
		if n <= 0 {
			return false
		}
		if t.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// releaseHedge returns a hedge token.
func (c *Client) releaseHedge() {
	if c.HedgeBudget < 0 {
		return
	}
	c.hedgeTok.Add(1)
}

// SetLoadHints installs the T_i load-hint vector (server address →
// expected service time, milliseconds). The client also learns it
// automatically from metadata replies that carry one; cold sketches
// fall back to it for issue ordering and hedge delays.
func (c *Client) SetLoadHints(h map[string]float64) {
	cp := make(map[string]float64, len(h))
	for k, v := range h {
		cp[k] = v
	}
	c.hintMu.Lock()
	c.hints = cp
	c.hintMu.Unlock()
}

// LoadHints returns a copy of the client's current T_i load-hint
// vector; nil when none has been installed.
func (c *Client) LoadHints() map[string]float64 {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	if c.hints == nil {
		return nil
	}
	cp := make(map[string]float64, len(c.hints))
	for k, v := range c.hints {
		cp[k] = v
	}
	return cp
}

// hintsArmed reports whether a load-hint vector is installed.
func (c *Client) hintsArmed() bool {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	return len(c.hints) > 0
}

// loadHintFor returns addr's T_i load hint in milliseconds, 0 when
// unknown.
func (c *Client) loadHintFor(addr string) float64 {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	return c.hints[addr]
}

// orderGroups sorts server groups slowest-predicted-first in place, so
// the group expected to finish last is submitted first and its server
// gets a head start — the completion time of a striped request is the
// max over groups, and issue order is the one lever the client holds
// before the wire. The prediction is sketch-p95 × queued bytes, seeded
// by the T_i load hint while the sketch is cold. A stable sort with
// deterministic inputs keeps the order reproducible; with neither
// hedging nor hints armed this is a no-op, preserving the unhedged
// client's exact submission order.
func (c *Client) orderGroups(f *File, groups [][]stripe.Sub, class string) {
	if len(groups) < 2 || (!c.Hedge && !c.hintsArmed()) {
		return
	}
	type scored struct {
		g    []stripe.Sub
		cost float64
	}
	sc := make([]scored, len(groups))
	for i, g := range groups {
		addr := f.servers[g[0].Server]
		est := 1.0
		if sk := c.sketchFor(addr, class); sk != nil && sk.Count() > 0 {
			if p := sk.Quantile(0.95); p > 0 {
				est = p
			}
		} else if hint := c.loadHintFor(addr); hint > 0 {
			est = hint
		}
		var bytes int64
		for _, sub := range g {
			bytes += sub.Length
		}
		sc[i] = scored{g: g, cost: est * float64(bytes)}
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].cost > sc[j].cost })
	for i := range sc {
		groups[i] = sc[i].g
	}
}
