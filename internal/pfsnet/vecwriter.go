package pfsnet

import (
	"encoding/binary"
	"net"
)

// BuffersWriter is the vectored-submission hook the wire path probes
// for before falling back to net.Buffers.WriteTo. A *net.TCPConn needs
// no hook (WriteTo reaches writev directly); conn wrappers that cannot
// see package net's internal buffersWriter interface — the faults
// injector's conn, for one — implement this method instead, apply their
// policy to the batch as a unit, and forward the buffers to the wrapped
// conn so the real writev still happens underneath.
//
// The contract mirrors net.Buffers.WriteTo: the implementation consumes
// *v (the caller must not reuse the buffers afterwards) and returns the
// total bytes written.
type BuffersWriter interface {
	WriteBuffers(v *net.Buffers) (int64, error)
}

const (
	// arenaChunk is the size of one header arena chunk. It comes from
	// the same pool as wire payloads.
	arenaChunk = 64 << 10
	// smallPayloadMax is the coalescing threshold: payloads at or below
	// it are copied into the arena right behind their header, so a burst
	// of small frames (write/flush acks, stat replies, read requests)
	// becomes one contiguous iovec instead of a header/payload pair
	// each. Larger payloads ride as their own iovec, zero-copy.
	smallPayloadMax = 256
)

// vecWriter accumulates wire frames and submits them to the connection
// in one vectored write (writev on TCP): frame headers and small
// payloads are packed into pooled arena chunks, large payloads are
// referenced in place, and a flush hands the whole iovec list to the
// kernel in a single syscall — no per-frame copy into an intermediate
// stream buffer, no per-frame syscall.
//
// Ownership: writeFrame takes ownership of its payload (the wire
// ownership contract, DESIGN §11). Coalesced payloads are released
// immediately after the copy; referenced payloads are released by the
// flush (or abandon) that disposes of the iovec list. A vecWriter is
// single-owner: exactly one goroutine may use it.
type vecWriter struct {
	nc     net.Conn
	wm     *wireMetrics
	chunks [][]byte // pooled arena chunks; the last one is active
	used   int      // bytes used in the active chunk
	seg    int      // start of the open (not yet queued) segment
	bufs   net.Buffers
	owned  [][]byte // pooled large payloads released at flush
	frames int      // frames queued since the last flush
}

func newVecWriter(nc net.Conn, wm *wireMetrics) *vecWriter {
	return &vecWriter{nc: nc, wm: wm}
}

// closeSeg queues the active chunk's open segment as an iovec.
func (w *vecWriter) closeSeg() {
	if len(w.chunks) > 0 && w.used > w.seg {
		cur := w.chunks[len(w.chunks)-1]
		w.bufs = append(w.bufs, cur[w.seg:w.used])
		w.seg = w.used
	}
}

// ensure makes room for n contiguous arena bytes, rotating to a fresh
// chunk when the active one cannot fit them.
func (w *vecWriter) ensure(n int) {
	if len(w.chunks) > 0 && w.used+n <= len(w.chunks[len(w.chunks)-1]) {
		return
	}
	w.closeSeg()
	w.chunks = append(w.chunks, getBuf(arenaChunk))
	w.used, w.seg = 0, 0
}

// writeFrame queues one frame for the next flush. Ownership of payload
// transfers to the writer on entry — error included — and the writer
// releases it exactly once.
func (w *vecWriter) writeFrame(ver int, tag uint64, op byte, payload []byte) error {
	var hdr [13]byte
	var hn int
	if ver >= ProtoV2 {
		if len(payload)+9 > MaxMessage {
			putBuf(payload)
			return ErrTooLarge
		}
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+9))
		binary.BigEndian.PutUint64(hdr[4:12], tag)
		hdr[12] = op
		hn = 13
	} else {
		if len(payload)+1 > MaxMessage {
			putBuf(payload)
			return ErrTooLarge
		}
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
		hdr[4] = op
		hn = 5
	}
	return w.enqueue(hdr[:hn], payload)
}

// writeFrameCtx queues one v2 request frame carrying a trace context:
// tagTraceFlag set on the tag, {traceID, parentSpanID} written into
// the arena right behind the header so the context always travels in
// the same iovec as the header. Same ownership contract as writeFrame.
func (w *vecWriter) writeFrameCtx(tag uint64, op byte, tcID, tcSpan uint64, payload []byte) error {
	var hdr [13 + traceCtxSize]byte
	if len(payload)+9+traceCtxSize > MaxMessage {
		putBuf(payload)
		return ErrTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+9+traceCtxSize))
	//lint:allow featgate encode helper below the gate: callers reach writeFrameCtx only with a tcID set under a featTrace check (DESIGN §12)
	binary.BigEndian.PutUint64(hdr[4:12], tag|tagTraceFlag)
	hdr[12] = op
	binary.BigEndian.PutUint64(hdr[13:21], tcID)
	binary.BigEndian.PutUint64(hdr[21:29], tcSpan)
	return w.enqueue(hdr[:], payload)
}

// enqueue adds one header+payload pair to the batch, coalescing small
// payloads into the arena and referencing large ones zero-copy.
func (w *vecWriter) enqueue(hdr, payload []byte) error {
	if len(payload) <= smallPayloadMax {
		w.ensure(len(hdr) + len(payload))
		cur := w.chunks[len(w.chunks)-1]
		w.used += copy(cur[w.used:], hdr)
		w.used += copy(cur[w.used:], payload)
		putBuf(payload)
	} else {
		w.ensure(len(hdr))
		cur := w.chunks[len(w.chunks)-1]
		w.used += copy(cur[w.used:], hdr)
		w.closeSeg()
		w.bufs = append(w.bufs, payload)
		w.owned = append(w.owned, payload)
		w.wm.onCopyAvoided(len(payload))
	}
	w.frames++
	return nil
}

// flush submits every queued frame in one vectored write and releases
// the batch's buffers. A no-op when nothing is queued.
func (w *vecWriter) flush() error {
	w.closeSeg()
	if len(w.bufs) == 0 {
		return nil
	}
	// WriteTo consumes the iovec list, looping until everything is
	// written or the conn errors; on error the conn is dead and the
	// caller tears it down, so the buffers are released either way.
	var err error
	bufs := w.bufs
	if bw, ok := w.nc.(BuffersWriter); ok {
		_, err = bw.WriteBuffers(&bufs)
	} else {
		_, err = bufs.WriteTo(w.nc)
	}
	w.wm.onWritev(w.frames)
	w.reset()
	return err
}

// abandon releases every queued buffer without writing — the owner's
// exit path for a conn that died with frames still batched.
func (w *vecWriter) abandon() { w.reset() }

// reset releases the batch's pooled memory and clears the queue.
func (w *vecWriter) reset() {
	for _, b := range w.owned {
		putBuf(b)
	}
	for _, c := range w.chunks {
		putBuf(c)
	}
	w.owned = w.owned[:0]
	w.chunks = w.chunks[:0]
	w.bufs = w.bufs[:0]
	w.used, w.seg, w.frames = 0, 0, 0
}
