package pfsnet

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/stripe"
)

// hedgeTestPattern fills p with a deterministic byte pattern.
func hedgeTestPattern(p []byte) {
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
}

// runHedgedStraggler is one run of the deterministic hedge-win
// scenario: a client-scoped latency plan makes every primary conn I/O
// op sleep, while the hedge conns (scope "client-hedge") stay fast, so
// a fixed HedgeDelay far below the injected latency makes every read
// hedge and every hedge win. Returns the hedge summary and the bytes
// read.
func runHedgedStraggler(t *testing.T, reads int) (HedgeStats, []byte) {
	t.Helper()
	ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{Store: NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	// Seed through an unplanned client so setup writes skip the latency.
	setup := NewClient(ms.Addr())
	payload := make([]byte, 32*1024)
	hedgeTestPattern(payload)
	f, err := setup.Create("straggle", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteAt(f, 0, payload); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	c := NewClient(ms.Addr())
	// A wide straggler margin: the hedge must win even when the race
	// detector or a loaded host stretches the hedge-conn dial+exchange.
	c.FaultPlan = faults.MustParse("seed=3; latency=client:150ms")
	c.Hedge = true
	c.HedgeDelay = 5 * time.Millisecond
	defer c.Close()
	f, err = c.Open("straggle")
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	got := make([]byte, 1024)
	for i := 0; i < reads; i++ {
		off := int64(i) * 1024 % int64(len(payload)-1024)
		if err := c.ReadAt(f, off, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload[off:off+1024]) {
			t.Fatalf("read %d: bytes differ from written data", i)
		}
		out = append(out, got...)
	}
	return c.HedgeStats(), out
}

// TestHedgeWinsDeterministic pins the tentpole's A-side: under a
// client-scoped straggler plan every read hedges, every hedge wins, and
// the loser is cancelled — and two runs of the same seed produce the
// identical summary and identical bytes.
func TestHedgeWinsDeterministic(t *testing.T) {
	const reads = 12
	st1, bytes1 := runHedgedStraggler(t, reads)
	want := HedgeStats{
		Armed: reads, Fired: reads, Won: reads,
		Wasted: 0, Suppressed: 0, CancelsSent: reads,
	}
	if st1 != want {
		t.Fatalf("hedge summary = %+v, want %+v", st1, want)
	}
	st2, bytes2 := runHedgedStraggler(t, reads)
	if st2 != st1 {
		t.Fatalf("two runs differ: %+v vs %+v", st1, st2)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatal("two runs read different bytes")
	}
}

// TestHedgeP99Reduction is the acceptance A/B: under a skewed latency
// plan that delays one primary conn op in four, the hedged client's p99
// parent-read latency must come in at least 30% under the unhedged
// client's, with byte-identical results.
func TestHedgeP99Reduction(t *testing.T) {
	ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{Store: NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	payload := make([]byte, 64*1024)
	hedgeTestPattern(payload)
	setup := NewClient(ms.Addr())
	f, err := setup.Create("ab", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteAt(f, 0, payload); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const reads = 80
	run := func(hedge bool) (float64, []byte) {
		c := NewClient(ms.Addr())
		// Fresh plans with the same spec: both clients face the same
		// deterministic straggler schedule.
		c.FaultPlan = faults.MustParse("seed=9; latency=client:80ms@1/4")
		if hedge {
			c.Hedge = true
			c.HedgeDelay = 10 * time.Millisecond
		}
		defer c.Close()
		f, err := c.Open("ab")
		if err != nil {
			t.Fatal(err)
		}
		var all []byte
		lats := make([]float64, 0, reads)
		got := make([]byte, 1024)
		// Untimed warm-up: the first read pays the data-conn dial and
		// handshake, which the fault plan also delays and a hedge cannot
		// rescue (the hedge timer only covers the read exchange).
		if err := c.ReadAt(f, 0, got); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reads; i++ {
			off := int64(i) * 997 % int64(len(payload)-1024)
			t0 := time.Now()
			if err := c.ReadAt(f, off, got); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			lats = append(lats, float64(time.Since(t0))/1e6)
			if !bytes.Equal(got, payload[off:off+1024]) {
				t.Fatalf("read %d: bytes differ", i)
			}
			all = append(all, got...)
		}
		sort.Float64s(lats)
		t.Logf("hedge=%v stats=%+v", hedge, c.HedgeStats())
		return lats[reads*99/100], all
	}
	p99Plain, bytesPlain := run(false)
	p99Hedged, bytesHedged := run(true)
	if !bytes.Equal(bytesPlain, bytesHedged) {
		t.Fatal("hedged and unhedged clients read different bytes")
	}
	if p99Hedged > 0.7*p99Plain {
		t.Fatalf("hedged p99 = %.2fms, want <= 70%% of unhedged p99 %.2fms", p99Hedged, p99Plain)
	}
	t.Logf("p99: unhedged=%.2fms hedged=%.2fms (%.0f%% reduction)",
		p99Plain, p99Hedged, 100*(1-p99Hedged/p99Plain))
}

// gateStore blocks the first ReadAt until released — it pins one
// single-worker server connection mid-request so work queues behind it.
type gateStore struct {
	ObjectStore
	once    sync.Once
	release chan struct{}
}

func (g *gateStore) ReadAt(file uint64, off int64, p []byte) error {
	blocked := false
	g.once.Do(func() { blocked = true })
	if blocked {
		<-g.release
	}
	return g.ObjectStore.ReadAt(file, off, p)
}

// TestHedgeCancelHonored drives an opCancel all the way to a dropped
// queued request: the single worker on the primary connection blocks on
// its first read, a second read queues behind it, both hedge and win on
// the hedge connection (which has its own worker pool), and the cancel
// for the still-queued second read must be honored — dropped before
// dispatch, no reply.
func TestHedgeCancelHonored(t *testing.T) {
	gate := &gateStore{ObjectStore: NewMemStore(), release: make(chan struct{})}
	ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{Store: gate, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	// ds.Close waits for the gated worker; release the gate first even if
	// the test fails midway (defers run LIFO, so this precedes ds.Close).
	releaseGate := sync.OnceFunc(func() { close(gate.release) })
	defer releaseGate()
	ms, err := NewMetaServer("127.0.0.1:0", 4096, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	payload := make([]byte, 8192)
	hedgeTestPattern(payload)
	setup := NewClient(ms.Addr())
	f, err := setup.Create("gate", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteAt(f, 0, payload); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	c := NewClient(ms.Addr())
	c.Hedge = true
	c.HedgeDelay = 10 * time.Millisecond
	defer c.Close()
	f, err = c.Open("gate")
	if err != nil {
		t.Fatal(err)
	}
	// Read 1's primary blocks in the gated store and its hedge wins; its
	// cancel arrives too late (the worker is already executing). Read 2's
	// primary then queues behind the stuck worker, its hedge wins too,
	// and its cancel tags a frame that is still queued.
	got := make([]byte, 4096)
	for i := int64(0); i < 2; i++ {
		if err := c.ReadAt(f, i*4096, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload[i*4096:(i+1)*4096]) {
			t.Fatalf("read %d: wrong bytes", i)
		}
	}
	st := c.HedgeStats()
	if st.Won != 2 || st.CancelsSent != 2 {
		t.Fatalf("hedge summary = %+v, want 2 wins and 2 cancels", st)
	}
	// Cancels are fire-and-forget: ReadAt returns as soon as the hedge
	// reply lands, possibly before the cancel's bytes reach the server.
	// Wait for the demux to log both before releasing the worker, or it
	// could dequeue the second read ahead of its cancel.
	deadline := time.Now().Add(2 * time.Second)
	for ds.Stats().CancelsReceived < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("cancels never reached the server: %+v", ds.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Unblock the primary worker; it finishes the first read (whose
	// reply the client discards as abandoned), picks the second off the
	// queue, and must drop it as cancelled.
	releaseGate()
	for {
		s := ds.Stats()
		if s.CancelsHonored >= 1 {
			if s.DirectReads < 2 {
				t.Fatalf("server stats = %+v, want both hedges as direct reads", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never honored: server stats = %+v", s)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHedgeDoubleReplyBufferSafety races primaries against hedges with
// an immediate hedge timer on a fast server, so both replies frequently
// arrive and the abandon arbitration runs both ways. Every read must
// return the right bytes and the pool must see zero foreign puts — the
// loser's buffer is released exactly once, never double-put, never
// leaked into a wrong size class.
func TestHedgeDoubleReplyBufferSafety(t *testing.T) {
	meta := testCluster(t, 2, 4096, false)
	payload := make([]byte, 16*1024)
	hedgeTestPattern(payload)
	setup := NewClient(meta)
	f, err := setup.Create("race", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteAt(f, 0, payload); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	c := NewClient(meta)
	c.Hedge = true
	c.HedgeDelay = time.Nanosecond // fires before the first wait: every read races
	c.HedgeBudget = -1
	defer c.Close()
	f, err = c.Open("race")
	if err != nil {
		t.Fatal(err)
	}
	base := PoolForeignPuts()
	got := make([]byte, 2048)
	for i := 0; i < 300; i++ {
		off := int64(i) * 512 % int64(len(payload)-2048)
		if err := c.ReadAt(f, off, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload[off:off+2048]) {
			t.Fatalf("read %d: bytes differ", i)
		}
	}
	if got := PoolForeignPuts() - base; got != 0 {
		t.Fatalf("hedged read path produced %d foreign puts, want 0", got)
	}
	st := c.HedgeStats()
	if st.Fired == 0 {
		t.Fatalf("immediate hedge timer never fired: %+v", st)
	}
}

// TestHedgeInteropMatrix checks the opCancel/opReadDirect wire
// extension across the protocol matrix: a hedging client against v1
// (degrades to no hedging at all), v2 without featCancel (hedges via
// plain re-issue, no cancels), and full v2 in both writer modes.
func TestHedgeInteropMatrix(t *testing.T) {
	cases := []struct {
		name      string
		proto     int
		noVec     bool
		noCancel  bool
		wantHedge bool
	}{
		{name: "v1", proto: ProtoV1, wantHedge: false},
		{name: "v2-bufio", proto: 0, noVec: true, wantHedge: true},
		{name: "v2-vectored", proto: 0, wantHedge: true},
		{name: "v2-no-cancel", proto: 0, noCancel: true, wantHedge: true},
	}
	payload := make([]byte, 16*1024)
	hedgeTestPattern(payload)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{
				Store:           NewMemStore(),
				MaxProto:        tc.proto,
				DisableVectored: tc.noVec,
				DisableCancel:   tc.noCancel,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()
			ms, err := NewMetaServer("127.0.0.1:0", 4096, []string{ds.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			defer ms.Close()
			setup := NewClient(ms.Addr())
			f, err := setup.Create("interop", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if err := setup.WriteAt(f, 0, payload); err != nil {
				t.Fatal(err)
			}
			setup.Close()

			c := NewClient(ms.Addr())
			c.FaultPlan = faults.MustParse("seed=5; latency=client:150ms")
			c.Hedge = true
			c.HedgeDelay = 5 * time.Millisecond
			defer c.Close()
			f, err = c.Open("interop")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 1024)
			const reads = 3
			for i := 0; i < reads; i++ {
				off := int64(i) * 2048
				if err := c.ReadAt(f, off, got); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !bytes.Equal(got, payload[off:off+1024]) {
					t.Fatalf("read %d: bytes differ", i)
				}
			}
			st := c.HedgeStats()
			srv := ds.Stats()
			if !tc.wantHedge {
				if st.Fired != 0 {
					t.Fatalf("v1 peer: hedges fired = %d, want 0 (must degrade to no-hedge)", st.Fired)
				}
				return
			}
			if st.Won != reads {
				t.Fatalf("hedge summary = %+v, want %d wins", st, reads)
			}
			if tc.noCancel {
				if st.CancelsSent != 0 || srv.DirectReads != 0 {
					t.Fatalf("featCancel off: cancels=%d directReads=%d, want 0/0 (plain re-issue only)",
						st.CancelsSent, srv.DirectReads)
				}
			} else {
				if st.CancelsSent != reads || srv.DirectReads != reads {
					t.Fatalf("cancels=%d directReads=%d, want %d/%d", st.CancelsSent, srv.DirectReads, reads, reads)
				}
			}
		})
	}
}

// TestHedgeBudgetTokens pins the token-bucket semantics: a budget of n
// admits n concurrent hedges, fails open past it, and refills on
// release; a negative budget removes the cap.
func TestHedgeBudgetTokens(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	c.HedgeBudget = 2
	if !c.acquireHedge() || !c.acquireHedge() {
		t.Fatal("budget of 2 refused one of the first two hedges")
	}
	if c.acquireHedge() {
		t.Fatal("budget of 2 admitted a third concurrent hedge")
	}
	c.releaseHedge()
	if !c.acquireHedge() {
		t.Fatal("released token not reusable")
	}

	u := NewClient("127.0.0.1:1")
	u.HedgeBudget = -1
	for i := 0; i < 100; i++ {
		if !u.acquireHedge() {
			t.Fatal("uncapped budget refused a hedge")
		}
	}
}

// TestHedgeBudgetSuppression drives the fail-open path end to end: with
// a budget of 1 and many concurrent straggling reads, some hedges must
// be suppressed — and every suppressed read still completes correctly
// off its primary.
func TestHedgeBudgetSuppression(t *testing.T) {
	ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{Store: NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	payload := make([]byte, 32*1024)
	hedgeTestPattern(payload)
	setup := NewClient(ms.Addr())
	f, err := setup.Create("budget", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteAt(f, 0, payload); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	c := NewClient(ms.Addr())
	c.FaultPlan = faults.MustParse("seed=4; latency=client:50ms")
	c.Hedge = true
	c.HedgeDelay = 2 * time.Millisecond
	c.HedgeBudget = 1
	defer c.Close()
	f, err = c.Open("budget")
	if err != nil {
		t.Fatal(err)
	}
	const readers = 6
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		i := i
		go func() {
			got := make([]byte, 1024)
			off := int64(i) * 4096
			if err := c.ReadAt(f, off, got); err != nil {
				errs <- fmt.Errorf("read %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, payload[off:off+1024]) {
				errs <- fmt.Errorf("read %d: bytes differ", i)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < readers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := c.HedgeStats()
	if st.Suppressed == 0 {
		t.Fatalf("budget of 1 under %d concurrent stragglers suppressed nothing: %+v", readers, st)
	}
	if st.Fired == 0 {
		t.Fatalf("no hedge fired at all: %+v", st)
	}
}

// TestLoadHintBroadcast checks satellite (a): the metadata server's T_i
// vector rides Create/Open replies as trailing bytes, lands in the
// client's hint table keyed by server address, and rejects a
// wrong-length vector.
func TestLoadHintBroadcast(t *testing.T) {
	meta := testCluster(t, 3, 4096, false)
	setup := NewClient(meta)
	if _, err := setup.Create("hints", 1<<20); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	// Reach the MetaServer through a fresh server set: testCluster hides
	// the handle, so build an explicit cluster instead.
	var addrs []string
	for i := 0; i < 3; i++ {
		ds, err := NewDataServer("127.0.0.1:0", false)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		addrs = append(addrs, ds.Addr())
	}
	ms, err := NewMetaServer("127.0.0.1:0", 4096, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	if err := ms.SetLoadHints([]float64{1.5, 0.5, 8}); err != nil {
		t.Fatal(err)
	}
	if err := ms.SetLoadHints([]float64{1, 2}); err == nil {
		t.Fatal("wrong-length hint vector accepted")
	}

	c := NewClient(ms.Addr())
	defer c.Close()
	if _, err := c.Create("hints", 1<<20); err != nil {
		t.Fatal(err)
	}
	got := c.LoadHints()
	want := map[string]float64{addrs[0]: 1.5, addrs[1]: 0.5, addrs[2]: 8}
	if len(got) != len(want) {
		t.Fatalf("LoadHints = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("LoadHints[%s] = %v, want %v", k, got[k], v)
		}
	}
}

// TestOrderGroupsSlowestFirst checks the issue-ordering half of the
// tentpole: with load hints installed, the predicted-slowest server
// group (hint × queued bytes) is submitted first, ties and equal costs
// keep their original order, and a client with neither hedging nor
// hints leaves the order untouched.
func TestOrderGroupsSlowestFirst(t *testing.T) {
	f := &File{servers: []string{"a:1", "b:1", "c:1"}}
	mk := func() [][]stripe.Sub {
		return [][]stripe.Sub{
			{{Server: 0, Length: 100}},
			{{Server: 1, Length: 100}},
			{{Server: 2, Length: 100}},
		}
	}

	c := NewClient("127.0.0.1:1")
	c.Hedge = true
	c.SetLoadHints(map[string]float64{"a:1": 1, "b:1": 9, "c:1": 3})
	groups := mk()
	c.orderGroups(f, groups, "read")
	order := []int{groups[0][0].Server, groups[1][0].Server, groups[2][0].Server}
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("issue order = %v, want slowest-first [1 2 3]→[b c a]", order)
	}

	// Byte volume scales the prediction: a big group on a fast server
	// outranks a small one on a slow server.
	c2 := NewClient("127.0.0.1:1")
	c2.Hedge = true
	c2.SetLoadHints(map[string]float64{"a:1": 1, "b:1": 2, "c:1": 1})
	groups = [][]stripe.Sub{
		{{Server: 0, Length: 10}},
		{{Server: 1, Length: 10}},   // cost 20
		{{Server: 2, Length: 1000}}, // cost 1000: slowest overall
	}
	c2.orderGroups(f, groups, "read")
	if groups[0][0].Server != 2 || groups[1][0].Server != 1 {
		t.Fatalf("volume-weighted order = [%d %d %d], want c first then b",
			groups[0][0].Server, groups[1][0].Server, groups[2][0].Server)
	}

	// Neither hedging nor hints: a strict no-op.
	plain := NewClient("127.0.0.1:1")
	groups = mk()
	plain.orderGroups(f, groups, "read")
	for i, g := range groups {
		if g[0].Server != i {
			t.Fatalf("unarmed orderGroups reordered groups: %v", groups)
		}
	}
}

// TestHedgeZeroCostWhenDisabled pins the disabled path: with Hedge off
// the read path must stay within the PR 7 alloc budget (the hedging
// machinery adds only dormant branch tests), create no hedge
// connections, and count nothing.
func TestHedgeZeroCostWhenDisabled(t *testing.T) {
	meta := testCluster(t, 1, 64*1024, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("off", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := c.WriteAt(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := c.ReadAt(f, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	readAllocs := testing.AllocsPerRun(200, func() {
		if err := c.ReadAt(f, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
	// Same ceiling TestV2HotPathAllocs enforced before hedging existed.
	if readAllocs > 20 {
		t.Errorf("unhedged read path: %.1f allocs/op, want <= 20 (PR 7 parity)", readAllocs)
	}
	if st := c.HedgeStats(); st != (HedgeStats{}) {
		t.Fatalf("disabled hedging counted something: %+v", st)
	}
	c.mu.Lock()
	nh := len(c.hdata)
	c.mu.Unlock()
	if nh != 0 {
		t.Fatalf("disabled hedging opened %d hedge connections", nh)
	}
}
