package pfsnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// DataServer stores the per-server striped objects and serves read/write
// sub-requests over TCP. When Bridge is enabled, flagged sub-requests
// (fragments and regular random requests) are written to a log region
// with a mapping table — the functional analogue of iBridge's SSD cache —
// and drained back to the object store on Flush or overwrite.
//
// Each v2 connection runs a small pipeline: the connection goroutine
// demuxes tagged frames into a bounded worker pool, the workers execute
// handlers concurrently, and a single response-writer goroutine streams
// the tagged replies back through a corked bufio.Writer. Server state is
// split so independent requests do not serialize behind one lock: the
// fragment log and its mapping table are guarded by logMu, counters are
// atomic, and object-store I/O runs outside both.
// DurableStore is the optional crash-consistency extension of
// ObjectStore that logstore.LogStore implements. A data server whose
// store satisfies it folds the store's record appends into the fault
// plan's ssdfail write count (so `ssdfail=srvN@K` specs written against
// the legacy fragment log apply unchanged to log-backed servers) and
// fails the store's device together with the bridge log when the
// scheduled failure trips.
type DurableStore interface {
	ObjectStore
	// RecordAppends returns the number of acknowledged log-record
	// appends since the store opened.
	RecordAppends() int64
	// FailDevice simulates the store's log device failing: the store
	// degrades to serving from memory, losing durability but no bytes.
	FailDevice() error
}

type DataServer struct {
	ln        net.Listener
	bridge    bool
	store     ObjectStore
	durable   DurableStore // non-nil when store is crash-consistent (logstore)
	workers   int
	maxProto  int
	noVec     bool
	ioTimeout time.Duration
	wm        *wireMetrics
	tracer    *obs.XTracer
	features  uint32       // feature bits advertised during hello
	connSeq   atomic.Int64 // per-connection trace-scope numbering

	// SSD-device failure state: when the fault plan schedules a device
	// failure for this server (or FailSSD is called), the fragment log is
	// drained once and the server degrades gracefully to the direct
	// store path — iBridge's cache is an accelerator, so losing it must
	// cost performance, never bytes.
	plan         *faults.Plan
	ssdDown      atomic.Bool
	ssdFailAfter int64 // fragment-log writes until the device fails; 0 = never

	// logMu guards the iBridge log region and its mapping table only;
	// object-store reads and writes happen outside it.
	logMu   sync.Mutex
	logData []byte // the "SSD" log region
	table   map[extKey]extVal

	ctr       dataCounters
	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// ServerConfig configures a data server beyond the common defaults.
type ServerConfig struct {
	// Bridge enables the iBridge fragment log.
	Bridge bool
	// Store is the backing object store (default: in-memory).
	Store ObjectStore
	// Workers bounds the per-connection handler pool for pipelined (v2)
	// connections. Default: max(4, GOMAXPROCS).
	Workers int
	// MaxProto caps the wire protocol the server will negotiate
	// (0 means the latest; 1 makes the server behave like a legacy v1
	// peer, rejecting the hello opcode).
	MaxProto int
	// DisableVectored forces the pipelined response writer onto the
	// legacy corked bufio path instead of vectored (writev) submission —
	// the interop escape hatch, and the A/B knob for the wire
	// benchmarks.
	DisableVectored bool
	// Obs, when set, receives wire-level metrics under
	// "pfsnet.server.*".
	Obs *obs.Registry
	// Tracer, when set, records server-side spans (queue-wait, store,
	// respond) under the trace context of requests that carry one on
	// the wire. Tracing only activates on connections whose hello
	// negotiated featTrace; a nil tracer costs one pointer test.
	Tracer *obs.XTracer
	// DisableTracing stops the server from advertising featTrace during
	// hello negotiation — the interop knob modelling an older v2 peer
	// that predates the trace extension.
	DisableTracing bool
	// DisableCancel stops the server from advertising featCancel — the
	// interop knob modelling an older v2 peer that predates the
	// hedged-read cancellation extension. Hedging clients degrade to
	// plain re-issue without cancellation against such a peer.
	DisableCancel bool
	// IOTimeout, when positive, bounds each frame read and reply write
	// on every connection so a stalled or half-open peer cannot pin a
	// handler goroutine forever. 0 (the default) disables deadlines.
	IOTimeout time.Duration
	// FaultPlan, when set, wraps the listener with the plan's connection
	// faults and arms the plan's SSD-device failure for FaultScope.
	FaultPlan *faults.Plan
	// FaultScope is this server's name in the fault plan (e.g. "srv0").
	FaultScope string
}

// DataStats counts server activity.
type DataStats struct {
	Reads, Writes      int64
	FragmentWrites     int64
	FragmentReads      int64
	LogBytes           int64
	Flushes            int64
	FlushedBytes       int64
	ReadBytes, WrBytes int64
	// CancelsReceived counts opCancel frames the demux accepted;
	// CancelsHonored counts queued requests dropped before dispatch
	// because an opCancel for their tag arrived first (the difference is
	// cancels that lost the race with their own request); DirectReads
	// counts opReadDirect requests (hedge re-issues).
	CancelsReceived int64
	CancelsHonored  int64
	DirectReads     int64
}

// dataCounters is the lock-free mirror of DataStats: handlers running in
// parallel update it without sharing the log lock.
type dataCounters struct {
	reads, writes      atomic.Int64
	fragmentWrites     atomic.Int64
	fragmentReads      atomic.Int64
	logBytes           atomic.Int64
	flushes            atomic.Int64
	flushedBytes       atomic.Int64
	readBytes, wrBytes atomic.Int64
	cancelsReceived    atomic.Int64
	cancelsHonored     atomic.Int64
	directReads        atomic.Int64
}

type extKey struct {
	file uint64
	off  int64
}

type extVal struct {
	logOff int64
	length int64
}

// NewDataServer starts a data server listening on addr (use
// "127.0.0.1:0" for an ephemeral port) with an in-memory object store.
// bridge enables the fragment log.
func NewDataServer(addr string, bridge bool) (*DataServer, error) {
	return NewDataServerConfig(addr, ServerConfig{Bridge: bridge})
}

// NewDataServerWithStore starts a data server over the given object
// store (e.g. a FileStore for on-disk objects).
func NewDataServerWithStore(addr string, bridge bool, store ObjectStore) (*DataServer, error) {
	return NewDataServerConfig(addr, ServerConfig{Bridge: bridge, Store: store})
}

// NewDataServerConfig starts a data server with explicit configuration.
func NewDataServerConfig(addr string, cfg ServerConfig) (*DataServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		store = NewMemStore()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = max(4, runtime.GOMAXPROCS(0))
	}
	maxProto := cfg.MaxProto
	if maxProto <= 0 || maxProto > maxProtoVersion {
		maxProto = maxProtoVersion
	}
	// Advertise featTrace unless explicitly disabled: stripping the
	// trace context off flagged frames is harmless without a tracer,
	// and always advertising keeps the negotiation matrix small.
	var features uint32
	if !cfg.DisableTracing {
		features = featTrace
	}
	// featCancel is advertised by default for the same reason: dropping
	// cancelled work is harmless, and a client that never hedges simply
	// never sends opCancel.
	if !cfg.DisableCancel {
		features |= featCancel
	}
	s := &DataServer{
		ln:        cfg.FaultPlan.WrapListener(ln, cfg.FaultScope),
		bridge:    cfg.Bridge,
		store:     store,
		workers:   workers,
		maxProto:  maxProto,
		noVec:     cfg.DisableVectored,
		ioTimeout: cfg.IOTimeout,
		wm:        newWireMetrics(cfg.Obs, "pfsnet.server."),
		tracer:    cfg.Tracer,
		features:  features,
		plan:      cfg.FaultPlan,
		table:     make(map[extKey]extVal),
		quit:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	if ds, ok := store.(DurableStore); ok {
		s.durable = ds
	}
	if n, ok := cfg.FaultPlan.SSDFailWrites(cfg.FaultScope); ok {
		s.ssdFailAfter = n
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the server's listen address.
func (s *DataServer) Addr() string { return s.ln.Addr().String() }

// Stats returns a copy of the server statistics.
func (s *DataServer) Stats() DataStats {
	return DataStats{
		Reads:           s.ctr.reads.Load(),
		Writes:          s.ctr.writes.Load(),
		FragmentWrites:  s.ctr.fragmentWrites.Load(),
		FragmentReads:   s.ctr.fragmentReads.Load(),
		LogBytes:        s.ctr.logBytes.Load(),
		Flushes:         s.ctr.flushes.Load(),
		FlushedBytes:    s.ctr.flushedBytes.Load(),
		ReadBytes:       s.ctr.readBytes.Load(),
		WrBytes:         s.ctr.wrBytes.Load(),
		CancelsReceived: s.ctr.cancelsReceived.Load(),
		CancelsHonored:  s.ctr.cancelsHonored.Load(),
		DirectReads:     s.ctr.directReads.Load(),
	}
}

// Close stops the server, flushes the log, and waits for connection
// handlers to finish. Open client connections are severed (clients with
// retry logic redial transparently). Close is idempotent: chaos drivers
// crash servers that a deferred cleanup later closes again.
func (s *DataServer) Close() error {
	var first bool
	s.closeOnce.Do(func() { close(s.quit); first = true })
	if !first {
		return nil
	}
	err := s.ln.Close()
	// Snapshot under the lock, sever outside it: Close on a TCP conn
	// can block, and handlers need connMu to unregister themselves.
	s.connMu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:allow detmaprange severing connections; close order is immaterial
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if ferr := s.FlushLog(); ferr != nil && err == nil {
		err = ferr
	}
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// FlushLog drains every mapped log extent back to the object store, in
// (file, offset) order — the iBridge writeback at program termination.
func (s *DataServer) FlushLog() error {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.flushLocked(0, true)
}

// flushLocked writes back mapped extents (logMu held). If all is false,
// only extents of the given file are drained.
func (s *DataServer) flushLocked(file uint64, all bool) error {
	type hit struct {
		k extKey
		v extVal
	}
	var hits []hit
	for k, v := range s.table {
		if all || k.file == file {
			hits = append(hits, hit{k, v})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].k.file != hits[j].k.file {
			return hits[i].k.file < hits[j].k.file
		}
		return hits[i].k.off < hits[j].k.off
	})
	for _, h := range hits {
		data := s.logData[h.v.logOff : h.v.logOff+h.v.length]
		if err := s.store.WriteAt(h.k.file, h.k.off, data); err != nil {
			return err
		}
		delete(s.table, h.k)
		s.ctr.flushedBytes.Add(h.v.length)
	}
	if all && len(s.table) == 0 {
		s.logData = s.logData[:0] // log reclaimed
	}
	s.ctr.flushes.Add(1)
	return nil
}

func (s *DataServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
				log.Printf("pfsnet data: accept: %v", err)
				return
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *DataServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	ver, feats, first, hasFirst, err := serverHandshake(br, bw, s.maxProto, s.features)
	if err != nil {
		return
	}
	if ver >= ProtoV2 {
		scope := fmt.Sprintf("conn%d", s.connSeq.Add(1))
		s.servePipelined(conn, br, bw, feats, scope)
		return
	}
	var firstp *frame
	if hasFirst {
		firstp = &first
	}
	// A v1 peer negotiated no features: dispatch with an empty feature
	// set so feature-gated opcodes are rejected, not silently served.
	serveFrames(conn, br, bw, ProtoV1, firstp, s.wm, s.ioTimeout, func(op byte, payload []byte) (byte, []byte) {
		return s.dispatch(0, op, payload)
	})
}

// servePipelined runs the v2 per-connection pipeline: this goroutine
// demuxes frames into the bounded worker pool, the workers execute
// handlers concurrently, and one response-writer goroutine streams the
// tagged replies back, flushing only when its queue runs dry — through
// the vectored writer by default, so a burst of small acks and read
// replies coalesces into one writev submission.
func (s *DataServer) servePipelined(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, feats uint32, scope string) {
	jobs := make(chan frame, s.workers*2)
	resp := make(chan frame, s.workers*2)

	// Cancellation set (featCancel): the demux intercepts opCancel frames
	// and records the target tags here; workers consult it right before
	// dispatch and drop cancelled work without a reply (safe because a
	// client only cancels tags it has already abandoned). Frame order on
	// the wire guarantees the target request was demuxed — and is queued
	// or done — before its cancel arrives.
	var cancels *cancelSet
	if feats&featCancel != 0 {
		cancels = &cancelSet{tags: make(map[uint64]struct{})}
	}

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		if s.noVec {
			s.respondBuffered(conn, bw, resp, scope)
		} else {
			s.respondVectored(conn, resp, scope)
		}
	}()

	var workerWG sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for fr := range jobs {
				if cancels != nil && cancels.take(fr.tag) {
					// Cancelled while queued: drop without executing or
					// replying — the client abandoned this tag before it
					// sent the cancel.
					s.ctr.cancelsHonored.Add(1)
					fr.release()
					continue
				}
				s.wm.observeQueueWait(fr.enq)
				traced := s.tracer != nil && fr.traced && !fr.enq.IsZero()
				var t0 time.Time
				if traced {
					t0 = time.Now()
					s.tracer.Span(fr.tcID, s.tracer.NewID(), fr.tcSpan, "queue-wait", scope, fr.enq, t0.Sub(fr.enq))
				}
				op, reply := s.dispatch(feats, fr.op, fr.body())
				out := frame{tag: fr.tag, op: op, payload: reply}
				if traced {
					now := time.Now()
					s.tracer.Span(fr.tcID, s.tracer.NewID(), fr.tcSpan, "store", scope, t0, now.Sub(t0))
					// The reply frame reuses the trace fields so the
					// response writer can close a "respond" span when the
					// flush that carries this reply completes.
					out.traced = true
					out.tcID, out.tcSpan = fr.tcID, fr.tcSpan
					out.enq = now
				}
				fr.release()
				resp <- out
			}
		}()
	}

	for {
		if s.ioTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ioTimeout))
		}
		fr, err := readFrame(br, ProtoV2)
		if err != nil {
			break
		}
		if fr.tag&tagTraceFlag != 0 {
			fr.tag &^= tagTraceFlag
			if feats&featTrace == 0 || len(fr.payload) < traceCtxSize {
				// A trace flag the hello never negotiated (or a context
				// too short to exist) is a protocol violation, not a
				// request — drop the connection.
				fr.release()
				break
			}
			fr.traced = true
			fr.tcID = binary.BigEndian.Uint64(fr.payload[:8])
			fr.tcSpan = binary.BigEndian.Uint64(fr.payload[8:16])
		}
		s.wm.onRx(len(fr.payload))
		if fr.op == opCancel {
			// Fire-and-forget by contract: never enters the worker pool,
			// never generates a reply. Honored only when featCancel was
			// negotiated — a stray cancel on an ungated connection cannot
			// reference queued work and is dropped on the floor.
			if feats&featCancel != 0 {
				d := dec{b: fr.body()}
				if target := d.u64(); d.err == nil {
					s.ctr.cancelsReceived.Add(1)
					cancels.add(target)
				}
			}
			fr.release()
			continue
		}
		if s.wm != nil || (s.tracer != nil && fr.traced) {
			fr.enq = time.Now()
		}
		jobs <- fr // bounded: backpressure falls back onto TCP
	}
	close(jobs)
	workerWG.Wait()
	close(resp)
	writerWG.Wait()
}

// respCtx is the trace context a response writer holds between queueing
// a traced reply and the flush that actually puts it on the wire.
type respCtx struct {
	tcID, tcSpan uint64
	start        time.Time
}

// flushRespSpans closes one "respond" span per traced reply carried by
// the flush that just completed.
func (s *DataServer) flushRespSpans(pending []respCtx, scope string) []respCtx {
	if len(pending) == 0 {
		return pending
	}
	now := time.Now()
	for _, rc := range pending {
		s.tracer.Span(rc.tcID, s.tracer.NewID(), rc.tcSpan, "respond", scope, rc.start, now.Sub(rc.start))
	}
	return pending[:0]
}

// respondVectored streams tagged replies back through the vectored
// writer: ownership of each reply payload transfers to the writer
// (DESIGN §11), small acks pack into arena chunks, large read replies
// ride as their own iovec, and the accumulated batch reaches the kernel
// in one writev when the queue runs dry.
func (s *DataServer) respondVectored(conn net.Conn, resp chan frame, scope string) {
	vw := newVecWriter(conn, s.wm)
	defer vw.abandon()
	broken := false
	var pending []respCtx
	for fr := range resp {
		if broken {
			putBuf(fr.payload)
			continue
		}
		n := len(fr.payload)
		if s.tracer != nil && fr.traced {
			pending = append(pending, respCtx{fr.tcID, fr.tcSpan, fr.enq})
		}
		if vw.writeFrame(ProtoV2, fr.tag, fr.op, fr.payload) != nil {
			broken = true
			conn.Close() // unblock the demux reader promptly
			continue
		}
		s.wm.onTx(n)
		if len(resp) == 0 {
			if s.ioTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
			}
			if vw.flush() != nil {
				broken = true
				conn.Close()
				continue
			}
			pending = s.flushRespSpans(pending, scope)
		}
	}
}

// respondBuffered is the legacy corked bufio response path
// (DisableVectored).
func (s *DataServer) respondBuffered(conn net.Conn, bw *bufio.Writer, resp chan frame, scope string) {
	broken := false
	var pending []respCtx
	for fr := range resp {
		if !broken {
			if s.ioTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
			}
			if s.tracer != nil && fr.traced {
				pending = append(pending, respCtx{fr.tcID, fr.tcSpan, fr.enq})
			}
			if writeFrame(bw, ProtoV2, fr.tag, fr.op, fr.payload) != nil {
				broken = true
				conn.Close() // unblock the demux reader promptly
			} else {
				s.wm.onTx(len(fr.payload))
			}
		}
		putBuf(fr.payload)
		if !broken && len(resp) == 0 {
			if bw.Flush() != nil {
				broken = true
				conn.Close()
			} else {
				pending = s.flushRespSpans(pending, scope)
			}
		}
	}
}

// dispatch executes one request and returns the reply opcode and pooled
// payload. feats is the connection's negotiated feature set: opcodes
// that ride a feature bit (opReadDirect rides featCancel, DESIGN §13)
// are protocol errors on a connection that never negotiated it.
func (s *DataServer) dispatch(feats uint32, op byte, payload []byte) (byte, []byte) {
	var reply []byte
	var err error
	switch op {
	case opWrite:
		reply, err = s.handleWrite(payload)
	case opRead:
		reply, err = s.handleRead(payload)
	case opReadDirect:
		if feats&featCancel == 0 {
			err = fmt.Errorf("pfsnet data: opReadDirect without negotiated featCancel")
		} else {
			reply, err = s.handleReadDirect(payload)
		}
	case opStat:
		reply, err = s.handleStat(payload)
	case opFlush:
		reply, err = s.handleFlush(payload)
	default:
		err = fmt.Errorf("pfsnet data: bad opcode %d", op)
	}
	if err != nil {
		putBuf(reply)
		return opError, errorPayload(err)
	}
	return opOK, reply
}

// handleWrite payload: file u64, off i64, flags u8 (1 = fragment/random), data bytes.
func (s *DataServer) handleWrite(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	off := d.i64()
	flags := d.u8()
	data := d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if off < 0 {
		return nil, fmt.Errorf("pfsnet data: negative offset %d", off)
	}
	s.ctr.writes.Add(1)
	s.ctr.wrBytes.Add(int64(len(data)))
	if s.bridge && flags&1 != 0 && !s.ssdDown.Load() {
		// iBridge path: append to the log, record the mapping, and
		// invalidate overlapped older mappings.
		s.logMu.Lock()
		defer s.logMu.Unlock()
		if err := s.invalidateLocked(file, off, int64(len(data))); err != nil {
			return nil, err
		}
		logOff := int64(len(s.logData))
		s.logData = append(s.logData, data...)
		s.table[extKey{file, off}] = extVal{logOff: logOff, length: int64(len(data))}
		s.ctr.fragmentWrites.Add(1)
		s.ctr.logBytes.Add(int64(len(data)))
		if s.ssdFailAfter > 0 && s.ssdWriteCount() >= s.ssdFailAfter {
			// The scheduled device failure trips on this write: drain the
			// log (this write included) and degrade to the direct path.
			if err := s.failSSDLocked(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	// Direct path; the write also supersedes any cached mapping. The
	// store write itself runs outside logMu so independent files don't
	// serialize behind the log lock.
	s.logMu.Lock()
	err := s.invalidateLocked(file, off, int64(len(data)))
	s.logMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.store.WriteAt(file, off, data); err != nil {
		return nil, err
	}
	// Log-backed stores append a record per write, and those appends
	// count toward the scheduled device failure exactly like legacy
	// fragment-log writes — `ssdfail=srvN@K` fault specs apply
	// unchanged whichever store backs the server.
	if s.durable != nil && s.ssdFailAfter > 0 && !s.ssdDown.Load() && s.ssdWriteCount() >= s.ssdFailAfter {
		if err := s.FailSSD(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// ssdWriteCount is the write count the fault plan's ssdfail trigger
// compares against: bridge fragment-log writes plus — for a
// crash-consistent store — the store's own record appends.
func (s *DataServer) ssdWriteCount() int64 {
	n := s.ctr.fragmentWrites.Load()
	if s.durable != nil {
		n += s.durable.RecordAppends()
	}
	return n
}

// failSSDLocked executes the SSD-device failure (logMu held): the
// fragment log is written back once and the server switches to the
// direct store path for all subsequent flagged writes — graceful
// degradation, the pfsnet analogue of the sim bridge handing fragments
// back to the HDD.
func (s *DataServer) failSSDLocked() error {
	if s.ssdDown.Swap(true) {
		return nil
	}
	s.plan.NoteSSDFail()
	if err := s.flushLocked(0, true); err != nil {
		return err
	}
	if s.durable != nil {
		// The same simulated device backs the bridge log and the
		// durable store, so the store's log fails with it: the drained
		// fragments above landed while the device still answered, and
		// the store now degrades to its in-memory overlay (DESIGN §10 —
		// durability lost, bytes kept).
		return s.durable.FailDevice()
	}
	return nil
}

// FailSSD fails this server's SSD (fragment log) device immediately:
// the log is drained back to the object store and all further flagged
// writes take the direct path. Safe to call more than once.
func (s *DataServer) FailSSD() error {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.failSSDLocked()
}

// SSDFailed reports whether the SSD device has failed (by schedule or
// FailSSD) and the server is running degraded.
func (s *DataServer) SSDFailed() bool { return s.ssdDown.Load() }

// invalidateLocked drops log mappings overlapping [off, off+n), first
// writing their current content back to the object so no data is lost
// when a partial overwrite arrives through the direct path. logMu held.
func (s *DataServer) invalidateLocked(file uint64, off, n int64) error {
	type hit struct {
		k extKey
		v extVal
	}
	var hits []hit
	for k, v := range s.table {
		if k.file == file && k.off < off+n && off < k.off+v.length {
			hits = append(hits, hit{k, v})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].k.off < hits[j].k.off })
	for _, h := range hits {
		data := s.logData[h.v.logOff : h.v.logOff+h.v.length]
		if err := s.store.WriteAt(h.k.file, h.k.off, data); err != nil {
			return err
		}
		delete(s.table, h.k)
	}
	return nil
}

// cancelSet is the per-connection set of cancelled request tags
// (featCancel). The demux goroutine adds, workers take; the map is
// bounded because honored cancels delete their entry and the set is
// cleared wholesale past cancelSetMax — by then the targets have long
// left the worker queue, so stale entries only waste memory. Tag reuse
// is impossible within a connection (tags are a monotonic u64).
type cancelSet struct {
	mu   sync.Mutex
	tags map[uint64]struct{}
}

// cancelSetMax bounds a connection's cancelled-tag set; see cancelSet.
const cancelSetMax = 1024

func (cs *cancelSet) add(tag uint64) {
	cs.mu.Lock()
	if len(cs.tags) >= cancelSetMax {
		clear(cs.tags)
	}
	cs.tags[tag] = struct{}{}
	cs.mu.Unlock()
}

// take reports whether tag was cancelled, consuming the entry.
func (cs *cancelSet) take(tag uint64) bool {
	cs.mu.Lock()
	_, ok := cs.tags[tag]
	if ok {
		delete(cs.tags, tag)
	}
	cs.mu.Unlock()
	return ok
}

// handleReadDirect is opRead with the hedge routing hint: a re-issued
// read racing a cancelled (or straggling) primary. Semantically
// identical to a plain read — the fragment-log overlay still applies,
// so hedged reads return exactly the bytes the primary would have.
// The hint only feeds the direct-read counter today; a future elastic
// layer can use it to prefer a replica or the HDD path.
func (s *DataServer) handleReadDirect(payload []byte) ([]byte, error) {
	s.ctr.directReads.Add(1)
	return s.handleRead(payload)
}

// handleRead payload: file u64, off i64, length i64.
// Reply: data bytes.
func (s *DataServer) handleRead(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	off := d.i64()
	length := d.i64()
	if d.err != nil {
		return nil, d.err
	}
	if off < 0 || length < 0 || length > MaxMessage-64 {
		return nil, fmt.Errorf("pfsnet data: bad read [%d,+%d)", off, length)
	}
	s.ctr.reads.Add(1)
	s.ctr.readBytes.Add(length)
	// The reply is built in place — length prefix then data — so the
	// store reads straight into the pooled wire buffer with no
	// intermediate copy.
	reply := getBuf(4 + int(length))
	binary.BigEndian.PutUint32(reply[:4], uint32(length))
	out := reply[4:]
	if err := s.store.ReadAt(file, off, out); err != nil {
		putBuf(reply)
		return nil, err
	}
	// Overlay any mapped log extents (they are newer than the object).
	if s.bridge {
		s.logMu.Lock()
		for k, v := range s.table {
			if k.file != file || k.off >= off+length || off >= k.off+v.length {
				continue
			}
			from := max(k.off, off)
			to := min(k.off+v.length, off+length)
			copy(out[from-off:to-off], s.logData[v.logOff+(from-k.off):v.logOff+(to-k.off)])
			s.ctr.fragmentReads.Add(1)
		}
		s.logMu.Unlock()
	}
	return reply, nil
}

// handleStat payload: file u64. Reply: objectLen i64, mappedExtents u32,
// logBytes i64.
func (s *DataServer) handleStat(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	objLen, err := s.store.Size(file)
	if err != nil {
		return nil, err
	}
	s.logMu.Lock()
	var mapped uint32
	for k := range s.table {
		if k.file == file {
			mapped++
		}
	}
	logLen := int64(len(s.logData))
	s.logMu.Unlock()
	e := newEnc()
	e.i64(objLen)
	e.u32(mapped)
	e.i64(logLen)
	return e.b, nil
}

// handleFlush payload: file u64 (0 = all files). Reply: flushed bytes i64.
func (s *DataServer) handleFlush(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	before := s.ctr.flushedBytes.Load()
	if err := s.flushLocked(file, file == 0); err != nil {
		return nil, err
	}
	e := newEnc()
	e.i64(s.ctr.flushedBytes.Load() - before)
	return e.b, nil
}
