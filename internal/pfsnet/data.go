package pfsnet

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
)

// DataServer stores the per-server striped objects and serves read/write
// sub-requests over TCP. When Bridge is enabled, flagged sub-requests
// (fragments and regular random requests) are written to a log region
// with a mapping table — the functional analogue of iBridge's SSD cache —
// and drained back to the object store on Flush or overwrite.
type DataServer struct {
	ln     net.Listener
	bridge bool
	store  ObjectStore

	mu      sync.Mutex
	logData []byte // the "SSD" log region
	table   map[extKey]extVal

	stats DataStats
	wg    sync.WaitGroup
	quit  chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// DataStats counts server activity.
type DataStats struct {
	Reads, Writes      int64
	FragmentWrites     int64
	FragmentReads      int64
	LogBytes           int64
	Flushes            int64
	FlushedBytes       int64
	ReadBytes, WrBytes int64
}

type extKey struct {
	file uint64
	off  int64
}

type extVal struct {
	logOff int64
	length int64
}

// NewDataServer starts a data server listening on addr (use
// "127.0.0.1:0" for an ephemeral port) with an in-memory object store.
// bridge enables the fragment log.
func NewDataServer(addr string, bridge bool) (*DataServer, error) {
	return NewDataServerWithStore(addr, bridge, NewMemStore())
}

// NewDataServerWithStore starts a data server over the given object
// store (e.g. a FileStore for on-disk objects).
func NewDataServerWithStore(addr string, bridge bool, store ObjectStore) (*DataServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DataServer{
		ln:     ln,
		bridge: bridge,
		store:  store,
		table:  make(map[extKey]extVal),
		quit:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the server's listen address.
func (s *DataServer) Addr() string { return s.ln.Addr().String() }

// Stats returns a copy of the server statistics.
func (s *DataServer) Stats() DataStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the server, flushes the log, and waits for connection
// handlers to finish. Open client connections are severed (clients with
// retry logic redial transparently).
func (s *DataServer) Close() error {
	close(s.quit)
	err := s.ln.Close()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	if ferr := s.FlushLog(); ferr != nil && err == nil {
		err = ferr
	}
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// FlushLog drains every mapped log extent back to the object store, in
// (file, offset) order — the iBridge writeback at program termination.
func (s *DataServer) FlushLog() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(0, true)
}

// flushLocked writes back mapped extents. If all is false, only extents
// of the given file are drained.
func (s *DataServer) flushLocked(file uint64, all bool) error {
	type hit struct {
		k extKey
		v extVal
	}
	var hits []hit
	for k, v := range s.table {
		if all || k.file == file {
			hits = append(hits, hit{k, v})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].k.file != hits[j].k.file {
			return hits[i].k.file < hits[j].k.file
		}
		return hits[i].k.off < hits[j].k.off
	})
	for _, h := range hits {
		data := s.logData[h.v.logOff : h.v.logOff+h.v.length]
		if err := s.store.WriteAt(h.k.file, h.k.off, data); err != nil {
			return err
		}
		delete(s.table, h.k)
		s.stats.FlushedBytes += h.v.length
	}
	if all && len(s.table) == 0 {
		s.logData = s.logData[:0] // log reclaimed
	}
	s.stats.Flushes++
	return nil
}

func (s *DataServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
				log.Printf("pfsnet data: accept: %v", err)
				return
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *DataServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		msg, err := readMessage(conn)
		if err != nil {
			return // client closed or protocol error
		}
		var reply []byte
		var replyOp byte = opOK
		switch msg.op {
		case opWrite:
			reply, err = s.handleWrite(msg.payload)
		case opRead:
			reply, err = s.handleRead(msg.payload)
		case opStat:
			reply, err = s.handleStat(msg.payload)
		case opFlush:
			reply, err = s.handleFlush(msg.payload)
		default:
			err = fmt.Errorf("pfsnet data: bad opcode %d", msg.op)
		}
		if err != nil {
			replyOp = opError
			reply = errorPayload(err)
		}
		if err := writeMessage(conn, replyOp, reply); err != nil {
			return
		}
	}
}

// handleWrite payload: file u64, off i64, flags u8 (1 = fragment/random), data bytes.
func (s *DataServer) handleWrite(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	off := d.i64()
	flags := d.u8()
	data := d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if off < 0 {
		return nil, fmt.Errorf("pfsnet data: negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Writes++
	s.stats.WrBytes += int64(len(data))
	if s.bridge && flags&1 != 0 {
		// iBridge path: append to the log, record the mapping, and
		// invalidate overlapped older mappings.
		if err := s.invalidateLocked(file, off, int64(len(data))); err != nil {
			return nil, err
		}
		logOff := int64(len(s.logData))
		s.logData = append(s.logData, data...)
		s.table[extKey{file, off}] = extVal{logOff: logOff, length: int64(len(data))}
		s.stats.FragmentWrites++
		s.stats.LogBytes += int64(len(data))
		return nil, nil
	}
	// Direct path; the write also supersedes any cached mapping.
	if err := s.invalidateLocked(file, off, int64(len(data))); err != nil {
		return nil, err
	}
	return nil, s.store.WriteAt(file, off, data)
}

// invalidateLocked drops log mappings overlapping [off, off+n), first
// writing their current content back to the object so no data is lost
// when a partial overwrite arrives through the direct path.
func (s *DataServer) invalidateLocked(file uint64, off, n int64) error {
	type hit struct {
		k extKey
		v extVal
	}
	var hits []hit
	for k, v := range s.table {
		if k.file == file && k.off < off+n && off < k.off+v.length {
			hits = append(hits, hit{k, v})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].k.off < hits[j].k.off })
	for _, h := range hits {
		data := s.logData[h.v.logOff : h.v.logOff+h.v.length]
		if err := s.store.WriteAt(h.k.file, h.k.off, data); err != nil {
			return err
		}
		delete(s.table, h.k)
	}
	return nil
}

// handleRead payload: file u64, off i64, length i64.
// Reply: data bytes.
func (s *DataServer) handleRead(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	off := d.i64()
	length := d.i64()
	if d.err != nil {
		return nil, d.err
	}
	if off < 0 || length < 0 || length > MaxMessage-64 {
		return nil, fmt.Errorf("pfsnet data: bad read [%d,+%d)", off, length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Reads++
	s.stats.ReadBytes += length
	out := make([]byte, length)
	if err := s.store.ReadAt(file, off, out); err != nil {
		return nil, err
	}
	// Overlay any mapped log extents (they are newer than the object).
	if s.bridge {
		for k, v := range s.table {
			if k.file != file || k.off >= off+length || off >= k.off+v.length {
				continue
			}
			from := max64(k.off, off)
			to := min64(k.off+v.length, off+length)
			copy(out[from-off:to-off], s.logData[v.logOff+(from-k.off):v.logOff+(to-k.off)])
			s.stats.FragmentReads++
		}
	}
	var e enc
	e.bytes(out)
	return e.b, nil
}

// handleStat payload: file u64. Reply: objectLen i64, mappedExtents u32,
// logBytes i64.
func (s *DataServer) handleStat(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	objLen, err := s.store.Size(file)
	if err != nil {
		return nil, err
	}
	var mapped uint32
	for k := range s.table {
		if k.file == file {
			mapped++
		}
	}
	var e enc
	e.i64(objLen)
	e.u32(mapped)
	e.i64(int64(len(s.logData)))
	return e.b, nil
}

// handleFlush payload: file u64 (0 = all files). Reply: flushed bytes i64.
func (s *DataServer) handleFlush(payload []byte) ([]byte, error) {
	d := dec{b: payload}
	file := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.stats.FlushedBytes
	if err := s.flushLocked(file, file == 0); err != nil {
		return nil, err
	}
	var e enc
	e.i64(s.stats.FlushedBytes - before)
	return e.b, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
