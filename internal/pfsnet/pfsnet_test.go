package pfsnet

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testCluster starts a meta server and n data servers on ephemeral ports
// and returns the meta address plus a cleanup function.
func testCluster(t *testing.T, n int, unit int64, bridge bool) string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		ds, err := NewDataServer("127.0.0.1:0", bridge)
		if err != nil {
			t.Fatalf("data server %d: %v", i, err)
		}
		t.Cleanup(func() { ds.Close() })
		addrs = append(addrs, ds.Addr())
	}
	ms, err := NewMetaServer("127.0.0.1:0", unit, addrs)
	if err != nil {
		t.Fatalf("meta server: %v", err)
	}
	t.Cleanup(func() { ms.Close() })
	return ms.Addr()
}

func TestCreateOpenRoundTrip(t *testing.T) {
	meta := testCluster(t, 4, 64*1024, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if f.ID == 0 || f.Size != 1<<20 || f.Layout().Servers != 4 {
		t.Fatalf("file = %+v", f)
	}
	g, err := c.Open("data")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if g.ID != f.ID || g.Size != f.Size {
		t.Fatalf("Open mismatch: %+v vs %+v", g, f)
	}
	if _, err := c.Create("data", 1<<20); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := c.Open("missing"); err == nil {
		t.Fatal("open of missing file accepted")
	}
}

func TestWriteReadAcrossServers(t *testing.T) {
	meta := testCluster(t, 4, 4096, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	rng := sim.NewRNG(7)
	buf := make([]byte, 40000) // spans ~10 units over 4 servers
	for i := range buf {
		buf[i] = byte(rng.Uint64())
	}
	if err := c.WriteAt(f, 1234, buf); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(buf))
	if err := c.ReadAt(f, 1234, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("read data differs from written data")
	}
	// Unwritten ranges read as zeros.
	zeros := make([]byte, 100)
	if err := c.ReadAt(f, 500000, zeros); err != nil {
		t.Fatalf("ReadAt zeros: %v", err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Fatal("unwritten range not zero")
		}
	}
}

func TestFragmentPathPreservesData(t *testing.T) {
	// iBridge client + bridge-enabled servers: a 65KB write produces a
	// 1KB fragment that lands in the data server's log; the read must
	// still return the exact bytes.
	meta := testCluster(t, 8, 64*1024, true)
	c := NewIBridgeClient(meta, 20*1024, 20*1024)
	defer c.Close()
	f, err := c.Create("data", 10<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	rng := sim.NewRNG(3)
	buf := make([]byte, 65*1024)
	for i := range buf {
		buf[i] = byte(rng.Uint64())
	}
	if err := c.WriteAt(f, 0, buf); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(buf))
	if err := c.ReadAt(f, 0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("fragment path corrupted data")
	}
}

func TestFragmentOverwriteThroughDirectPath(t *testing.T) {
	// Write a fragment (goes to the log), then overwrite the same
	// region with a large non-flagged write: the direct path must
	// supersede the log mapping.
	meta := testCluster(t, 2, 64*1024, true)
	ib := NewIBridgeClient(meta, 20*1024, 20*1024)
	defer ib.Close()
	plain := NewClient(meta)
	defer plain.Close()

	f, err := ib.Create("data", 10<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	first := bytes.Repeat([]byte{0xAA}, 65*1024)
	if err := ib.WriteAt(f, 0, first); err != nil {
		t.Fatalf("fragment write: %v", err)
	}
	f2, err := plain.Open("data")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	second := bytes.Repeat([]byte{0x55}, 130*1024)
	if err := plain.WriteAt(f2, 0, second); err != nil {
		t.Fatalf("direct write: %v", err)
	}
	got := make([]byte, len(second))
	if err := plain.ReadAt(f2, 0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, second) {
		t.Fatal("stale fragment data survived a direct overwrite")
	}
}

func TestPartialOverwriteOfFragment(t *testing.T) {
	// A direct write overlapping only part of a logged fragment must
	// preserve the non-overlapped fragment bytes.
	meta := testCluster(t, 2, 64*1024, true)
	ib := NewIBridgeClient(meta, 20*1024, 20*1024)
	defer ib.Close()
	f, err := ib.Create("data", 10<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// 65KB write: 64KB on server 0, 1KB fragment on server 1 at
	// server-local offset 0 (file offset 64KB).
	buf := bytes.Repeat([]byte{0xAA}, 65*1024)
	if err := ib.WriteAt(f, 0, buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Overwrite file range [64KB, 64KB+512) — half the fragment.
	patch := bytes.Repeat([]byte{0x77}, 512)
	plain := NewClient(meta)
	defer plain.Close()
	f2, _ := plain.Open("data")
	if err := plain.WriteAt(f2, 64*1024, patch); err != nil {
		t.Fatalf("patch: %v", err)
	}
	got := make([]byte, 1024)
	if err := plain.ReadAt(f2, 64*1024, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	for i := 0; i < 512; i++ {
		if got[i] != 0x77 {
			t.Fatalf("patched byte %d = %x", i, got[i])
		}
	}
	for i := 512; i < 1024; i++ {
		if got[i] != 0xAA {
			t.Fatalf("fragment byte %d lost: %x", i, got[i])
		}
	}
}

func TestRandomRequestFlagging(t *testing.T) {
	meta := testCluster(t, 2, 64*1024, true)
	c := NewIBridgeClient(meta, 20*1024, 20*1024)
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// A 4KB write (below the random threshold) must take the log path.
	small := bytes.Repeat([]byte{1}, 4096)
	if err := c.WriteAt(f, 100, small); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 4096)
	if err := c.ReadAt(f, 100, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, small) {
		t.Fatal("random-request path corrupted data")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	meta := testCluster(t, 2, 64*1024, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("data", 1000)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.WriteAt(f, 900, make([]byte, 200)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := c.ReadAt(f, -1, make([]byte, 10)); err == nil {
		t.Fatal("negative-offset read accepted")
	}
}

// TestPropertyReadbackMatchesReference drives random writes and reads
// through the iBridge-enabled cluster and cross-checks every read against
// an in-memory reference buffer.
func TestPropertyReadbackMatchesReference(t *testing.T) {
	meta := testCluster(t, 4, 8192, true)
	c := NewIBridgeClient(meta, 3000, 3000)
	defer c.Close()
	const fileSize = 1 << 18
	f, err := c.Create("data", fileSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	ref := make([]byte, fileSize)
	rng := sim.NewRNG(99)
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(offRaw, lenRaw uint32, write bool) bool {
		off := int64(offRaw) % fileSize
		length := int64(lenRaw)%(40*1024) + 1
		if off+length > fileSize {
			length = fileSize - off
		}
		if write {
			data := make([]byte, length)
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			if err := c.WriteAt(f, off, data); err != nil {
				t.Logf("WriteAt: %v", err)
				return false
			}
			copy(ref[off:], data)
			return true
		}
		got := make([]byte, length)
		if err := c.ReadAt(f, off, got); err != nil {
			t.Logf("ReadAt: %v", err)
			return false
		}
		return bytes.Equal(got, ref[off:off+length])
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDataServerStats(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(f, 0, make([]byte, 4096)); err != nil { // random → log
		t.Fatal(err)
	}
	if err := c.WriteAt(f, 65536, make([]byte, 30000)); err != nil { // direct
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.Writes != 2 || st.FragmentWrites != 1 || st.LogBytes != 4096 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMessage(&buf, opRead, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	msg, err := readMessage(&buf)
	if err != nil || msg.op != opRead || len(msg.payload) != 3 {
		t.Fatalf("round trip: %v %+v", err, msg)
	}
	// Truncated frame.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, opRead, 1})
	if _, err := readMessage(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Oversized frame header.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, opRead})
	if _, err := readMessage(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestDecoderShortInputs(t *testing.T) {
	d := dec{b: []byte{1, 2}}
	d.u64()
	if d.err == nil {
		t.Fatal("short u64 accepted")
	}
	d2 := dec{b: []byte{0, 0, 0, 10, 'x'}}
	d2.bytes()
	if d2.err == nil {
		t.Fatal("short bytes accepted")
	}
}
