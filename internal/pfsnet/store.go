package pfsnet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ObjectStore is the data server's backing store for per-file objects.
// The default is in-memory; FileStore persists objects under a
// directory, and logstore.LogStore adds crash consistency on top
// (DESIGN §14). The shared semantic contract — sparse zero-fill reads,
// negative offsets rejected, concurrent readers — is pinned by the
// internal/storetest conformance suite, which every implementation
// must pass.
type ObjectStore interface {
	// WriteAt writes data at off in the object for file, growing it as
	// needed. Negative offsets are an error.
	WriteAt(file uint64, off int64, data []byte) error
	// ReadAt fills p from the object at off; missing ranges read as
	// zeros (sparse semantics). Negative offsets are an error.
	ReadAt(file uint64, off int64, p []byte) error
	// Size returns the current object length for file.
	Size(file uint64) (int64, error)
	// Close releases resources.
	Close() error
}

// MemStore is the default in-memory object store. Reads take the lock
// shared, so concurrent server workers reading different (or the same)
// objects do not serialize.
type MemStore struct {
	mu      sync.RWMutex
	objects map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[uint64][]byte)}
}

// WriteAt implements ObjectStore.
func (s *MemStore) WriteAt(file uint64, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("pfsnet: negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[file]
	if end := off + int64(len(data)); int64(len(o)) < end {
		if end <= int64(cap(o)) {
			o = o[:end]
		} else {
			// Grow geometrically: objects extend one sub-request at a
			// time, and reallocating the whole object per write would
			// make appending N bytes cost O(N²) copying.
			newCap := max(end, 2*int64(cap(o)))
			grown := make([]byte, end, newCap)
			copy(grown, o)
			o = grown
		}
	}
	copy(o[off:], data)
	s.objects[file] = o
	return nil
}

// ReadAt implements ObjectStore.
func (s *MemStore) ReadAt(file uint64, off int64, p []byte) error {
	if off < 0 {
		return fmt.Errorf("pfsnet: negative offset %d", off)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	clear(p)
	if o := s.objects[file]; off < int64(len(o)) {
		copy(p, o[off:])
	}
	return nil
}

// Size implements ObjectStore.
func (s *MemStore) Size(file uint64) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.objects[file])), nil
}

// Close implements ObjectStore.
func (s *MemStore) Close() error { return nil }

// FileStore keeps each object in a sparse file under dir — the analogue
// of PVFS2's Trove bstreams on the server-local file system. The handle
// map is read-mostly: steady-state lookups take the lock shared, so
// concurrent I/O to independent files proceeds in parallel (the reads
// and writes themselves are positional pread/pwrite, which need no
// lock at all).
//
// Crash guarantees: almost none, by design. Writes are acknowledged
// from the page cache; nothing is fsynced until Close, so a machine
// crash (or SIGKILL before Close) can lose any acknowledged write, and
// a torn page can corrupt one silently — there are no checksums and no
// recovery protocol. Close syncs every object file before closing it,
// so a clean shutdown is durable; that is the entire story. Servers
// that need crash consistency — replay to the last acknowledged write,
// torn-write detection, byte-verifiable contents after a kill — use
// internal/logstore instead (pfs-server -store=log; DESIGN §14 spells
// out the contrast).
type FileStore struct {
	dir string

	mu    sync.RWMutex
	files map[uint64]*os.File
}

// NewFileStore returns a store writing objects under dir (created if
// missing).
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, files: make(map[uint64]*os.File)}, nil
}

func (s *FileStore) handle(file uint64) (*os.File, error) {
	s.mu.RLock()
	f, ok := s.files[file]
	s.mu.RUnlock()
	if ok {
		return f, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[file]; ok { // lost an open race
		return f, nil
	}
	f, err := os.OpenFile(filepath.Join(s.dir, fmt.Sprintf("obj-%d.dat", file)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s.files[file] = f
	return f, nil
}

// WriteAt implements ObjectStore.
func (s *FileStore) WriteAt(file uint64, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("pfsnet: negative offset %d", off)
	}
	f, err := s.handle(file)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, off)
	return err
}

// ReadAt implements ObjectStore.
func (s *FileStore) ReadAt(file uint64, off int64, p []byte) error {
	if off < 0 {
		return fmt.Errorf("pfsnet: negative offset %d", off)
	}
	f, err := s.handle(file)
	if err != nil {
		return err
	}
	n, err := f.ReadAt(p, off)
	if err == io.EOF || (err == nil && n == len(p)) {
		// Short read past EOF: the remainder is zeros (sparse).
		clear(p[n:])
		return nil
	}
	// A genuine I/O error must surface, not read as zeros: zero-filling
	// here would turn device trouble into silently wrong data.
	return err
}

// Size implements ObjectStore.
func (s *FileStore) Size(file uint64) (int64, error) {
	f, err := s.handle(file)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements ObjectStore.
func (s *FileStore) Close() error {
	type handle struct {
		id uint64
		f  *os.File
	}
	s.mu.Lock()
	hs := make([]handle, 0, len(s.files))
	for id, f := range s.files {
		hs = append(hs, handle{id, f})
	}
	clear(s.files)
	s.mu.Unlock()
	// Sync then close outside the lock (both hit the kernel) and in id
	// order, so which error wins is deterministic rather than a
	// function of map iteration order. The fsync is what makes a clean
	// shutdown durable — it is also the only fsync this store ever
	// issues (see the type comment).
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	var first error
	for _, h := range hs {
		if err := h.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := h.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
