package pfsnet

import (
	"fmt"
	"sync"
)

// breaker is the client's per-server circuit breaker. It is count-based
// and clock-free: threshold consecutive transport failures open it, and
// while open exactly one caller at a time is admitted as a probe; every
// other caller fails fast with ErrServerDown instead of queueing behind
// a server that is known to be down. The first successful exchange (or
// any reply from the server, including an error reply — the server
// answered, so it is alive) closes the breaker.
//
// Admitting the very next caller as the probe, rather than gating probes
// on a cooldown timer, keeps recovery immediate — a restarted server is
// back in service on the first request that reaches it — and keeps the
// breaker's behaviour a pure function of the request/failure sequence,
// which is what makes chaos runs reproducible from the fault-plan seed.
type breaker struct {
	mu        sync.Mutex
	threshold int // consecutive failures to open; <= 0 disables
	consec    int
	open      bool
	probing   bool
}

// acquire asks to attempt a request. It returns probe=true when the
// breaker is open and this caller has been admitted as the single
// in-flight probe; it returns an error wrapping ErrServerDown when the
// breaker is open and a probe is already out.
func (b *breaker) acquire(addr string) (probe bool, err error) {
	if b == nil {
		return false, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false, nil
	}
	if b.probing {
		return false, fmt.Errorf("pfsnet: %s: %w after %d consecutive transport failures", addr, ErrServerDown, b.consec)
	}
	b.probing = true
	return true, nil
}

// record reports the outcome of an attempt admitted by acquire. It
// returns the breaker's state transition, if any, so the caller can
// maintain gauges without re-entering the lock.
func (b *breaker) record(probe, ok bool) (opened, closed bool) {
	if b == nil {
		return false, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if ok {
		b.consec = 0
		if b.open {
			b.open = false
			return false, true
		}
		return false, false
	}
	b.consec++
	if !b.open && b.threshold > 0 && b.consec >= b.threshold {
		b.open = true
		return true, false
	}
	return false, false
}

// isOpen reports whether the breaker currently marks the server degraded.
func (b *breaker) isOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
