package pfsnet

import (
	"testing"

	"repro/internal/storetest"
)

// The storetest conformance suite pins the ObjectStore contract for
// both in-tree pfsnet stores; logstore runs the same suite in its own
// package. A store that diverges on sparse reads, zero-fill, negative
// offsets, or concurrent readers fails here, not in a data-server
// integration test three layers up.

func TestMemStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Store {
		return NewMemStore()
	})
}

func TestFileStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Store {
		s, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}
