package pfsnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faults"
)

// FuzzReadMessage feeds arbitrary byte streams through the framing layer
// at both protocol versions: the decoders must return an error or a
// well-formed frame, never panic, and any frame that survives a decode
// must re-encode to a stream the decoder accepts again.
func FuzzReadMessage(f *testing.F) {
	// Seeds: a valid v1 frame, a valid v2 frame, and the malformed
	// shapes from the table test.
	var v1 bytes.Buffer
	writeMessage(&v1, opRead, []byte{1, 2, 3})
	f.Add(v1.Bytes())
	var v2 bytes.Buffer
	writeFrame(&v2, ProtoV2, 42, opWrite, []byte("payload"))
	f.Add(v2.Bytes())
	f.Add([]byte{0, 0})                            // truncated length prefix
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, opRead})  // oversize length
	f.Add([]byte{0, 0, 0, 100, opRead, 1, 2})      // short payload
	f.Add([]byte{0, 0, 0, 2, 0xEE, 9})             // unknown opcode
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := readMessage(bytes.NewReader(data))
		if err == nil {
			// Whatever decoded must round-trip.
			var buf bytes.Buffer
			if werr := writeMessage(&buf, msg.op, msg.payload); werr != nil {
				t.Fatalf("decoded frame does not re-encode: %v", werr)
			}
			again, rerr := readMessage(&buf)
			if rerr != nil || again.op != msg.op || !bytes.Equal(again.payload, msg.payload) {
				t.Fatalf("re-decode mismatch: %v", rerr)
			}
		}
		for _, ver := range []int{ProtoV1, ProtoV2} {
			fr, err := readFrame(bufio.NewReader(bytes.NewReader(data)), ver)
			if err == nil {
				var buf bytes.Buffer
				if werr := writeFrame(&buf, ver, fr.tag, fr.op, fr.payload); werr != nil {
					t.Fatalf("v%d frame does not re-encode: %v", ver, werr)
				}
				again, rerr := readFrame(bufio.NewReader(&buf), ver)
				if rerr != nil || again.tag != fr.tag || again.op != fr.op || !bytes.Equal(again.payload, fr.payload) {
					t.Fatalf("v%d re-decode mismatch: %v", ver, rerr)
				}
				again.release()
				fr.release()
			}
		}
	})
}

// TestServerRejectsMalformedFrames drives raw malformed byte streams at
// a live data server: the server must reply opError (unknown opcode) or
// close the connection cleanly (corrupt framing), never panic, and never
// leak the connection or wedge the listener.
func TestServerRejectsMalformedFrames(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	cases := []struct {
		name      string
		raw       []byte
		wantReply bool // opError reply expected; otherwise a clean close
	}{
		{"truncated length prefix", []byte{0, 0}, false},
		{"oversize frame", []byte{0xFF, 0xFF, 0xFF, 0xFF, opRead}, false},
		{"zero-length frame", []byte{0, 0, 0, 0}, false},
		{"short payload", append([]byte{0, 0, 0, 100, opRead}, 1, 2, 3), false},
		{"unknown opcode", []byte{0, 0, 0, 2, 0xEE, 9}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nc, err := net.Dial("tcp", ds.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			if _, err := nc.Write(tc.raw); err != nil {
				t.Fatal(err)
			}
			if !tc.wantReply {
				// Signal EOF so truncated streams terminate; the server
				// must close its side without a reply.
				nc.(*net.TCPConn).CloseWrite()
			}
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			msg, err := readMessage(nc)
			if tc.wantReply {
				if err != nil {
					t.Fatalf("want opError reply, got %v", err)
				}
				if msg.op != opError {
					t.Fatalf("reply opcode = %d, want opError", msg.op)
				}
				// The connection must still be usable after the error.
				var e enc
				e.u64(1)
				if err := writeMessage(nc, opStat, e.b); err != nil {
					t.Fatalf("write after error: %v", err)
				}
				msg, err = readMessage(nc)
				if err != nil || msg.op != opOK {
					t.Fatalf("opStat after opError: %v op=%d", err, msg.op)
				}
			} else if err == nil {
				t.Fatalf("want clean close, got reply op=%d", msg.op)
			} else if err != io.EOF && err != io.ErrUnexpectedEOF {
				// A reset is acceptable too; a deadline timeout is not —
				// that means the server neither replied nor closed.
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Fatalf("server hung instead of closing: %v", err)
				}
			}
		})
	}

	// No connection leaked: every handler observed its close.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ds.connMu.Lock()
		n := len(ds.conns)
		ds.connMu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections leaked", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the server still serves a well-formed client.
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()
	f, err := c.Create("after-garbage", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(f, 0, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedFramesThroughFaultyConns replays the malformed-frame
// table through connections wrapped with an armed fault plan (partial
// writes, corruption, latency), so the server sees the table's shapes
// further mangled mid-stream. The server must reply or close within the
// deadline — never hang, never panic — and must stay healthy for a
// clean client afterwards.
func TestMalformedFramesThroughFaultyConns(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	plan := faults.MustParse("seed=13; partial=1/4; corrupt=1/3; latency=1ms@1/2")

	raws := [][]byte{
		{0, 0},                           // truncated length prefix
		{0xFF, 0xFF, 0xFF, 0xFF, opRead}, // oversize frame
		{0, 0, 0, 0},                     // zero-length frame
		append([]byte{0, 0, 0, 100, opRead}, 1, 2, 3), // short payload
		{0, 0, 0, 2, 0xEE, 9},                         // unknown opcode
	}
	for round := 0; round < 4; round++ {
		for _, raw := range raws {
			nc, err := plan.Dial("fuzz", "tcp", ds.Addr(), time.Second)
			if err != nil {
				continue // injected dial fault; the point is server health
			}
			nc.Write(raw) // may be cut short or mangled by the plan
			nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			readMessage(nc) // drain a reply if one comes; errors are fine
			nc.Close()
		}
	}
	if len(plan.Counts()) == 0 {
		t.Fatal("plan injected nothing; test is vacuous")
	}
	// Every handler must observe its close: a frame mangled into a huge
	// length must not pin a connection (and with it the handler) forever.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ds.connMu.Lock()
		n := len(ds.conns)
		ds.connMu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections leaked after faulty garbage", n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server still serves a well-formed client over a faulty conn
	// path with retries.
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()
	f, err := c.Create("after-faulty-garbage", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(f, 0, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedHello sends a corrupt hello payload: the handshake must
// fail the connection without panicking and without wedging the server.
func TestMalformedHello(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	nc, err := net.Dial("tcp", ds.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// opHello with a 2-byte payload (u32 required).
	hdr := []byte{0, 0, 0, 3, opHello, 1, 2}
	if _, err := nc.Write(hdr); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered a corrupt hello")
	}
	// Server still accepts valid traffic.
	nc2, err := net.Dial("tcp", ds.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	var e enc
	e.u32(uint32(ProtoV2))
	if err := writeMessage(nc2, opHello, e.b); err != nil {
		t.Fatal(err)
	}
	msg, err := readMessage(nc2)
	if err != nil || msg.op != opOK {
		t.Fatalf("hello after corrupt hello: %v op=%d", err, msg.op)
	}
	var agreed [4]byte
	copy(agreed[:], msg.payload)
	if v := binary.BigEndian.Uint32(agreed[:]); v != ProtoV2 {
		t.Fatalf("agreed version = %d, want %d", v, ProtoV2)
	}
}
