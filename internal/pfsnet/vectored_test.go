package pfsnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
)

// wireMode is one side of the interop matrix.
type wireMode struct {
	name  string
	proto int  // MaxProto cap (0 = latest)
	noVec bool // disable vectored submission
}

var wireModes = []wireMode{
	{name: "v1", proto: ProtoV1},
	{name: "v2-bufio", proto: 0, noVec: true},
	{name: "v2-vectored", proto: 0},
}

// TestInteropMatrix drives every {v1, v2-bufio, v2-vectored} client ×
// server pairing through the same unaligned multi-server workload and
// asserts byte-identical readback everywhere: the vectored zero-copy
// path must be invisible at the payload level.
func TestInteropMatrix(t *testing.T) {
	const unit = 4096
	rng := sim.NewRNG(42)
	ref := make([]byte, 10*unit+517) // ~10 units over 4 servers, unaligned tail
	for i := range ref {
		ref[i] = byte(rng.Uint64())
	}
	var golden []byte
	for _, sm := range wireModes {
		for _, cm := range wireModes {
			t.Run(fmt.Sprintf("server=%s/client=%s", sm.name, cm.name), func(t *testing.T) {
				var addrs []string
				for i := 0; i < 4; i++ {
					ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{
						MaxProto:        sm.proto,
						DisableVectored: sm.noVec,
					})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { ds.Close() })
					addrs = append(addrs, ds.Addr())
				}
				ms, err := NewMetaServer("127.0.0.1:0", unit, addrs)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { ms.Close() })
				c := NewClient(ms.Addr())
				c.MaxProto = cm.proto
				c.DisableVectored = cm.noVec
				t.Cleanup(func() { c.Close() })

				f, err := c.Create("interop", 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				// One striped write (batched per server on v2) plus small
				// unaligned overwrites that ride the single-sub path.
				if err := c.WriteAt(f, 333, ref); err != nil {
					t.Fatalf("WriteAt: %v", err)
				}
				if err := c.WriteAt(f, 333+unit-7, ref[unit-7:unit+13]); err != nil {
					t.Fatalf("overwrite: %v", err)
				}
				got := make([]byte, len(ref))
				if err := c.ReadAt(f, 333, got); err != nil {
					t.Fatalf("ReadAt: %v", err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatal("full readback differs from written data")
				}
				// Unaligned span crossing a server boundary mid-read.
				span := make([]byte, 2*unit)
				if err := c.ReadAt(f, 333+unit/2, span); err != nil {
					t.Fatalf("span ReadAt: %v", err)
				}
				if !bytes.Equal(span, ref[unit/2:unit/2+2*unit]) {
					t.Fatal("span readback differs")
				}
				// Cross-pairing check: every combination must return the
				// same bytes, not merely internally consistent ones.
				all := append(append([]byte{}, got...), span...)
				if golden == nil {
					golden = all
				} else if !bytes.Equal(all, golden) {
					t.Fatal("readback differs from other matrix pairings")
				}
			})
		}
	}
}

// partialSeed finds a plan seed whose partial-write stride (at 1/2)
// spares write #0 and fires on write #1 — i.e. the server's hello reply
// survives and its first data response is truncated. Probed through the
// public faults API so the test does not depend on the phase formula.
func partialSeed(t *testing.T) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		p := faults.MustParse(fmt.Sprintf("seed=%d; partial=1/2", seed))
		c1, c2 := net.Pipe()
		fc := p.WrapConn(c1, "probe")
		go io.Copy(io.Discard, c2)
		_, err0 := fc.Write([]byte{1, 2})
		_, err1 := fc.Write([]byte{3, 4})
		c1.Close()
		c2.Close()
		if err0 == nil && err1 != nil {
			return seed
		}
	}
	t.Fatal("no seed with phase 1 in 64 tries")
	return 0
}

// TestPartialWriteYieldsCorruptFrame injects a partial write into the
// data server's vectored response path and asserts the client observes
// ErrCorruptFrame promptly — a truncated frame must classify as
// corruption, never hang a waiter and never pass as a short read.
func TestPartialWriteYieldsCorruptFrame(t *testing.T) {
	seed := partialSeed(t)
	plan := faults.MustParse(fmt.Sprintf("seed=%d; partial=1/2", seed))
	c, _, _ := resilienceCluster(t, ServerConfig{
		FaultPlan:  plan,
		FaultScope: "srv0",
	}, func(c *Client) {
		c.MaxRetries = -1
		c.BreakerThreshold = -1
		// Backstop only: if truncation were to hang the reader, this
		// deadline would surface as ErrDeadline and fail the Is check.
		c.IOTimeout = 2 * time.Second
	})
	f, err := c.Create("trunc", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// One large reply frame: cutting the response batch in half always
	// lands mid-frame. (Server writes: #0 hello reply, #1 this reply.)
	err = c.ReadAt(f, 0, make([]byte, 64<<10))
	if err == nil {
		t.Fatal("read over truncated response succeeded")
	}
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("error = %v, want ErrCorruptFrame", err)
	}
	if got := plan.Counts()["partial"]; got == 0 {
		t.Fatal("partial fault did not fire")
	}
}

// TestPoolRejectsForeignBuffers pins the pool's ownership guard: a
// buffer whose capacity is in the pool's range but not an exact size
// class was not shaped by getBuf and must be rejected and counted, both
// in the package-global accessor and the armed obs counter.
func TestPoolRejectsForeignBuffers(t *testing.T) {
	reg := obs.NewRegistry()
	newWireMetrics(reg, "pfsnet.test.") // arms pfsnet.pool.foreign_put
	counter := reg.Counter("pfsnet.pool.foreign_put")
	base := PoolForeignPuts()
	baseObs := counter.Value()

	putBuf(make([]byte, 1500)) // cap 1500: in range, not a power of two
	if got := PoolForeignPuts() - base; got != 1 {
		t.Fatalf("foreign put count = %d, want 1", got)
	}
	if got := counter.Value() - baseObs; got != 1 {
		t.Fatalf("obs foreign_put delta = %d, want 1", got)
	}

	// Legitimate non-pooled shapes stay silent: undersized, oversized,
	// nil, and exact size classes.
	putBuf(nil)
	putBuf(make([]byte, 16))
	putBuf(make([]byte, 0, 1<<minBufClass))
	putBuf(getBuf(8192))
	if got := PoolForeignPuts() - base; got != 1 {
		t.Fatalf("foreign put count after legitimate puts = %d, want 1", got)
	}
}

// TestWritePathNoForeignChurn guards the encoder size hints: a striped
// write's encode buffers must stay inside their size class end to end,
// so the wire path recycles them instead of leaking foreign-capacity
// garbage (the pre-vectored write path outgrew its class on every
// sub-request ≥ its initial class).
func TestWritePathNoForeignChurn(t *testing.T) {
	meta := testCluster(t, 4, 4096, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("churn", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 40000)
	base := PoolForeignPuts()
	for i := 0; i < 8; i++ {
		if err := c.WriteAt(f, int64(i)*1111, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ReadAt(f, 0, make([]byte, 48000)); err != nil {
		t.Fatal(err)
	}
	if got := PoolForeignPuts() - base; got != 0 {
		t.Fatalf("wire path produced %d foreign puts, want 0", got)
	}
}

// Alloc-regression guards on the v2 hot paths. The bounds are loose
// enough for scheduler noise but tight enough that reintroducing a
// per-call payload copy or a per-frame buffer allocation trips them.
// Each measured op is a full client round trip with the in-process
// server's handler allocations included.
func TestV2HotPathAllocs(t *testing.T) {
	meta := testCluster(t, 1, 64*1024, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("allocs", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	// Warm the conn pool and the buffer pools.
	for i := 0; i < 16; i++ {
		if err := c.WriteAt(f, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.ReadAt(f, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	writeAllocs := testing.AllocsPerRun(200, func() {
		if err := c.WriteAt(f, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
	readAllocs := testing.AllocsPerRun(200, func() {
		if err := c.ReadAt(f, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
	const maxWrite, maxRead = 20, 20
	if writeAllocs > maxWrite {
		t.Errorf("v2 write path: %.1f allocs/op, want <= %d", writeAllocs, maxWrite)
	}
	if readAllocs > maxRead {
		t.Errorf("v2 read path: %.1f allocs/op, want <= %d", readAllocs, maxRead)
	}
	t.Logf("allocs/op: write=%.1f read=%.1f", writeAllocs, readAllocs)
}
