// Package pfsnet implements a real, runnable striped parallel file
// system over TCP: a metadata server that places files, data servers that
// store the per-server objects, and a client that performs the PVFS2-style
// decomposition of file requests into per-server sub-requests — including
// iBridge's client-side fragment flagging, carried on the wire exactly as
// the simulator models it.
//
// The data servers implement a functional analogue of the iBridge cache:
// sub-requests flagged as fragments (or small random requests) are
// appended to a log region with a mapping table, and reads are served
// from the log when mapped. This exercises the correctness of the
// fragment path end to end with real bytes; the performance analysis
// lives in the simulator (internal/cluster), since host disks are not the
// paper's devices.
//
// Wire format, protocol v1: every message is a 4-byte big-endian length
// followed by a 1-byte opcode and an opcode-specific payload. Strings and
// byte blobs are 4-byte-length-prefixed. All integers are big-endian.
//
// Protocol v2 (negotiated at connect time, see below) inserts an 8-byte
// request tag between the length and the opcode. The tag is chosen by
// the requester and echoed verbatim in the reply, which lets many
// requests multiplex over one connection with out-of-order replies —
// the wire-level analogue of getting many independent sub-requests in
// flight per server at once.
//
// Negotiation: a v2 client opens every connection by sending a v1-framed
// opHello carrying its maximum supported version. A v2 server replies
// opOK with the agreed version (the minimum of the two maxima) and both
// sides switch framing; a v1 server rejects the unknown opcode with
// opError, which the client takes as "v1 peer" and falls back. A v1
// client never sends opHello, so a v2 server simply keeps speaking v1 on
// that connection.
//
// Feature negotiation rides the same hello: a client may append a u32
// feature bitmask to the hello payload, and a feature-aware server
// answers with a second u32 of the agreed set. Because frame decoders
// ignore trailing payload bytes, peers that predate features simply
// never see the word and the set degrades to empty — the same
// transparent-fallback story as the version itself. The only feature
// today is featTrace, the per-frame trace-context extension (see
// DESIGN §12).
package pfsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"
	"time"
)

// Opcodes.
const (
	opCreate byte = iota + 1
	opOpen
	opRead
	opWrite
	opStat
	opFlush
	opOK
	opError
	opHello
	// opCancel asks a v2 data server to drop a queued request (payload:
	// target tag u64). Fire-and-forget: it never receives a reply, and a
	// client only sends it for a tag it has already abandoned, so the
	// server honouring it (by never replying to the target) is
	// indistinguishable from the reply losing the race. Only valid on
	// connections that negotiated featCancel.
	opCancel
	// opReadDirect is opRead with a routing hint: the requester is a
	// hedge re-issue and the server should prefer its direct (store)
	// path over any queue-optimised handling. Semantically identical to
	// opRead — the fragment-log overlay still applies, because hedged
	// reads must return the same bytes as the original. Only sent on
	// connections that negotiated featCancel (which implies a server new
	// enough to know the opcode).
	opReadDirect
)

// Wire protocol versions.
const (
	ProtoV1 = 1 // one frame per message, in-order request/reply
	ProtoV2 = 2 // tagged frames, multiplexed, out-of-order replies

	maxProtoVersion = ProtoV2
)

// Feature bits, exchanged as an optional second u32 in the opHello
// payload and its opOK reply. Decoders ignore trailing payload bytes,
// so a features word appended by a new peer is invisible to an old
// one: an old server replies with the bare agreed version (no
// features), an old client never sends the word, and in both cases
// the feature set degrades to empty. A feature is active on a
// connection only when both sides advertised it.
const (
	// featTrace enables the trace-context frame extension: v2 request
	// frames whose tag carries tagTraceFlag are prefixed with a
	// traceCtxSize-byte {traceID u64, parentSpanID u64} context that the
	// server strips before dispatch and attributes its spans to.
	// Replies never carry a context and echo the tag with the flag
	// cleared.
	featTrace uint32 = 1 << 0

	// featCancel enables the hedged-read wire extension: the opCancel
	// fire-and-forget frame (the server drops the named queued request
	// without replying) and the opReadDirect routing hint. Hedging
	// clients advertise it; servers accept it unless configured as
	// legacy peers (ServerConfig.DisableCancel). Against a peer that
	// did not negotiate it the client degrades to plain re-issued
	// opRead hedges with no cancellation, and against v1 peers to no
	// hedging at all.
	featCancel uint32 = 1 << 1
)

// tagTraceFlag marks a v2 request frame carrying a trace context.
// Client tags are allocated sequentially from 1, so bit 63 is never an
// ordinary tag bit.
const tagTraceFlag = uint64(1) << 63

// traceCtxSize is the encoded size of the per-frame trace context:
// traceID u64 + parentSpanID u64.
const traceCtxSize = 16

// MaxMessage bounds a single message (sub-requests are at most a striping
// unit plus headers, but trace replays may write larger spans through a
// single server).
const MaxMessage = 64 << 20

// Sentinel errors. Callers and tests classify failures with errors.Is
// instead of string-matching.
var (
	// ErrCorruptFrame reports an inbound byte stream that is not a valid
	// frame: an impossible length header, a truncated payload, or an
	// opcode the protocol state machine cannot accept. ErrTooLarge and
	// ErrShort wrap it.
	ErrCorruptFrame = errors.New("pfsnet: corrupt frame")
	// ErrDeadline reports a frame exchange that exceeded the configured
	// I/O deadline (Client.IOTimeout / ServerConfig.IOTimeout).
	ErrDeadline = errors.New("pfsnet: i/o deadline exceeded")
	// ErrServerDown reports a request refused locally because the
	// per-server breaker has marked the server degraded after
	// consecutive transport failures.
	ErrServerDown = errors.New("pfsnet: server degraded")

	ErrTooLarge = fmt.Errorf("pfsnet: message exceeds MaxMessage (%w)", ErrCorruptFrame)
	ErrShort    = fmt.Errorf("pfsnet: short/corrupt message (%w)", ErrCorruptFrame)
)

// message is a decoded v1 frame.
type message struct {
	op      byte
	payload []byte
}

// writeMessage frames and sends op+payload in v1 framing.
func writeMessage(w io.Writer, op byte, payload []byte) error {
	return writeFrame(w, ProtoV1, 0, op, payload)
}

// readMessage reads one v1 frame, allocating the payload (the pooled
// path is readFrame; this form is kept for tests and fuzzing against
// arbitrary readers).
func readMessage(r io.Reader) (message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxMessage {
		return message{}, ErrTooLarge
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return message{}, err
	}
	return message{op: hdr[4], payload: payload}, nil
}

// frame is one decoded wire frame. In v1 framing the tag is always 0.
// The payload is pool-backed: call release (or putBuf) once the bytes
// have been consumed.
type frame struct {
	tag     uint64
	op      byte
	payload []byte
	enq     time.Time // set by servers when queue-wait metrics or tracing are on

	// Trace context carried by a tagTraceFlag-marked request (and
	// propagated onto the matching response frame so the respond span
	// can be attributed). The context bytes stay inside payload — body
	// strips them as a view — because putBuf only accepts buffers with
	// their original pooled capacity.
	traced bool
	tcID   uint64
	tcSpan uint64
}

// release returns the payload buffer to the pool.
func (f *frame) release() {
	putBuf(f.payload)
	f.payload = nil
}

// body returns the request payload with any trace-context prefix
// stripped. The result aliases f.payload; release the frame, not the
// body.
func (f *frame) body() []byte {
	if f.traced {
		return f.payload[traceCtxSize:]
	}
	return f.payload
}

// writeFrame frames and sends one message at the given protocol version.
// The writer is typically a *bufio.Writer: the header and payload land in
// its buffer and the caller decides when to flush (corking many frames
// into one syscall).
func writeFrame(w io.Writer, ver int, tag uint64, op byte, payload []byte) error {
	var hdr [13]byte
	var hn int
	if ver >= ProtoV2 {
		if len(payload)+9 > MaxMessage {
			return ErrTooLarge
		}
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+9))
		binary.BigEndian.PutUint64(hdr[4:12], tag)
		hdr[12] = op
		hn = 13
	} else {
		if len(payload)+1 > MaxMessage {
			return ErrTooLarge
		}
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
		hdr[4] = op
		hn = 5
	}
	if _, err := w.Write(hdr[:hn]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrameCtx frames and sends one v2 request carrying a trace
// context: the tag goes out with tagTraceFlag set and the payload is
// preceded by the 16-byte {traceID, parentSpanID} context. Only valid
// on connections that negotiated featTrace.
func writeFrameCtx(w io.Writer, tag uint64, op byte, tcID, tcSpan uint64, payload []byte) error {
	var hdr [13 + traceCtxSize]byte
	if len(payload)+9+traceCtxSize > MaxMessage {
		return ErrTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+9+traceCtxSize))
	//lint:allow featgate encode helper below the gate: callers reach writeFrameCtx only with a tcID set under a featTrace check (DESIGN §12)
	binary.BigEndian.PutUint64(hdr[4:12], tag|tagTraceFlag)
	hdr[12] = op
	binary.BigEndian.PutUint64(hdr[13:21], tcID)
	binary.BigEndian.PutUint64(hdr[21:29], tcSpan)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame at the given protocol version into a pooled
// payload buffer.
func readFrame(r io.Reader, ver int) (frame, error) {
	var hdr [13]byte
	hn := 5
	if ver >= ProtoV2 {
		hn = 13
	}
	if _, err := io.ReadFull(r, hdr[:hn]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	overhead := uint32(hn - 4)
	if n < overhead || n > MaxMessage {
		return frame{}, ErrTooLarge
	}
	var fr frame
	if ver >= ProtoV2 {
		fr.tag = binary.BigEndian.Uint64(hdr[4:12])
		fr.op = hdr[12]
	} else {
		fr.op = hdr[4]
	}
	fr.payload = getBuf(int(n - overhead))
	if _, err := io.ReadFull(r, fr.payload); err != nil {
		fr.release()
		return frame{}, wrapTruncated(err)
	}
	return fr, nil
}

// wrapTruncated maps a mid-frame EOF onto ErrCorruptFrame: the stream
// ended inside a frame the header promised, which is a truncated (and
// therefore corrupt) frame, not a clean close. Clean EOF at a frame
// boundary passes through untouched.
func wrapTruncated(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("truncated frame: %v (%w)", err, ErrCorruptFrame)
	}
	return err
}

// Payload buffer pools, in power-of-two size classes from 1 KB to 64 MB
// (≥ MaxMessage). Steady-state reads and writes recycle their payload and
// encode buffers through these instead of allocating per message.
const (
	minBufClass = 10 // 1 KB
	maxBufClass = 26 // 64 MB
)

var bufPools [maxBufClass - minBufClass + 1]sync.Pool

// getBuf returns a length-n buffer with pooled backing storage.
func getBuf(n int) []byte {
	if n > 1<<maxBufClass {
		return make([]byte, n)
	}
	c := minBufClass
	if n > 1<<minBufClass {
		c = bits.Len(uint(n - 1))
	}
	if p, _ := bufPools[c-minBufClass].Get().(*[]byte); p != nil {
		return (*p)[:n]
	}
	return make([]byte, n, 1<<c)
}

// putBuf returns a buffer obtained from getBuf to its size-class pool.
// nil, undersized, and oversized buffers are dropped silently (they are
// the legitimate non-pooled paths: empty frames, tiny test encoders,
// >64 MB one-offs). A buffer whose capacity falls in the pool's range
// but is not an exact power-of-two size class is *foreign*: it was not
// shaped by getBuf — typically an encoder that outgrew its class, or an
// ownership-transfer bug handing the pool somebody else's memory.
// Foreign buffers are rejected, not re-classed, and counted in
// pfsnet.pool.foreign_put so the churn shows up in metrics instead of
// as quiet heap garbage.
func putBuf(b []byte) {
	c := cap(b)
	if c < 1<<minBufClass || c > 1<<maxBufClass {
		return
	}
	if c&(c-1) != 0 {
		notePoolForeignPut()
		return
	}
	b = b[:0]
	bufPools[bits.Len(uint(c))-1-minBufClass].Put(&b)
}

// newEnc returns an encoder writing into a pooled buffer; ownership of
// the finished enc.b follows the wire ownership contract (DESIGN §11):
// hand it to an owning sink exactly once, or putBuf it yourself.
func newEnc() enc { return enc{b: getBuf(0)} }

// newEncN is newEnc with a capacity hint: the encoder starts in the
// size class that fits n bytes, so encoding n bytes never outgrows the
// class (outgrowing reallocates to a foreign capacity the pool must
// reject — see putBuf).
func newEncN(n int) enc { return enc{b: getBuf(n)[:0]} }

// enc is a tiny append-style encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(v string) { e.bytes([]byte(v)) }

// dec is the matching decoder; it records the first error.
type dec struct {
	b   []byte
	err error
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.err = ErrShort
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = ErrShort
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = ErrShort
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.err = ErrShort
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// errorPayload encodes an error reply into a pooled buffer.
func errorPayload(err error) []byte {
	e := newEnc()
	e.str(err.Error())
	return e.b
}

// remoteError is an error the server reported (as opposed to a transport
// failure): the request reached the server, so retrying is pointless.
type remoteError struct{ msg string }

func (e remoteError) Error() string { return fmt.Sprintf("pfsnet: remote error: %s", e.msg) }

// replyError decodes an opError payload.
func replyError(payload []byte) error {
	d := dec{b: payload}
	msg := d.str()
	if d.err != nil {
		return d.err
	}
	return remoteError{msg: msg}
}

// serverHandshake inspects the leading frame of a fresh connection. A
// v2-capable server intercepts an opHello, answers with the agreed
// version, and returns it; any other first frame means a v1 client, and
// the frame is handed back for normal dispatch. When maxProto caps the
// server at v1 the hello is likewise handed back, so the normal dispatch
// path rejects the unknown opcode exactly as a legacy server would.
//
// features is the server's advertised feature set. Feature words are
// only exchanged with clients that sent one: the reply to a bare
// {maxProto} hello is a bare {agreed}, byte-identical to what an older
// server would send, and the returned feats is then 0.
func serverHandshake(br *bufio.Reader, bw *bufio.Writer, maxProto int, features uint32) (ver int, feats uint32, first frame, hasFirst bool, err error) {
	fr, err := readFrame(br, ProtoV1)
	if err != nil {
		return 0, 0, frame{}, false, err
	}
	if fr.op != opHello || maxProto < ProtoV2 {
		return ProtoV1, 0, fr, true, nil
	}
	d := dec{b: fr.payload}
	clientMax := int(d.u32())
	var clientFeats uint32
	hasFeats := len(fr.payload) >= 8
	if hasFeats {
		clientFeats = d.u32()
	}
	fr.release()
	if d.err != nil {
		return 0, 0, frame{}, false, d.err
	}
	agreed := min(clientMax, maxProto)
	if agreed < ProtoV1 {
		agreed = ProtoV1
	}
	feats = clientFeats & features
	if agreed < ProtoV2 {
		feats = 0 // features are a v2 frame extension
	}
	e := newEnc()
	e.u32(uint32(agreed))
	if hasFeats {
		e.u32(feats)
	}
	werr := writeFrame(bw, ProtoV1, 0, opOK, e.b)
	putBuf(e.b)
	if werr != nil {
		return 0, 0, frame{}, false, werr
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, frame{}, false, err
	}
	return agreed, feats, frame{}, false, nil
}

// isTimeout reports whether err is a net-level deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// wrapTimeout maps net-level timeout errors onto ErrDeadline so callers
// can classify them with errors.Is; other errors pass through unchanged.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%v (%w)", err, ErrDeadline)
	}
	return err
}

// serveFrames runs a sequential request loop at the given protocol
// version: read a frame, dispatch it, reply with the echoed tag, flush.
// This is the whole server for v1 connections (which require in-order
// replies) and for low-rate services like the metadata server, where
// handler concurrency buys nothing. first, when non-nil, is a frame the
// handshake already read. ioTimeout, when positive, bounds each frame
// read and each reply write so a stalled or half-open peer cannot pin
// the handler goroutine forever (nc must be the underlying conn).
func serveFrames(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, ver int, first *frame, wm *wireMetrics, ioTimeout time.Duration, dispatch func(op byte, payload []byte) (byte, []byte)) {
	for {
		var fr frame
		if first != nil {
			fr, first = *first, nil
		} else {
			if ioTimeout > 0 {
				nc.SetReadDeadline(time.Now().Add(ioTimeout))
			}
			var err error
			fr, err = readFrame(br, ver)
			if err != nil {
				return
			}
		}
		wm.onRx(len(fr.payload))
		op, reply := dispatch(fr.op, fr.payload)
		fr.release()
		n := len(reply)
		if ioTimeout > 0 {
			nc.SetWriteDeadline(time.Now().Add(ioTimeout))
		}
		err := writeFrame(bw, ver, fr.tag, op, reply)
		putBuf(reply)
		if err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		wm.onTx(n)
	}
}
