// Package pfsnet implements a real, runnable striped parallel file
// system over TCP: a metadata server that places files, data servers that
// store the per-server objects, and a client that performs the PVFS2-style
// decomposition of file requests into per-server sub-requests — including
// iBridge's client-side fragment flagging, carried on the wire exactly as
// the simulator models it.
//
// The data servers implement a functional analogue of the iBridge cache:
// sub-requests flagged as fragments (or small random requests) are
// appended to a log region with a mapping table, and reads are served
// from the log when mapped. This exercises the correctness of the
// fragment path end to end with real bytes; the performance analysis
// lives in the simulator (internal/cluster), since host disks are not the
// paper's devices.
//
// Wire format: every message is a 4-byte big-endian length followed by a
// 1-byte opcode and an opcode-specific payload. Strings and byte blobs
// are 4-byte-length-prefixed. All integers are big-endian.
package pfsnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes.
const (
	opCreate byte = iota + 1
	opOpen
	opRead
	opWrite
	opStat
	opFlush
	opOK
	opError
)

// MaxMessage bounds a single message (sub-requests are at most a striping
// unit plus headers, but trace replays may write larger spans through a
// single server).
const MaxMessage = 64 << 20

// Errors returned by the protocol layer.
var (
	ErrTooLarge = errors.New("pfsnet: message exceeds MaxMessage")
	ErrShort    = errors.New("pfsnet: short/corrupt message")
)

// message is a decoded frame.
type message struct {
	op      byte
	payload []byte
}

// writeMessage frames and sends op+payload.
func writeMessage(w io.Writer, op byte, payload []byte) error {
	if len(payload)+1 > MaxMessage {
		return ErrTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMessage reads one frame.
func readMessage(r io.Reader) (message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxMessage {
		return message{}, ErrTooLarge
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return message{}, err
	}
	return message{op: hdr[4], payload: payload}, nil
}

// enc is a tiny append-style encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(v string) { e.bytes([]byte(v)) }

// dec is the matching decoder; it records the first error.
type dec struct {
	b   []byte
	err error
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.err = ErrShort
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = ErrShort
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = ErrShort
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.err = ErrShort
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// errorPayload encodes an error reply.
func errorPayload(err error) []byte {
	var e enc
	e.str(err.Error())
	return e.b
}

// remoteError is an error the server reported (as opposed to a transport
// failure): the request reached the server, so retrying is pointless.
type remoteError struct{ msg string }

func (e remoteError) Error() string { return fmt.Sprintf("pfsnet: remote error: %s", e.msg) }

// replyError decodes an opError payload.
func replyError(payload []byte) error {
	d := dec{b: payload}
	msg := d.str()
	if d.err != nil {
		return d.err
	}
	return remoteError{msg: msg}
}
