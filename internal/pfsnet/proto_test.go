package pfsnet

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestEncDecRoundTrip property-checks the encoder/decoder pair over
// arbitrary field sequences.
func TestEncDecRoundTrip(t *testing.T) {
	if err := quick.Check(func(a uint64, b int64, c uint32, s string, blob []byte, x byte) bool {
		var e enc
		e.u64(a)
		e.i64(b)
		e.u32(c)
		e.str(s)
		e.bytes(blob)
		e.u8(x)
		d := dec{b: e.b}
		if d.u64() != a || d.i64() != b || d.u32() != c {
			return false
		}
		if d.str() != s || !bytes.Equal(d.bytes(), blob) || d.u8() != x {
			return false
		}
		return d.err == nil && len(d.b) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderNeverPanics feeds random byte soup through every decode
// method; the decoder must flag an error rather than panic or read out
// of bounds.
func TestDecoderNeverPanics(t *testing.T) {
	if err := quick.Check(func(raw []byte, ops []uint8) bool {
		d := dec{b: raw}
		for _, op := range ops {
			switch op % 6 {
			case 0:
				d.u8()
			case 1:
				d.u32()
			case 2:
				d.u64()
			case 3:
				d.i64()
			case 4:
				d.bytes()
			case 5:
				d.str()
			}
		}
		return true // reaching here without panic is the property
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMessageRoundTripProperty frames and unframes random payloads.
func TestMessageRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(op byte, payload []byte) bool {
		var buf bytes.Buffer
		if err := writeMessage(&buf, op, payload); err != nil {
			return false
		}
		msg, err := readMessage(&buf)
		return err == nil && msg.op == op && bytes.Equal(msg.payload, payload)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMessageRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxMessage)
	if err := writeMessage(&buf, opWrite, big); err != ErrTooLarge {
		t.Fatalf("oversize write: %v, want ErrTooLarge", err)
	}
}
