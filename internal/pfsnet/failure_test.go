package pfsnet

import (
	"bytes"
	"testing"
)

// TestClientSurvivesServerRestart kills a data server mid-session and
// restarts it on the same address with the same (persistent) object
// store; the client's pooled connection has died, so its transparent
// redial must recover.
func TestClientSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataServerWithStore("127.0.0.1:0", false, fs1)
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()

	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 8192)
	if err := c.WriteAt(f, 4096, payload); err != nil {
		t.Fatalf("write before restart: %v", err)
	}

	// Crash the server (flushes and closes the store) and restart it on
	// the same address over the same directory.
	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := NewDataServerWithStore(addr, false, fs2)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer ds2.Close()

	// The client's pooled connection is dead; this read must redial
	// transparently and find the persisted data.
	got := make([]byte, len(payload))
	if err := c.ReadAt(f, 4096, got); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across restart")
	}
	// Writes after the restart work too.
	if err := c.WriteAt(f, 0, []byte("post-restart")); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

// TestRemoteErrorNotRetried ensures server-reported errors surface
// immediately instead of being retried as transport failures.
func TestRemoteErrorNotRetried(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()
	if _, err := c.Open("missing"); err == nil {
		t.Fatal("expected remote error")
	} else if _, ok := err.(remoteError); !ok {
		t.Fatalf("error type %T, want remoteError", err)
	}
	readsBefore := ds.Stats().Reads
	// A negative-length read triggers a server-side error exactly once.
	_, err = c.dataCall(ds.Addr(), opRead, func() []byte {
		var e enc
		e.u64(1)
		e.i64(0)
		e.i64(-5)
		return e.b
	}())
	if err == nil {
		t.Fatal("bad read accepted")
	}
	if got := ds.Stats().Reads - readsBefore; got != 0 {
		t.Fatalf("server counted %d reads for a rejected request", got)
	}
}
