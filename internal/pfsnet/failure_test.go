package pfsnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestClientSurvivesServerRestart kills a data server mid-session and
// restarts it on the same address with the same (persistent) object
// store; the client's pooled connection has died, so its transparent
// redial must recover.
func TestClientSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataServerWithStore("127.0.0.1:0", false, fs1)
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()

	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 8192)
	if err := c.WriteAt(f, 4096, payload); err != nil {
		t.Fatalf("write before restart: %v", err)
	}

	// Crash the server (flushes and closes the store) and restart it on
	// the same address over the same directory.
	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := NewDataServerWithStore(addr, false, fs2)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer ds2.Close()

	// The client's pooled connection is dead; this read must redial
	// transparently and find the persisted data.
	got := make([]byte, len(payload))
	if err := c.ReadAt(f, 4096, got); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across restart")
	}
	// Writes after the restart work too.
	if err := c.WriteAt(f, 0, []byte("post-restart")); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

// slowStore delays reads so the test can reliably have many requests in
// flight inside the server when the connection is severed.
type slowStore struct {
	ObjectStore
	delay time.Duration
}

func (s slowStore) ReadAt(file uint64, off int64, p []byte) error {
	time.Sleep(s.delay)
	return s.ObjectStore.ReadAt(file, off, p)
}

// TestPipelinedInFlightFailure kills a data server while many tagged
// requests are multiplexed in flight on pipelined connections. Every
// waiter must get an answer promptly — a result or an error, never a
// hang — and once the server is back on the same address the client's
// transparent redial must restore service.
func TestPipelinedInFlightFailure(t *testing.T) {
	store := slowStore{ObjectStore: NewMemStore(), delay: 30 * time.Millisecond}
	ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()

	f, err := c.Create("inflight", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(f, 0, bytes.Repeat([]byte{0xAB}, 64*1024)); err != nil {
		t.Fatal(err)
	}

	// Fill the pipeline: far more concurrent reads than pooled
	// connections, so many tags share each conn when the server dies.
	const inflight = 32
	var wg sync.WaitGroup
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := make([]byte, 1024)
			results <- c.ReadAt(f, int64(i)*1024, p)
		}(i)
	}

	// Let the requests reach the server's worker pool, then sever every
	// connection mid-flight. Close blocks until workers drain, so run it
	// off to the side.
	time.Sleep(10 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- ds.Close() }()

	// Every waiter must complete promptly: a hang here is exactly the
	// bug the tagged-call bookkeeping exists to prevent.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight requests hung after server death")
	}
	close(results)
	var failed int
	for err := range results {
		if err != nil {
			failed++
		}
	}
	t.Logf("in-flight outcomes: %d ok, %d failed", inflight-failed, failed)
	if err := <-closed; err != nil {
		t.Fatalf("server close: %v", err)
	}
	// The mass kill fed the breaker a run of transport failures well past
	// its threshold: the server must be marked degraded before the
	// restart, and the probe on the first post-restart call must clear it.
	if !c.ServerDegraded(addr) {
		t.Fatal("breaker did not open after mass in-flight failure")
	}

	// Restart on the same address; the client must redial transparently.
	ds2, err := NewDataServerConfig(addr, ServerConfig{Store: NewMemStore()})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer ds2.Close()
	payload := []byte("service restored")
	if err := c.WriteAt(f, 0, payload); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	if c.ServerDegraded(addr) {
		t.Fatal("breaker still open after successful post-restart probe")
	}
	got := make([]byte, len(payload))
	if err := c.ReadAt(f, 0, got); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data mismatch after restart")
	}
}

// TestProtoInterop checks version negotiation in all four pairings:
// capped (legacy-behaving) and current clients against capped and
// current servers, with data round-tripping in each.
func TestProtoInterop(t *testing.T) {
	cases := []struct {
		name                 string
		clientMax, serverMax int
		wantVer              int
	}{
		{"v2 client, v2 server", 0, 0, ProtoV2},
		{"v2 client, v1 server", 0, 1, ProtoV1},
		{"v1 client, v2 server", 1, 0, ProtoV1},
		{"v1 client, v1 server", 1, 1, ProtoV1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{
				Bridge:   true,
				MaxProto: tc.serverMax,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()
			ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			defer ms.Close()
			c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
			c.MaxProto = tc.clientMax
			defer c.Close()

			f, err := c.Create("interop", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			// An unaligned span exercises the fragment path too.
			payload := make([]byte, 65*1024)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := c.WriteAt(f, 0, payload); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if err := c.ReadAt(f, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("data mismatch")
			}

			// The pooled data connections must have negotiated exactly
			// the expected version.
			c.mu.Lock()
			defer c.mu.Unlock()
			if len(c.data[ds.Addr()]) == 0 {
				t.Fatal("no pooled data connections")
			}
			for i, cn := range c.data[ds.Addr()] {
				if cn.ver != tc.wantVer {
					t.Fatalf("conn %d negotiated v%d, want v%d", i, cn.ver, tc.wantVer)
				}
				if (cn.ver >= ProtoV2) != (cn.sendq != nil) {
					t.Fatalf("conn %d: pipeline state inconsistent with v%d", i, cn.ver)
				}
			}
		})
	}
}

// TestConcurrentMixedLoad hammers one bridge server with concurrent
// reads, fragment writes, and direct writes — the lock-split server must
// keep every interleaving coherent (run with -race to check the
// synchronization of the log table, counters, and store).
func TestConcurrentMixedLoad(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	defer c.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f, err := c.Create(fmt.Sprintf("mixed-%d", w), 1<<20)
			if err != nil {
				errs <- err
				return
			}
			// Each worker owns its file, so its own reads must observe
			// its own writes regardless of cross-file interleaving.
			want := bytes.Repeat([]byte{byte(w + 1)}, 4096)
			for i := 0; i < 50; i++ {
				off := int64(i%16) * 4096
				if err := c.WriteAt(f, off, want); err != nil {
					errs <- err
					return
				}
				got := make([]byte, len(want))
				if err := c.ReadAt(f, off, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d: read back mismatch at %d", w, off)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemoteErrorNotRetried ensures server-reported errors surface
// immediately instead of being retried as transport failures.
func TestRemoteErrorNotRetried(t *testing.T) {
	ds, err := NewDataServer("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	c := NewClient(ms.Addr())
	defer c.Close()
	if _, err := c.Open("missing"); err == nil {
		t.Fatal("expected remote error")
	} else if _, ok := err.(remoteError); !ok {
		t.Fatalf("error type %T, want remoteError", err)
	}
	readsBefore := ds.Stats().Reads
	// A negative-length read triggers a server-side error exactly once.
	_, _, err = c.dataCall(ds.Addr(), opRead, func() []byte {
		var e enc
		e.u64(1)
		e.i64(0)
		e.i64(-5)
		return e.b
	}, nil, nil)
	if err == nil {
		t.Fatal("bad read accepted")
	}
	if got := ds.Stats().Reads - readsBefore; got != 0 {
		t.Fatalf("server counted %d reads for a rejected request", got)
	}
}
