package pfsnet

import (
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// benchCluster starts a meta server and n data servers on loopback and
// returns the meta address. Cleanup runs via b.Cleanup.
func benchCluster(b *testing.B, n int, unit int64, bridge bool) string {
	b.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		ds, err := NewDataServer("127.0.0.1:0", bridge)
		if err != nil {
			b.Fatalf("data server %d: %v", i, err)
		}
		b.Cleanup(func() { ds.Close() })
		addrs = append(addrs, ds.Addr())
	}
	ms, err := NewMetaServer("127.0.0.1:0", unit, addrs)
	if err != nil {
		b.Fatalf("meta server: %v", err)
	}
	b.Cleanup(func() { ms.Close() })
	return ms.Addr()
}

// BenchmarkPfsnetSmallSubreqs is the many-small-sub-requests workload:
// a high degree of concurrent 1 KB reads, each of which decomposes to a
// single-server sub-request. Throughput here is dominated by per-request
// wire overhead (round trips, allocations, syscalls), which is exactly
// what pipelining and multiplexing attack.
func BenchmarkPfsnetSmallSubreqs(b *testing.B) {
	const (
		fileSize = 64 << 20
		reqSize  = 1024
	)
	meta := benchCluster(b, 4, 64*1024, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("bench", fileSize)
	if err != nil {
		b.Fatal(err)
	}
	// Seed one stripe's worth of data so reads touch real bytes.
	seed := make([]byte, 1<<20)
	for i := range seed {
		seed[i] = byte(i)
	}
	if err := c.WriteAt(f, 0, seed); err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.SetBytes(reqSize)
	b.ReportAllocs()
	b.SetParallelism(16) // 16×GOMAXPROCS goroutines: deep per-server queues
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, reqSize)
		for pb.Next() {
			off := (next.Add(1) * 4096) % (fileSize - reqSize)
			if err := c.ReadAt(f, off, buf); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPfsnetLargeTransfer reads 8 MB spans striped over 4 servers:
// the bandwidth-bound regime where framing overhead should be negligible
// and payload copies dominate.
func BenchmarkPfsnetLargeTransfer(b *testing.B) {
	const (
		fileSize = 64 << 20
		reqSize  = 8 << 20
	)
	meta := benchCluster(b, 4, 64*1024, false)
	c := NewClient(meta)
	defer c.Close()
	f, err := c.Create("bench", fileSize)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, reqSize)
	for i := range data {
		data[i] = byte(i >> 8)
	}
	if err := c.WriteAt(f, 0, data); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, reqSize)
	b.SetBytes(reqSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ReadAt(f, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPfsnetMixedFragmentAligned alternates unaligned 65 KB writes
// (whose 1 KB tails take the fragment-log path on bridge-enabled
// servers) with aligned 64 KB reads — the paper's mixed unaligned
// workload shape carried over the real wire.
func BenchmarkPfsnetMixedFragmentAligned(b *testing.B) {
	const fileSize = 64 << 20
	meta := benchCluster(b, 4, 64*1024, true)
	c := NewIBridgeClient(meta, 20*1024, 20*1024)
	defer c.Close()
	f, err := c.Create("bench", fileSize)
	if err != nil {
		b.Fatal(err)
	}
	wbuf := make([]byte, 65*1024)
	for i := range wbuf {
		wbuf[i] = byte(i)
	}
	rbuf := make([]byte, 64*1024)
	var next atomic.Int64
	b.SetBytes(int64(len(wbuf) + len(rbuf)))
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := make([]byte, len(wbuf))
		copy(w, wbuf)
		r := make([]byte, len(rbuf))
		for pb.Next() {
			n := next.Add(1)
			woff := (n * 65 * 1024) % (fileSize - int64(len(w)))
			if err := c.WriteAt(f, woff, w); err != nil {
				b.Error(err)
				return
			}
			roff := (n * 64 * 1024) % (fileSize - int64(len(r)))
			if err := c.ReadAt(f, roff, r); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPfsnetHedgedP99 measures tail latency under a canned skew
// plan: one primary-conn op in four sleeps 8ms, emulating a straggling
// server. The unhedged variant eats the delay; the hedged variant
// re-issues through a fault-free hedge connection after 2ms. Each
// measured op is one 1 KB read; the benchmark reports the sorted p99
// across all measured reads as "p99-ms" alongside ns/op.
func BenchmarkPfsnetHedgedP99(b *testing.B) {
	for _, hedged := range []bool{false, true} {
		name := "unhedged"
		if hedged {
			name = "hedged"
		}
		b.Run(name, func(b *testing.B) {
			const reqSize = 1024
			meta := benchCluster(b, 1, 64*1024, false)
			setup := NewClient(meta)
			f, err := setup.Create("p99", 1<<20)
			if err != nil {
				b.Fatal(err)
			}
			seed := make([]byte, 64*1024)
			for i := range seed {
				seed[i] = byte(i)
			}
			if err := setup.WriteAt(f, 0, seed); err != nil {
				b.Fatal(err)
			}
			setup.Close()

			c := NewClient(meta)
			c.FaultPlan = faults.MustParse("seed=11; latency=client:8ms@1/4")
			if hedged {
				c.Hedge = true
				c.HedgeDelay = 2 * time.Millisecond
			}
			defer c.Close()
			f, err = c.Open("p99")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, reqSize)
			// Untimed warm-up: the data-conn dial and handshake also ride
			// the fault plan and hedging cannot rescue them.
			if err := c.ReadAt(f, 0, buf); err != nil {
				b.Fatal(err)
			}
			lats := make([]float64, 0, b.N)
			b.SetBytes(reqSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(i) * 4096 % int64(len(seed)-reqSize)
				t0 := time.Now()
				if err := c.ReadAt(f, off, buf); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, float64(time.Since(t0))/1e6)
			}
			b.StopTimer()
			sort.Float64s(lats)
			b.ReportMetric(lats[len(lats)*99/100], "p99-ms")
		})
	}
}
