package pfsnet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// testCluster starts one data server and a metadata server over it and
// returns a configured client plus the data server's address.
func resilienceCluster(t *testing.T, cfg ServerConfig, tune func(*Client)) (*Client, *DataServer, *MetaServer) {
	t.Helper()
	ds, err := NewDataServerConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	c := NewClient(ms.Addr())
	if tune != nil {
		tune(c)
	}
	t.Cleanup(func() { c.Close() })
	return c, ds, ms
}

// TestBreakerStateMachine unit-tests the count-based breaker: it opens
// after the threshold run of failures, admits exactly one probe at a
// time while open, fails other callers fast with ErrServerDown, and
// closes on the first success.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 3}
	for i := 0; i < 3; i++ {
		probe, err := b.acquire("srv")
		if probe || err != nil {
			t.Fatalf("failure %d: acquire = (%v, %v), want closed pass", i, probe, err)
		}
		b.record(probe, false)
	}
	if !b.isOpen() {
		t.Fatal("breaker not open after threshold failures")
	}
	// First caller while open becomes the probe.
	probe, err := b.acquire("srv")
	if !probe || err != nil {
		t.Fatalf("probe acquire = (%v, %v)", probe, err)
	}
	// A second caller while the probe is in flight fails fast.
	if _, err := b.acquire("srv"); !errors.Is(err, ErrServerDown) {
		t.Fatalf("concurrent acquire error = %v, want ErrServerDown", err)
	}
	// Failed probe leaves the breaker open for the next probe.
	if opened, closed := b.record(true, false); opened || closed {
		t.Fatal("failed probe must not transition the breaker")
	}
	probe, err = b.acquire("srv")
	if !probe || err != nil {
		t.Fatalf("re-probe acquire = (%v, %v)", probe, err)
	}
	// Successful probe closes it.
	if _, closed := b.record(true, true); !closed {
		t.Fatal("successful probe must close the breaker")
	}
	if b.isOpen() {
		t.Fatal("breaker still open after success")
	}
	// A nil breaker (disabled) passes everything.
	var nb *breaker
	if probe, err := nb.acquire("x"); probe || err != nil {
		t.Fatal("nil breaker must pass")
	}
	nb.record(false, false)
}

// TestIOTimeoutDeadline checks that a server that accepts requests but
// never answers in time fails the call with ErrDeadline, at both
// protocol versions.
func TestIOTimeoutDeadline(t *testing.T) {
	for _, maxProto := range []int{0, 1} {
		t.Run(fmt.Sprintf("maxproto=%d", maxProto), func(t *testing.T) {
			store := slowStore{ObjectStore: NewMemStore(), delay: time.Second}
			c, _, _ := resilienceCluster(t, ServerConfig{Store: store}, func(c *Client) {
				c.MaxProto = maxProto
				c.IOTimeout = 100 * time.Millisecond
				c.MaxRetries = -1
				c.Obs = obs.NewRegistry()
			})
			f, err := c.Create("slow", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			err = c.ReadAt(f, 0, make([]byte, 512))
			if err == nil {
				t.Fatal("read against stalled server succeeded")
			}
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("error = %v, want ErrDeadline", err)
			}
			if el := time.Since(start); el > 1500*time.Millisecond {
				t.Fatalf("deadline took %v, bound is 100ms", el)
			}
			if v := c.Obs.Counter("pfsnet.client.deadline_exceeded").Value(); v == 0 {
				t.Fatal("deadline_exceeded counter not incremented")
			}
		})
	}
}

// TestBreakerOpensAndRecovers drives a client against a data server that
// dies: consecutive transport failures must mark the server degraded,
// and the first call after a restart is the probe that un-degrades it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	c, ds, _ := resilienceCluster(t, ServerConfig{}, func(c *Client) {
		c.MaxRetries = -1 // one attempt per call: failures count singly
		c.BreakerThreshold = 3
		c.RetryBackoff = time.Millisecond
		c.Obs = obs.NewRegistry()
	})
	addr := ds.Addr()
	f, err := c.Create("brk", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(f, 0, []byte("up")); err != nil {
		t.Fatal(err)
	}
	if c.ServerDegraded(addr) {
		t.Fatal("healthy server marked degraded")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Each call is one recorded failure; the threshold run opens the
	// breaker. Later calls are probes and keep failing.
	for i := 0; i < 4; i++ {
		if err := c.WriteAt(f, 0, []byte("down")); err == nil {
			t.Fatalf("write %d against dead server succeeded", i)
		}
	}
	if !c.ServerDegraded(addr) {
		t.Fatal("server not degraded after consecutive failures")
	}
	if v := c.Obs.Counter("pfsnet.client.breaker_opens").Value(); v != 1 {
		t.Fatalf("breaker_opens = %d, want 1", v)
	}

	// Restart on the same address: the next call is the single probe,
	// succeeds, and closes the breaker.
	ds2, err := NewDataServerConfig(addr, ServerConfig{})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer ds2.Close()
	payload := []byte("recovered")
	if err := c.WriteAt(f, 0, payload); err != nil {
		t.Fatalf("probe write after restart: %v", err)
	}
	if c.ServerDegraded(addr) {
		t.Fatal("server still degraded after successful probe")
	}
	got := make([]byte, len(payload))
	if err := c.ReadAt(f, 0, got); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after recovery: %v", err)
	}
}

// TestRetriesRecoverFromInjectedResets arms a connection-reset plan on
// the client side: every reset kills a pooled connection mid-request,
// and the retry loop must still deliver every byte.
func TestRetriesRecoverFromInjectedResets(t *testing.T) {
	plan := faults.MustParse("seed=3; reset=1/6")
	reg := obs.NewRegistry()
	plan.SetObs(reg)
	c, _, _ := resilienceCluster(t, ServerConfig{}, func(c *Client) {
		c.FaultPlan = plan
		c.MaxRetries = 4
		c.RetryBackoff = time.Millisecond
		c.Obs = reg
	})
	f, err := c.Create("resets", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := 0; i < 40; i++ {
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if err := c.WriteAt(f, int64(i)*4096, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got := make([]byte, len(payload))
		if err := c.ReadAt(f, int64(i)*4096, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: data mismatch under resets", i)
		}
	}
	if n := plan.Counts()["reset"]; n == 0 {
		t.Fatal("plan injected no resets over 80 requests")
	}
	if v := reg.Counter("pfsnet.client.retries").Value(); v == 0 {
		t.Fatal("no retries recorded despite injected resets")
	}
	if v := reg.Counter("faults.injected.reset").Value(); v != plan.Counts()["reset"] {
		t.Fatalf("obs mirror %d != plan count %d", v, plan.Counts()["reset"])
	}
}

// TestChaosDeterminism runs the same sequential workload twice under the
// same fault plan spec: the injected-fault counts and the client's
// retry/deadline counters must be identical — the property that makes a
// chaos failure reproducible from its plan seed.
func TestChaosDeterminism(t *testing.T) {
	run := func() (map[string]int64, map[string]int64) {
		plan := faults.MustParse("seed=11; reset=1/5")
		reg := obs.NewRegistry()
		plan.SetObs(reg)
		c, _, _ := resilienceCluster(t, ServerConfig{}, func(c *Client) {
			c.FaultPlan = plan
			c.MaxRetries = 4
			c.RetryBackoff = time.Microsecond // keep the run fast
			c.Seed = 42
			c.Obs = reg
		})
		f, err := c.Create("det", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 2048)
		for i := 0; i < 30; i++ {
			if err := c.WriteAt(f, int64(i)*2048, buf); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		counters := map[string]int64{}
		for _, k := range []string{
			"pfsnet.client.retries",
			"pfsnet.client.deadline_exceeded",
			"pfsnet.client.breaker_opens",
			"faults.injected.reset",
		} {
			counters[k] = reg.Counter(k).Value()
		}
		return plan.Counts(), counters
	}
	counts1, counters1 := run()
	counts2, counters2 := run()
	if fmt.Sprint(counts1) != fmt.Sprint(counts2) {
		t.Fatalf("fault counts differ across identical runs: %v vs %v", counts1, counts2)
	}
	if fmt.Sprint(counters1) != fmt.Sprint(counters2) {
		t.Fatalf("metric counters differ across identical runs: %v vs %v", counters1, counters2)
	}
	if counts1["reset"] == 0 {
		t.Fatal("plan fired nothing; determinism check is vacuous")
	}
}

// TestFallbackNegotiationUnderResets round-trips data in the
// version-mismatch pairings while a reset plan kills connections: the
// fallback handshake must survive injected failures at dial time too.
func TestFallbackNegotiationUnderResets(t *testing.T) {
	cases := []struct {
		name                 string
		clientMax, serverMax int
		wantVer              int
	}{
		{"v1 client, v2 server", 1, 0, ProtoV1},
		{"v2 client, v1 server", 0, 1, ProtoV1},
		{"v2 client, v2 server", 0, 0, ProtoV2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := faults.MustParse("seed=5; reset=1/7")
			c, ds, _ := resilienceCluster(t, ServerConfig{MaxProto: tc.serverMax}, func(c *Client) {
				c.MaxProto = tc.clientMax
				c.FaultPlan = plan
				c.MaxRetries = 5
				c.RetryBackoff = time.Millisecond
			})
			f, err := c.Create("fallback", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 65*1024)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := c.WriteAt(f, 0, payload); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if err := c.ReadAt(f, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("data mismatch under resets")
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			for i, cn := range c.data[ds.Addr()] {
				if cn.ver != tc.wantVer {
					t.Fatalf("conn %d negotiated v%d, want v%d", i, cn.ver, tc.wantVer)
				}
			}
		})
	}
}

// TestCorruptionRecovery injects read-side frame corruption into the
// client's connections. Replies to writes carry empty payloads, so every
// flipped byte lands in a frame header: the client must detect it
// (ErrCorruptFrame) or time the stall out (ErrDeadline), drop the
// connection, and retry to success — never return corrupt data and never
// hang.
func TestCorruptionRecovery(t *testing.T) {
	plan := faults.MustParse("seed=7; corrupt=1/10")
	c, _, _ := resilienceCluster(t, ServerConfig{}, func(c *Client) {
		c.FaultPlan = plan
		c.IOTimeout = 250 * time.Millisecond
		c.MaxRetries = 6
		c.RetryBackoff = time.Millisecond
	})
	f, err := c.Create("corrupt", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, 1024)
	for i := 0; i < 30; i++ {
		if err := c.WriteAt(f, int64(i)*1024, payload); err != nil {
			t.Fatalf("write %d under corruption: %v", i, err)
		}
	}
	if plan.Counts()["corrupt"] == 0 {
		t.Fatal("no corruption injected; test is vacuous")
	}
	// A clean read at the end proves the writes all landed intact.
	clean := NewClient(c.metaAddr)
	defer clean.Close()
	got := make([]byte, 1024)
	for i := 0; i < 30; i++ {
		if err := clean.ReadAt(f, int64(i)*1024, got); err != nil {
			t.Fatalf("verify read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("block %d corrupted at rest", i)
		}
	}
}

// TestRequestBudget bounds a request across retries: with the server
// down and a tight RequestTimeout, the retry loop must give up with
// ErrDeadline instead of burning all MaxRetries backoffs.
func TestRequestBudget(t *testing.T) {
	c, ds, _ := resilienceCluster(t, ServerConfig{}, func(c *Client) {
		c.MaxRetries = 1000
		c.RetryBackoff = 20 * time.Millisecond
		c.RetryBackoffMax = 20 * time.Millisecond
		c.RequestTimeout = 100 * time.Millisecond
		c.BreakerThreshold = -1 // isolate the budget mechanism
	})
	f, err := c.Create("budget", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = c.WriteAt(f, 0, []byte("x"))
	if err == nil {
		t.Fatal("write against dead server succeeded")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error = %v, want ErrDeadline budget exhaustion", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("budget of 100ms took %v", el)
	}
}
