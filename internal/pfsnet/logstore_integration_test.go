package pfsnet

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/logstore"
)

// These tests pin the DurableStore integration: a data server backed by
// internal/logstore must honor `ssdfail=SCOPE@N` fault specs by
// counting the store's record appends (not only legacy fragment-log
// writes), fail the store's device together with the bridge log, and
// keep serving every acknowledged byte afterwards.

func newLogBackedServer(t *testing.T, bridge bool, plan *faults.Plan, scope string) (*DataServer, *logstore.LogStore) {
	t.Helper()
	ls, err := logstore.Open(t.TempDir(), logstore.Config{NoCompactor: true})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{
		Bridge:     bridge,
		Store:      ls,
		FaultPlan:  plan,
		FaultScope: scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds, ls
}

// TestSSDFailCountsLogstoreAppends: with bridge off, every write is a
// direct-path store append — the legacy fragment-write counter never
// moves, so only the record-append accounting can trip the scheduled
// failure.
func TestSSDFailCountsLogstoreAppends(t *testing.T) {
	plan, err := faults.Parse("seed=1; ssdfail=srv0@5")
	if err != nil {
		t.Fatal(err)
	}
	ds, ls := newLogBackedServer(t, false, plan, "srv0")
	ms, err := NewMetaServer("127.0.0.1:0", 4096, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	c := NewClient(ms.Addr())
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	block := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i + 1)}, 512)
	}
	for i := 0; i < 8; i++ {
		if err := c.WriteAt(f, int64(i)*512, block(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !ds.SSDFailed() {
		t.Fatal("server SSD not failed after 8 direct-path appends with ssdfail=srv0@5")
	}
	if !ls.DeviceFailed() {
		t.Fatal("logstore device not failed with the server SSD")
	}
	if ds.Stats().FragmentWrites != 0 {
		t.Fatalf("FragmentWrites = %d on a non-bridge server", ds.Stats().FragmentWrites)
	}
	// Degraded, not broken: every acknowledged byte still reads back,
	// and new writes land in the overlay.
	got := make([]byte, 512)
	for i := 0; i < 8; i++ {
		if err := c.ReadAt(f, int64(i)*512, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, block(i)) {
			t.Fatalf("block %d corrupted after device failure", i)
		}
	}
	if err := c.WriteAt(f, 8*512, block(8)); err != nil {
		t.Fatalf("post-failure write: %v", err)
	}
	if err := c.ReadAt(f, 8*512, got); err != nil || !bytes.Equal(got, block(8)) {
		t.Fatalf("post-failure write not readable: %v", err)
	}
}

// TestSSDFailBridgeAndLogstoreShareBudget: on a bridge server the
// fragment-log writes and the store's record appends share one ssdfail
// budget, and tripping it drains the bridge log into the store before
// the store's device fails — no acknowledged byte lost.
func TestSSDFailBridgeAndLogstoreShareBudget(t *testing.T) {
	plan, err := faults.Parse("seed=1; ssdfail=srv0@6")
	if err != nil {
		t.Fatal(err)
	}
	ds, ls := newLogBackedServer(t, true, plan, "srv0")
	ms, err := NewMetaServer("127.0.0.1:0", 64*1024, []string{ds.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	// Fragment threshold 20KB: small writes inside a striped parent are
	// flagged and land in the bridge log; Flush drains them through the
	// store (appending records that count toward the same budget).
	c := NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	defer c.Close()
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xA5}, 1024)
	for i := 0; i < 4; i++ {
		if err := c.WriteAt(f, int64(i)*1024, payload); err != nil {
			t.Fatalf("fragment write %d: %v", i, err)
		}
	}
	if _, err := c.Flush(f); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if ds.Stats().FragmentWrites == 0 {
		t.Fatal("no fragment writes recorded — bridge path not exercised")
	}
	// The drain's record appends plus the fragment writes crossed the
	// budget of 6; keep writing until the trip is visible (the check
	// happens on write paths).
	for i := 4; i < 12 && !ds.SSDFailed(); i++ {
		if err := c.WriteAt(f, int64(i)*1024, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !ds.SSDFailed() || !ls.DeviceFailed() {
		t.Fatalf("SSDFailed=%v DeviceFailed=%v after budget crossed", ds.SSDFailed(), ls.DeviceFailed())
	}
	got := make([]byte, 1024)
	for i := 0; i < 4; i++ {
		if err := c.ReadAt(f, int64(i)*1024, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("fragment %d lost across drain + device failure", i)
		}
	}
}

// TestLogBackedServerSurvivesRestart: the crash-consistency story the
// logstore adds to pfsnet — close a log-backed server, reopen the same
// directory, and every acknowledged byte is still there (FileStore
// makes the same promise only after a clean Close; see its doc).
func TestLogBackedServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*DataServer, string) {
		ls, err := logstore.Open(dir, logstore.Config{NoCompactor: true})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := NewDataServerConfig("127.0.0.1:0", ServerConfig{Store: ls})
		if err != nil {
			t.Fatal(err)
		}
		return ds, ds.Addr()
	}
	ds, addr := open()
	ms, err := NewMetaServer("127.0.0.1:0", 4096, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	c := NewClient(ms.Addr())
	f, err := c.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5C}, 2000)
	if err := c.WriteAt(f, 100, payload); err != nil {
		t.Fatal(err)
	}
	c.Close()
	ds.Close() // server restart: same store dir, new process lifecycle

	ls, err := logstore.Open(dir, logstore.Config{NoCompactor: true})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer ls.Close()
	if st := ls.Stats(); st.Replays != 1 {
		t.Fatalf("Replays = %d, want 1", st.Replays)
	}
	// The object the meta server striped file f onto is object f.ID on
	// the single data server; read it back straight from the store.
	got := make([]byte, len(payload))
	if err := ls.ReadAt(uint64(f.ID), 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("acknowledged bytes lost across server restart")
	}
}
