// Package stripe implements the round-robin file striping used by PVFS2
// and the client-side decomposition of file requests into per-server
// sub-requests, including the fragment identification that iBridge adds in
// the client (the paper instruments io_datafile_setup_msgpairs for this).
//
// A file's logical byte space is divided into fixed-size striping units;
// unit k lives on server k mod N at server-local offset (k div N)·unit +
// intra-unit offset. A request that is not aligned to unit boundaries
// yields first/last sub-requests smaller than the unit — the *fragments*
// whose inefficient disk service the paper measures and iBridge repairs.
package stripe

import (
	"fmt"
)

// Layout describes how a file is striped.
type Layout struct {
	// Unit is the striping unit size in bytes (64 KB by default in
	// PVFS2 and throughout the paper).
	Unit int64
	// Servers is the number of data servers the file is striped over.
	Servers int
}

// DefaultUnit is the PVFS2 default striping unit used in the paper.
const DefaultUnit = 64 * 1024

// Sub is one sub-request of a decomposed file request, addressed to a
// single data server.
type Sub struct {
	// Server is the index of the data server holding this piece.
	Server int
	// ServerOff is the offset within the server-local object.
	ServerOff int64
	// FileOff is the offset in the logical file.
	FileOff int64
	// Length is the sub-request length in bytes.
	Length int64
	// Fragment marks a sub-request that iBridge's client side flags:
	// it belongs to a parent spanning multiple servers and is smaller
	// than the fragment threshold. Set by Decompose when a threshold
	// is supplied via DecomposeFlagged.
	Fragment bool
	// Siblings lists the servers holding the other sub-requests of the
	// same parent (set only on fragments; passed to the data server so
	// it can evaluate the striping magnification effect).
	Siblings []int
}

func (s Sub) String() string {
	tag := ""
	if s.Fragment {
		tag = " frag"
	}
	return fmt.Sprintf("srv%d[%d+%d]%s", s.Server, s.ServerOff, s.Length, tag)
}

// Validate reports whether the layout is usable.
func (l Layout) Validate() error {
	if l.Unit <= 0 {
		return fmt.Errorf("stripe: unit %d must be positive", l.Unit)
	}
	if l.Servers <= 0 {
		return fmt.Errorf("stripe: server count %d must be positive", l.Servers)
	}
	return nil
}

// Locate maps a logical file offset to its (server, server-local offset).
func (l Layout) Locate(off int64) (server int, serverOff int64) {
	unitIdx := off / l.Unit
	server = int(unitIdx % int64(l.Servers))
	serverOff = (unitIdx/int64(l.Servers))*l.Unit + off%l.Unit
	return server, serverOff
}

// ServerBytes returns how many bytes of a file of the given total length
// land on each server.
func (l Layout) ServerBytes(fileLen int64) []int64 {
	out := make([]int64, l.Servers)
	fullUnits := fileLen / l.Unit
	for s := range out {
		n := fullUnits / int64(l.Servers)
		if int64(s) < fullUnits%int64(l.Servers) {
			n++
		}
		out[s] = n * l.Unit
	}
	if rem := fileLen % l.Unit; rem > 0 {
		s := int((fileLen / l.Unit) % int64(l.Servers))
		out[s] += rem
	}
	return out
}

// Decompose splits the request [off, off+length) into per-server
// sub-requests. Consecutive striping units on the same server within the
// request are NOT coalesced: each unit crossing produces its own
// sub-request only when the server changes, i.e. contiguous spans per
// server are merged, matching how PVFS2 builds one contiguous region per
// server per request when possible.
func (l Layout) Decompose(off, length int64) []Sub {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if length <= 0 {
		return nil
	}
	var subs []Sub
	pos := off
	remaining := length
	for remaining > 0 {
		server, serverOff := l.Locate(pos)
		inUnit := l.Unit - pos%l.Unit
		n := inUnit
		if n > remaining {
			n = remaining
		}
		// Merge with the previous sub if it is contiguous on the same
		// server (happens when Servers == 1, or when a request wraps a
		// full stripe and returns to the same server at the adjacent
		// server-local offset).
		if k := len(subs) - 1; k >= 0 && subs[k].Server == server &&
			subs[k].ServerOff+subs[k].Length == serverOff {
			subs[k].Length += n
		} else {
			subs = append(subs, Sub{
				Server:    server,
				ServerOff: serverOff,
				FileOff:   pos,
				Length:    n,
			})
		}
		pos += n
		remaining -= n
	}
	return subs
}

// DecomposeFlagged decomposes like Decompose and additionally applies the
// iBridge client-side fragment rule: a sub-request is flagged as a
// fragment when the parent spans more than one server and the sub-request
// is smaller than threshold bytes. Flagged subs carry the identifiers of
// the servers holding their siblings.
func (l Layout) DecomposeFlagged(off, length int64, threshold int64) []Sub {
	subs := l.Decompose(off, length)
	if len(subs) < 2 {
		return subs
	}
	servers := make([]int, len(subs))
	for i, s := range subs {
		servers[i] = s.Server
	}
	for i := range subs {
		if subs[i].Length < threshold {
			subs[i].Fragment = true
			sib := make([]int, 0, len(subs)-1)
			for j, srv := range servers {
				if j != i {
					sib = append(sib, srv)
				}
			}
			subs[i].Siblings = sib
		}
	}
	return subs
}

// Aligned reports whether the request [off, off+length) is aligned with
// the striping pattern: both endpoints fall on unit boundaries (or the
// request fits entirely inside one unit, which produces no fragments).
func (l Layout) Aligned(off, length int64) bool {
	if off/l.Unit == (off+length-1)/l.Unit {
		return true // single-unit request: no decomposition fragments
	}
	return off%l.Unit == 0 && (off+length)%l.Unit == 0
}

// Fragments returns the total number of fragment sub-requests the request
// would produce at the given threshold.
func (l Layout) Fragments(off, length, threshold int64) int {
	n := 0
	for _, s := range l.DecomposeFlagged(off, length, threshold) {
		if s.Fragment {
			n++
		}
	}
	return n
}
