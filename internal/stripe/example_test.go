package stripe_test

import (
	"fmt"

	"repro/internal/stripe"
)

// The paper's Pattern II: a 65 KB request on an 8-server file system with
// a 64 KB striping unit decomposes into a full striping unit plus a 1 KB
// fragment on the next server.
func ExampleLayout_DecomposeFlagged() {
	layout := stripe.Layout{Unit: 64 * 1024, Servers: 8}
	for _, sub := range layout.DecomposeFlagged(0, 65*1024, 20*1024) {
		fmt.Println(sub)
	}
	// Output:
	// srv0[0+65536]
	// srv1[0+1024] frag
}

// Pattern III: a 64 KB request shifted by 10 KB spans two servers; the
// 10 KB piece is flagged as a fragment carrying its sibling's identity.
func ExampleLayout_DecomposeFlagged_offset() {
	layout := stripe.Layout{Unit: 64 * 1024, Servers: 8}
	subs := layout.DecomposeFlagged(10*1024, 64*1024, 20*1024)
	for _, sub := range subs {
		fmt.Printf("%v siblings=%v\n", sub, sub.Siblings)
	}
	// Output:
	// srv0[10240+55296] siblings=[]
	// srv1[0+10240] frag siblings=[0]
}

func ExampleLayout_Aligned() {
	layout := stripe.Layout{Unit: 64 * 1024, Servers: 8}
	fmt.Println(layout.Aligned(0, 64*1024))
	fmt.Println(layout.Aligned(0, 65*1024))
	fmt.Println(layout.Aligned(10*1024, 64*1024))
	// Output:
	// true
	// false
	// false
}
