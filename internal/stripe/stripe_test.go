package stripe

import (
	"testing"
	"testing/quick"
)

const kb = 1024

func layout8() Layout { return Layout{Unit: 64 * kb, Servers: 8} }

func TestLocateRoundRobin(t *testing.T) {
	l := layout8()
	cases := []struct {
		off       int64
		server    int
		serverOff int64
	}{
		{0, 0, 0},
		{64 * kb, 1, 0},
		{7 * 64 * kb, 7, 0},
		{8 * 64 * kb, 0, 64 * kb},
		{64*kb + 100, 1, 100},
		{9*64*kb + 5, 1, 64*kb + 5},
	}
	for _, c := range cases {
		srv, soff := l.Locate(c.off)
		if srv != c.server || soff != c.serverOff {
			t.Errorf("Locate(%d) = (%d,%d), want (%d,%d)", c.off, srv, soff, c.server, c.serverOff)
		}
	}
}

func TestDecomposeAligned(t *testing.T) {
	l := layout8()
	subs := l.Decompose(0, 64*kb)
	if len(subs) != 1 {
		t.Fatalf("aligned request decomposed into %d subs: %v", len(subs), subs)
	}
	s := subs[0]
	if s.Server != 0 || s.ServerOff != 0 || s.Length != 64*kb {
		t.Fatalf("sub = %+v", s)
	}
}

func TestDecomposeUnalignedSize(t *testing.T) {
	// Pattern II of the paper: 65 KB request at offset 0 → one 64 KB
	// sub plus a 1 KB fragment on the next server.
	l := layout8()
	subs := l.Decompose(0, 65*kb)
	if len(subs) != 2 {
		t.Fatalf("got %d subs: %v", len(subs), subs)
	}
	if subs[0].Length != 64*kb || subs[0].Server != 0 {
		t.Fatalf("first sub %+v", subs[0])
	}
	if subs[1].Length != 1*kb || subs[1].Server != 1 || subs[1].ServerOff != 0 {
		t.Fatalf("second sub %+v", subs[1])
	}
}

func TestDecomposeUnalignedOffset(t *testing.T) {
	// Pattern III: 64 KB request shifted by 1 KB → 63 KB + 1 KB across
	// two servers.
	l := layout8()
	subs := l.Decompose(1*kb, 64*kb)
	if len(subs) != 2 {
		t.Fatalf("got %d subs: %v", len(subs), subs)
	}
	if subs[0].Length != 63*kb || subs[1].Length != 1*kb {
		t.Fatalf("lengths = %d, %d", subs[0].Length, subs[1].Length)
	}
	if subs[0].Server != 0 || subs[1].Server != 1 {
		t.Fatalf("servers = %d, %d", subs[0].Server, subs[1].Server)
	}
	if subs[1].ServerOff != 0 {
		t.Fatalf("fragment serverOff = %d, want 0", subs[1].ServerOff)
	}
}

func TestDecomposeLargeRequest(t *testing.T) {
	// A request of k units + 1 KB touches k+1 servers (the paper's
	// striping magnification setup before Figure 3).
	l := layout8()
	for k := int64(1); k <= 7; k++ {
		subs := l.Decompose(0, k*64*kb+1*kb)
		if int64(len(subs)) != k+1 {
			t.Fatalf("k=%d: %d subs, want %d", k, len(subs), k+1)
		}
		last := subs[len(subs)-1]
		if last.Length != 1*kb {
			t.Fatalf("k=%d: trailing fragment %d bytes, want 1KB", k, last.Length)
		}
	}
}

func TestDecomposeSingleServerMergesUnits(t *testing.T) {
	l := Layout{Unit: 64 * kb, Servers: 1}
	subs := l.Decompose(0, 256*kb)
	if len(subs) != 1 || subs[0].Length != 256*kb {
		t.Fatalf("single-server decomposition = %v", subs)
	}
}

func TestDecomposeFullStripeWrap(t *testing.T) {
	// 2 servers: units 0,2 on server 0 are contiguous locally; a
	// request covering units 0..3 yields exactly one sub per server.
	// Units interleave in file order: srv0(0-64K), srv1(64-128K),
	// srv0(128-192K at local 64K), srv1(192-256K at local 64K).
	// File-order traversal merges only consecutive subs on the same
	// server, which never happens with 2 servers: 4 subs.
	l := Layout{Unit: 64 * kb, Servers: 2}
	subs := l.Decompose(0, 4*64*kb)
	if len(subs) != 4 {
		t.Fatalf("got %d subs: %v", len(subs), subs)
	}
	for i, s := range subs {
		if s.Server != i%2 || s.Length != 64*kb {
			t.Fatalf("sub %d = %v", i, s)
		}
	}
}

func TestDecomposeCoversRequestExactly(t *testing.T) {
	l := layout8()
	if err := quick.Check(func(off, length int64) bool {
		off = abs(off) % (1 << 30)
		length = abs(length)%(2<<20) + 1
		subs := l.Decompose(off, length)
		var total int64
		pos := off
		for _, s := range subs {
			if s.FileOff != pos && len(subs) > 1 {
				// FileOff must advance monotonically and contiguously
				// except when a merge collapsed spans. Verify coverage
				// by sum instead.
			}
			total += s.Length
			pos += s.Length
			srv, soff := l.Locate(s.FileOff)
			if srv != s.Server || soff != s.ServerOff {
				return false
			}
		}
		return total == length
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeSubsWithinUnitBounds(t *testing.T) {
	l := layout8()
	if err := quick.Check(func(off, length int64) bool {
		off = abs(off) % (1 << 30)
		length = abs(length)%(512*kb) + 1
		for _, s := range l.Decompose(off, length) {
			if s.Length <= 0 {
				return false
			}
			// A non-merged sub must not cross a unit boundary in file
			// space when servers > 1.
			if s.Length > l.Unit {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlaggedFragments65KB(t *testing.T) {
	l := layout8()
	subs := l.DecomposeFlagged(0, 65*kb, 20*kb)
	if subs[0].Fragment {
		t.Fatal("64KB sub flagged as fragment")
	}
	if !subs[1].Fragment {
		t.Fatal("1KB sub not flagged as fragment")
	}
	if len(subs[1].Siblings) != 1 || subs[1].Siblings[0] != 0 {
		t.Fatalf("siblings = %v, want [0]", subs[1].Siblings)
	}
}

func TestFlaggedRespectsThreshold(t *testing.T) {
	l := layout8()
	// 33 KB request at offset 31 KB → 33 KB crosses boundary at 64 KB:
	// subs are 33KB? No: offset 31KB +33KB = 64KB exactly → single unit.
	// Use 40 KB at offset 48 KB: subs 16 KB (srv0) + 24 KB (srv1).
	subs := l.DecomposeFlagged(48*kb, 40*kb, 20*kb)
	if len(subs) != 2 {
		t.Fatalf("%d subs", len(subs))
	}
	if !subs[0].Fragment {
		t.Fatal("16KB sub should be a fragment at 20KB threshold")
	}
	if subs[1].Fragment {
		t.Fatal("24KB sub flagged despite exceeding threshold")
	}
	// Raising the threshold to 30 KB flags both.
	subs = l.DecomposeFlagged(48*kb, 40*kb, 30*kb)
	if !subs[0].Fragment || !subs[1].Fragment {
		t.Fatal("30KB threshold should flag both subs")
	}
}

func TestSingleSubNeverFlagged(t *testing.T) {
	l := layout8()
	// A small request inside one unit is a "regular random request" in
	// the paper's vocabulary, never a fragment.
	subs := l.DecomposeFlagged(100, 4*kb, 20*kb)
	if len(subs) != 1 {
		t.Fatalf("%d subs", len(subs))
	}
	if subs[0].Fragment {
		t.Fatal("single-server request flagged as fragment")
	}
}

func TestAligned(t *testing.T) {
	l := layout8()
	cases := []struct {
		off, length int64
		want        bool
	}{
		{0, 64 * kb, true},
		{64 * kb, 64 * kb, true},
		{0, 65 * kb, false},
		{1 * kb, 64 * kb, false},
		{0, 128 * kb, true},
		{100, 1 * kb, true}, // inside one unit
		{10 * kb, 64 * kb, false},
	}
	for _, c := range cases {
		if got := l.Aligned(c.off, c.length); got != c.want {
			t.Errorf("Aligned(%d,%d) = %v, want %v", c.off, c.length, got, c.want)
		}
	}
}

func TestFragmentsCount(t *testing.T) {
	l := layout8()
	if n := l.Fragments(0, 65*kb, 20*kb); n != 1 {
		t.Fatalf("Fragments(0,65KB) = %d, want 1", n)
	}
	if n := l.Fragments(10*kb, 64*kb, 20*kb); n != 1 {
		// 54KB + 10KB: only the 10KB piece is under the threshold.
		t.Fatalf("Fragments(10KB,64KB) = %d, want 1", n)
	}
	if n := l.Fragments(0, 64*kb, 20*kb); n != 0 {
		t.Fatalf("aligned request has %d fragments", n)
	}
}

func TestServerBytes(t *testing.T) {
	l := Layout{Unit: 64 * kb, Servers: 4}
	got := l.ServerBytes(5*64*kb + 10)
	want := []int64{2 * 64 * kb, 64*kb + 10, 64 * kb, 64 * kb}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ServerBytes = %v, want %v", got, want)
		}
	}
	var total int64
	for _, b := range got {
		total += b
	}
	if total != 5*64*kb+10 {
		t.Fatalf("total %d", total)
	}
}

func TestValidate(t *testing.T) {
	if err := (Layout{Unit: 0, Servers: 4}).Validate(); err == nil {
		t.Fatal("zero unit accepted")
	}
	if err := (Layout{Unit: 64 * kb, Servers: 0}).Validate(); err == nil {
		t.Fatal("zero servers accepted")
	}
	if err := layout8().Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		if x == -x { // MinInt64
			return 0
		}
		return -x
	}
	return x
}
