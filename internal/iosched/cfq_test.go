package iosched

import (
	"testing"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/sim"
)

func newCFQQueue(e *sim.Engine, cfg Config) (*Queue, *hdd.Disk) {
	d := hdd.New(e, "hdd0", hdd.DefaultSpec(), sim.NewRNG(1))
	return New(e, d, cfg, nil), d
}

func cfqConfig() Config {
	return Config{Policy: CFQ, Merge: true, MaxSectors: 256,
		SliceIdle: 2 * sim.Millisecond, SliceQuantum: 4}
}

func TestCFQServesActiveOriginFirst(t *testing.T) {
	e := sim.New()
	q, _ := newCFQQueue(e, cfqConfig())
	var order []int32
	submit := func(origin int32, lbn int64, delay sim.Duration) {
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(delay)
			q.Submit(p, device.Request{Op: device.Read, LBN: lbn, Sectors: 8, Origin: origin})
			order = append(order, origin)
		})
	}
	// Origin 1 submits two requests; origin 2's request arrives between
	// them but CFQ stays with origin 1's slice.
	submit(1, 1<<20, 0)
	submit(1, 1<<20+8, 10*sim.Microsecond)
	submit(2, 1<<25, 5*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("%d completions", len(order))
	}
	if order[0] != 1 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order by origin = %v, want [1 1 2]", order)
	}
}

func TestCFQQuantumRotatesOrigins(t *testing.T) {
	e := sim.New()
	cfg := cfqConfig()
	cfg.SliceQuantum = 2
	q, _ := newCFQQueue(e, cfg)
	var order []int32
	// Origin 1 floods 4 requests (spaced so they cannot merge); origin
	// 2 queues 1. With quantum 2, origin 2 must be served after at
	// most 2 of origin 1's.
	for i := 0; i < 4; i++ {
		i := i
		e.Go("o1", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * sim.Microsecond)
			q.Submit(p, device.Request{Op: device.Read, LBN: int64(1<<20 + i*1024), Sectors: 8, Origin: 1})
			order = append(order, 1)
		})
	}
	e.Go("o2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 25, Sectors: 8, Origin: 2})
		order = append(order, 2)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	pos := -1
	for i, o := range order {
		if o == 2 {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("origin 2 served at position %d of %v; quantum not enforced", pos, order)
	}
}

func TestCFQAnticipationWaitsForActiveOrigin(t *testing.T) {
	// Origin 1's next request arrives within the idle window while
	// origin 2 has pending work: CFQ must serve origin 1's follow-up
	// first (that is the point of anticipation).
	e := sim.New()
	q, _ := newCFQQueue(e, cfqConfig())
	var order []int32
	e.Go("o1-first", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 20, Sectors: 8, Origin: 1})
		order = append(order, 1)
		// Issue the follow-up shortly after completion, well inside
		// the 2ms idle window.
		p.Sleep(200 * sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 1<<20 + 8, Sectors: 8, Origin: 1})
		order = append(order, 1)
	})
	e.Go("o2", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 25, Sectors: 8, Origin: 2})
		order = append(order, 2)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if order[1] != 1 {
		t.Fatalf("anticipation failed: order %v, want origin 1's follow-up second", order)
	}
}

func TestCFQIdleWindowExpires(t *testing.T) {
	// If the active origin never returns, the idle window ends and the
	// next origin is served — the disk is not held hostage.
	e := sim.New()
	q, _ := newCFQQueue(e, cfqConfig())
	var done2 sim.Time
	e.Go("o1", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 20, Sectors: 8, Origin: 1})
	})
	e.Go("o2", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 25, Sectors: 8, Origin: 2})
		done2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done2 == 0 {
		t.Fatal("origin 2 never served")
	}
	// Served after roughly: o1 service + idle window + o2 service,
	// bounded well under 100ms.
	if done2 > sim.Time(100*sim.Millisecond) {
		t.Fatalf("origin 2 served only at %v", done2)
	}
}

func TestCFQAnticipationPreservesLocality(t *testing.T) {
	// Two origins each stream a sequential region. With anticipation
	// the disk stays with one stream between its back-to-back requests
	// (few seeks); without it, the disk ping-pongs between the two
	// regions (a seek per request). This is CFQ's reason to exist.
	run := func(idle sim.Duration) int64 {
		e := sim.New()
		cfg := cfqConfig()
		cfg.SliceIdle = idle
		cfg.SliceQuantum = 64
		q, d := newCFQQueue(e, cfg)
		for o := int32(1); o <= 2; o++ {
			o := o
			e.Go("io", func(p *sim.Proc) {
				for k := 0; k < 8; k++ {
					q.Submit(p, device.Request{
						Op: device.Read, LBN: int64(o)<<24 + int64(k*8), Sectors: 8, Origin: o,
					})
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d.Stats().Seeks
	}
	withIdle, without := run(2*sim.Millisecond), run(0)
	if withIdle >= without {
		t.Fatalf("anticipation did not reduce seeks: %d vs %d", withIdle, without)
	}
}

func TestCFQCrossOriginMergeStillWorks(t *testing.T) {
	e := sim.New()
	q, d := newCFQQueue(e, cfqConfig())
	// Block the device with origin 9, then two contiguous requests
	// from different origins arrive and must merge.
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 128, Origin: 9})
	})
	for i := 0; i < 2; i++ {
		i := i
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Microsecond)
			q.Submit(p, device.Request{
				Op: device.Read, LBN: int64(128 * i), Sectors: 128, Origin: int32(i + 1),
			})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if q.Stats().BackMerges != 1 {
		t.Fatalf("back merges = %d, want 1 (cross-origin)", q.Stats().BackMerges)
	}
	if d.Stats().TotalOps() != 2 {
		t.Fatalf("device ops = %d, want 2", d.Stats().TotalOps())
	}
}

func TestCFQDeterministic(t *testing.T) {
	run := func() sim.Duration {
		e := sim.New()
		q, _ := newCFQQueue(e, cfqConfig())
		rng := sim.NewRNG(5)
		for o := int32(1); o <= 4; o++ {
			o := o
			r := rng.Fork()
			e.Go("io", func(p *sim.Proc) {
				for k := 0; k < 10; k++ {
					p.Sleep(r.Duration(0, sim.Millisecond))
					q.Submit(p, device.Request{
						Op: device.Read, LBN: r.Range(0, 1<<28), Sectors: 8, Origin: o,
					})
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sim.Duration(e.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("CFQ runs diverged: %v vs %v", a, b)
	}
}
