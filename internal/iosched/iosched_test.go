package iosched

import (
	"testing"

	"repro/internal/blktrace"
	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/sim"
)

func newQueue(e *sim.Engine, cfg Config, tr Tracer) (*Queue, *hdd.Disk) {
	d := hdd.New(e, "hdd0", hdd.DefaultSpec(), sim.NewRNG(1))
	return New(e, d, cfg, tr), d
}

func TestSingleRequestPassThrough(t *testing.T) {
	e := sim.New()
	q, d := newQueue(e, DiskDefaults(), nil)
	var lat sim.Duration
	e.Go("io", func(p *sim.Proc) {
		lat = q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 20, Sectors: 128})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lat <= 0 {
		t.Fatal("no latency reported")
	}
	if d.Stats().TotalOps() != 1 {
		t.Fatalf("device served %d requests, want 1", d.Stats().TotalOps())
	}
}

func TestBackMerge(t *testing.T) {
	e := sim.New()
	tr := blktrace.New("t")
	q, d := newQueue(e, DiskDefaults(), tr)
	// Occupy the device so the two mergeable requests queue together.
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 128})
	})
	for i := 0; i < 2; i++ {
		i := i
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Microsecond)
			q.Submit(p, device.Request{Op: device.Read, LBN: int64(128 * i), Sectors: 128})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if q.Stats().BackMerges != 1 {
		t.Fatalf("back merges = %d, want 1", q.Stats().BackMerges)
	}
	if d.Stats().TotalOps() != 2 { // blocker + merged pair
		t.Fatalf("device ops = %d, want 2", d.Stats().TotalOps())
	}
	// The merged dispatch must be 256 sectors.
	found := false
	for _, sc := range tr.Distribution() {
		if sc.Sectors == 256 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 256-sector dispatch in %v", tr.Distribution())
	}
}

func TestFrontMerge(t *testing.T) {
	e := sim.New()
	q, d := newQueue(e, DiskDefaults(), nil)
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 128})
	})
	e.Go("later", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 128, Sectors: 128})
	})
	e.Go("earlier", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if q.Stats().FrontMerges != 1 {
		t.Fatalf("front merges = %d, want 1", q.Stats().FrontMerges)
	}
	if d.Stats().TotalOps() != 2 {
		t.Fatalf("device ops = %d, want 2", d.Stats().TotalOps())
	}
}

func TestNoMergeAcrossOps(t *testing.T) {
	e := sim.New()
	q, d := newQueue(e, DiskDefaults(), nil)
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 128})
	})
	e.Go("r", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
	})
	e.Go("w", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		q.Submit(p, device.Request{Op: device.Write, LBN: 128, Sectors: 128})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if q.Stats().BackMerges+q.Stats().FrontMerges != 0 {
		t.Fatal("read and write merged")
	}
	if d.Stats().TotalOps() != 3 {
		t.Fatalf("device ops = %d, want 3", d.Stats().TotalOps())
	}
}

func TestMergeCapRespected(t *testing.T) {
	cfg := DiskDefaults()
	cfg.MaxSectors = 256
	e := sim.New()
	q, d := newQueue(e, cfg, nil)
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 128})
	})
	for i := 0; i < 4; i++ {
		i := i
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Microsecond)
			q.Submit(p, device.Request{Op: device.Read, LBN: int64(128 * i), Sectors: 128})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 4×128 sectors can merge into at most 2×256-sector requests.
	if got := d.Stats().TotalOps(); got != 3 {
		t.Fatalf("device ops = %d, want 3 (blocker + two capped merges)", got)
	}
}

func TestMergeDisabled(t *testing.T) {
	cfg := DiskDefaults()
	cfg.Merge = false
	e := sim.New()
	q, d := newQueue(e, cfg, nil)
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 128})
	})
	for i := 0; i < 3; i++ {
		i := i
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Microsecond)
			q.Submit(p, device.Request{Op: device.Read, LBN: int64(128 * i), Sectors: 128})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Stats().TotalOps() != 4 {
		t.Fatalf("device ops = %d, want 4 with merging off", d.Stats().TotalOps())
	}
}

func TestSPTFOrdersByPosition(t *testing.T) {
	e := sim.New()
	tr := blktrace.New("t")
	q, _ := newQueue(e, Config{Policy: SPTF, Merge: false, MaxSectors: 256}, tr)
	// Block the device, then queue requests at far, near, mid positions.
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
	})
	positions := []int64{1 << 30, 1 << 10, 1 << 20}
	for i, lbn := range positions {
		lbn := lbn
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Microsecond)
			q.Submit(p, device.Request{Op: device.Read, LBN: lbn, Sectors: 8})
		})
	}
	var order []int64
	done := sim.NewCounter(e, 4)
	_ = done
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = order
	// With the head near 128 after the blocker, SPTF must dispatch
	// 1<<10, then 1<<20, then 1<<30. Verify via the scheduler's wait
	// accounting: total dispatches should equal 4 with no merges.
	if q.Stats().Dispatches != 4 {
		t.Fatalf("dispatches = %d, want 4", q.Stats().Dispatches)
	}
}

func TestFIFOOrdersByArrival(t *testing.T) {
	e := sim.New()
	q, _ := newQueue(e, Config{Policy: FIFO, Merge: false, MaxSectors: 256}, nil)
	var order []int64
	e.Go("blocker", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
	})
	// Arrival order: high LBN first. FIFO must preserve it.
	positions := []int64{1 << 30, 1 << 10, 1 << 20}
	for i, lbn := range positions {
		lbn := lbn
		e.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Microsecond)
			q.Submit(p, device.Request{Op: device.Read, LBN: lbn, Sectors: 8})
			order = append(order, lbn)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Completion order equals arrival order under FIFO.
	for i, lbn := range order {
		if lbn != positions[i] {
			t.Fatalf("completion order %v, want %v", order, positions)
		}
	}
}

func TestConcurrencyEnablesMerging(t *testing.T) {
	// The emergent behaviour behind Figure 2(c): concurrent sequential
	// streams produce merged large dispatches when the disk is busy.
	run := func(nProcs int) float64 {
		e := sim.New()
		tr := blktrace.New("t")
		q, _ := newQueue(e, DiskDefaults(), tr)
		const perProc = 20
		for i := 0; i < nProcs; i++ {
			i := i
			e.Go("stream", func(p *sim.Proc) {
				for k := 0; k < perProc; k++ {
					lbn := int64((k*nProcs + i) * 128)
					q.Submit(p, device.Request{Op: device.Read, LBN: lbn, Sectors: 128})
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return tr.FractionAtLeast(256)
	}
	solo, crowd := run(1), run(16)
	if crowd <= solo {
		t.Fatalf("merge fraction with 16 procs (%.2f) not above 1 proc (%.2f)", crowd, solo)
	}
}

func TestZeroLengthSubmitIsFree(t *testing.T) {
	e := sim.New()
	q, d := newQueue(e, DiskDefaults(), nil)
	e.Go("io", func(p *sim.Proc) {
		if lat := q.Submit(p, device.Request{Op: device.Read, LBN: 0, Sectors: 0}); lat != 0 {
			t.Errorf("zero-length submit latency %v", lat)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Stats().TotalOps() != 0 {
		t.Fatal("zero-length request reached device")
	}
}

func TestWaitAccounting(t *testing.T) {
	e := sim.New()
	q, _ := newQueue(e, DiskDefaults(), nil)
	e.Go("io", func(p *sim.Proc) {
		q.Submit(p, device.Request{Op: device.Read, LBN: 1 << 20, Sectors: 128})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if q.Stats().AvgWait() <= 0 {
		t.Fatal("no wait time accounted")
	}
	if q.Stats().AvgDepth() != 1 {
		t.Fatalf("avg depth = %v, want 1", q.Stats().AvgDepth())
	}
}
