// Package iosched implements the block-layer I/O schedulers that sit
// between a data server's storage stack and its device, mirroring the
// paper's evaluation setup (CFQ for the hard disk, Noop for the SSD).
//
// The scheduler queues concurrently submitted requests, merges physically
// contiguous ones (the mechanism behind the 128 KB peaks in the paper's
// Figure 2(c) block-size distribution), and dispatches in either
// shortest-positioning-time-first order (modelling the elevator plus NCQ
// reordering) or FIFO order (Noop). Dispatch is work-conserving: a drain
// process runs whenever requests are pending and exits when the queue
// empties, so merging opportunities arise exactly when the device is the
// bottleneck — the same dynamics as the Linux block layer.
package iosched

import (
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Policy selects the dispatch order.
type Policy uint8

const (
	// SPTF dispatches the pending request with the shortest positioning
	// distance from the last dispatched request (elevator + NCQ model).
	SPTF Policy = iota
	// FIFO dispatches in arrival order (the Noop scheduler); used for
	// SSDs, whose service time does not depend on order.
	FIFO
	// CFQ models the Linux Completely Fair Queueing scheduler the
	// paper uses for hard disks: requests are grouped by origin
	// (process); the disk serves one origin's queue in LBN order for a
	// bounded slice and idles briefly at the end of a slice
	// anticipating the origin's next request before switching. The
	// idle windows bound aligned streaming throughput, and every
	// origin whose pattern does not continue locally — a fragment of a
	// striped parent, most of all — pays a whole positioning + slice
	// overhead for however little data it moves.
	CFQ
)

func (p Policy) String() string {
	switch p {
	case SPTF:
		return "sptf"
	case FIFO:
		return "fifo"
	default:
		return "cfq"
	}
}

// Tracer observes dispatched block-level requests; implemented by
// blktrace.Collector. A nil Tracer disables tracing.
type Tracer interface {
	Dispatch(now sim.Time, r device.Request)
}

// Config tunes a scheduler queue.
type Config struct {
	Policy Policy
	// Merge enables front- and back-merging of contiguous requests.
	Merge bool
	// MaxSectors caps the size a merged request may reach, like the
	// block layer's max_sectors_kb. 256 sectors = 128 KB, the largest
	// request size visible in the paper's Figure 2(c).
	MaxSectors int64
	// Window bounds how many of the oldest pending requests the
	// dispatcher considers when picking (the block layer's bounded
	// request pool and plug batching): a request cannot be passed over
	// indefinitely by younger, better-placed arrivals. 0 means
	// unbounded. Applies to the SPTF policy.
	Window int
	// SliceIdle is the CFQ anticipation window: after draining an
	// origin's queue the dispatcher waits this long for the origin to
	// continue before switching (Linux cfq's slice_idle).
	SliceIdle sim.Duration
	// SliceQuantum bounds dispatches per slice before the scheduler
	// switches origins even if the active origin has more work.
	SliceQuantum int
}

// DiskDefaults returns the configuration used for hard disks in the
// paper's evaluation: CFQ with merging.
func DiskDefaults() Config {
	return Config{
		Policy:       CFQ,
		Merge:        true,
		MaxSectors:   256,
		SliceIdle:    2 * sim.Millisecond,
		SliceQuantum: 16,
	}
}

// SSDDefaults returns the configuration used for SSDs (Noop: merging,
// FIFO dispatch).
func SSDDefaults() Config {
	return Config{Policy: FIFO, Merge: true, MaxSectors: 256}
}

// Stats accumulates scheduler statistics.
type Stats struct {
	Submitted   int64
	BackMerges  int64
	FrontMerges int64
	Dispatches  int64
	// DepthSum accumulates the pending-queue length at each dispatch;
	// DepthSum/Dispatches is the average queue depth.
	DepthSum int64
	// WaitTime accumulates submit-to-completion latency over all
	// submitted requests.
	WaitTime sim.Duration
}

// AvgDepth returns the average pending-queue depth seen at dispatch.
func (s *Stats) AvgDepth() float64 {
	if s.Dispatches == 0 {
		return 0
	}
	return float64(s.DepthSum) / float64(s.Dispatches)
}

// AvgWait returns the average submit-to-completion latency.
func (s *Stats) AvgWait() sim.Duration {
	if s.Submitted == 0 {
		return 0
	}
	return s.WaitTime / sim.Duration(s.Submitted)
}

// unit is one queued block request, possibly the merge of several
// submitted requests; every submitter parks on the unit until it is
// served.
type unit struct {
	req     device.Request
	waiters []*sim.Proc
	done    bool
	seq     uint64 // arrival order, for FIFO dispatch and fairness
	origin  int32  // issuing process context, for CFQ grouping
}

// Queue is a scheduler instance bound to one device.
type Queue struct {
	e        *sim.Engine
	dev      device.Device
	cfg      Config
	tracer   Tracer
	pending  []*unit // sorted by LBN
	draining bool
	pos      int64  // LBN after the last dispatched request
	seq      uint64 // arrival sequence for FIFO dispatch
	// CFQ slice state.
	active     int32
	sliceCount int
	idled      bool
	stats      Stats
	// m, when non-nil, mirrors the scheduler statistics into the
	// observability registry (latency histogram, depth gauge). The nil
	// check per update is the entire disabled-path cost.
	m *obs.QueueMetrics
}

// SetMetrics installs an observability bundle (nil disables).
func (q *Queue) SetMetrics(m *obs.QueueMetrics) { q.m = m }

// New returns a scheduler queue feeding dev.
func New(e *sim.Engine, dev device.Device, cfg Config, tracer Tracer) *Queue {
	if cfg.MaxSectors <= 0 {
		cfg.MaxSectors = 256
	}
	return &Queue{e: e, dev: dev, cfg: cfg, tracer: tracer}
}

// Stats returns accumulated scheduler statistics.
func (q *Queue) Stats() *Stats { return &q.stats }

// Device returns the device this queue feeds.
func (q *Queue) Device() device.Device { return q.dev }

// Pending returns the number of queued (not yet dispatched) requests.
func (q *Queue) Pending() int { return len(q.pending) }

// Submit enqueues r and blocks p until the request (or the merged request
// containing it) has been served. It returns the submit-to-completion
// latency.
func (q *Queue) Submit(p *sim.Proc, r device.Request) sim.Duration {
	if r.Sectors <= 0 {
		return 0
	}
	start := p.Now()
	q.stats.Submitted++
	u := q.place(r)
	u.waiters = append(u.waiters, p)
	if !q.draining {
		q.draining = true
		q.e.Go("iosched:"+q.dev.Name(), q.drain)
	}
	p.Block()
	lat := p.Now().Sub(start)
	q.stats.WaitTime += lat
	if q.m != nil {
		q.m.Submitted.Inc()
		q.m.Wait.ObserveDur(lat)
	}
	return lat
}

// place merges r into a pending unit if possible, otherwise inserts a new
// unit in LBN order, and returns the unit carrying r.
func (q *Queue) place(r device.Request) *unit {
	if q.cfg.Merge {
		for _, u := range q.pending {
			if u.req.Sectors+r.Sectors > q.cfg.MaxSectors {
				continue
			}
			if u.req.Contiguous(r) { // back merge: r extends u
				u.req.Sectors += r.Sectors
				q.stats.BackMerges++
				if q.m != nil {
					q.m.BackMerges.Inc()
				}
				return u
			}
			if r.Contiguous(u.req) { // front merge: r precedes u
				u.req.LBN = r.LBN
				u.req.Sectors += r.Sectors
				q.stats.FrontMerges++
				if q.m != nil {
					q.m.FrontMerges.Inc()
				}
				return u
			}
		}
	}
	q.seq++
	u := &unit{req: r, seq: q.seq, origin: r.Origin}
	// Insert in LBN order (stable for equal LBNs: after existing ones,
	// preserving arrival order for FIFO fairness at the same location).
	i := len(q.pending)
	for j, v := range q.pending {
		if v.req.LBN > r.LBN {
			i = j
			break
		}
	}
	q.pending = append(q.pending, nil)
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = u
	return u
}

// inWindow reports whether pending index i is among the cfg.Window oldest
// pending units (by arrival sequence).
func (q *Queue) inWindow(i int) bool {
	w := q.cfg.Window
	if w <= 0 || len(q.pending) <= w {
		return true
	}
	older := 0
	seq := q.pending[i].seq
	for _, u := range q.pending {
		if u.seq < seq {
			older++
			if older >= w {
				return false
			}
		}
	}
	return true
}

// pick selects and removes the next unit to dispatch.
func (q *Queue) pick() *unit {
	best := -1
	if q.cfg.Policy == SPTF {
		// One-way elevator (C-LOOK) over the dispatch window: the
		// nearest windowed request at or ahead of the head position;
		// wrap to the lowest LBN when nothing lies ahead. Forward hops
		// are cheap on disk (the platter rotates past them), so
		// ascending order dominates.
		bestAhead := -1
		for i, u := range q.pending {
			if !q.inWindow(i) {
				continue
			}
			if u.req.LBN >= q.pos {
				if bestAhead < 0 || u.req.LBN < q.pending[bestAhead].req.LBN {
					bestAhead = i
				}
				continue
			}
			if best < 0 || u.req.LBN < q.pending[best].req.LBN {
				best = i
			}
		}
		if bestAhead >= 0 {
			best = bestAhead
		}
	}
	// FIFO: pending is LBN-sorted, so dispatch the oldest by arrival
	// sequence.
	if q.cfg.Policy == FIFO {
		best = 0
		for i, u := range q.pending {
			if u.seq < q.pending[best].seq {
				best = i
			}
		}
	}
	if best < 0 {
		best = 0
	}
	u := q.pending[best]
	q.pending = append(q.pending[:best], q.pending[best+1:]...)
	return u
}

// drain dispatches pending requests until the queue empties, then exits.
func (q *Queue) drain(p *sim.Proc) {
	for {
		var u *unit
		if q.cfg.Policy == CFQ {
			u = q.selectCFQ(p)
		} else if len(q.pending) > 0 {
			u = q.pick()
		}
		if u == nil {
			q.draining = false
			return
		}
		q.stats.DepthSum += int64(len(q.pending) + 1)
		q.stats.Dispatches++
		if q.m != nil {
			q.m.Dispatches.Inc()
			q.m.Depth.Set(int64(len(q.pending) + 1))
		}
		if q.tracer != nil {
			q.tracer.Dispatch(p.Now(), u.req)
		}
		q.dev.Serve(p, u.req)
		q.pos = u.req.End()
		u.done = true
		for _, w := range u.waiters {
			q.e.Wake(w)
		}
		u.waiters = nil
	}
}

// selectCFQ removes and returns the next unit under the CFQ policy,
// possibly idling in anticipation; it returns nil when the queue is empty
// and the drain process should exit.
func (q *Queue) selectCFQ(p *sim.Proc) *unit {
	for {
		if len(q.pending) == 0 {
			return nil
		}
		// Look for the active origin's next unit: C-LOOK within the
		// origin's queue (nearest at or ahead of the head, else its
		// lowest LBN).
		best, bestAhead := -1, -1
		for i, u := range q.pending {
			if u.origin != q.active {
				continue
			}
			if u.req.LBN >= q.pos {
				if bestAhead < 0 || u.req.LBN < q.pending[bestAhead].req.LBN {
					bestAhead = i
				}
				continue
			}
			if best < 0 || u.req.LBN < q.pending[best].req.LBN {
				best = i
			}
		}
		if bestAhead >= 0 {
			best = bestAhead
		}
		if best >= 0 && q.sliceCount < q.cfg.SliceQuantum {
			q.sliceCount++
			u := q.pending[best]
			q.pending = append(q.pending[:best], q.pending[best+1:]...)
			return u
		}
		if best < 0 && !q.idled && q.cfg.SliceIdle > 0 {
			// End of the active origin's queue: anticipate its next
			// request before giving the disk away (cfq slice_idle).
			// Poll in sub-window steps so an early arrival is picked
			// up promptly.
			q.idled = true
			step := q.cfg.SliceIdle / 8
			if step <= 0 {
				step = q.cfg.SliceIdle
			}
			for waited := sim.Duration(0); waited < q.cfg.SliceIdle; waited += step {
				p.Sleep(step)
				if q.hasPending(q.active) {
					break
				}
			}
			continue
		}
		// Slice over: rotate to the origin that has waited longest,
		// preferring a *different* origin (round-robin fairness); if
		// only the active origin has work, its slice restarts.
		oldest, oldestOther := -1, -1
		for i, u := range q.pending {
			if oldest < 0 || u.seq < q.pending[oldest].seq {
				oldest = i
			}
			if u.origin != q.active && (oldestOther < 0 || u.seq < q.pending[oldestOther].seq) {
				oldestOther = i
			}
		}
		pick := oldest
		if oldestOther >= 0 {
			pick = oldestOther
		}
		q.active = q.pending[pick].origin
		q.sliceCount = 0
		q.idled = false
	}
}

// hasPending reports whether any pending unit belongs to origin.
func (q *Queue) hasPending(origin int32) bool {
	for _, u := range q.pending {
		if u.origin == origin {
			return true
		}
	}
	return false
}
