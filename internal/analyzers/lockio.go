package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockIO encodes the logMu lesson from PR 3: blocking I/O performed
// while a mutex acquired in the same function is still held serializes
// every other path through that lock behind the kernel — the exact
// defect that collapsed the concurrent pfsnet server's throughput
// before s.mu was split. The analyzer walks each function in source
// order, tracks sync.Mutex / sync.RWMutex acquisitions, and flags
// method calls that perform blocking I/O (net.Conn, *os.File, bufio,
// io interfaces, ObjectStore) made before the lock is released.
// Deliberate holds (e.g. a flush that must be atomic with respect to
// writers) are documented with //lint:allow lockio <reason>.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "flag blocking I/O performed while a mutex acquired in the same function is held",
	Run:  runLockIO,
}

// ioMethodNames are method names that (on an I/O-bearing receiver)
// block on the kernel or a peer.
var ioMethodNames = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"ReadFrom": true, "WriteTo": true, "Flush": true, "Close": true,
	"Accept": true, "ReadString": true, "ReadBytes": true,
}

// lockEvent is one ordered occurrence inside a function body.
type lockEvent struct {
	pos      token.Pos
	kind     int    // 0 lock, 1 unlock, 2 io call
	key      string // lock expression ("s.mu"), for kinds 0/1
	deferred bool   // kind 1: defer mu.Unlock() holds to function end
	desc     string // kind 2: human-readable call description
}

func runLockIO(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockIO(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockIO(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkLockIO sweeps one function body (excluding nested function
// literals, which run on their own goroutine or schedule) in source
// order and reports I/O calls made between a lock acquisition and its
// release.
func checkLockIO(pass *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // analyzed separately
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.CallExpr:
				if ev, ok := classifyCall(pass, m, inDefer); ok {
					events = append(events, ev)
				}
			}
			return true
		})
	}
	walk(body, false)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]token.Pos{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.key] = ev.pos
		case 1:
			if !ev.deferred {
				delete(held, ev.key)
			}
		case 2:
			for key, at := range held {
				pass.Reportf(ev.pos, "blocking I/O %s while %s (locked at line %d) is held; move the I/O outside the critical section or //lint:allow lockio <reason>",
					ev.desc, key, pass.Fset.Position(at).Line)
			}
		}
	}
}

// classifyCall decides whether call is a lock operation or a blocking
// I/O method call.
func classifyCall(pass *Pass, call *ast.CallExpr, inDefer bool) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if !isSyncMutexMethod(pass, sel) {
			return lockEvent{}, false
		}
		key := lockKey(sel)
		if key == "" {
			return lockEvent{}, false
		}
		kind := 0
		if name == "Unlock" || name == "RUnlock" {
			kind = 1
		}
		return lockEvent{pos: call.Pos(), kind: kind, key: key, deferred: inDefer}, true
	}
	if !ioMethodNames[name] {
		return lockEvent{}, false
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if recvType == nil || !isBlockingIOReceiver(recvType, name) {
		return lockEvent{}, false
	}
	desc := name
	if k := exprKey(sel.X); k != "" {
		desc = k + "." + name
	}
	return lockEvent{pos: call.Pos(), kind: 2, desc: desc}, true
}

// isSyncMutexMethod reports whether sel resolves to a method of
// sync.Mutex or sync.RWMutex (directly or through embedding).
func isSyncMutexMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
		(o.Name() == "Mutex" || o.Name() == "RWMutex")
}

// lockKey names the mutex being operated on: "s.mu" for s.mu.Lock(),
// or the receiver itself ("s") for an embedded mutex's s.Lock().
func lockKey(sel *ast.SelectorExpr) string {
	return exprKey(sel.X)
}

// ioPkgAllowlist are packages whose named types do I/O when their
// Read/Write/Close-shaped methods are invoked.
var ioPkgAllowlist = map[string]bool{
	"os": true, "net": true, "bufio": true, "io": true,
}

// isBlockingIOReceiver reports whether a method named name on a value
// of type t plausibly blocks on I/O. Concrete in-memory types
// (bytes.Buffer, strings.Builder, MemStore, ...) are excluded: only
// named types from os/net/bufio/io, and interface types that include
// the method themselves (net.Conn, io.Reader, ObjectStore, ...),
// count. Interfaces count because the concrete value behind them is
// unknown — the contract must hold for the slowest implementation.
func isBlockingIOReceiver(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && ioPkgAllowlist[pkg.Path()] {
			return true
		}
		t = named.Underlying()
	}
	if iface, ok := t.(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
	}
	return false
}
