package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FeatGate enforces the wire-protocol feature-negotiation contract
// (DESIGN §8, §12, §13): the feature-dependent opcodes and flags —
// opCancel, opReadDirect (both ride featCancel) and tagTraceFlag
// (featTrace) — must never be encoded for, or dispatched on behalf of,
// a peer that did not negotiate the corresponding feature bit. The
// analyzer mirrors obsnil's domination pass: every use of a gated
// constant must be dominated by a mask test of the mapped feature bit
// (`feats&featCancel != 0` guarding the use, an `... == 0` early exit,
// or a single-expression helper predicate that performs the test).
// Decode-side mask tests (`tag & tagTraceFlag`) and strips (`&^`) are
// the gate itself and exempt; an opcode equality or switch-case
// comparison is accepted when the governed block performs the feature
// test before acting.
var FeatGate = &Analyzer{
	Name: "featgate",
	Doc:  "feature-dependent ops/flags (opCancel, opReadDirect, tagTraceFlag) must be dominated by a negotiated-feature-bit check",
	Run:  runFeatGate,
}

// featGateMap pairs each gated constant with the feature bit whose
// negotiation licenses it.
var featGateMap = map[string]string{
	"opCancel":     "featCancel",
	"opReadDirect": "featCancel",
	"tagTraceFlag": "featTrace",
}

func runFeatGate(pass *Pass) error {
	scope := pass.Pkg.Scope()
	// gated maps the *types.Const of each declared gated constant to the
	// *types.Const of its feature bit. A package that declares neither
	// side of a pair is out of the protocol surface and skipped.
	gated := map[types.Object]types.Object{}
	for opName, featName := range featGateMap {
		op, ok := scope.Lookup(opName).(*types.Const)
		if !ok {
			continue
		}
		feat, ok := scope.Lookup(featName).(*types.Const)
		if !ok {
			continue
		}
		gated[op] = feat
	}
	if len(gated) == 0 {
		return nil
	}
	pm := newParentMap(pass.Files)
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			featObj, ok := gated[pass.TypesInfo.Uses[id]]
			if !ok {
				return true
			}
			checkFeatUse(pass, pm, decls, id, featObj)
			return true
		})
	}
	return nil
}

// checkFeatUse classifies one use of a gated constant and reports it
// unless the use is licensed.
func checkFeatUse(pass *Pass, pm parentMap, decls map[*types.Func]*ast.FuncDecl, id *ast.Ident, featObj types.Object) {
	g := &featGuard{pass: pass, decls: decls, feat: featObj}
	// Climb out of parentheses to the syntactic context of the use.
	var child ast.Node = id
	for {
		if p, ok := pm[child].(*ast.ParenExpr); ok {
			child = p
			continue
		}
		break
	}
	switch p := pm[child].(type) {
	case *ast.BinaryExpr:
		switch p.Op {
		case token.AND, token.AND_NOT:
			// Decode-side mask test (`tag & tagTraceFlag`) or strip
			// (`tag &^ tagTraceFlag`): this IS the gate, not a violation.
			return
		case token.EQL, token.NEQ:
			// Opcode comparison (`fr.op == opCancel`): accepted when the
			// block the comparison governs performs the feature test
			// before acting on the match, or when the comparison itself
			// is already dominated by one.
			if body := governedBlock(pm, p); body != nil && containsFeatTest(pass, body, featObj) {
				return
			}
			if g.dominated(pm, child) {
				return
			}
			pass.Reportf(id.Pos(), "%s compared without a dominating %s check; test the negotiated feature bits before acting on a feature-gated opcode", id.Name, featObj.Name())
			return
		}
	case *ast.AssignStmt:
		if p.Tok == token.AND_NOT_ASSIGN {
			// `tag &^= tagTraceFlag` — decode-side strip.
			return
		}
	case *ast.CaseClause:
		// `case opReadDirect:` — a dispatch switch cannot hoist the gate
		// above the comparison; accept when the clause body performs the
		// feature test.
		if containsFeatTestStmts(pass, p.Body, featObj) || g.dominated(pm, child) {
			return
		}
		pass.Reportf(id.Pos(), "dispatch on %s without a %s check in the case body; a peer that never negotiated the feature must not reach this handler", id.Name, featObj.Name())
		return
	}
	if g.dominated(pm, child) {
		return
	}
	pass.Reportf(id.Pos(), "%s encoded without a dominating %s check; only a peer that negotiated the feature may be sent this op/flag", id.Name, featObj.Name())
}

// featGuard holds the context for feature-bit domination queries.
type featGuard struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	feat  types.Object
}

// dominated walks the parent chain from n (exactly like obsnil's
// nilGuarded) and reports whether a feature test dominates the use: the
// then-branch of `if feats&feat != 0`, the else-branch or post-early-
// exit of `feats&feat == 0`, or the right side of a `&&` whose left
// operand implies the test. The walk stops at the enclosing function —
// a gate outside a closure does not dominate code that runs later.
func (g *featGuard) dominated(pm parentMap, n ast.Node) bool {
	child := n
	for p := pm[child]; p != nil; child, p = p, pm[p] {
		switch p := p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if p.Op == token.LAND && child == p.Y && g.holds(p.X, 0) {
				return true
			}
		case *ast.IfStmt:
			if child == p.Body && g.holds(p.Cond, 0) {
				return true
			}
			if child == p.Else && g.fails(p.Cond, 0) {
				return true
			}
		default:
			list := blockList(p)
			if list == nil {
				continue
			}
			for _, stmt := range list {
				if stmt == child {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Else != nil {
					continue
				}
				if g.fails(ifs.Cond, 0) && terminates(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

// holds reports whether cond being true guarantees the feature bit is
// negotiated: `x&feat != 0` (either operand order), strengthened by &&,
// negation of a failing test, or a helper predicate returning the test.
func (g *featGuard) holds(cond ast.Expr, depth int) bool {
	if depth > 2 {
		return false
	}
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return g.holds(c.X, depth)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return g.fails(c.X, depth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			return g.maskTestAgainstZero(c)
		case token.LAND:
			return g.holds(c.X, depth) || g.holds(c.Y, depth)
		}
	case *ast.CallExpr:
		return g.helperImplies(c, depth, (*featGuard).holds)
	}
	return false
}

// fails reports whether ¬cond guarantees the feature bit is negotiated
// — i.e. cond is `x&feat == 0`, possibly weakened by || with other
// failure modes (`ver < 2 || feats&feat == 0`), the negation of a
// holding test, or a helper predicate with that shape.
func (g *featGuard) fails(cond ast.Expr, depth int) bool {
	if depth > 2 {
		return false
	}
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return g.fails(c.X, depth)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return g.holds(c.X, depth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.EQL:
			return g.maskTestAgainstZero(c)
		case token.LOR:
			return g.fails(c.X, depth) || g.fails(c.Y, depth)
		}
	case *ast.CallExpr:
		return g.helperImplies(c, depth, (*featGuard).fails)
	}
	return false
}

// maskTestAgainstZero reports whether b compares a `x & feat` mask
// against the literal 0 (either operand order).
func (g *featGuard) maskTestAgainstZero(b *ast.BinaryExpr) bool {
	return (g.isFeatMask(b.X) && isZeroLit(b.Y)) || (isZeroLit(b.X) && g.isFeatMask(b.Y))
}

// isFeatMask reports whether e is a `x & feat` (or `feat & x`)
// expression over this guard's feature constant.
func (g *featGuard) isFeatMask(e ast.Expr) bool {
	e = unparen(e)
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.AND {
		return false
	}
	return g.isFeatConst(b.X) || g.isFeatConst(b.Y)
}

// isFeatConst reports whether e resolves to the feature constant.
func (g *featGuard) isFeatConst(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && g.pass.TypesInfo.Uses[id] == g.feat
}

// helperImplies resolves call to a same-package function whose body is
// a single `return <expr>` and applies pred to that expression — the
// "feature check behind a helper method" idiom
// (`if c.supportsCancel() { ... }`).
func (g *featGuard) helperImplies(call *ast.CallExpr, depth int, pred func(*featGuard, ast.Expr, int) bool) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := g.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	decl := g.decls[fn]
	if decl == nil || decl.Body == nil || len(decl.Body.List) != 1 {
		return false
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	return pred(g, ret.Results[0], depth+1)
}

// governedBlock returns the block guarded by a comparison: climbing
// through &&/||/parens, if the comparison is (part of) an if condition,
// the if body is what the match governs.
func governedBlock(pm parentMap, cmp ast.Expr) *ast.BlockStmt {
	var child ast.Node = cmp
	for p := pm[child]; p != nil; child, p = p, pm[p] {
		switch p := p.(type) {
		case *ast.ParenExpr:
			continue
		case *ast.BinaryExpr:
			if p.Op == token.LAND || p.Op == token.LOR {
				continue
			}
			return nil
		case *ast.IfStmt:
			if p.Cond == child {
				return p.Body
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// containsFeatTest reports whether any statement in the block performs
// a mask test of the feature constant.
func containsFeatTest(pass *Pass, body *ast.BlockStmt, feat types.Object) bool {
	return containsFeatTestStmts(pass, body.List, feat)
}

func containsFeatTestStmts(pass *Pass, stmts []ast.Stmt, feat types.Object) bool {
	g := &featGuard{pass: pass, feat: feat}
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.AND && (g.isFeatConst(b.X) || g.isFeatConst(b.Y)) {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// packageFuncDecls indexes every function/method declaration in the
// package by its type-checker object, for helper-predicate resolution.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// unparen strips any parentheses around e.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isZeroLit reports whether e is the integer literal 0.
func isZeroLit(e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}
