package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMapRange flags the classic nondeterminism leak: iterating a map
// and letting the iteration order escape — into a slice that is never
// sorted, into an output writer, into a return value, or into an
// outer variable that the function returns (the "first error wins"
// pattern, where *which* error wins depends on hash seed). The
// accepted fixes are sorting the collected slice afterwards or
// documenting the site with //lint:allow detmaprange <reason> when
// order is provably immaterial.
var DetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration whose order escapes unsorted into appends, writers, or returns",
	Run:  runDetMapRange,
}

// writerSinkNames are methods/functions that emit bytes in call order.
var writerSinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sortCallNames identify the sort.* / slices.* entry points that fix an
// unordered collection.
var sortCallNames = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

func runDetMapRange(pass *Pass) error {
	pm := newParentMap(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rs.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, pm, rs)
			return true
		})
	}
	return nil
}

type appendSink struct {
	obj types.Object
	key string // lexical key of the append target
	pos ast.Node
}

type assignSink struct {
	obj types.Object
	pos ast.Node
}

func checkMapRange(pass *Pass, pm parentMap, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	tainted := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return
	}
	mentionsTaint := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tainted[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() >= rs.End())
	}

	var appends []appendSink
	var assigns []assignSink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			anyTaint := false
			for _, r := range n.Rhs {
				if mentionsTaint(r) {
					anyTaint = true
					break
				}
			}
			if !anyTaint {
				return true
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					tainted[obj] = true // new inner var derived from iteration
					continue
				}
				obj := info.Uses[id]
				if obj == nil {
					continue
				}
				if !declaredOutside(obj) {
					tainted[obj] = true
					continue
				}
				if n.Tok != token.ASSIGN {
					// Compound accumulation (+=, |=, ...): integer and
					// boolean folds commute, so only floating-point and
					// string accumulation are order-sensitive.
					if b, ok := obj.Type().Underlying().(*types.Basic); ok &&
						b.Info()&(types.IsInteger|types.IsUnsigned|types.IsBoolean) != 0 {
						tainted[obj] = true
						continue
					}
					assigns = append(assigns, assignSink{obj: obj, pos: n})
					tainted[obj] = true
					continue
				}
				// Plain assignment of iteration-derived data to an
				// outer variable. append(x, ...) back into x is the
				// collect-then-sort idiom; anything else is a
				// value chosen by map order.
				if len(n.Rhs) == len(n.Lhs) {
					if call, ok := n.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
						appends = append(appends, appendSink{obj: obj, key: exprKey(id), pos: n})
						tainted[obj] = true
						continue
					}
				}
				assigns = append(assigns, assignSink{obj: obj, pos: n})
				tainted[obj] = true
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !writerSinkNames[sel.Sel.Name] {
				return true
			}
			for _, arg := range n.Args {
				if mentionsTaint(arg) {
					pass.Reportf(n.Pos(), "map iteration order leaks into output via %s.%s; collect and sort before emitting", exprKey(sel.X), sel.Sel.Name)
					break
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if mentionsTaint(r) {
					pass.Reportf(n.Pos(), "return inside map range yields an element chosen by iteration order")
					break
				}
			}
		}
		return true
	})

	fn := pm.enclosingFunc(rs)
	if fn == nil {
		return
	}
	for _, s := range appends {
		if !sortedAfter(info, fn, rs, s.key) {
			pass.Reportf(s.pos.Pos(), "slice %s collects map keys/values but is never sorted; iteration order leaks (sort it, or //lint:allow detmaprange <reason>)", s.key)
		}
	}
	for _, s := range assigns {
		if returnsObj(info, fn, s.obj) {
			pass.Reportf(s.pos.Pos(), "%s is chosen by map iteration order and returned; iterate sorted keys instead", s.obj.Name())
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether a sort.*/slices.* call mentioning key
// appears after the range statement inside fn.
func sortedAfter(info *types.Info, fn ast.Node, rs *ast.RangeStmt, key string) bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortCallNames[sel.Sel.Name] {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[pkg].(*types.PkgName); !ok || (pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsKey(arg, key) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsKey reports whether the expression contains a sub-expression
// whose lexical key matches key (so sort.Sort(byOff(hits)) counts for
// "hits").
func mentionsKey(e ast.Expr, key string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok && exprKey(expr) == key {
			found = true
		}
		return !found
	})
	return found
}

// returnsObj reports whether any return statement in fn mentions obj,
// or obj is one of fn's named results.
func returnsObj(info *types.Info, fn ast.Node, obj types.Object) bool {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body, ftype = fn.Body, fn.Type
	case *ast.FuncLit:
		body, ftype = fn.Body, fn.Type
	}
	if ftype != nil && ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, r := range ret.Results {
			ast.Inspect(r, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
