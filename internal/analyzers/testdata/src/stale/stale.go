// Fixture for stale-waiver detection: one directive that suppresses a
// real finding, one that suppresses nothing, and one naming an
// analyzer the suite has never heard of. Checked by TestStaleWaiver
// with explicit assertions rather than want comments.
package hdd

import "time"

// A used waiver: the directive suppresses the finding under it.
func used() time.Time {
	//lint:allow detclock fixture exercises a used waiver
	return time.Now()
}

// A stale waiver: nothing on this line or the next violates detclock.
func stale() int {
	//lint:allow detclock nothing to suppress here
	return 42
}

// A misspelled analyzer name is reported regardless of the run set.
func typo() int {
	//lint:allow detclok misspelled analyzer name
	return 7
}
