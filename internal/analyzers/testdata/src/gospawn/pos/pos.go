// Positive gospawn cases: goroutines with no shutdown path at all and
// a spawn the package cannot see into.
package pfsnet

import "net"

// spin has no channel, context, or join anywhere in reach.
func spin() {
	for {
		work()
	}
}

func work() {}

func spawnAll(c net.Conn) {
	go spin() // want "no provable shutdown path"

	go func() { // want "no provable shutdown path"
		for {
			work()
		}
	}()

	// An interface method has no visible body to prove anything about.
	go c.Close() // want "cannot see into"
}
