// An unkillable goroutine in a package outside the enforced surface:
// gospawn must stay silent here.
package other

func churn() {}

func spawn() {
	go func() {
		for {
			churn()
		}
	}()
}
