// Negative gospawn cases: every accepted form of shutdown evidence —
// select on a done channel, range over a channel, WaitGroup join,
// close hooks reached through same-package callee chains (including a
// deferred Close), context watch, channel send, and a documented
// waiver for a process-lifetime goroutine.
package pfsnet

import (
	"context"
	"sync"
)

type pump struct {
	done chan struct{}
	dead chan struct{}
	work chan int
}

// select on a done channel.
func (p *pump) run() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case j := <-p.work:
				_ = j
			}
		}
	}()
}

// range over a channel ends when the owner closes it.
func (p *pump) drain() {
	go func() {
		for j := range p.work {
			_ = j
		}
	}()
}

// WaitGroup join: an owner's Wait collects us.
func fanOut(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
}

func step() {}

func bad() bool { return false }

// Close hook reached through a callee chain: readLoop -> kill ->
// close(p.dead), depth 2.
func (p *pump) start() {
	go p.readLoop()
}

func (p *pump) readLoop() {
	for {
		if bad() {
			p.kill()
			return
		}
	}
}

func (p *pump) kill() {
	close(p.dead)
}

// Deferred Close whose body owns the close hook.
func (p *pump) serve() {
	go func() {
		defer p.Close()
		for {
			if bad() {
				return
			}
		}
	}()
}

func (p *pump) Close() {
	close(p.done)
}

// Context watch.
func watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Channel send: an owner draining (or closing) the channel releases us.
func (p *pump) produce() {
	go func() {
		p.work <- 1
	}()
}

// A deliberate fire-and-forget with a documented waiver.
func fireAndForget() {
	//lint:allow gospawn process-lifetime logger; exits with the process
	go spinForever()
}

func spinForever() {
	for {
		step()
	}
}
