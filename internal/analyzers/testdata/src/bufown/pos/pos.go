// Fixture: pooled payload buffers touched after their ownership was
// handed to the pool or the conn writer — every shape bufown exists to
// catch.
package pos

func putBuf(b []byte)     {}
func getBuf(n int) []byte { return make([]byte, n) }
func sink(args ...any)    {}
func cond() bool          { return false }

type vecWriter struct{}

func (w *vecWriter) writeFrame(ver int, tag uint64, op byte, payload []byte) error { return nil }

type conn struct{}

func (c *conn) exchange(op byte, payload, dst []byte) ([]byte, int, error) { return nil, 0, nil }
func (c *conn) call(op byte, payload []byte) ([]byte, error)               { return nil, nil }

type Client struct{}

func (c *Client) metaCall(op byte, payload []byte) ([]byte, error) { return nil, nil }

// UseAfterPut is the plain use-after-free: the pool may have already
// reissued b to another goroutine.
func UseAfterPut() {
	b := getBuf(64)
	putBuf(b)
	sink(len(b)) // want `b used after its ownership was handed to putBuf`
}

// UseAfterWriteFrame touches the payload after the vectored writer took
// it; the writer recycles small payloads immediately.
func UseAfterWriteFrame(w *vecWriter, payload []byte) {
	w.writeFrame(2, 1, 3, payload)
	sink(payload[0]) // want `payload used after its ownership was handed to vecWriter\.writeFrame`
}

// UseAfterExchange reads the request buffer after the conn's writer
// goroutine took it.
func UseAfterExchange(c *conn, payload []byte) error {
	_, _, err := c.exchange(3, payload, nil)
	if err != nil {
		sink(len(payload)) // want `payload used after its ownership was handed to conn\.exchange`
	}
	return err
}

// UseAfterMetaCall re-sends the same pooled buffer — the retry must
// re-encode instead.
func UseAfterMetaCall(c *Client, e []byte) {
	c.metaCall(1, e)
	c.metaCall(1, e) // want `e used after its ownership was handed to Client\.metaCall`
}

// BranchJoin hands off on one fall-through branch only: the join point
// must treat the buffer as dead.
func BranchJoin(b []byte) {
	if cond() {
		putBuf(b)
	}
	sink(b) // want `b used after its ownership was handed to putBuf`
}

// LoopCarried releases at the bottom of an iteration and reads at the
// top of the next without rebinding.
func LoopCarried(bufs [][]byte) {
	b := getBuf(8)
	for i := 0; i < len(bufs); i++ {
		sink(b[0]) // want `b used after its ownership was handed to putBuf`
		putBuf(b)
	}
}

// DeadArg passes an already-released buffer onward as an argument.
func DeadArg(c *conn, b []byte) {
	putBuf(b)
	c.call(2, b) // want `b used after its ownership was handed to putBuf`
}

// FieldHandoff tracks selector chains, not just plain identifiers.
type holder struct{ payload []byte }

func FieldHandoff(h *holder) {
	putBuf(h.payload)
	sink(cap(h.payload)) // want `h\.payload used after its ownership was handed to putBuf`
}
