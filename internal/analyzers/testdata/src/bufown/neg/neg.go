// Fixture: the disciplined ownership patterns from the wire path —
// capture-before-handoff, rebind-after-release, deferred release,
// terminating branches, per-iteration rebinding, and a documented
// waiver. Must be clean.
package neg

func putBuf(b []byte)     {}
func getBuf(n int) []byte { return make([]byte, n) }
func sink(args ...any)    {}
func cond() bool          { return false }

type vecWriter struct{}

func (w *vecWriter) writeFrame(ver int, tag uint64, op byte, payload []byte) error { return nil }

type conn struct{}

func (c *conn) callV1(op byte, payload []byte) ([]byte, error) { return nil, nil }

// CaptureThenHandoff snapshots what it needs before the transfer — the
// writeLoop pattern (n := len(w.payload) before writeFrame).
func CaptureThenHandoff(w *vecWriter, payload []byte) {
	n := len(payload)
	w.writeFrame(2, 1, 3, payload)
	sink(n)
}

// RebindRevives: after b = nil (or a fresh getBuf) the old handoff no
// longer covers the name — the start/kill pattern (putBuf; w.payload =
// nil).
func RebindRevives() {
	b := getBuf(64)
	putBuf(b)
	b = getBuf(128)
	sink(len(b))
}

// DeferredRelease runs at function exit: uses between the defer
// statement and the return are the whole point (the callV1 pattern).
func DeferredRelease(c *conn, payload []byte) {
	defer putBuf(payload)
	sink(len(payload))
}

// TerminatingBranch releases only on the early-exit path, so the code
// after the join never sees a dead buffer (the dispatch pattern).
func TerminatingBranch(b []byte) []byte {
	if cond() {
		putBuf(b)
		return nil
	}
	return b
}

// ElseKeepsOwnership mirrors vecWriter.writeFrame itself: the small
// branch releases, the large branch retains — each path is consistent
// and nothing follows the join.
func ElseKeepsOwnership(own *[][]byte, payload []byte) {
	if len(payload) <= 256 {
		putBuf(payload)
	} else {
		*own = append(*own, payload)
	}
}

// RangeRebinds: the loop variable is rebound every iteration, so the
// release at the bottom never covers the next element (the
// vecWriter.reset pattern).
func RangeRebinds(owned [][]byte) {
	for _, b := range owned {
		sink(len(b))
		putBuf(b)
	}
}

// UnnamedArgs: expressions with no stable name are not trackable and
// must stay silent (the pool test patterns).
func UnnamedArgs(bufs [][]byte) {
	putBuf(getBuf(64))
	putBuf(nil)
	putBuf(bufs[0])
}

// Waiver: a deliberate post-handoff read documented in place.
func Waiver() {
	b := getBuf(64)
	putBuf(b)
	//lint:allow bufown fixture: deliberate post-handoff read under test
	sink(len(b))
}
