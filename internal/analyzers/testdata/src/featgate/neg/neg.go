// Negative featgate cases: every licensed form — if-body gates,
// ||-early-exits, same-expression && gates, helper predicates in both
// polarities, decode-side mask tests and strips, feature tests inside
// the governed block, else-branches, and a documented waiver.
package featfix

const (
	opWrite      byte = 0x01
	opCancel     byte = 0x10
	opReadDirect byte = 0x11
)

const (
	featTrace  uint32 = 1 << 0
	featCancel uint32 = 1 << 1
)

const tagTraceFlag = uint64(1) << 63

type conn struct {
	features uint32
	ver      int
}

func send(op byte) {}

// If-body gate.
func (c *conn) cancel() {
	if c.features&featCancel != 0 {
		send(opCancel)
	}
}

// Early-exit gate: the || chain fails the feature, so code after it
// runs only for a negotiating peer.
func (c *conn) readDirect() {
	if c.ver < 2 || c.features&featCancel == 0 {
		return
	}
	send(opReadDirect)
}

// Same-expression gate: the && left operand licenses the right.
func (c *conn) isCancel(op byte) bool {
	return c.features&featCancel != 0 && op == opCancel
}

// Helper-predicate gate, both polarities.
func (c *conn) canCancel() bool {
	return c.features&featCancel != 0
}

func (c *conn) viaHelper() {
	if c.canCancel() {
		send(opCancel)
	}
}

func (c *conn) viaHelperEarlyExit() {
	if !c.canCancel() {
		return
	}
	send(opReadDirect)
}

// Decode side: mask tests and strips ARE the gate.
func decode(tag uint64) (uint64, bool) {
	traced := tag&tagTraceFlag != 0
	tag &^= tagTraceFlag
	return tag, traced
}

// A dispatch case that tests the feature before acting.
func (c *conn) dispatch(op byte) {
	switch op {
	case opReadDirect:
		if c.features&featCancel == 0 {
			return
		}
		send(op)
	}
}

// A comparison whose governed block performs the feature test.
func (c *conn) handle(op byte) {
	if op == opCancel {
		if c.features&featCancel != 0 {
			send(op)
		}
	}
}

// Else-branch of a failing test.
func (c *conn) elseGate() {
	if c.features&featCancel == 0 {
		send(opWrite)
	} else {
		send(opCancel)
	}
}

// Documented waiver for an encode helper below the gate.
func stampTag(tag uint64) uint64 {
	//lint:allow featgate encode helper below the gate; callers check featTrace
	return tag | tagTraceFlag
}
