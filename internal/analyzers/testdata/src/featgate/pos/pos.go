// Positive featgate cases: gated ops and flags reached with no
// feature-bit check, with the wrong bit, and dispatch/comparison
// forms whose governed code never tests the feature.
package featfix

const (
	opWrite      byte = 0x01
	opCancel     byte = 0x10
	opReadDirect byte = 0x11
)

const (
	featTrace  uint32 = 1 << 0
	featCancel uint32 = 1 << 1
)

const tagTraceFlag = uint64(1) << 63

type conn struct {
	features uint32
	ver      int
}

func send(op byte) {}

// Bare encode with no gate anywhere.
func (c *conn) cancelOp() byte {
	return opCancel // want "encoded without a dominating featCancel check"
}

// Gated by the WRONG bit: featTrace does not license opReadDirect.
func (c *conn) readDirect() {
	if c.features&featTrace != 0 {
		send(opReadDirect) // want "encoded without a dominating featCancel check"
	}
}

// Dispatch case whose body never tests the feature.
func (c *conn) dispatch(op byte) {
	switch op {
	case opWrite:
		send(op)
	case opReadDirect: // want "dispatch on opReadDirect without a featCancel check in the case body"
		send(op)
	}
}

// Comparison acted on without a feature test.
func (c *conn) isCancel(op byte) bool {
	if op == opCancel { // want "compared without a dominating featCancel check"
		return true
	}
	return false
}

// Trace flag encoded with no featTrace gate.
func (c *conn) stamp(tag uint64) uint64 {
	return tag | tagTraceFlag // want "encoded without a dominating featTrace check"
}
