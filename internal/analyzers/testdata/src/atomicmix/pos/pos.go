// Positive atomicmix cases: fields and package variables touched both
// through sync/atomic and plainly.
package atomfix

import "sync/atomic"

type counters struct {
	n     int64
	other int64
}

type server struct {
	counters
	plain int64
}

// bump marks counters.n as atomically accessed.
func (s *server) bump() {
	atomic.AddInt64(&s.n, 1)
}

// A promoted plain read of the same field object races with bump.
func (s *server) read() int64 {
	return s.n // want "accessed via sync/atomic"
}

// The explicit spelling resolves to the same field: still a mix.
func (s *server) readExplicit() int64 {
	return s.counters.n // want "accessed via sync/atomic"
}

// A plain write is the worst mix of all.
func (s *server) reset() {
	s.n = 0 // want "accessed via sync/atomic"
}

// The untouched sibling field stays free.
func (s *server) sibling() int64 {
	return s.other + s.plain
}

var pkgCount int64

func bumpPkg() {
	atomic.StoreInt64(&pkgCount, 1)
}

func readPkg() int64 {
	return pkgCount // want "accessed via sync/atomic"
}
