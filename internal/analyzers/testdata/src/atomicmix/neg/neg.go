// Negative atomicmix cases: consistent atomic use, same-named fields
// of distinct structs, construction-time initialization, wrapper
// types, and a documented waiver.
package atomfix

import "sync/atomic"

type inner struct{ n int64 }

// stats declares a field with the same name as inner's: a different
// object entirely, so plain access to it must not be confused with the
// atomic one escaping through the embedded struct.
type stats struct{ n int64 }

type owner struct {
	inner
	st stats
}

// Both the promoted and the explicit spelling are atomic: consistent.
func (o *owner) bump() {
	atomic.AddInt64(&o.n, 1)
}

func (o *owner) bumpExplicit() {
	atomic.AddInt64(&o.inner.n, 1)
}

func (o *owner) load() int64 {
	return atomic.LoadInt64(&o.n)
}

// stats.n is a distinct field object — plain access is fine.
func (o *owner) readOther() int64 {
	return o.st.n
}

// Composite-literal initialization happens before the value is shared.
func newOwner() *owner {
	return &owner{inner: inner{n: 0}, st: stats{n: 7}}
}

// atomic wrapper types never hand out a plain field to mix on.
type wrapped struct{ v atomic.Int64 }

func (w *wrapped) ok() int64 { return w.v.Load() }

// A documented waiver silences a deliberate quiesced-state read.
type gauge struct{ g int64 }

func (x *gauge) bump() {
	atomic.AddInt64(&x.g, 1)
}

func (x *gauge) snapshot() int64 {
	//lint:allow atomicmix quiesced read; all writers joined before snapshot
	return x.g
}
