// Fixture: the sanctioned patterns — collect-then-sort (both sort and
// slices flavors), commutative integer folds, counting, and in-place
// mutation. Must be clean.
package neg

import (
	"slices"
	"sort"
)

// SortedKeys is the canonical fix: collect, then sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SlicesSorted uses the slices package instead.
func SlicesSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

type pair struct {
	k string
	v int
}

// SortSlice covers the sort.Slice comparator form on a struct
// collection.
func SortSlice(m map[string]int) []pair {
	var ps []pair
	for k, v := range m {
		ps = append(ps, pair{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	return ps
}

// SumInt folds integers, which commute regardless of order.
func SumInt(m map[string]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

// Count never looks at the elements at all.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Clear mutates the map in place; no order leaves the loop.
func Clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Allowed documents an intentionally unordered snapshot.
func Allowed(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		//lint:allow detmaprange snapshot feeds an order-insensitive aggregate
		vs = append(vs, v)
	}
	return vs
}
