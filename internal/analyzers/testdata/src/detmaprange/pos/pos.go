// Fixture: map iteration order escaping — unsorted collection, direct
// output, returns, and order-picked outer assignment.
package pos

import "fmt"

// Keys collects map keys but never sorts them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "never sorted"
	}
	return out
}

// Emit writes during iteration, leaking hash order into the output.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "leaks into output"
	}
}

// Pick returns whichever element the runtime hands over first.
func Pick(m map[string]int) int {
	for _, v := range m {
		return v // want "chosen by iteration order"
	}
	return 0
}

// FirstErr captures "the first" error — but which one is first depends
// on the hash seed.
func FirstErr(m map[string]error) error {
	var first error
	for _, err := range m {
		if err != nil && first == nil {
			first = err // want "chosen by map iteration order and returned"
		}
	}
	return first
}

// SumFloat accumulates floats, whose rounding depends on order.
func SumFloat(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "chosen by map iteration order and returned"
	}
	return s
}
