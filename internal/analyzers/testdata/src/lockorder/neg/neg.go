// Negative lockorder cases: consistent ordering, release-before-next,
// block-scoped deferred unlocks, goroutine boundaries, and helpers
// that fully release before returning.
package lockordfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// Both paths take A.mu before B.mu: one order, no cycle.
func firstPath() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func secondPath() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}

var (
	logMu   sync.Mutex
	workMu  sync.Mutex
	bridged bool
)

// Releasing before the next acquisition creates no edge at all.
func sequential() {
	logMu.Lock()
	logMu.Unlock()
	workMu.Lock()
	workMu.Unlock()
}

// A branch that locks under defer and returns does not hold its lock
// into the code after the branch — the later re-acquisition is fine.
// (Models DataServer.handleWrite's bridge/direct split.)
func branchDefer() {
	if bridged {
		logMu.Lock()
		defer logMu.Unlock()
		bridged = false
		return
	}
	logMu.Lock()
	bridged = true
	logMu.Unlock()
}

// A goroutine body runs on its own stack: locks taken there are not
// "while held" relative to the spawner.
func spawnUnderLock() {
	workMu.Lock()
	go func() {
		logMu.Lock()
		logMu.Unlock()
	}()
	workMu.Unlock()
}

// A callee that releases everything it takes contributes no held
// locks to the caller's next acquisition.
func viaHelper() {
	lockAndRelease()
	logMu.Lock()
	logMu.Unlock()
}

func lockAndRelease() {
	workMu.Lock()
	workMu.Unlock()
}
