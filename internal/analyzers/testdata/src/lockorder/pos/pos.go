// Positive lockorder cases: a direct two-mutex cycle, an
// interprocedural cycle through a helper, and a self-deadlock.
package lockordfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// lockAB acquires A.mu then B.mu.
func lockAB() {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA acquires them in the opposite order: a cycle with lockAB.
func lockBA() {
	b.mu.Lock()
	a.mu.Lock() // want "lock-order cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

var (
	logMu   sync.Mutex
	stateMu sync.Mutex
)

// logThenState holds logMu across a call that acquires stateMu: the
// edge logMu -> stateMu is created at the call site.
func logThenState() {
	logMu.Lock()
	touchState() // want "lock-order cycle"
	logMu.Unlock()
}

func touchState() {
	stateMu.Lock()
	stateMu.Unlock()
}

// stateThenLog closes the interprocedural cycle.
func stateThenLog() {
	stateMu.Lock()
	logMu.Lock() // want "lock-order cycle"
	logMu.Unlock()
	stateMu.Unlock()
}

var selfMu sync.Mutex

// doubleLock re-acquires a held sync.Mutex: guaranteed deadlock.
func doubleLock() {
	selfMu.Lock()
	selfMu.Lock() // want "self-deadlock"
	selfMu.Unlock()
	selfMu.Unlock()
}
