// Fixture for TestMalformedDirective: a //lint:allow with no reason
// must be reported itself and must NOT suppress the finding below it.
// No want comments — the test asserts the diagnostics directly.
package malformed

import "time"

// Broken tries to waive without documenting why.
func Broken() time.Time {
	//lint:allow detclock
	return time.Now()
}
