// Fixture: a deterministic-simulation package reaching for wall-clock
// time and the global math/rand generator. Loaded by the detclock test
// under the import path repro/internal/hdd.
package pos

import (
	"math/rand" // want "imports math/rand"
	"time"
)

// Jitter draws timing from sources the simulation must never touch.
func Jitter() time.Duration {
	start := time.Now()          // want "wall-clock"
	time.Sleep(time.Millisecond) // want "wall-clock"
	_ = rand.Intn(4)
	return time.Since(start) // want "wall-clock"
}

// Tick leaks wall-clock scheduling into the model.
func Tick() {
	<-time.After(time.Second) // want "wall-clock"
}
