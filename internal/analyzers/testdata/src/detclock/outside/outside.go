// Fixture: wall-clock use outside the deterministic surface. Loaded
// under the import path repro/internal/pfsnet (real network code is
// allowed to read real clocks); must be clean.
package outside

import "time"

// Deadline stamps a real wall-clock deadline for a network exchange.
func Deadline() time.Time {
	return time.Now().Add(5 * time.Second)
}
