// Fixture: the sanctioned forms inside a deterministic package —
// duration constants, sim.Time arithmetic, and the seeded sim.RNG.
// Loaded under the import path repro/internal/hdd; must be clean.
package neg

import (
	"time"

	"repro/internal/sim"
)

// tick is a plain duration constant; only wall-clock entry points are
// banned.
const tick = 5 * time.Millisecond

// Service advances simulated time deterministically.
func Service(now sim.Time, d sim.Duration) sim.Time {
	return now.Add(d)
}

// Draw uses the explicitly seeded generator from sim/rng.go.
func Draw(seed uint64) int {
	rng := sim.NewRNG(seed)
	return rng.Intn(16)
}

// Delay converts the constant; no wall clock involved.
func Delay() time.Duration { return tick }
