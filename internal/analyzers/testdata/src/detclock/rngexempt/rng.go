// Fixture: the one sanctioned randomness source file. Loaded under the
// import path repro/internal/sim as file rng.go, which detclock
// exempts; must be clean even though it touches banned names.
package rngexempt

import "time"

// Reseed derives a seed from the wall clock — allowed only here, in
// the simulation's single explicit randomness source.
func Reseed() uint64 {
	return uint64(time.Now().UnixNano())
}
