// Fixture: suppression directives. A documented //lint:allow silences
// a finding; a directive without a reason is itself reported and does
// not suppress. Loaded under the import path repro/internal/hdd.
package allow

import "time"

// Calibrate is waived with a documented directive: no finding.
func Calibrate() time.Time {
	//lint:allow detclock one-off calibration helper, not used in simulation paths
	return time.Now()
}

// WrongAnalyzer is waived for the wrong analyzer: the finding still
// fires.
func WrongAnalyzer() time.Time {
	//lint:allow lockio reason that names the wrong analyzer
	return time.Now() // want "wall-clock"
}
