// Fixture: blocking I/O performed under a mutex acquired in the same
// function — the contention pattern lockio exists to catch.
package pos

import (
	"io"
	"net"
	"os"
	"sync"

	"repro/internal/pfsnet"
)

type srv struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// ReadUnderLock performs socket I/O between Lock and Unlock.
func (s *srv) ReadUnderLock(c net.Conn, buf []byte) {
	s.mu.Lock()
	c.Read(buf) // want `c\.Read while s\.mu`
	s.mu.Unlock()
}

// DeferHold shows that a deferred unlock keeps the lock held for the
// whole function.
func (s *srv) DeferHold(c net.Conn, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Write(buf) // want `c\.Write while s\.mu`
	return err
}

// CloseUnderLock severs connections while still inside the critical
// section (the pre-fix Close pattern of the pfsnet servers).
func (s *srv) CloseUnderLock() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close() // want `c\.Close while s\.mu`
	}
	s.mu.Unlock()
}

type embedded struct {
	sync.Mutex
}

// EmbeddedLock locks through an embedded mutex; the receiver itself is
// the lock key.
func (e *embedded) EmbeddedLock(w io.Writer, p []byte) {
	e.Lock()
	w.Write(p) // want `w\.Write while e `
	e.Unlock()
}

// StoreUnderLock holds a lock across ObjectStore I/O (the logMu
// lesson).
func StoreUnderLock(mu *sync.Mutex, st pfsnet.ObjectStore, data []byte) error {
	mu.Lock()
	defer mu.Unlock()
	return st.WriteAt(1, 0, data) // want `st\.WriteAt while mu`
}

// FileUnderLock holds a RWMutex write lock across file-system I/O.
func FileUnderLock(mu *sync.RWMutex, f *os.File, p []byte) error {
	mu.Lock()
	defer mu.Unlock()
	_, err := f.ReadAt(p, 0) // want `f\.ReadAt while mu`
	return err
}
