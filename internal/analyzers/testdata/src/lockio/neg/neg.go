// Fixture: the disciplined patterns — snapshot under the lock, I/O
// outside it; in-memory work under the lock; goroutines with their own
// scope; and a documented serial-by-design waiver. Must be clean.
package neg

import (
	"bytes"
	"net"
	"sync"
)

type srv struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	buf   bytes.Buffer
}

// SnapshotThenClose is the fixed Close pattern: collect under the
// lock, release, then do the blocking work.
func (s *srv) SnapshotThenClose() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:allow detmaprange severing connections; close order is immaterial
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// MemoryOnly keeps only in-memory mutation inside the critical
// section: bytes.Buffer writes never touch the kernel.
func (s *srv) MemoryOnly(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(p)
}

// Spawned I/O runs on its own goroutine with its own (lock-free)
// scope; the lock held at spawn time is not held where the I/O runs.
func (s *srv) Spawned(c net.Conn, p []byte) {
	s.mu.Lock()
	go func() {
		c.Read(p)
	}()
	s.mu.Unlock()
}

// SerialByDesign documents an intentional hold, v1-wire style.
func (s *srv) SerialByDesign(c net.Conn, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockio strictly serial exchange; the mutex is the wire serialization
	_, err := c.Write(p)
	return err
}

// ReleasedBefore reads only after the lock is dropped.
func (s *srv) ReleasedBefore(c net.Conn, p []byte) {
	s.mu.Lock()
	n := len(s.conns)
	s.mu.Unlock()
	if n > 0 {
		c.Read(p)
	}
}
