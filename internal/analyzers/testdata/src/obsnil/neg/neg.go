// Fixture: the guarded probe idioms the nil-sink contract prescribes.
// Must be clean.
package neg

import "repro/internal/obs"

type comp struct {
	m  *obs.PFSMetrics
	tr *obs.Tracer
}

// Guarded is the canonical probe site: one branch per bundle.
func (c *comp) Guarded(n int64) {
	if c.m != nil {
		c.m.Requests.Inc()
		c.m.SubRequests.Add(n)
	}
	if c.tr != nil {
		c.tr.Instant(0, 0, "c", "x", 0)
	}
}

// EarlyReturn guards with the wireMetrics-style early exit, including
// the || form whose fallthrough still implies both pointers are
// non-nil.
func (c *comp) EarlyReturn() {
	if c.m == nil || c.tr == nil {
		return
	}
	c.m.Requests.Inc()
	c.tr.Instant(0, 0, "c", "y", 0)
}

// ElseBranch guards through the else arm of an == nil test.
func (c *comp) ElseBranch() {
	if c.m == nil {
		// disabled: nothing to record
	} else {
		c.m.Fragments.Inc()
	}
}

// Param guards a bundle received as an argument.
func Param(m *obs.PFSMetrics) {
	if m == nil {
		return
	}
	m.Requests.Inc()
}

// Bound binds an accessor result and guards it in the if-init form.
func Bound(s *obs.Set) {
	if tr := s.Tracer(); tr != nil {
		tr.Instant(0, 0, "c", "z", 0)
	}
}

// Conjoined piggybacks the nil check onto another condition with &&.
func Conjoined(c *comp, hot bool) {
	if hot && c.m != nil {
		c.m.Requests.Inc()
	}
}
