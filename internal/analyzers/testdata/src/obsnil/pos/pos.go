// Fixture: violations of the obs nil-sink contract — bundle and tracer
// dereferences with no dominating nil check.
package pos

import "repro/internal/obs"

type comp struct {
	m  *obs.PFSMetrics
	tr *obs.Tracer
}

// Bad probes without guarding either sink.
func (c *comp) Bad() {
	c.m.Requests.Inc()              // want "without a dominating nil check"
	c.tr.Instant(0, 0, "c", "x", 0) // want "without a dominating nil check"
}

// WrongGuard checks a different field than the one dereferenced.
func (c *comp) WrongGuard() {
	if c.tr != nil {
		c.m.Requests.Inc() // want "without a dominating nil check"
	}
}

// Chain dereferences an accessor result that can never be nil-checked.
func Chain(s *obs.Set) int {
	return s.Tracer().Len() // want "cannot be nil-checked"
}

// Closure shows that a guard outside a function literal does not
// dominate the code inside it — the closure may run later, after the
// bundle is swapped out.
func Closure(c *comp) func() {
	if c.m != nil {
		return func() {
			c.m.Requests.Inc() // want "without a dominating nil check"
		}
	}
	return nil
}
