// Package analyzers is the repo's invariant suite: small static
// analyzers that mechanically enforce contracts the test suite cannot
// see — deterministic simulation time (detclock), map-iteration-order
// hygiene (detmaprange), the observability nil-sink contract (obsnil),
// the no-I/O-under-lock discipline of the concurrent pfsnet server
// (lockio), pooled-buffer ownership (bufown), atomic/plain access
// mixing (atomicmix), the interprocedural lock-acquisition order
// (lockorder), goroutine shutdown paths (gospawn), and the
// negotiated-feature gating of protocol ops (featgate).
//
// The package deliberately mirrors the shapes of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// suite can migrate to the upstream framework wholesale if that
// dependency ever becomes available; it is built on the standard
// library alone (go/ast, go/types, and the source importer) so the
// repo stays dependency-free.
//
// Suppressions: a finding can be silenced with a directive comment on
// the same line or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — a directive without one is itself reported
// — so every suppression in the tree documents why the invariant is
// intentionally waived at that site. A directive that suppresses
// nothing (for an analyzer in the run set) is reported as stale, so
// waivers are removed when the code they excused goes away.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check over one package, reporting findings via
	// pass.Report.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "lint:allow"

// collectDirectives parses every //lint:allow directive in f. Malformed
// directives (missing analyzer name or reason) are reported immediately
// so suppressions cannot silently rot into undocumented waivers.
func collectDirectives(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []allowDirective {
	var ds []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "lint",
					Pos:      c.Pos(),
					Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
				})
				continue
			}
			pos := fset.Position(c.Pos())
			ds = append(ds, allowDirective{
				pos:      c.Pos(),
				file:     pos.Filename,
				line:     pos.Line,
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	return ds
}

// RunAnalyzers applies every analyzer in as to every package in pkgs
// and returns the surviving (unsuppressed) diagnostics in stable
// position order. A //lint:allow directive that names an analyzer in
// the run set but suppresses nothing is itself reported as stale, so
// waivers cannot outlive the finding they were written for; directives
// naming an analyzer the suite has never heard of are reported
// unconditionally.
func RunAnalyzers(as []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	ran := map[string]bool{}
	for _, a := range as {
		ran[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		// Directives are per-file but suppress findings from any
		// analyzer pass over the package.
		var directives []allowDirective
		for _, f := range pkg.Files {
			directives = append(directives, collectDirectives(pkg.Fset, f, func(d Diagnostic) {
				out = append(out, d)
			})...)
		}
		for _, a := range as {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !suppressed(&directives, d, pkg.Fset) {
					out = append(out, d)
				}
			}
		}
		for i := range directives {
			dir := &directives[i]
			if dir.used {
				continue
			}
			switch {
			case !known[dir.analyzer]:
				out = append(out, Diagnostic{
					Analyzer: "lint",
					Pos:      dir.pos,
					Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", dir.analyzer),
				})
			case ran[dir.analyzer]:
				out = append(out, Diagnostic{
					Analyzer: "lint",
					Pos:      dir.pos,
					Message:  fmt.Sprintf("stale //lint:allow %s directive: it suppresses nothing — remove it or restore the invariant it waived", dir.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// suppressed reports whether d is covered by a directive on its own
// line or the line directly above, and marks the directive used.
func suppressed(directives *[]allowDirective, d Diagnostic, fset *token.FileSet) bool {
	pos := fset.Position(d.Pos)
	for i := range *directives {
		dir := &(*directives)[i]
		if dir.analyzer != d.Analyzer || dir.file != pos.Filename {
			continue
		}
		if dir.line == pos.Line || dir.line == pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}
