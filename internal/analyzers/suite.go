package analyzers

import (
	"fmt"
	"io"
	"strings"
)

// All returns the full invariant suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetClock, DetMapRange, ObsNil, LockIO, BufOwn}
}

// ByName resolves a comma-separated analyzer list ("detclock,lockio");
// empty selects the whole suite.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the suite's analyzer names.
func Names() []string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name)
	}
	return ns
}

// Vet loads patterns (resolved against the enclosing module of
// startDir), runs the selected analyzers, writes findings to w, and
// returns the number of findings.
func Vet(startDir string, patterns []string, as []*Analyzer, w io.Writer) (int, error) {
	loader, err := NewLoader(startDir)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	diags, err := RunAnalyzers(as, pkgs)
	if err != nil {
		return 0, err
	}
	fset := loader.fset
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}
