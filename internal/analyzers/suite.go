package analyzers

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// All returns the full invariant suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetClock, DetMapRange, ObsNil, LockIO, BufOwn, AtomicMix, LockOrder, GoSpawn, FeatGate}
}

// ByName resolves a comma-separated analyzer list ("detclock,lockio");
// empty selects the whole suite.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the suite's analyzer names.
func Names() []string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name)
	}
	return ns
}

// A Finding is one diagnostic with its position resolved, ready for
// rendering or machine consumption (`ibridge-vet -json`). File is
// module-root-relative so CI annotations resolve inside the checkout.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Findings loads patterns (resolved against the enclosing module of
// startDir) and runs the selected analyzers, returning resolved
// findings in stable position order.
func Findings(startDir string, patterns []string, as []*Analyzer) ([]Finding, error) {
	loader, err := NewLoader(startDir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzers(as, pkgs)
	if err != nil {
		return nil, err
	}
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := loader.fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(loader.ModRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, Finding{
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out, nil
}

// Vet runs the selected analyzers over patterns and writes one
// `file:line:col: [analyzer] message` line per finding to w, returning
// the number of findings.
func Vet(startDir string, patterns []string, as []*Analyzer, w io.Writer) (int, error) {
	fs, err := Findings(startDir, patterns, as)
	if err != nil {
		return 0, err
	}
	for _, f := range fs {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	return len(fs), nil
}

// VetJSON is Vet with machine-readable output: a JSON array of findings
// (empty array, not null, when clean).
func VetJSON(startDir string, patterns []string, as []*Analyzer, w io.Writer) (int, error) {
	fs, err := Findings(startDir, patterns, as)
	if err != nil {
		return 0, err
	}
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fs); err != nil {
		return 0, err
	}
	return len(fs), nil
}
