package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix enforces the all-or-nothing rule for sync/atomic: once any
// access to a field or variable goes through a sync/atomic function
// (`atomic.AddInt64(&s.n, 1)`), every access must — a plain read or
// write elsewhere in the package races with the atomic ones and the
// race detector only catches the interleavings a test happens to hit.
// Identity is the type-checker object, so a promoted access through an
// embedded struct is the same field while a same-named field of a
// different struct is not. Composite-literal initialization is exempt:
// construction happens before the value is shared. The durable fix is
// usually migrating the field to an atomic.Int64-style wrapper type,
// which makes the mix inexpressible.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field/variable accessed via sync/atomic must never be read or written plainly elsewhere in the package",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: every `&x` handed to a sync/atomic function marks x's
	// object atomic and its identifier as an atomic access site.
	atomicAt := map[types.Object]token.Pos{} // object → first atomic access
	atomicSite := map[*ast.Ident]bool{}      // identifiers inside atomic operands
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			obj, id := accessedVar(pass, addr.X)
			if obj == nil {
				return true
			}
			if at, seen := atomicAt[obj]; !seen || call.Pos() < at {
				atomicAt[obj] = call.Pos()
			}
			atomicSite[id] = true
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}
	// Pass 2: any other use of those objects is a plain (racy) access,
	// except construction-time composite-literal initialization.
	pm := newParentMap(pass.Files)
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var finds []finding
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicSite[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, ok := atomicAt[obj]; !ok {
				return true
			}
			if compositeLitKey(pm, id) {
				return true
			}
			finds = append(finds, finding{id.Pos(), obj})
			return true
		})
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, fd := range finds {
		pass.Reportf(fd.pos, "%s is accessed via sync/atomic (first at line %d) but plainly here; mixed access races — use sync/atomic everywhere or an atomic.Int64-style wrapper",
			objLabel(fd.obj), pass.Fset.Position(atomicAt[fd.obj]).Line)
	}
	return nil
}

// isAtomicCall reports whether call invokes a function of sync/atomic
// (AddInt64, LoadUint32, StoreInt64, SwapPointer, CompareAndSwap...).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// accessedVar resolves the operand of an atomic `&x` to the variable
// object it addresses (a struct field through any selector chain, or a
// plain variable) plus the identifier naming it.
func accessedVar(pass *Pass, e ast.Expr) (types.Object, *ast.Ident) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v, e
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), e.Sel
		}
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return v, e.Sel
		}
	case *ast.IndexExpr:
		// Array/slice elements are not stably addressable by object;
		// skip rather than over-claim.
	}
	return nil, nil
}

// compositeLitKey reports whether id is the key of a composite-literal
// field initialization (`T{n: 0}`) — construction before publication.
func compositeLitKey(pm parentMap, id *ast.Ident) bool {
	kv, ok := pm[id].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = pm[kv].(*ast.CompositeLit)
	return ok
}

// objLabel names an object for a report: "T.n" for a field of struct
// type T, the bare name otherwise.
func objLabel(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return fieldOwner(v) + v.Name()
	}
	return obj.Name()
}

// fieldOwner renders "T." for a field declared in named struct T, ""
// when the owner cannot be named.
func fieldOwner(v *types.Var) string {
	// The type checker does not expose a field's owning struct
	// directly; the package scope's type names are few, so scan them.
	pkg := v.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if structHasField(st, v, 0) {
			return tn.Name() + "."
		}
	}
	return ""
}

// structHasField reports whether st declares v, descending through
// embedded structs (bounded).
func structHasField(st *types.Struct, v *types.Var, depth int) bool {
	if depth > 3 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f == v {
			return true
		}
		if f.Embedded() {
			t := f.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if inner, ok := t.Underlying().(*types.Struct); ok && structHasField(inner, v, depth+1) {
				return true
			}
		}
	}
	return false
}
