package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoSpawn enforces the goroutine-lifecycle discipline of the live wire
// packages: every `go` statement in internal/pfsnet, internal/faults,
// and internal/runner must have a provable shutdown path — the spawned
// body (or a same-package callee reachable from it) must block on a
// channel (receive, send, select, range), join a sync.WaitGroup
// (Done/Wait), watch a context (ctx.Done()), or reach a close(ch) hook
// so an owner closing the channel releases it. Hedge and cancel timers
// made fire-and-forget goroutines cheap to write; this catches the
// class that leaks them. The heuristic proves liveness of a shutdown
// *path*, not its use — but a goroutine with no channel, context, or
// join anywhere in reach has no way to be stopped at all.
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc:  "every go statement in internal/{pfsnet,faults,runner} must have a provable shutdown path",
	Run:  runGoSpawn,
}

// goSpawnPackages is the enforced surface: the packages that spawn
// long-lived goroutines against real sockets, timers, and fault plans.
var goSpawnPackages = map[string]bool{
	"repro/internal/pfsnet":   true,
	"repro/internal/faults":   true,
	"repro/internal/runner":   true,
	"repro/internal/logstore": true,
}

func runGoSpawn(pass *Pass) error {
	if !goSpawnPackages[pass.Pkg.Path()] {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, decls, g)
			return true
		})
	}
	return nil
}

// checkSpawn resolves the spawned callee and verifies a shutdown path.
func checkSpawn(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	sd := &shutdownScan{pass: pass, decls: decls, visited: map[*types.Func]bool{}}
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if !sd.bodyHasShutdown(lit.Body, 0) {
			pass.Reportf(g.Pos(), "goroutine has no provable shutdown path: no channel op, select, WaitGroup join, context, or close hook reachable from the spawned body")
		}
		return
	}
	fn := calleeFunc(pass, g.Call)
	if fn == nil || decls[fn] == nil || decls[fn].Body == nil {
		pass.Reportf(g.Pos(), "goroutine spawns a callee this package cannot see into; give it a provable shutdown path (done channel, context, or close hook) or spawn a local wrapper that has one")
		return
	}
	if !sd.funcHasShutdown(fn, 0) {
		pass.Reportf(g.Pos(), "goroutine %s has no provable shutdown path: no channel op, select, WaitGroup join, context, or close hook reachable from the spawn site", fn.Name())
	}
}

// calleeFunc resolves a call's static callee, when it has one.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// shutdownScan proves shutdown paths through bounded same-package call
// chains.
type shutdownScan struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// maxShutdownDepth bounds the callee chase: readLoop → kill →
// close(c.dead) is depth 2; anything deeper should restructure.
const maxShutdownDepth = 3

func (sd *shutdownScan) funcHasShutdown(fn *types.Func, depth int) bool {
	if sd.visited[fn] {
		return false
	}
	decl := sd.decls[fn]
	if decl == nil || decl.Body == nil {
		return false
	}
	sd.visited[fn] = true
	return sd.bodyHasShutdown(decl.Body, depth)
}

// bodyHasShutdown scans one body (descending into nested literals —
// they run, inline or deferred, on this goroutine) for shutdown
// evidence, chasing same-package callees up to maxShutdownDepth.
func (sd *shutdownScan) bodyHasShutdown(body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // channel receive
			}
		case *ast.SendStmt:
			found = true // send: an owner draining (or closing) releases us
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := sd.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true // range over channel ends at close
				}
			}
		case *ast.CallExpr:
			if sd.callIsShutdown(n, depth) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callIsShutdown classifies one call as shutdown evidence: close(ch),
// WaitGroup Done/Wait, ctx.Done(), or a same-package callee that has a
// shutdown path of its own.
func (sd *shutdownScan) callIsShutdown(call *ast.CallExpr, depth int) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "close" {
			if _, ok := sd.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
				return true
			}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Done" || name == "Wait" {
			if recvIsType(sd.pass, fun, "sync", "WaitGroup") {
				return true // joined by an owner's Wait
			}
			if name == "Done" && recvIsContext(sd.pass, fun) {
				return true
			}
		}
	}
	if depth >= maxShutdownDepth {
		return false
	}
	fn := calleeFunc(sd.pass, call)
	if fn == nil || sd.decls[fn] == nil {
		return false
	}
	return sd.funcHasShutdown(fn, depth+1)
}

// recvIsType reports whether sel's receiver resolves to the named type
// pkg.name (after one pointer deref).
func recvIsType(pass *Pass, sel *ast.SelectorExpr, pkg, name string) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == pkg && o.Name() == name
}

// recvIsContext reports whether sel's receiver is a context.Context.
func recvIsContext(pass *Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context"
}
