package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/sim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of the enclosing module
// using only the standard library: file sets come from go/parser and
// dependencies resolve through the source importer, so no external
// analysis framework is needed.
type Loader struct {
	fset     *token.FileSet
	imp      types.Importer
	ModRoot  string // module root directory (where go.mod lives)
	ModPath  string // module path from go.mod
	TestGoFiles bool // also load _test.go files of the package itself
}

// NewLoader locates the enclosing module starting from dir (walking up
// to the go.mod) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analyzers: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analyzers: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		imp:     importer.ForCompiler(fset, "source", nil),
		ModRoot: root,
		ModPath: modPath,
	}, nil
}

// Load resolves patterns to packages. Supported patterns: "./..."
// (every package under the module root), "./dir" and "./dir/..."
// relative to the module root, and plain import paths inside the
// module. testdata, vendor, and hidden directories are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	addTree := func(base string) error {
		return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := addTree(l.ModRoot); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.ModRoot, strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/..."))
			if err := addTree(base); err != nil {
				return nil, err
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			if strings.HasPrefix(pat, l.ModPath) {
				rel = strings.TrimPrefix(strings.TrimPrefix(pat, l.ModPath), "/")
			}
			dirs[filepath.Join(l.ModRoot, rel)] = true
		}
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := l.LoadDir(dir, "")
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir. When asPath
// is empty the import path is derived from the module layout. Dirs with
// no buildable Go files yield (nil, nil).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.TestGoFiles && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// External test packages (package foo_test) share the directory;
	// keep only the dominant (non _test suffixed) package.
	if l.TestGoFiles {
		base := files[0].Name.Name
		for _, f := range files {
			if !strings.HasSuffix(f.Name.Name, "_test") {
				base = f.Name.Name
				break
			}
		}
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == base {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	path := asPath
	if path == "" {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			path = l.ModPath
		} else {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
