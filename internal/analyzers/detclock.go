package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// detPackages is the deterministic-simulation surface: every package
// whose behaviour must be a pure function of the experiment seed so
// that jobs=1 and jobs=8 runs stay byte-identical (PR 1's guarantee).
var detPackages = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/core":        true,
	"repro/internal/hdd":         true,
	"repro/internal/ssd":         true,
	"repro/internal/iosched":     true,
	"repro/internal/pfs":         true,
	"repro/internal/stripe":      true,
	"repro/internal/workload":    true,
	"repro/internal/experiments": true,
	// The fault injector's schedules must be a pure function of the plan
	// seed; its single sanctioned real timer (the latency effect) carries
	// a //lint:allow waiver.
	"repro/internal/faults": true,
}

// detClockExemptFile allows the one sanctioned randomness source: the
// seeded SplitMix64 generator in sim/rng.go.
func detClockExemptFile(pkgPath, filename string) bool {
	return pkgPath == "repro/internal/sim" && filepath.Base(filename) == "rng.go"
}

// bannedTimeFuncs are the wall-clock entry points of package time. The
// simulation must draw time only from sim.Time / the engine clock;
// duration constants (time.Millisecond etc.) remain fine.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// DetClock forbids wall-clock time and the global math/rand generator
// inside the deterministic simulation packages. All simulated time must
// flow from the engine clock and all randomness from the explicitly
// seeded sim.RNG (sim/rng.go), or the byte-identical determinism
// guarantee regresses silently.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc:  "forbid wall-clock time and math/rand in deterministic simulation packages",
	Run:  runDetClock,
}

func runDetClock(pass *Pass) error {
	if !detPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if detClockExemptFile(pass.Pkg.Path(), filename) {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "deterministic package %s imports %s; draw randomness from the seeded sim.RNG instead", pass.Pkg.Path(), path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "time.%s is wall-clock and breaks deterministic simulation; use the engine's sim.Time clock", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
