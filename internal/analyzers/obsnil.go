package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsPkgPath is the observability package whose bundle types carry the
// zero-cost-when-off nil-sink contract.
const obsPkgPath = "repro/internal/obs"

// ObsNil enforces the nil-sink contract from PR 2: a component holds a
// possibly-nil pointer to an obs metric bundle (*obs.XxxMetrics) or
// tracer (*obs.Tracer), and every probe site must be dominated by a nil
// check on that pointer. An unguarded dereference compiles fine, passes
// every metrics-on test, and then panics the first time a user runs
// with observability disabled — the exact regression this analyzer
// pins down at build time.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "require a dominating nil check before dereferencing obs metric bundles and tracers",
	Run:  runObsNil,
}

// isObsBundlePtr reports whether t is a pointer to one of the obs
// nil-sink types: a metric bundle (name ends in "Metrics") or the
// Tracer. *obs.Set and the leaf Counter/Gauge/Hist types are excluded —
// Set's methods are internally nil-safe, and the leaves are only
// reachable through an already-guarded bundle.
func isObsBundlePtr(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return "", false
	}
	name := obj.Name()
	if strings.HasSuffix(name, "Metrics") || name == "Tracer" {
		return name, true
	}
	return "", false
}

func runObsNil(pass *Pass) error {
	if pass.Pkg.Path() == obsPkgPath {
		// The bundles' own methods run behind the caller-side contract
		// (components invoke them only through guarded pointers or
		// non-nil interfaces).
		return nil
	}
	pm := newParentMap(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			baseType := pass.TypesInfo.TypeOf(sel.X)
			if baseType == nil {
				return true
			}
			name, ok := isObsBundlePtr(baseType)
			if !ok {
				return true
			}
			key := exprKey(sel.X)
			if key == "" {
				pass.Reportf(sel.Pos(), "dereference of *obs.%s obtained from an expression that cannot be nil-checked; bind it to a variable and guard it", name)
				return true
			}
			if !nilGuarded(pm, sel, key) {
				pass.Reportf(sel.Pos(), "%s (*obs.%s) dereferenced without a dominating nil check; the nil-sink contract makes this panic when observability is off", key, name)
			}
			return true
		})
	}
	return nil
}
