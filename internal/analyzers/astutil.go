package analyzers

import (
	"go/ast"
	"go/token"
)

// exprKey renders a guardable expression (a chain of identifiers and
// field selections, e.g. "c.fs.m") to a canonical string so that a nil
// check and a later dereference of the same lexical expression can be
// matched up. Anything else — calls, indexes, type assertions — is not
// stably guardable and yields "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// parentMap records the syntactic parent of every node under the roots.
type parentMap map[ast.Node]ast.Node

func newParentMap(files []*ast.File) parentMap {
	pm := parentMap{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				pm[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return pm
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n.
func (pm parentMap) enclosingFunc(n ast.Node) ast.Node {
	for p := pm[n]; p != nil; p = pm[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}

// condImpliesNonNil reports whether cond being true guarantees key !=
// nil: a `key != nil` comparison, possibly strengthened by && with
// anything else.
func condImpliesNonNil(cond ast.Expr, key string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condImpliesNonNil(c.X, key)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			return nilCompare(c, key)
		case token.LAND:
			return condImpliesNonNil(c.X, key) || condImpliesNonNil(c.Y, key)
		}
	}
	return false
}

// condImpliesNil reports whether cond being true is only possible when
// key == nil holds in at least one disjunct — i.e. ¬cond guarantees
// key != nil for `key == nil` and for `key == nil || ...` chains.
func condImpliesNil(cond ast.Expr, key string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condImpliesNil(c.X, key)
	case *ast.BinaryExpr:
		switch c.Op {
		case token.EQL:
			return nilCompare(c, key)
		case token.LOR:
			return condImpliesNil(c.X, key) || condImpliesNil(c.Y, key)
		}
	}
	return false
}

// nilCompare reports whether b compares the expression named key
// against the nil literal (either operand order).
func nilCompare(b *ast.BinaryExpr, key string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (exprKey(b.X) == key && isNil(b.Y)) || (isNil(b.X) && exprKey(b.Y) == key)
}

// terminates reports whether stmt unconditionally leaves the enclosing
// block: return, branch (break/continue/goto), panic, or a block ending
// in one.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	}
	return false
}

// blockList returns the statement list a child statement lives in, for
// the containers that hold statement lists.
func blockList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// nilGuarded reports whether the use of expression key at node n is
// dominated by a nil check: the use sits in the then-branch of an
// `if key != nil`, in the else-branch of an `if key == nil`, or after
// an `if key == nil { return/... }` early exit in an enclosing block.
// The walk stops at the enclosing function literal or declaration —
// guards outside a closure do not dominate code that runs later.
func nilGuarded(pm parentMap, n ast.Node, key string) bool {
	if key == "" {
		return false
	}
	child := n
	for p := pm[child]; p != nil; child, p = p, pm[p] {
		switch p := p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if child == p.Body && condImpliesNonNil(p.Cond, key) {
				return true
			}
			if child == p.Else && condImpliesNil(p.Cond, key) {
				return true
			}
		default:
			list := blockList(p)
			if list == nil {
				continue
			}
			for _, stmt := range list {
				if stmt == child {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Else != nil {
					continue
				}
				if condImpliesNil(ifs.Cond, key) && terminates(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}
