package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the package's interprocedural lock-acquisition
// graph and reports cycles as potential deadlocks. Nodes are lock
// classes named by owning type and field ("Client.mu", "conn.pendMu")
// or by package-level variable ("logMu"); an edge A→B is recorded when
// B is acquired — directly or anywhere inside a callee reached without
// releasing — while A is held. Any strongly-connected component (or a
// self-edge, which is an immediate sync.Mutex self-deadlock) is
// reported once per participating acquisition site. Goroutine bodies
// are excluded (a spawned goroutine does not hold its parent's locks);
// deferred unlocks hold to function end, exactly as lockio models
// them. Output is deterministic: nodes, edges, and cycles are sorted,
// so two runs over the same tree are byte-identical.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "interprocedural lock-acquisition graph over named mutexes; any cycle is a potential deadlock",
	Run:  runLockOrder,
}

// lockEdge is one "acquired B while holding A" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrder{
		pass:      pass,
		decls:     packageFuncDecls(pass),
		summaries: map[*types.Func][]string{},
	}
	// Deterministic sweep order: files as loaded (sorted by the loader),
	// declarations in source order.
	var edges []lockEdge
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			edges = append(edges, lo.sweep(fd.Body)...)
		}
	}
	reportLockCycles(pass, edges)
	return nil
}

type lockOrder struct {
	pass      *Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func][]string
}

// lockOp is one ordered lock/unlock/call occurrence in a function body.
type lockOp struct {
	pos      token.Pos
	kind     int // 0 lock, 1 unlock, 2 call
	key      string
	deferred bool
	until    token.Pos // deferred unlock: end of the defer's enclosing block
	callee   *types.Func
}

// heldLock is one entry of the sweep's held set, kept as a key-sorted
// slice so edge emission order is deterministic.
type heldLock struct {
	key   string
	until token.Pos // non-zero: released when the sweep passes this position
}

// sweep walks one function body in source order, maintaining the held
// set, and returns the lock-order edges it witnesses. Nested function
// literals and go statements are excluded — they run on their own
// schedule. A deferred unlock holds its lock to the end of the block
// the defer sits in: for the whole function when deferred at the top,
// but not past an early-returning branch (`if x { mu.Lock(); defer
// mu.Unlock(); ...; return }` does not hold mu over the code below).
func (lo *lockOrder) sweep(body *ast.BlockStmt) []lockEdge {
	ops := lo.collectOps(body)
	var edges []lockEdge
	var held []heldLock
	find := func(key string) int {
		for i := range held {
			if held[i].key == key {
				return i
			}
		}
		return -1
	}
	for _, op := range ops {
		// Expire deferred releases whose block ended before this op.
		kept := held[:0]
		for _, h := range held {
			if h.until == 0 || h.until >= op.pos {
				kept = append(kept, h)
			}
		}
		held = kept
		switch op.kind {
		case 0:
			for _, h := range held {
				edges = append(edges, lockEdge{from: h.key, to: op.key, pos: op.pos})
			}
			if find(op.key) < 0 {
				held = append(held, heldLock{key: op.key})
				sort.Slice(held, func(i, j int) bool { return held[i].key < held[j].key })
			}
		case 1:
			i := find(op.key)
			if i < 0 {
				continue
			}
			if op.deferred {
				held[i].until = op.until
			} else {
				held = append(held[:i], held[i+1:]...)
			}
		case 2:
			if len(held) == 0 {
				continue
			}
			for _, to := range lo.summary(op.callee, nil) {
				for _, h := range held {
					edges = append(edges, lockEdge{from: h.key, to: to, pos: op.pos})
				}
			}
		}
	}
	return edges
}

// collectOps gathers the ordered lock events and same-package calls of
// one body. enclosingBlockEnd tracks the innermost block around each
// defer so deferred unlocks can expire with their branch.
func (lo *lockOrder) collectOps(body *ast.BlockStmt) []lockOp {
	var ops []lockOp
	var walk func(n ast.Node, inDefer bool, deferEnd token.Pos)
	walk = func(n ast.Node, inDefer bool, deferEnd token.Pos) {
		blockEnd := body.End()
		var nodes []ast.Node  // descended-into ancestors
		var ends []token.Pos  // blockEnd to restore when leaving a block
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				top := nodes[len(nodes)-1]
				nodes = nodes[:len(nodes)-1]
				if _, ok := top.(*ast.BlockStmt); ok {
					blockEnd = ends[len(ends)-1]
					ends = ends[:len(ends)-1]
				}
				return true
			}
			switch m := m.(type) {
			case *ast.BlockStmt:
				ends = append(ends, blockEnd)
				blockEnd = m.End()
			case *ast.FuncLit:
				return false // runs on its own schedule
			case *ast.GoStmt:
				return false // spawned goroutine does not hold our locks
			case *ast.DeferStmt:
				walk(m.Call, true, blockEnd)
				return false
			case *ast.CallExpr:
				if op, ok := lo.classify(m, inDefer); ok {
					if inDefer {
						op.until = deferEnd
					}
					ops = append(ops, op)
				}
			}
			nodes = append(nodes, m)
			return true
		})
	}
	walk(body, false, body.End())
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// classify decides whether call is a mutex operation or a resolvable
// same-package call worth summarizing.
func (lo *lockOrder) classify(call *ast.CallExpr, inDefer bool) (lockOp, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Plain function call f(...): summarize if declared here.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if fn, ok := lo.pass.TypesInfo.Uses[id].(*types.Func); ok && lo.decls[fn] != nil {
				return lockOp{pos: call.Pos(), kind: 2, callee: fn}, true
			}
		}
		return lockOp{}, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if isSyncMutexMethod(lo.pass, sel) {
			key := lo.lockClass(sel)
			if key == "" {
				return lockOp{}, false
			}
			kind := 0
			if name == "Unlock" || name == "RUnlock" {
				kind = 1
			}
			return lockOp{pos: call.Pos(), kind: kind, key: key, deferred: inDefer}, true
		}
	}
	if fn, ok := lo.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && lo.decls[fn] != nil {
		return lockOp{pos: call.Pos(), kind: 2, callee: fn}, true
	}
	return lockOp{}, false
}

// lockClass names the lock a `<recv>.mu.Lock()` call operates on so
// that acquisitions of the same per-instance lock from different
// methods collapse into one node: "Type.field" for a field mutex,
// the variable name for a package-level mutex, "Type" for an embedded
// mutex locked through its owner, and the lexical expression as a last
// resort.
func (lo *lockOrder) lockClass(sel *ast.SelectorExpr) string {
	switch x := unparen(sel.X).(type) {
	case *ast.Ident:
		obj, ok := lo.pass.TypesInfo.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if obj.Parent() == lo.pass.Pkg.Scope() {
			return obj.Name() // package-level var: "logMu"
		}
		// An embedded mutex locked through its owner (s.Lock()) is one
		// lock class per owning type; a plain local sync.Mutex keeps its
		// identifier name.
		if n := namedTypeName(obj.Type()); n != "" && !isSyncMutexType(obj.Type()) {
			return n
		}
		return x.Name
	case *ast.SelectorExpr:
		if s, ok := lo.pass.TypesInfo.Selections[x]; ok && s.Kind() == types.FieldVal {
			if owner := namedTypeName(lo.pass.TypesInfo.TypeOf(x.X)); owner != "" {
				return owner + "." + x.Sel.Name
			}
		}
		if v, ok := lo.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && v.Parent() == lo.pass.Pkg.Scope() {
			return x.Sel.Name
		}
		return exprKey(x)
	}
	return exprKey(sel.X)
}

// summary returns the sorted set of lock classes fn may acquire
// anywhere in its body or transitively through same-package callees.
// Memoized; recursion through the call graph is cut by the visiting
// set.
func (lo *lockOrder) summary(fn *types.Func, visiting map[*types.Func]bool) []string {
	if s, ok := lo.summaries[fn]; ok {
		return s
	}
	if visiting[fn] {
		return nil
	}
	decl := lo.decls[fn]
	if decl == nil || decl.Body == nil {
		return nil
	}
	if visiting == nil {
		visiting = map[*types.Func]bool{}
	}
	visiting[fn] = true
	seen := map[string]bool{}
	var acq []string
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			acq = append(acq, k)
		}
	}
	for _, op := range lo.collectOps(decl.Body) {
		switch op.kind {
		case 0:
			add(op.key)
		case 2:
			for _, k := range lo.summary(op.callee, visiting) {
				add(k)
			}
		}
	}
	delete(visiting, fn)
	sort.Strings(acq)
	lo.summaries[fn] = acq
	return acq
}

// reportLockCycles condenses the edge list into a graph, finds its
// strongly-connected components, and reports every acquisition edge
// that participates in a cycle, in deterministic order.
func reportLockCycles(pass *Pass, edges []lockEdge) {
	// Dedupe to the earliest position per (from, to); collect nodes and
	// pairs as slices alongside the maps so no map iteration order ever
	// reaches the output.
	type pair struct{ from, to string }
	first := map[pair]token.Pos{}
	adj := map[string][]string{}
	seenNode := map[string]bool{}
	var sorted []string
	var pairs []pair
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			sorted = append(sorted, n)
		}
	}
	for _, e := range edges {
		addNode(e.from)
		addNode(e.to)
		p := pair{e.from, e.to}
		if at, ok := first[p]; !ok || e.pos < at {
			if !ok {
				adj[e.from] = append(adj[e.from], e.to)
				pairs = append(pairs, p)
			}
			first[p] = e.pos
		}
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		sort.Strings(adj[n])
	}
	scc := tarjanSCC(sorted, adj)
	comp := map[string]int{}
	for i, c := range scc {
		for _, n := range c {
			comp[n] = i
		}
	}
	for _, c := range scc {
		cyclic := len(c) > 1
		if !cyclic {
			// Single node: cyclic only with a self-edge.
			if _, ok := first[pair{c[0], c[0]}]; ok {
				cyclic = true
			}
		}
		if !cyclic {
			continue
		}
		members := append([]string(nil), c...)
		sort.Strings(members)
		label := strings.Join(members, " -> ") + " -> " + members[0]
		if len(members) == 1 {
			label = members[0] + " -> " + members[0]
		}
		// Report each intra-component edge at its earliest acquisition
		// site, sorted for stable output.
		var ps []pair
		for _, p := range pairs {
			if comp[p.from] == comp[p.to] && comp[p.from] == comp[members[0]] {
				if len(members) > 1 || (p.from == members[0] && p.to == members[0]) {
					ps = append(ps, p)
				}
			}
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].from != ps[j].from {
				return ps[i].from < ps[j].from
			}
			return ps[i].to < ps[j].to
		})
		for _, p := range ps {
			if p.from == p.to {
				pass.Reportf(first[p], "lock-order: %s re-acquired while already held (self-deadlock for sync.Mutex)", p.from)
				continue
			}
			pass.Reportf(first[p], "lock-order cycle %s: %s acquired here while %s is held; a concurrent path acquires them in the opposite order", label, p.to, p.from)
		}
	}
}

// namedTypeName returns the name of t's named type, dereferencing one
// pointer level; "" for anonymous types.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// tarjanSCC computes strongly-connected components over the sorted node
// list; the deterministic visit order makes the output stable.
func tarjanSCC(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var c []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				c = append(c, w)
				if w == v {
					break
				}
			}
			out = append(out, c)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// isSyncMutexType reports whether t (after one pointer deref) is
// sync.Mutex or sync.RWMutex itself.
func isSyncMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
		(o.Name() == "Mutex" || o.Name() == "RWMutex")
}
