package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufOwn enforces the pooled-buffer ownership contract of the vectored
// wire path (DESIGN §11): once a payload buffer is handed to a consumer
// — putBuf, the vectored writer's writeFrame, or a conn/Client call
// that takes ownership — the handing function must not touch it again.
// The consumer may recycle the buffer concurrently, so a use after the
// handoff is a use-after-free that the race detector only catches when
// the pool actually reissues the memory.
//
// The analyzer walks each function body with branch-aware, source-order
// dataflow: a handoff marks the buffer's expression dead, an assignment
// to it (including := and range rebinding) revives it, and if/else,
// switch, and select arms are tracked separately and merged (arms that
// terminate — return, break, continue, panic — do not leak their dead
// buffers past the join). Loop bodies are scanned twice so a handoff at
// the bottom of an iteration flags an un-rebound use at the top of the
// next. Deliberate exceptions carry //lint:allow bufown <reason>.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "flag uses of a pooled payload buffer after its ownership was handed to the conn writer or pool",
	Run:  runBufOwn,
}

// bufOwnMethods maps (receiver type name, method name) to the index of
// the argument whose ownership transfers on the call. The set mirrors
// the contract points documented in DESIGN §11.
var bufOwnMethods = map[[2]string]int{
	{"vecWriter", "writeFrame"}: 3,
	{"conn", "exchange"}:        1,
	{"conn", "call"}:            1,
	{"conn", "callV1"}:          1,
	{"Client", "metaCall"}:      1,
}

// handoff records where a buffer's ownership left the function.
type handoff struct {
	pos token.Pos // end of the consuming call: uses beyond this are dead
	to  string    // consumer description for the report
}

// bufScan carries per-function state for one body sweep.
type bufScan struct {
	pass     *Pass
	reported map[token.Pos]bool // dedupe across loop-body re-scans
}

func runBufOwn(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				sc := &bufScan{pass: pass, reported: map[token.Pos]bool{}}
				sc.stmts(body.List, map[string]handoff{})
			}
			return true
		})
	}
	return nil
}

func copyHeld(h map[string]handoff) map[string]handoff {
	c := make(map[string]handoff, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// mergeBranch folds a branch's end state into the join state: a buffer
// is dead after the join if any branch that can fall through killed it.
func mergeBranch(join, branch map[string]handoff, terminated bool) {
	if terminated {
		return
	}
	for k, v := range branch {
		join[k] = v
	}
}

func (s *bufScan) stmts(list []ast.Stmt, held map[string]handoff) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *bufScan) stmt(st ast.Stmt, held map[string]handoff) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.ExprStmt:
		s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.expr(r, held)
		}
		for _, l := range st.Lhs {
			s.assignTo(l, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					s.expr(v, held)
				}
				for _, name := range vs.Names {
					s.assignTo(name, held)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, held)
		}
	case *ast.IfStmt:
		s.stmt(st.Init, held)
		s.expr(st.Cond, held)
		then := copyHeld(held)
		s.stmts(st.Body.List, then)
		els := copyHeld(held)
		s.stmt(st.Else, els)
		clearAll(held)
		mergeBranch(held, then, terminates(st.Body))
		elseTerm := st.Else != nil && terminates(st.Else)
		mergeBranch(held, els, elseTerm)
	case *ast.SwitchStmt:
		s.stmt(st.Init, held)
		s.expr(st.Tag, held)
		s.caseArms(st.Body, held)
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init, held)
		s.stmt(st.Assign, held)
		s.caseArms(st.Body, held)
	case *ast.SelectStmt:
		s.caseArms(st.Body, held)
	case *ast.ForStmt:
		s.stmt(st.Init, held)
		s.expr(st.Cond, held)
		body := copyHeld(held)
		for pass := 0; pass < 2; pass++ { // second pass catches loop-carried uses
			s.stmts(st.Body.List, body)
			s.stmt(st.Post, body)
		}
		mergeBranch(held, body, false)
	case *ast.RangeStmt:
		s.expr(st.X, held)
		body := copyHeld(held)
		for pass := 0; pass < 2; pass++ {
			s.assignTo(st.Key, body) // rebinding revives the loop vars
			s.assignTo(st.Value, body)
			s.stmts(st.Body.List, body)
		}
		mergeBranch(held, body, false)
	case *ast.DeferStmt:
		// A deferred handoff runs at function exit: uses between here
		// and the return are fine, so scan the call as plain uses.
		s.expr(st.Call.Fun, held)
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.GoStmt:
		s.expr(st.Call, held)
	case *ast.SendStmt:
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.IncDecStmt:
		s.expr(st.X, held)
	}
}

// caseArms scans each case/comm clause from the pre-switch state and
// merges the fall-through arms.
func (s *bufScan) caseArms(body *ast.BlockStmt, held map[string]handoff) {
	base := copyHeld(held)
	clearAll(held)
	exhaustive := false
	for _, cl := range body.List {
		arm := copyHeld(base)
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				s.expr(e, arm)
			}
			if cl.List == nil {
				exhaustive = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			s.stmt(cl.Comm, arm)
			stmts = cl.Body
		}
		s.stmts(stmts, arm)
		term := len(stmts) > 0 && terminates(stmts[len(stmts)-1])
		mergeBranch(held, arm, term)
	}
	if !exhaustive {
		// No default arm: the zero-case path carries the entry state.
		mergeBranch(held, base, false)
	}
}

func clearAll(held map[string]handoff) {
	for k := range held {
		delete(held, k)
	}
}

// assignTo revives the assigned expression (and everything reached
// through it) — after `b = nil` or `w = w.next` the old handoff no
// longer covers the name. Unkeyable targets (index expressions, derefs)
// count as uses instead.
func (s *bufScan) assignTo(l ast.Expr, held map[string]handoff) {
	if l == nil {
		return
	}
	k := exprKey(l)
	if k == "" {
		s.expr(l, held)
		return
	}
	for h := range held {
		if h == k || strings.HasPrefix(h, k+".") {
			delete(held, h)
		}
	}
}

func (s *bufScan) expr(e ast.Expr, held map[string]handoff) {
	switch e := e.(type) {
	case nil:
	case *ast.FuncLit:
		// Analyzed as its own body; captured buffers escape this
		// source-order model.
	case *ast.CallExpr:
		s.call(e, held)
	case *ast.Ident, *ast.SelectorExpr:
		s.use(e, held)
	case *ast.ParenExpr:
		s.expr(e.X, held)
	case *ast.StarExpr:
		s.expr(e.X, held)
	case *ast.UnaryExpr:
		s.expr(e.X, held)
	case *ast.BinaryExpr:
		s.expr(e.X, held)
		s.expr(e.Y, held)
	case *ast.IndexExpr:
		s.expr(e.X, held)
		s.expr(e.Index, held)
	case *ast.SliceExpr:
		s.expr(e.X, held)
		s.expr(e.Low, held)
		s.expr(e.High, held)
		s.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		s.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(el, held)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Value, held)
	}
}

// call scans a call expression, recording a handoff when it is one of
// the ownership-consuming calls.
func (s *bufScan) call(e *ast.CallExpr, held map[string]handoff) {
	idx, desc, ok := s.handoffArg(e)
	if !ok || idx >= len(e.Args) {
		s.expr(e.Fun, held)
		for _, a := range e.Args {
			s.expr(a, held)
		}
		return
	}
	s.expr(e.Fun, held)
	for i, a := range e.Args {
		if i != idx {
			s.expr(a, held)
		}
	}
	arg := e.Args[idx]
	k := exprKey(arg)
	if k == "" || k == "nil" || k == "_" {
		// putBuf(getBuf(n)), putBuf(nil), slices of something — the
		// argument has no stable name to track; scan it as a use.
		s.expr(arg, held)
		return
	}
	s.use(arg, held) // using an already-dead buffer as an argument counts
	held[k] = handoff{pos: e.End(), to: desc}
}

// handoffArg classifies e against the ownership-consuming call set,
// returning the consumed argument index and a description.
func (s *bufScan) handoffArg(e *ast.CallExpr) (int, string, bool) {
	switch fun := e.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "putBuf" {
			return 0, "", false
		}
		if obj, ok := s.pass.TypesInfo.Uses[fun].(*types.Func); !ok || obj == nil {
			return 0, "", false
		}
		return 0, "putBuf", true
	case *ast.SelectorExpr:
		fn, ok := s.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			return 0, "", false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return 0, "", false
		}
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return 0, "", false
		}
		idx, ok := bufOwnMethods[[2]string{named.Obj().Name(), fn.Name()}]
		if !ok {
			return 0, "", false
		}
		return idx, named.Obj().Name() + "." + fn.Name(), true
	}
	return 0, "", false
}

// use reports e when its expression was handed off earlier on this
// path. One report per handoff: the key is revived after reporting so a
// single mistake does not cascade down the function.
func (s *bufScan) use(e ast.Expr, held map[string]handoff) {
	k := exprKey(e)
	if k == "" {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			s.expr(sel.X, held)
		}
		return
	}
	h, ok := held[k]
	if !ok {
		return
	}
	delete(held, k)
	if s.reported[e.Pos()] {
		return
	}
	s.reported[e.Pos()] = true
	s.pass.Reportf(e.Pos(), "%s used after its ownership was handed to %s (line %d); the consumer releases it — rebind or re-encode, or //lint:allow bufown <reason>",
		k, h.to, s.pass.Fset.Position(h.pos).Line)
}
