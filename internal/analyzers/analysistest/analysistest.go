// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want "regexp" comments embedded in
// the fixture source — the same convention as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the standard
// library so the repo stays dependency-free.
//
// A fixture line may carry one or more expectations:
//
//	time.Sleep(d) // want "wall-clock"
//
// Patterns are regular expressions, quoted either with double quotes
// or with backticks (handy when the pattern itself contains escapes).
//
// Every diagnostic must be matched by an expectation on its line and
// vice versa. //lint:allow suppression directives are honored, so
// fixtures can also assert that a documented waiver silences a finding.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// Run loads the single fixture package in dir (relative to the test's
// working directory), attributes it to import path asPath (which
// controls path-scoped analyzers like detclock), runs a, and compares
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analyzers.Analyzer, dir, asPath string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Analyzer{a}, []*analyzers.Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		got[k] = append(got[k], d.Message)
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		collectWants(t, pkg, f, func(file string, line int, re *regexp.Regexp) {
			k := key{file, line}
			want[k] = append(want[k], re)
		})
	}

	for k, res := range want {
		msgs := got[k]
		for _, re := range res {
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: expected diagnostic matching %q, got %v", k.file, k.line, re, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected extra diagnostics %v", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
	}
}

func collectWants(t *testing.T, pkg *analyzers.Package, f *ast.File, add func(file string, line int, re *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			quoted := quotedRe.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
			}
			for _, q := range quoted {
				pat := q[2] // backtick form: taken verbatim
				if q[1] != "" || q[2] == "" {
					pat = strings.ReplaceAll(q[1], `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
				}
				add(filepath.Base(pos.Filename), pos.Line, re)
			}
		}
	}
}
