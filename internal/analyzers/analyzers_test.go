package analyzers_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestDetClock exercises the wall-clock/math-rand ban: seeded
// violations inside the deterministic surface, the sanctioned sim.RNG
// and duration-constant forms, non-deterministic packages (allowed),
// the sim/rng.go exemption, and documented suppressions.
func TestDetClock(t *testing.T) {
	cases := []struct {
		name, dir, asPath string
	}{
		{"pos", "testdata/src/detclock/pos", "repro/internal/hdd"},
		{"neg", "testdata/src/detclock/neg", "repro/internal/hdd"},
		{"outside-det-surface", "testdata/src/detclock/outside", "repro/internal/pfsnet"},
		{"rng-source-exempt", "testdata/src/detclock/rngexempt", "repro/internal/sim"},
		{"allow-directive", "testdata/src/detclock/allow", "repro/internal/hdd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, analyzers.DetClock, tc.dir, tc.asPath)
		})
	}
}

// TestDetMapRange exercises the iteration-order-escape checks and the
// collect-then-sort negative cases.
func TestDetMapRange(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.DetMapRange, "testdata/src/detmaprange/pos", "repro/internal/fixture/maprange")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.DetMapRange, "testdata/src/detmaprange/neg", "repro/internal/fixture/maprange")
	})
}

// TestObsNil exercises the nil-sink contract: unguarded bundle and
// tracer dereferences (including through closures and unguardable call
// chains) versus every guarded idiom used in the tree.
func TestObsNil(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.ObsNil, "testdata/src/obsnil/pos", "repro/internal/fixture/obsfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.ObsNil, "testdata/src/obsnil/neg", "repro/internal/fixture/obsfix")
	})
}

// TestLockIO exercises the no-I/O-under-lock discipline: socket, file,
// and ObjectStore calls inside critical sections versus
// snapshot-then-act, in-memory-only, and documented serial-by-design
// holds.
func TestLockIO(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.LockIO, "testdata/src/lockio/pos", "repro/internal/fixture/lockfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.LockIO, "testdata/src/lockio/neg", "repro/internal/fixture/lockfix")
	})
}

// TestBufOwn exercises the pooled-buffer ownership contract: uses
// after putBuf / writeFrame / exchange / metaCall handoffs (including
// branch joins and loop-carried uses) versus capture-before-handoff,
// rebinding, deferred release, terminating branches, and a documented
// waiver.
func TestBufOwn(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.BufOwn, "testdata/src/bufown/pos", "repro/internal/fixture/bufownfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.BufOwn, "testdata/src/bufown/neg", "repro/internal/fixture/bufownfix")
	})
}

// TestMalformedDirective: a //lint:allow with no reason is itself
// reported and does not suppress the finding under it.
func TestMalformedDirective(t *testing.T) {
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs("testdata/src/detclock/malformed")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "repro/internal/hdd")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Analyzer{analyzers.DetClock}, []*analyzers.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (malformed directive + unsuppressed finding), got %d: %+v", len(diags), diags)
	}
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed //lint:allow") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "wall-clock") {
			sawFinding = true
		}
	}
	if !sawMalformed || !sawFinding {
		t.Fatalf("want both the malformed-directive report and the unsuppressed finding, got %+v", diags)
	}
}

// TestByName covers multichecker analyzer selection.
func TestByName(t *testing.T) {
	as, err := analyzers.ByName("detclock, lockio")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "detclock" || as[1].Name != "lockio" {
		t.Fatalf("unexpected selection: %+v", as)
	}
	if _, err := analyzers.ByName("nosuch"); err == nil {
		t.Fatal("want error for unknown analyzer")
	}
	if as, err := analyzers.ByName(""); err != nil || len(as) != len(analyzers.All()) {
		t.Fatalf("empty selection should yield the whole suite, got %v, %v", as, err)
	}
}

// TestVetCleanOnTree is the repo gate in test form: the whole invariant
// suite must run clean over every package, exactly as `make lint` (via
// cmd/ibridge-vet ./...) requires.
func TestVetCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var buf bytes.Buffer
	n, err := analyzers.Vet(".", []string{"./..."}, analyzers.All(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("invariant suite found %d finding(s) on the tree:\n%s", n, buf.String())
	}
}
