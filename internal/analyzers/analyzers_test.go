package analyzers_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestDetClock exercises the wall-clock/math-rand ban: seeded
// violations inside the deterministic surface, the sanctioned sim.RNG
// and duration-constant forms, non-deterministic packages (allowed),
// the sim/rng.go exemption, and documented suppressions.
func TestDetClock(t *testing.T) {
	cases := []struct {
		name, dir, asPath string
	}{
		{"pos", "testdata/src/detclock/pos", "repro/internal/hdd"},
		{"neg", "testdata/src/detclock/neg", "repro/internal/hdd"},
		{"outside-det-surface", "testdata/src/detclock/outside", "repro/internal/pfsnet"},
		{"rng-source-exempt", "testdata/src/detclock/rngexempt", "repro/internal/sim"},
		{"allow-directive", "testdata/src/detclock/allow", "repro/internal/hdd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, analyzers.DetClock, tc.dir, tc.asPath)
		})
	}
}

// TestDetMapRange exercises the iteration-order-escape checks and the
// collect-then-sort negative cases.
func TestDetMapRange(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.DetMapRange, "testdata/src/detmaprange/pos", "repro/internal/fixture/maprange")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.DetMapRange, "testdata/src/detmaprange/neg", "repro/internal/fixture/maprange")
	})
}

// TestObsNil exercises the nil-sink contract: unguarded bundle and
// tracer dereferences (including through closures and unguardable call
// chains) versus every guarded idiom used in the tree.
func TestObsNil(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.ObsNil, "testdata/src/obsnil/pos", "repro/internal/fixture/obsfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.ObsNil, "testdata/src/obsnil/neg", "repro/internal/fixture/obsfix")
	})
}

// TestLockIO exercises the no-I/O-under-lock discipline: socket, file,
// and ObjectStore calls inside critical sections versus
// snapshot-then-act, in-memory-only, and documented serial-by-design
// holds.
func TestLockIO(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.LockIO, "testdata/src/lockio/pos", "repro/internal/fixture/lockfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.LockIO, "testdata/src/lockio/neg", "repro/internal/fixture/lockfix")
	})
}

// TestBufOwn exercises the pooled-buffer ownership contract: uses
// after putBuf / writeFrame / exchange / metaCall handoffs (including
// branch joins and loop-carried uses) versus capture-before-handoff,
// rebinding, deferred release, terminating branches, and a documented
// waiver.
func TestBufOwn(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.BufOwn, "testdata/src/bufown/pos", "repro/internal/fixture/bufownfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.BufOwn, "testdata/src/bufown/neg", "repro/internal/fixture/bufownfix")
	})
}

// TestAtomicMix exercises the atomic/plain mixing check: promoted and
// explicit spellings of an atomically-accessed field, package-level
// variables, same-named fields of distinct structs, composite-literal
// initialization, atomic wrapper types, and a documented waiver.
func TestAtomicMix(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.AtomicMix, "testdata/src/atomicmix/pos", "repro/internal/fixture/atomfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.AtomicMix, "testdata/src/atomicmix/neg", "repro/internal/fixture/atomfix")
	})
}

// TestLockOrder exercises the lock-acquisition-order check: a direct
// two-mutex cycle, an interprocedural cycle through a helper, a
// self-deadlock, and the negative shapes (consistent order,
// release-before-next, block-scoped deferred unlocks, goroutine
// boundaries, fully-releasing helpers).
func TestLockOrder(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.LockOrder, "testdata/src/lockorder/pos", "repro/internal/fixture/lockordfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.LockOrder, "testdata/src/lockorder/neg", "repro/internal/fixture/lockordfix")
	})
}

// TestGoSpawn exercises the goroutine shutdown-path check: unkillable
// spawns and opaque callees versus every accepted evidence form
// (select, channel ops, WaitGroup joins, context, close hooks through
// callee chains and deferred Closes), plus path scoping — a package
// outside internal/{pfsnet,faults,runner} is not checked.
func TestGoSpawn(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.GoSpawn, "testdata/src/gospawn/pos", "repro/internal/pfsnet")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.GoSpawn, "testdata/src/gospawn/neg", "repro/internal/pfsnet")
	})
	t.Run("outside-enforced-surface", func(t *testing.T) {
		analysistest.Run(t, analyzers.GoSpawn, "testdata/src/gospawn/outside", "repro/internal/fixture/spawnfix")
	})
}

// TestFeatGate exercises the negotiated-feature gating check: ungated
// encodes, wrong-bit gates, ungated dispatch/comparison forms, and the
// licensed shapes (if-body gates, ||-early-exits, && same-expression
// gates, helper predicates, decode-side masks/strips, waivers).
func TestFeatGate(t *testing.T) {
	t.Run("pos", func(t *testing.T) {
		analysistest.Run(t, analyzers.FeatGate, "testdata/src/featgate/pos", "repro/internal/fixture/featfix")
	})
	t.Run("neg", func(t *testing.T) {
		analysistest.Run(t, analyzers.FeatGate, "testdata/src/featgate/neg", "repro/internal/fixture/featfix")
	})
}

// TestStaleWaiver: a //lint:allow that suppresses nothing is reported
// as stale, one naming an unknown analyzer is reported
// unconditionally, and a used one stays silent.
func TestStaleWaiver(t *testing.T) {
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs("testdata/src/stale")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "repro/internal/hdd")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Analyzer{analyzers.DetClock}, []*analyzers.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (stale waiver + unknown analyzer), got %d: %+v", len(diags), diags)
	}
	var sawStale, sawUnknown bool
	for _, d := range diags {
		if strings.Contains(d.Message, "stale //lint:allow detclock") {
			sawStale = true
		}
		if strings.Contains(d.Message, `unknown analyzer "detclok"`) {
			sawUnknown = true
		}
	}
	if !sawStale || !sawUnknown {
		t.Fatalf("want both the stale-waiver and unknown-analyzer reports, got %+v", diags)
	}
}

// TestStaleWaiverScopedToRunSet: a directive for an analyzer that is
// known but NOT in the run set is neither stale nor unknown — single-
// analyzer runs must not flag the other analyzers' waivers.
func TestStaleWaiverScopedToRunSet(t *testing.T) {
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs("testdata/src/stale")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "repro/internal/hdd")
	if err != nil {
		t.Fatal(err)
	}
	// lockio never fires here and the detclock directives are out of its
	// run set; only the unknown-analyzer report must survive.
	diags, err := analyzers.RunAnalyzers([]*analyzers.Analyzer{analyzers.LockIO}, []*analyzers.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "detclok"`) {
		t.Fatalf("want only the unknown-analyzer report, got %+v", diags)
	}
}

// TestVetJSON: the machine-readable output is a JSON array of findings
// whose fields match the plain-text format field for field.
func TestVetJSON(t *testing.T) {
	var buf bytes.Buffer
	n, err := analyzers.VetJSON(".", []string{"./internal/analyzers/testdata/src/featgate/pos"}, []*analyzers.Analyzer{analyzers.FeatGate}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("want findings from the featgate pos fixture, got none")
	}
	var fs []analyzers.Finding
	if err := json.Unmarshal(buf.Bytes(), &fs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(fs) != n {
		t.Fatalf("returned count %d != decoded findings %d", n, len(fs))
	}
	for _, f := range fs {
		if f.Analyzer != "featgate" || f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
		if filepath.IsAbs(f.File) || strings.Contains(f.File, `\`) {
			t.Fatalf("File must be module-root-relative with forward slashes, got %q", f.File)
		}
	}
	// A clean run must still emit a JSON array, not empty output.
	buf.Reset()
	n, err = analyzers.VetJSON(".", []string{"./internal/analyzers/testdata/src/featgate/neg"}, []*analyzers.Analyzer{analyzers.FeatGate}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("neg fixture should be clean, got %d findings:\n%s", n, buf.String())
	}
	if err := json.Unmarshal(buf.Bytes(), &fs); err != nil || len(fs) != 0 {
		t.Fatalf("clean run must emit an empty JSON array, got %q (err %v)", buf.String(), err)
	}
}

// TestDeterministicOutput: lockorder and gospawn render byte-identical
// diagnostics across two independent loads — the graph walks and
// report ordering must not leak map iteration order.
func TestDeterministicOutput(t *testing.T) {
	render := func(a *analyzers.Analyzer, dir, asPath string) string {
		loader, err := analyzers.NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(abs, asPath)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := analyzers.RunAnalyzers([]*analyzers.Analyzer{a}, []*analyzers.Package{pkg})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(&sb, "%s:%d:%d: [%s] %s\n", filepath.Base(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
		}
		return sb.String()
	}
	cases := []struct {
		a      *analyzers.Analyzer
		dir    string
		asPath string
	}{
		{analyzers.LockOrder, "testdata/src/lockorder/pos", "repro/internal/fixture/lockordfix"},
		{analyzers.GoSpawn, "testdata/src/gospawn/pos", "repro/internal/pfsnet"},
	}
	for _, tc := range cases {
		first := render(tc.a, tc.dir, tc.asPath)
		if first == "" {
			t.Fatalf("%s: pos fixture rendered no diagnostics", tc.a.Name)
		}
		for i := 0; i < 2; i++ {
			if again := render(tc.a, tc.dir, tc.asPath); again != first {
				t.Fatalf("%s output differs across runs:\n--- first\n%s--- again\n%s", tc.a.Name, first, again)
			}
		}
	}
}

// TestMalformedDirective: a //lint:allow with no reason is itself
// reported and does not suppress the finding under it.
func TestMalformedDirective(t *testing.T) {
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs("testdata/src/detclock/malformed")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "repro/internal/hdd")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Analyzer{analyzers.DetClock}, []*analyzers.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (malformed directive + unsuppressed finding), got %d: %+v", len(diags), diags)
	}
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed //lint:allow") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "wall-clock") {
			sawFinding = true
		}
	}
	if !sawMalformed || !sawFinding {
		t.Fatalf("want both the malformed-directive report and the unsuppressed finding, got %+v", diags)
	}
}

// TestByName covers multichecker analyzer selection.
func TestByName(t *testing.T) {
	as, err := analyzers.ByName("detclock, lockio")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "detclock" || as[1].Name != "lockio" {
		t.Fatalf("unexpected selection: %+v", as)
	}
	if _, err := analyzers.ByName("nosuch"); err == nil {
		t.Fatal("want error for unknown analyzer")
	}
	if as, err := analyzers.ByName(""); err != nil || len(as) != len(analyzers.All()) {
		t.Fatalf("empty selection should yield the whole suite, got %v, %v", as, err)
	}
}

// TestVetCleanOnTree is the repo gate in test form: the whole invariant
// suite must run clean over every package, exactly as `make lint` (via
// cmd/ibridge-vet ./...) requires.
func TestVetCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var buf bytes.Buffer
	n, err := analyzers.Vet(".", []string{"./..."}, analyzers.All(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("invariant suite found %d finding(s) on the tree:\n%s", n, buf.String())
	}
}
