package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ssdfail", ssdFail)
}

// ssdFail measures graceful degradation when an SSD device dies mid-run:
// the bridge drains its dirty data, drops the mapping table, and serves
// everything from the disk thereafter. The run must still complete, and
// its throughput should land between the healthy iBridge cluster and the
// stock (disk-only) one — the cluster loses the acceleration, never the
// data. The failure time comes from a fault plan's `ssdfail=srv0@DUR`
// clause, so the whole scenario is reproducible from the plan's seed.
func ssdFail(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ssdfail",
		Title:   "mpi-io-test 33KB, SSD-device failure at half of healthy runtime",
		Columns: []string{"config", "MB/s", "SSD fraction", "ssd failures"},
	}
	const reqSize = 33 * kb

	run := func(mode cluster.Mode, plan *faults.Plan) (cluster.Result, error) {
		cfg := baseConfig(s, mode)
		cfg.Faults = plan
		res, _, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{Procs: 16, RequestSize: reqSize, Write: true})
		return res, err
	}

	// The healthy iBridge run calibrates the failure time: the plan
	// kills srv0's SSD halfway through, which any scale survives.
	healthy, err := run(cluster.IBridge, nil)
	if err != nil {
		return nil, err
	}
	half := sim.Duration(healthy.Elapsed+healthy.FlushTime) / 2
	plan, err := faults.Parse(fmt.Sprintf("seed=1; ssdfail=srv0@%dns", int64(half)))
	if err != nil {
		return nil, err
	}

	type variant struct {
		name string
		mode cluster.Mode
		plan *faults.Plan
	}
	cases := []variant{
		{"iBridge, healthy", cluster.IBridge, nil},
		{"iBridge, srv0 SSD fails", cluster.IBridge, plan},
		{"stock (disk only)", cluster.Stock, nil},
	}
	rows, err := runner.Map(len(cases), func(i int) ([]string, error) {
		res := healthy
		if i != 0 {
			var err error
			res, err = run(cases[i].mode, cases[i].plan)
			if err != nil {
				return nil, err
			}
		}
		return []string{
			cases[i].name,
			mbps(res.ThroughputMBps()),
			fmt.Sprintf("%.0f%%", res.SSDFraction*100),
			fmt.Sprintf("%d", res.Bridge.SSDFailures),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note(fmt.Sprintf("fault plan: %s", plan.String()))
	t.Note("expected shape: failed run completes, throughput between healthy iBridge and stock")
	return t, nil
}
