//go:build race

package experiments

// raceEnabled mirrors the -race build flag so the heavyweight
// full-evaluation tests can scale themselves down under the race
// detector's ~10x slowdown instead of blowing the package timeout.
const raceEnabled = true
