package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/plfs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ext-plfs", extPLFS)
}

// extPLFS compares the two answers to unaligned checkpoint writes that
// the paper's related work contrasts: PLFS's client-side log
// restructuring (writes become sequential, reads scatter) vs iBridge's
// server-side SSD absorption (writes unchanged in layout, fragments
// absorbed; reads keep locality). The workload is a +10KB-offset
// checkpoint whose pieces are written in data-dependent (shuffled)
// order — as real solvers emit them — followed by a sequential restart
// read. PLFS turns the shuffled writes into pure log appends but its
// restart reads then follow the shuffle through the logs; iBridge keeps
// the logical layout, so the restart stays sequential.
func extPLFS(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ext-plfs",
		Title:   "unaligned checkpoint write + sequential restart read (64 procs)",
		Columns: []string{"system", "write time (s)", "read time (s)", "total (s)"},
	}
	const procs = 64
	const req = 64 * kb
	const shift = 10 * kb
	fileBytes := s.MPIIOBytes

	// Stock and iBridge: the mpi-io-test pattern writes the file with a
	// +10KB displacement, then every rank reads its share sequentially.
	runPFS := func(mode cluster.Mode) (write, read sim.Duration, err error) {
		cfg := baseConfig(s, mode)
		c, cerr := cluster.New(cfg)
		if cerr != nil {
			return 0, 0, cerr
		}
		var writeEnd, readEnd sim.Time
		w := func(cl *cluster.Cluster, p *sim.Proc) {
			f, ferr := cl.FS.Create("ckpt", fileBytes+shift+req)
			if ferr != nil {
				panic(ferr)
			}
			world := mpiio.NewWorld(cl.Engine, cl.Client(), f, procs)
			rng := sim.NewRNG(11)
			rngs := make([]*sim.RNG, procs)
			for i := range rngs {
				rngs[i] = rng.Fork()
			}
			iters := fileBytes / (procs * req)
			perm := sim.NewRNG(99).Perm(int(iters))
			done := world.Spawn("ckpt", func(r *mpiio.Rank) {
				for _, ki := range perm {
					k := int64(ki)
					r.Compute(rngs[r.ID].Duration(0, workload.DefaultJitter))
					r.WriteAt(k*procs*req+int64(r.ID)*req+shift, req)
				}
				r.Barrier()
				if r.ID == 0 {
					writeEnd = r.P.Now()
				}
				r.Barrier()
				// Restart: sequential read-back of the rank's share.
				chunk := fileBytes / procs
				for off := int64(0); off+req <= chunk; off += req {
					r.Compute(rngs[r.ID].Duration(0, workload.DefaultJitter))
					r.ReadAt(int64(r.ID)*chunk+off+shift, req)
				}
				r.Barrier()
				if r.ID == 0 {
					readEnd = r.P.Now()
				}
			})
			done.Wait(p)
		}
		res, rerr := c.Run(w)
		if rerr != nil {
			return 0, 0, rerr
		}
		// Charge the flush (dirty SSD data) to the write phase.
		return sim.Duration(writeEnd) + res.FlushTime, readEnd.Sub(writeEnd), nil
	}

	// PLFS: the same logical writes go through the log mount; the
	// restart reads resolve through the index.
	runPLFS := func() (write, read sim.Duration, err error) {
		cfg := baseConfig(s, cluster.Stock)
		c, cerr := cluster.New(cfg)
		if cerr != nil {
			return 0, 0, cerr
		}
		var writeEnd, readEnd sim.Time
		w := func(cl *cluster.Cluster, p *sim.Proc) {
			m, merr := plfs.Create(cl.FS, "ckpt", fileBytes+shift+req, procs)
			if merr != nil {
				panic(merr)
			}
			barrier := sim.NewBarrier(cl.Engine, procs)
			rng := sim.NewRNG(11)
			rngs := make([]*sim.RNG, procs)
			for i := range rngs {
				rngs[i] = rng.Fork()
			}
			iters := fileBytes / (procs * req)
			perm := sim.NewRNG(99).Perm(int(iters))
			done := sim.NewCounter(cl.Engine, procs)
			for rank := 0; rank < procs; rank++ {
				rank := rank
				cl.Engine.Go(fmt.Sprintf("plfs-rank%d", rank), func(p *sim.Proc) {
					for _, ki := range perm {
						k := int64(ki)
						p.Sleep(rngs[rank].Duration(0, workload.DefaultJitter))
						if err := m.WriteAt(p, rank, k*procs*req+int64(rank)*req+shift, req); err != nil {
							panic(err)
						}
					}
					barrier.Wait(p)
					if rank == 0 {
						writeEnd = p.Now()
					}
					barrier.Wait(p)
					chunk := fileBytes / procs
					for off := int64(0); off+req <= chunk; off += req {
						p.Sleep(rngs[rank].Duration(0, workload.DefaultJitter))
						if _, err := m.ReadAt(p, int64(rank)*chunk+off+shift, req); err != nil {
							panic(err)
						}
					}
					barrier.Wait(p)
					if rank == 0 {
						readEnd = p.Now()
					}
					done.Done()
				})
			}
			done.Wait(p)
		}
		if _, rerr := c.Run(w); rerr != nil {
			return 0, 0, rerr
		}
		return sim.Duration(writeEnd), readEnd.Sub(writeEnd), nil
	}

	type row struct {
		name string
		f    func() (sim.Duration, sim.Duration, error)
	}
	rows := []row{
		{"stock", func() (sim.Duration, sim.Duration, error) { return runPFS(cluster.Stock) }},
		{"PLFS (mini)", runPLFS},
		{"iBridge", func() (sim.Duration, sim.Duration, error) { return runPFS(cluster.IBridge) }},
	}
	cells, err := runner.Map(len(rows), func(i int) ([]string, error) {
		w, rd, err := rows[i].f()
		if err != nil {
			return nil, err
		}
		return []string{rows[i].name,
			fmt.Sprintf("%.1f", w.Seconds()),
			fmt.Sprintf("%.1f", rd.Seconds()),
			fmt.Sprintf("%.1f", (w + rd).Seconds())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, cells...)
	t.Note("PLFS rearranges unaligned writes into per-rank log appends; its restart reads resolve through the index into the logs (the paper's criticism: \"spatial locality is largely lost in the log file system\")")
	t.Note("measured shape: iBridge gives the best total — it fixes the write side without changing the logical layout, so the restart read stays as fast as an aligned read; PLFS improves the restart over stock here because at these scales the rank logs are small and dense, muting the locality loss")
	return t, nil
}
