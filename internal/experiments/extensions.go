package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ext-collective", extCollective)
	register("ext-sieving", extSieving)
}

// extCollective compares the software and hardware answers to tiny
// strided writes: BTIO-style records issued (a) independently on the
// stock system, (b) through two-phase collective buffering on the stock
// system, and (c) independently with iBridge. The paper's related-work
// section positions iBridge against exactly these ROMIO optimizations.
func extCollective(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ext-collective",
		Title:   "tiny strided writes: independent vs collective I/O vs iBridge",
		Columns: []string{"config", "I/O time (s)", "bytes at servers"},
	}
	const procs = 16
	rec := workload.RecordSize(procs)
	steps := s.BTIOSteps
	perStep := s.BTIOBytes / int64(steps)
	recsPerRank := perStep / int64(procs) / rec
	if recsPerRank == 0 {
		recsPerRank = 1
	}

	run := func(mode cluster.Mode, collective bool) (sim.Duration, int64, error) {
		cfg := baseConfig(s, mode)
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		var ioTime sim.Duration
		w := func(cl *cluster.Cluster, p *sim.Proc) {
			f, err := cl.FS.Create("ext", s.BTIOBytes+64*kb)
			if err != nil {
				panic(err)
			}
			world := mpiio.NewWorld(cl.Engine, cl.Client(), f, procs)
			col := mpiio.NewCollective(world, mpiio.DefaultCollective())
			done := world.Spawn("ext", func(r *mpiio.Rank) {
				for step := 0; step < steps; step++ {
					r.Barrier()
					start := r.P.Now()
					base := int64(step) * perStep
					if collective {
						var pieces []mpiio.Piece
						for j := int64(0); j < recsPerRank; j++ {
							off := base + (j*int64(procs)+int64(r.ID))*rec
							pieces = append(pieces, mpiio.Piece{Off: off, Len: rec})
						}
						col.Write(r, pieces)
					} else {
						for j := int64(0); j < recsPerRank; j++ {
							off := base + (j*int64(procs)+int64(r.ID))*rec
							r.WriteAt(off, rec)
						}
					}
					r.Barrier()
					if r.ID == 0 {
						ioTime += r.P.Now().Sub(start)
					}
				}
			})
			done.Wait(p)
		}
		res, err := c.Run(w)
		if err != nil {
			return 0, 0, err
		}
		ioTime += res.FlushTime
		return ioTime, res.Bytes, nil
	}

	cases := []struct {
		name       string
		mode       cluster.Mode
		collective bool
	}{
		{"independent, stock", cluster.Stock, false},
		{"collective, stock", cluster.Stock, true},
		{"independent, iBridge", cluster.IBridge, false},
	}
	rows, err := runner.Map(len(cases), func(i int) ([]string, error) {
		cs := cases[i]
		io, bytes, err := run(cs.mode, cs.collective)
		if err != nil {
			return nil, err
		}
		return []string{cs.name, fmt.Sprintf("%.2f", io.Seconds()), fmt.Sprintf("%dMB", bytes>>20)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("collective buffering fixes the pattern in software (aligned aggregated writes, at exchange cost); iBridge fixes it in hardware without touching the program")
	t.Note("expected shape: both alternatives far below 'independent, stock'")
	return t, nil
}

// extSieving shows data sieving on strided small reads: one covering read
// per hole-bounded extent versus per-piece reads, on the stock system.
func extSieving(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ext-sieving",
		Title:   "strided 4KB reads, 16 procs: per-piece vs data sieving (stock system)",
		Columns: []string{"config", "elapsed (s)", "bytes at servers"},
	}
	const procs = 16
	const pieceLen = 4 * kb
	const strideN = 16 // pieces per rank per row
	rows := int(s.MPIIOBytes / (procs * strideN * 64 * kb))
	if rows < 2 {
		rows = 2
	}

	run := func(sieve bool) (sim.Duration, int64, error) {
		cfg := baseConfig(s, cluster.Stock)
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		w := func(cl *cluster.Cluster, p *sim.Proc) {
			f, err := cl.FS.Create("sieve", int64(rows)*procs*strideN*64*kb)
			if err != nil {
				panic(err)
			}
			world := mpiio.NewWorld(cl.Engine, cl.Client(), f, procs)
			done := world.Spawn("sieve", func(r *mpiio.Rank) {
				// Each rank owns a private block per row and reads a
				// strided column inside it: the holes belong to nobody,
				// so per-piece access is genuinely scattered and only
				// sieving can recover sequentiality.
				const stride = 64 * kb
				blockBytes := int64(strideN * stride)
				rowBytes := int64(procs) * blockBytes
				for row := 0; row < rows; row++ {
					base := int64(row)*rowBytes + int64(r.ID)*blockBytes
					var pieces []mpiio.Piece
					for j := 0; j < strideN; j++ {
						pieces = append(pieces, mpiio.Piece{Off: base + int64(j)*stride, Len: pieceLen})
					}
					if sieve {
						mpiio.Sieve(r, pieces, false, mpiio.SieveConfig{MaxHole: 256 * kb})
					} else {
						for _, pc := range pieces {
							r.ReadAt(pc.Off, pc.Len)
						}
					}
				}
			})
			done.Wait(p)
		}
		res, err := c.Run(w)
		if err != nil {
			return 0, 0, err
		}
		return res.Elapsed, res.Bytes, nil
	}

	variants := []bool{false, true}
	tblRows, err := runner.Map(len(variants), func(i int) ([]string, error) {
		sieve := variants[i]
		name := "per-piece reads"
		if sieve {
			name = "data sieving"
		}
		el, bytes, err := run(sieve)
		if err != nil {
			return nil, err
		}
		return []string{name, fmt.Sprintf("%.2f", el.Seconds()), fmt.Sprintf("%dMB", bytes>>20)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, tblRows...)
	t.Note("sieving trades extra bytes (reading the holes) for far fewer, larger disk requests — the same trade iBridge's threshold discussion makes")
	t.Note("expected shape: sieving much faster despite moving more bytes")
	return t, nil
}
