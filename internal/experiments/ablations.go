package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ablation-magnification", ablationMagnification)
	register("ablation-partition", ablationPartition)
	register("ablation-ewma", ablationEWMA)
	register("ablation-ssdlog", ablationSSDLog)
	register("ablation-writeback", ablationWriteback)
}

// ablationMagnification (A1): the Eq. (3) striping-magnification boost on
// vs off under the fragment-heavy +10KB-offset write workload.
func ablationMagnification(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ablation-magnification",
		Title:   "A1: Eq.(3) magnification term on/off (+10KB offset writes, 64 procs)",
		Columns: []string{"config", "throughput MB/s", "fragment admissions"},
	}
	variants := []bool{true, false}
	rows, err := runner.Map(len(variants), func(i int) ([]string, error) {
		on := variants[i]
		cfg := baseConfig(s, cluster.IBridge)
		cfg.IBridge.Magnification = on
		res, rep, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{
			Procs: 64, RequestSize: 64 * kb, Shift: 10 * kb, Write: true,
		})
		if err != nil {
			return nil, err
		}
		name := "magnification off"
		if on {
			name = "magnification on"
		}
		return []string{name, mbps(rep.ThroughputMBps()), fmt.Sprint(res.Bridge.Admissions[1])}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("the boost raises marginal fragments' returns on the slowest sibling disk; expect >= admissions and >= throughput with it on")
	return t, nil
}

// ablationPartition (A2): dynamic vs static partitions under the
// heterogeneous mix (same setup as fig12, condensed). fig12 already fans
// its config × seed grid through the runner.
func ablationPartition(s Scale) (*stats.Table, error) {
	tbl, err := fig12(s)
	if err != nil {
		return nil, err
	}
	tbl.ID = "ablation-partition"
	tbl.Title = "A2: " + tbl.Title
	return tbl, nil
}

// ablationEWMA (A3): sensitivity to the Eq. (1) weights.
func ablationEWMA(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ablation-ewma",
		Title:   "A3: EWMA new-sample weight sensitivity (65KB writes, 64 procs)",
		Columns: []string{"weight(new)", "throughput MB/s", "SSD frac"},
	}
	weights := []float64{7.0 / 8, 1.0 / 2, 1.0 / 8}
	rows, err := runner.Map(len(weights), func(i int) ([]string, error) {
		wNew := weights[i]
		cfg := baseConfig(s, cluster.IBridge)
		cfg.IBridge.EWMANew = wNew
		cfg.IBridge.EWMAOld = 1 - wNew
		res, rep, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{
			Procs: 64, RequestSize: 65 * kb, Write: true,
		})
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.3f", wNew), mbps(rep.ThroughputMBps()),
			fmt.Sprintf("%.2f", res.SSDFraction)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("the paper uses 7/8 on the new sample (Eq. 1); smaller weights make T staler and the redirect decision more conservative")
	return t, nil
}

// ablationSSDLog (A4): log-structured vs scattered SSD cache writes under
// BTIO, the workload with the most SSD write traffic.
func ablationSSDLog(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ablation-ssdlog",
		Title:   "A4: log-structured vs scattered SSD cache placement (BTIO, 64 procs)",
		Columns: []string{"placement", "exec time s", "I/O time s"},
	}
	variants := []bool{true, false}
	rows, err := runner.Map(len(variants), func(i int) ([]string, error) {
		logStructured := variants[i]
		cfg := baseConfig(s, cluster.IBridge)
		cfg.IBridge.LogStructured = logStructured
		bt, _, err := btioRun(s, cfg, 64, s.SSDBytes)
		if err != nil {
			return nil, err
		}
		name := "scattered"
		if logStructured {
			name = "log-structured"
		}
		return []string{name, fmt.Sprintf("%.1f", bt.TotalTime.Seconds()),
			fmt.Sprintf("%.1f", bt.IOTime.Seconds())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("scattered placement pays the SSD's random-write latency on every cache fill; the log keeps cache writes sequential (the Fig. 10 argument)")
	return t, nil
}

// ablationWriteback (A5): idle writeback on (paper) vs flush-only at
// program termination.
func ablationWriteback(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ablation-writeback",
		Title:   "A5: idle writeback vs flush-only (+10KB offset writes, 64 procs)",
		Columns: []string{"config", "throughput MB/s", "flush time s", "writeback MB"},
	}
	modes := []string{"eager writeback", "pressure-gated (default)", "flush-only"}
	rows, err := runner.Map(len(modes), func(i int) ([]string, error) {
		mode := modes[i]
		cfg := baseConfig(s, cluster.IBridge)
		switch mode {
		case "eager writeback":
			cfg.IBridge.WritebackMinDirty = 0
		case "flush-only":
			// Push the idle checker beyond any plausible run length so
			// all writeback happens in the final flush.
			cfg.IBridge.IdleCheck = 1 << 40
		}
		res, rep, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{
			Procs: 64, RequestSize: 64 * kb, Shift: 10 * kb, Write: true,
		})
		if err != nil {
			return nil, err
		}
		return []string{mode, mbps(rep.ThroughputMBps()),
			fmt.Sprintf("%.2f", res.FlushTime.Seconds()),
			fmt.Sprint(res.Bridge.WritebackBytes >> 20)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("eager writeback in brief anticipation gaps delays foreground arrivals; the default engages only above 50%% dirty occupancy")
	return t, nil
}
