package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig2a", fig2a)
	register("fig2b", fig2b)
	register("fig2hist", fig2hist)
}

// fig2procs returns the process-count sweep capped by the scale.
func fig2procs(s Scale) []int {
	all := []int{16, 64, 128, 512}
	var out []int
	for _, p := range all {
		if p <= s.MaxProcs {
			out = append(out, p)
		}
	}
	return out
}

// fig2a reproduces Figure 2(a): stock-system read throughput of
// mpi-io-test with request sizes 64–94 KB (Pattern II) across process
// counts. The procs × sizes grid fans out through the runner; each cell
// is an independent cluster simulation.
func fig2a(s Scale) (*stats.Table, error) {
	sizes := []int64{64 * kb, 65 * kb, 74 * kb, 84 * kb, 94 * kb}
	procs := fig2procs(s)
	t := &stats.Table{
		ID:      "fig2a",
		Title:   "stock read throughput (MB/s) vs request size and process count (Pattern II)",
		Columns: []string{"procs"},
	}
	for _, sz := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dKB", sz/kb))
	}
	cells, err := runner.Map(len(procs)*len(sizes), func(i int) (string, error) {
		_, rep, err := mpiioRun(s, baseConfig(s, cluster.Stock), workload.MPIIOTestConfig{
			Procs: procs[i/len(sizes)], RequestSize: sizes[i%len(sizes)],
		})
		if err != nil {
			return "", err
		}
		return mbps(rep.ThroughputMBps()), nil
	})
	if err != nil {
		return nil, err
	}
	for r, p := range procs {
		t.AddRow(append([]string{fmt.Sprint(p)}, cells[r*len(sizes):(r+1)*len(sizes)]...)...)
	}
	t.Note("paper (16 procs): 64KB 159.6 MB/s; 65KB 77.4 (-52%%); 74KB 88.1-ish (-45%% at +10KB)")
	t.Note("expected shape: aligned (64KB) column clearly above all unaligned columns at every process count")
	return t, nil
}

// fig2b reproduces Figure 2(b): stock-system read throughput of 64 KB
// requests shifted by an offset (Pattern III).
func fig2b(s Scale) (*stats.Table, error) {
	offsets := []int64{0, 1 * kb, 10 * kb}
	procs := fig2procs(s)
	t := &stats.Table{
		ID:      "fig2b",
		Title:   "stock read throughput (MB/s), 64KB requests vs offset (Pattern III)",
		Columns: []string{"procs"},
	}
	for _, off := range offsets {
		t.Columns = append(t.Columns, fmt.Sprintf("+%dKB", off/kb))
	}
	cells, err := runner.Map(len(procs)*len(offsets), func(i int) (string, error) {
		_, rep, err := mpiioRun(s, baseConfig(s, cluster.Stock), workload.MPIIOTestConfig{
			Procs: procs[i/len(offsets)], RequestSize: 64 * kb, Shift: offsets[i%len(offsets)],
		})
		if err != nil {
			return "", err
		}
		return mbps(rep.ThroughputMBps()), nil
	})
	if err != nil {
		return nil, err
	}
	for r, p := range procs {
		t.AddRow(append([]string{fmt.Sprint(p)}, cells[r*len(offsets):(r+1)*len(offsets)]...)...)
	}
	t.Note("paper (512 procs): +1KB -36%%, +10KB -49%% vs aligned")
	t.Note("expected shape: any non-zero offset costs a large fraction of aligned throughput")
	return t, nil
}

// fig2hist reproduces Figures 2(c)–(e): block-level request-size
// distributions for aligned 64 KB, 65 KB, and 64 KB + 10 KB-offset reads
// on the stock system.
func fig2hist(s Scale) (*stats.Table, error) {
	cases := []struct {
		id          string
		size, shift int64
	}{
		{"2c aligned 64KB", 64 * kb, 0},
		{"2d 65KB", 65 * kb, 0},
		{"2e 64KB+10KB", 64 * kb, 10 * kb},
	}
	t := &stats.Table{
		ID:      "fig2hist",
		Title:   "block-level request size distribution (top bins, sectors of 0.5KB)",
		Columns: []string{"case", "bin1", "bin2", "bin3", "mean(sectors)", "frac>=128"},
	}
	rows, err := runner.Map(len(cases), func(i int) ([]string, error) {
		cs := cases[i]
		cfg := baseConfig(s, cluster.Stock)
		cfg.Trace = true
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
			Procs: 16, RequestSize: cs.size, Shift: cs.shift,
			FileBytes: s.MPIIOBytes, Jitter: workload.DefaultJitter,
		}))
		if err != nil {
			return nil, err
		}
		row := []string{cs.id}
		top := res.Blocks.TopSizes(3)
		for j := 0; j < 3; j++ {
			if j < len(top) {
				row = append(row, fmt.Sprintf("%d(%.0f%%)", top[j].Sectors, top[j].Fraction*100))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row,
			fmt.Sprintf("%.0f", res.Blocks.MeanSectors()),
			fmt.Sprintf("%.2f", res.Blocks.FractionAtLeast(128)))
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("paper 2(c): 72%% at 128 sectors, 18%% at 256; 2(d)/(e): much greater fraction of small requests")
	t.Note("expected shape: aligned case dominated by >=128-sector bins; unaligned cases show smaller mean and spread")
	return t, nil
}
