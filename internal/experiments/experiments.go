// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I–III, Figures 2–13) plus the ablations called out
// in DESIGN.md. Each experiment builds fresh simulated clusters, runs the
// corresponding benchmark workloads, and returns a stats.Table with the
// measured values alongside the paper's published numbers where the text
// states them.
//
// Experiments accept a Scale that shrinks the data volumes so that runs
// complete in seconds of host time; the reproduced quantities are shapes
// (ratios, orderings, crossovers), which are volume-invariant once the
// runs reach steady state.
package experiments

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale sizes the experiment workloads.
type Scale struct {
	Name string
	// MPIIOBytes is the data volume for mpi-io-test and ior-mpi-io
	// runs (the paper uses 10 GB).
	MPIIOBytes int64
	// BTIOBytes is the BTIO dataset (6.8 GB at class C in the paper),
	// and BTIOSteps the number of solver steps.
	BTIOBytes int64
	BTIOSteps int
	// BTIOCompute is the total computation wall time of a BTIO run
	// (each step computes BTIOCompute/BTIOSteps), calibrated so the
	// stock system's I/O share of execution time lands near the
	// paper's 58%.
	BTIOCompute sim.Duration
	// TraceRecords and TraceBytes size the synthetic trace replays.
	TraceRecords int
	TraceBytes   int64
	// MaxProcs caps process-count sweeps.
	MaxProcs int
	// SSDBytes is the per-server iBridge cache size (10 GB in the
	// paper), scaled with the data volume.
	SSDBytes int64
}

// Predefined scales.
var (
	// Smoke is for unit tests: seconds of host time for the full set.
	Smoke = Scale{
		Name:       "smoke",
		MPIIOBytes: 48 * workload.MB,
		BTIOBytes:  24 * workload.MB, BTIOSteps: 4, BTIOCompute: 9 * sim.Second,
		TraceRecords: 800, TraceBytes: 512 * workload.MB,
		MaxProcs: 64,
		SSDBytes: 512 * workload.MB,
	}
	// Small is the default for go test -bench.
	Small = Scale{
		Name:       "small",
		MPIIOBytes: 128 * workload.MB,
		BTIOBytes:  64 * workload.MB, BTIOSteps: 6, BTIOCompute: 24 * sim.Second,
		TraceRecords: 3000, TraceBytes: 1 * workload.GB,
		MaxProcs: 128,
		SSDBytes: 1 * workload.GB,
	}
	// Medium is the default for cmd/ibridge-bench.
	Medium = Scale{
		Name:       "medium",
		MPIIOBytes: 256 * workload.MB,
		BTIOBytes:  128 * workload.MB, BTIOSteps: 8, BTIOCompute: 48 * sim.Second,
		TraceRecords: 10000, TraceBytes: 2 * workload.GB,
		MaxProcs: 512,
		SSDBytes: 2 * workload.GB,
	}
	// Full approaches the paper's volumes (minutes of host time).
	Full = Scale{
		Name:       "full",
		MPIIOBytes: 2 * workload.GB,
		BTIOBytes:  1 * workload.GB, BTIOSteps: 10, BTIOCompute: 380 * sim.Second,
		TraceRecords: 50000, TraceBytes: 10 * workload.GB,
		MaxProcs: 512,
		SSDBytes: 10 * workload.GB,
	}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "smoke":
		return Smoke, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
}

// Func runs one experiment at a scale.
type Func func(Scale) (*stats.Table, error)

// registry maps experiment ids to implementations; populated by the
// figure/table files' init functions.
var registry = map[string]Func{}

func register(id string, f Func) { registry[id] = f }

// Run executes the experiment with the given id.
func Run(id string, s Scale) (*stats.Table, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (try List())", id)
	}
	return f(s)
}

// List returns all experiment ids in sorted order.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// currentObs is the observability sink every experiment cluster wires in
// (nil = disabled). Held in an atomic pointer because the parallel runner
// executes experiments concurrently with a caller installing the set.
var currentObs atomic.Pointer[obs.Set]

// SetObs installs the observability sink used by all subsequently built
// experiment clusters (nil disables). Probes only read state, so results
// are byte-identical with or without a sink (see determinism_test.go).
func SetObs(s *obs.Set) { currentObs.Store(s) }

// CurrentObs returns the installed observability sink, or nil.
func CurrentObs() *obs.Set { return currentObs.Load() }

// currentFaults is the fault plan applied to all subsequently built
// experiment clusters (nil = none); same atomic-pointer pattern as
// currentObs, for the same parallel-runner reason. In the simulated
// clusters only the device-level clauses (ssdfail=srvN@DUR) act.
var currentFaults atomic.Pointer[faults.Plan]

// SetFaults installs the fault plan used by all subsequently built
// experiment clusters (nil disables).
func SetFaults(p *faults.Plan) { currentFaults.Store(p) }

// CurrentFaults returns the installed fault plan, or nil.
func CurrentFaults() *faults.Plan { return currentFaults.Load() }

// baseConfig returns the evaluation-platform cluster configuration at the
// given mode and scale.
func baseConfig(s Scale, mode cluster.Mode) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Mode = mode
	cfg.IBridge.SSDCapacity = s.SSDBytes
	cfg.Obs = CurrentObs()
	cfg.Faults = CurrentFaults()
	return cfg
}

// mpiioRun is the shared mpi-io-test runner: it builds a fresh cluster
// and returns the cluster result plus the measured-window report.
func mpiioRun(s Scale, cfg cluster.Config, w workload.MPIIOTestConfig) (cluster.Result, *workload.Report, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return cluster.Result{}, nil, err
	}
	if w.FileBytes == 0 {
		w.FileBytes = s.MPIIOBytes
	}
	if w.Jitter == 0 {
		w.Jitter = workload.DefaultJitter
	}
	rep := &workload.Report{}
	w.Report = rep
	res, err := c.Run(workload.MPIIOTest(w))
	if err != nil {
		return res, rep, err
	}
	if !w.Warm {
		// Whole-run throughput (including flush) is the headline
		// number for unwarmed runs; align the report with it.
		rep.Start = 0
		rep.End = sim.Time(res.Elapsed + res.FlushTime)
		rep.Bytes = res.Bytes
	}
	return res, rep, nil
}

// iorRun is the shared ior-mpi-io runner.
func iorRun(s Scale, cfg cluster.Config, w workload.IORConfig) (cluster.Result, *workload.Report, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return cluster.Result{}, nil, err
	}
	if w.FileBytes == 0 {
		w.FileBytes = s.MPIIOBytes
	}
	if w.Jitter == 0 {
		w.Jitter = workload.DefaultJitter
	}
	rep := &workload.Report{}
	w.Report = rep
	res, err := c.Run(workload.IOR(w))
	if err != nil {
		return res, rep, err
	}
	if !w.Warm {
		rep.Start = 0
		rep.End = sim.Time(res.Elapsed + res.FlushTime)
		rep.Bytes = res.Bytes
	}
	return res, rep, nil
}

// btioRun is the shared BTIO runner.
func btioRun(s Scale, cfg cluster.Config, procs int, ssdBytes int64) (workload.BTIOResult, cluster.Result, error) {
	cfg.IBridge.SSDCapacity = ssdBytes
	c, err := cluster.New(cfg)
	if err != nil {
		return workload.BTIOResult{}, cluster.Result{}, err
	}
	var bt workload.BTIOResult
	res, err := c.Run(workload.BTIO(workload.BTIOConfig{
		Procs:          procs,
		DataBytes:      s.BTIOBytes,
		Steps:          s.BTIOSteps,
		ComputePerStep: s.BTIOCompute / sim.Duration(s.BTIOSteps),
	}, &bt))
	// Count the post-termination flush into execution time, as the
	// paper does.
	bt.TotalTime += res.FlushTime
	bt.IOTime += res.FlushTime
	return bt, res, err
}

const kb = workload.KB

// mbps formats a throughput cell.
func mbps(v float64) string { return fmt.Sprintf("%.1f", v) }
