package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
}

// table1 reproduces Table I: percentages of unaligned and random
// accesses in the four scientific I/O traces with a 64 KB striping unit.
// Each trace generates and classifies independently, so the four rows
// are a runner grid.
func table1(s Scale) (*stats.Table, error) {
	paper := map[string][2]float64{
		"ALEGRA-2744": {35.2, 7.3},
		"ALEGRA-5832": {35.7, 6.9},
		"CTH":         {24.3, 30.1},
		"S3D":         {62.8, 5.8},
	}
	t := &stats.Table{
		ID:      "table1",
		Title:   "unaligned/random access percentages (64KB unit, 20KB random threshold)",
		Columns: []string{"app", "unaligned%", "paper", "random%", "paper", "total%"},
	}
	workloads := trace.Workloads(s.TraceRecords, s.TraceBytes, 42)
	rows, err := runner.Map(len(workloads), func(i int) ([]string, error) {
		cfg := workloads[i]
		tr := trace.Generate(cfg)
		b := trace.DefaultClassifier().Analyze(tr)
		p := paper[cfg.Name]
		return []string{cfg.Name,
			fmt.Sprintf("%.1f", b.UnalignedPct), fmt.Sprintf("%.1f", p[0]),
			fmt.Sprintf("%.1f", b.RandomPct), fmt.Sprintf("%.1f", p[1]),
			fmt.Sprintf("%.1f", b.TotalPct)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("synthetic traces calibrated to the published Sandia trace statistics (the originals are not redistributable)")
	return t, nil
}

// table2 reproduces Table II: 4 KB microbenchmarks of the storage device
// models. The patterns × devices grid runs as eight independent
// single-device simulations.
func table2(Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "table2",
		Title:   "device microbenchmark, 4KB requests (MB/s)",
		Columns: []string{"pattern", "SSD", "paper", "HDD", "paper"},
	}
	paper := map[string][2]float64{
		"seq read":   {160, 85},
		"rand read":  {60, 15},
		"seq write":  {140, 80},
		"rand write": {30, 5},
	}
	type pattern struct {
		name   string
		op     device.Op
		random bool
	}
	patterns := []pattern{
		{"seq read", device.Read, false},
		{"rand read", device.Read, true},
		{"seq write", device.Write, false},
		{"rand write", device.Write, true},
	}
	// Grid layout: pattern-major, SSD then HDD.
	vals, err := runner.Map(len(patterns)*2, func(i int) (float64, error) {
		pt := patterns[i/2]
		e := sim.New()
		if i%2 == 0 {
			dev := ssd.New(e, "ssd", ssd.DefaultSpec())
			return deviceBench(e, dev, pt.op, pt.random, dev.Capacity()), nil
		}
		dev := hdd.New(e, "hdd", hdd.DefaultSpec(), sim.NewRNG(1))
		return deviceBench(e, dev, pt.op, pt.random, dev.Capacity()), nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pt := range patterns {
		p := paper[pt.name]
		t.AddRow(pt.name,
			fmt.Sprintf("%.0f", vals[pi*2]), fmt.Sprintf("%.0f", p[0]),
			fmt.Sprintf("%.1f", vals[pi*2+1]), fmt.Sprintf("%.0f", p[1]))
	}
	t.Note("SSD model matches Table II; the HDD random rows are mechanical (seek+rotation) rates — the paper's 15/5 MB/s random figures are not achievable at queue depth 1 on a 7200-RPM disk and are treated as vendor-sheet values (see EXPERIMENTS.md)")
	return t, nil
}

// deviceBench runs 500 4KB requests on a device and returns MB/s.
func deviceBench(e *sim.Engine, dev device.Device, op device.Op, random bool, capacity int64) float64 {
	rng := sim.NewRNG(7)
	const n = 500
	e.Go("bench", func(p *sim.Proc) {
		lbn := int64(0)
		for i := 0; i < n; i++ {
			if random {
				lbn = rng.Range(0, capacity/device.SectorSize-8)
			}
			dev.Serve(p, device.Request{Op: op, LBN: lbn, Sectors: 8})
			lbn += 8
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return float64(n*8*device.SectorSize) / sim.Duration(e.Now()).Seconds() / 1e6
}

// table3 reproduces Table III: average request service times of the four
// trace replays, stock vs iBridge. Each (trace, mode) replay is an
// independent cluster simulation.
func table3(s Scale) (*stats.Table, error) {
	paper := map[string][2]float64{
		"ALEGRA-2744": {16.6, 14.2},
		"ALEGRA-5832": {17.2, 14.0},
		"CTH":         {19.4, 14.4},
		"S3D":         {36.0, 25.3},
	}
	t := &stats.Table{
		ID:      "table3",
		Title:   "trace replay: average request service time (ms)",
		Columns: []string{"trace", "stock", "paper", "iBridge", "paper", "reduction"},
	}
	workloads := trace.Workloads(s.TraceRecords, s.TraceBytes, 42)
	modes := []cluster.Mode{cluster.Stock, cluster.IBridge}
	vals, err := runner.Map(len(workloads)*2, func(i int) (sim.Duration, error) {
		gcfg := workloads[i/2]
		tr := trace.Generate(gcfg)
		cfg := baseConfig(s, modes[i%2])
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := c.Run(workload.Replay(tr, s.TraceBytes))
		if err != nil {
			return 0, err
		}
		return res.AvgServiceTime, nil
	})
	if err != nil {
		return nil, err
	}
	for wi, gcfg := range workloads {
		st, ib := vals[wi*2], vals[wi*2+1]
		p := paper[gcfg.Name]
		t.AddRow(gcfg.Name,
			fmt.Sprintf("%.1f", st.Milliseconds()), fmt.Sprintf("%.1f", p[0]),
			fmt.Sprintf("%.1f", ib.Milliseconds()), fmt.Sprintf("%.1f", p[1]),
			fmt.Sprintf("%.0f%%", 100*(1-float64(ib)/float64(st))))
	}
	t.Note("paper reductions: 13.9%%/18.7%%/25.9%%/29.8%%; CTH and S3D improve most (more random/unaligned requests); S3D's larger requests give it the largest absolute service time")
	return t, nil
}
