package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
)

// renderAt runs one experiment at smoke scale under the given jobs
// setting and returns the rendered table.
func renderAt(t *testing.T, id string, jobs int) string {
	t.Helper()
	runner.SetJobs(jobs)
	tbl, err := Run(id, Smoke)
	if err != nil {
		t.Fatalf("%s (jobs=%d): %v", id, jobs, err)
	}
	return tbl.Render()
}

// TestRenderDeterministicAcrossRuns is the regression test for the
// determinism guarantee: the same seed must render byte-identical
// tables across independent runs. fig2b exercises the client/server
// pipeline; fig12 additionally sweeps explicit config seeds.
func TestRenderDeterministicAcrossRuns(t *testing.T) {
	if raceEnabled {
		t.Skip("four full smoke evaluations; under -race the package blows its timeout — the race gate covers the harness via TestRenderDeterministicAcrossJobs")
	}
	defer runner.SetJobs(0)
	for _, id := range []string{"fig2b", "fig12"} {
		first := renderAt(t, id, 0)
		second := renderAt(t, id, 0)
		if first != second {
			t.Errorf("%s: two runs with the same seed rendered different tables:\n--- first ---\n%s\n--- second ---\n%s",
				id, first, second)
		}
	}
}

// TestRenderDeterministicUnderObservability checks the zero-perturbation
// half of the observability contract: enabling the full instrumentation
// stack (metrics + tracing + T_i sampling) must render byte-identical
// tables to a bare run. Probes only read simulation state, so the event
// order — and therefore every measured quantity — may not shift.
func TestRenderDeterministicUnderObservability(t *testing.T) {
	if raceEnabled {
		t.Skip("four instrumented smoke evaluations; under -race the package blows its timeout — the race gate covers the harness via TestRenderDeterministicAcrossJobs")
	}
	defer SetObs(nil)
	defer runner.SetJobs(0)
	for _, id := range []string{"fig2b", "fig12"} {
		SetObs(nil)
		bare := renderAt(t, id, 0)

		set := obs.New(obs.Config{Metrics: true, Trace: true, SampleEvery: 100 * sim.Millisecond})
		SetObs(set)
		observed := renderAt(t, id, 0)

		if bare != observed {
			t.Errorf("%s: observability changed the rendered table:\n--- bare ---\n%s\n--- observed ---\n%s",
				id, bare, observed)
		}
		// The instrumented run must actually have produced telemetry —
		// otherwise the identity above proves nothing.
		if set.Tracer().Len() == 0 {
			t.Errorf("%s: instrumented run recorded no trace events", id)
		}
		if len(set.Registry().Snapshot()) == 0 {
			t.Errorf("%s: instrumented run registered no metrics", id)
		}
		var buf bytes.Buffer
		if err := set.Tracer().WriteChrome(&buf); err != nil {
			t.Fatalf("%s: WriteChrome: %v", id, err)
		}
		var chrome struct {
			TraceEvents []map[string]interface{} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
			t.Fatalf("%s: trace output is not valid JSON: %v", id, err)
		}
		if len(chrome.TraceEvents) == 0 {
			t.Errorf("%s: Chrome trace export is empty", id)
		}
	}
}

// TestRenderDeterministicAcrossJobs checks that the parallel harness
// does not leak host scheduling into results: a serial run (jobs=1)
// and a wide run (jobs=8) must render byte-identical tables.
func TestRenderDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)
	ids := []string{"fig2b", "fig12"}
	if raceEnabled {
		// Keep the race gate's coverage of the parallel fan-out, on the
		// cheaper experiment only.
		ids = ids[:1]
	}
	for _, id := range ids {
		serial := renderAt(t, id, 1)
		wide := renderAt(t, id, 8)
		if serial != wide {
			t.Errorf("%s: jobs=1 and jobs=8 rendered different tables:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				id, serial, wide)
		}
	}
}
