package experiments

import (
	"testing"

	"repro/internal/runner"
)

// renderAt runs one experiment at smoke scale under the given jobs
// setting and returns the rendered table.
func renderAt(t *testing.T, id string, jobs int) string {
	t.Helper()
	runner.SetJobs(jobs)
	tbl, err := Run(id, Smoke)
	if err != nil {
		t.Fatalf("%s (jobs=%d): %v", id, jobs, err)
	}
	return tbl.Render()
}

// TestRenderDeterministicAcrossRuns is the regression test for the
// determinism guarantee: the same seed must render byte-identical
// tables across independent runs. fig2b exercises the client/server
// pipeline; fig12 additionally sweeps explicit config seeds.
func TestRenderDeterministicAcrossRuns(t *testing.T) {
	defer runner.SetJobs(0)
	for _, id := range []string{"fig2b", "fig12"} {
		first := renderAt(t, id, 0)
		second := renderAt(t, id, 0)
		if first != second {
			t.Errorf("%s: two runs with the same seed rendered different tables:\n--- first ---\n%s\n--- second ---\n%s",
				id, first, second)
		}
	}
}

// TestRenderDeterministicAcrossJobs checks that the parallel harness
// does not leak host scheduling into results: a serial run (jobs=1)
// and a wide run (jobs=8) must render byte-identical tables.
func TestRenderDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)
	for _, id := range []string{"fig2b", "fig12"} {
		serial := renderAt(t, id, 1)
		wide := renderAt(t, id, 8)
		if serial != wide {
			t.Errorf("%s: jobs=1 and jobs=8 rendered different tables:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				id, serial, wide)
		}
	}
}
