package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig3", fig3)
}

// fig3 reproduces Figure 3: the striping magnification effect. 16
// processes collectively issue synchronous requests of k striping units
// (optionally +1 KB, generating a fragment on server k) while an
// interference program reads random 64 KB segments from server k.
// Throughput is measured with and without fragments, each with and
// without a barrier between iterations.
func fig3(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig3",
		Title:   "striping magnification: throughput (MB/s) vs servers per request",
		Columns: []string{"k", "noFrag", "frag", "reduction", "noFrag+barrier", "frag+barrier", "reduction"},
	}
	iters := int(s.MPIIOBytes / (16 * 8 * 64 * kb))
	if iters < 4 {
		iters = 4
	}
	run := func(k int, fragment, barrier bool) (float64, error) {
		cfg := baseConfig(s, cluster.Stock)
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := c.Run(workload.Fig3(workload.Fig3Config{
			Procs: 16, K: k, Fragment: fragment, Barrier: barrier, Iters: iters,
		}))
		if err != nil {
			return 0, err
		}
		return res.ThroughputMBps(), nil
	}
	for _, k := range []int{1, 2, 4, 6} {
		var vals [4]float64
		var err error
		for i, cfg := range []struct{ frag, barrier bool }{
			{false, false}, {true, false}, {false, true}, {true, true},
		} {
			vals[i], err = run(k, cfg.frag, cfg.barrier)
			if err != nil {
				return nil, err
			}
		}
		t.AddRow(
			fmt.Sprint(k),
			mbps(vals[0]), mbps(vals[1]),
			fmt.Sprintf("%.0f%%", 100*(1-vals[1]/vals[0])),
			mbps(vals[2]), mbps(vals[3]),
			fmt.Sprintf("%.0f%%", 100*(1-vals[3]/vals[2])),
		)
	}
	t.Note("paper: throughput with fragments is significantly lower, and relative throughput grows more slowly with k (magnification)")
	t.Note("expected shape: the fragment reduction column stays large (or grows) as k increases")
	return t, nil
}
