package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig3", fig3)
}

// fig3 reproduces Figure 3: the striping magnification effect. 16
// processes collectively issue synchronous requests of k striping units
// (optionally +1 KB, generating a fragment on server k) while an
// interference program reads random 64 KB segments from server k.
// Throughput is measured with and without fragments, each with and
// without a barrier between iterations. The k × {frag,barrier} grid runs
// as 16 independent cluster simulations through the runner.
func fig3(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig3",
		Title:   "striping magnification: throughput (MB/s) vs servers per request",
		Columns: []string{"k", "noFrag", "frag", "reduction", "noFrag+barrier", "frag+barrier", "reduction"},
	}
	iters := int(s.MPIIOBytes / (16 * 8 * 64 * kb))
	if iters < 4 {
		iters = 4
	}
	ks := []int{1, 2, 4, 6}
	variants := []struct{ frag, barrier bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	vals, err := runner.Map(len(ks)*len(variants), func(i int) (float64, error) {
		k, v := ks[i/len(variants)], variants[i%len(variants)]
		cfg := baseConfig(s, cluster.Stock)
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := c.Run(workload.Fig3(workload.Fig3Config{
			Procs: 16, K: k, Fragment: v.frag, Barrier: v.barrier, Iters: iters,
		}))
		if err != nil {
			return 0, err
		}
		return res.ThroughputMBps(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, k := range ks {
		v := vals[r*len(variants) : (r+1)*len(variants)]
		t.AddRow(
			fmt.Sprint(k),
			mbps(v[0]), mbps(v[1]),
			fmt.Sprintf("%.0f%%", 100*(1-v[1]/v[0])),
			mbps(v[2]), mbps(v[3]),
			fmt.Sprintf("%.0f%%", 100*(1-v[3]/v[2])),
		)
	}
	t.Note("paper: throughput with fragments is significantly lower, and relative throughput grows more slowly with k (magnification)")
	t.Note("expected shape: the fragment reduction column stays large (or grows) as k increases")
	return t, nil
}
