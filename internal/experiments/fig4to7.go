package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig4", fig4)
	register("fig5", fig5)
	register("fig6", fig6)
	register("fig7", fig7)
}

// fig4Case is one bar group of Figure 4: a request size or offset.
type fig4Case struct {
	name        string
	size, shift int64
}

func fig4Cases() []fig4Case {
	return []fig4Case{
		{"33KB", 33 * kb, 0},
		{"65KB", 65 * kb, 0},
		{"129KB", 129 * kb, 0},
		{"+0KB", 64 * kb, 0},
		{"+1KB", 64 * kb, 1 * kb},
		{"+10KB", 64 * kb, 10 * kb},
	}
}

// fig4 reproduces Figures 4(a) and 4(b): mpi-io-test throughput with
// stock vs iBridge for unaligned sizes and offsets, 64 processes. Reads
// run warmed (the paper's read benefit relies on fragments cached by a
// prior run; Section II-B). The cases × {write,read} × {stock,iBridge}
// grid is 24 independent simulations.
func fig4(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig4",
		Title:   "mpi-io-test throughput (MB/s), 64 procs: stock vs iBridge",
		Columns: []string{"case", "write stock", "write iBridge", "Δ", "read stock", "read iBridge", "Δ", "SSD frac"},
	}
	cases := fig4Cases()
	modes := []cluster.Mode{cluster.Stock, cluster.IBridge}
	type point struct {
		mbps float64
		frac float64 // SSDFraction, meaningful for iBridge write points
	}
	// Grid layout: case-major, then write/read, then stock/iBridge.
	pts, err := runner.Map(len(cases)*4, func(i int) (point, error) {
		cs := cases[i/4]
		write := (i/2)%2 == 0
		mode := modes[i%2]
		res, rep, err := mpiioRun(s, baseConfig(s, mode), workload.MPIIOTestConfig{
			Procs: 64, RequestSize: cs.size, Shift: cs.shift,
			Write: write, Warm: !write, // reads are warmed
		})
		if err != nil {
			return point{}, err
		}
		return point{mbps: rep.ThroughputMBps(), frac: res.SSDFraction}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cs := range cases {
		p := pts[ci*4 : (ci+1)*4]
		t.AddRow(cs.name,
			mbps(p[0].mbps), mbps(p[1].mbps), stats.Speedup(p[0].mbps, p[1].mbps),
			mbps(p[2].mbps), mbps(p[3].mbps), stats.Speedup(p[2].mbps, p[3].mbps),
			fmt.Sprintf("%.0f%%", p[1].frac*100))
	}
	t.Note("paper writes: +105%%/+183%%/+171%% for 33/65/129KB; SSD-served bytes 19%%/10%%/4%%")
	t.Note("paper: at +0KB iBridge equals stock; with offsets iBridge changes little while stock collapses")
	t.Note("expected shape: iBridge above stock in every unaligned case, equal at +0KB; SSD fraction falls as size grows")
	return t, nil
}

// fig5 reproduces Figure 5: block-level request-size distribution of
// 64 KB + 10 KB-offset reads when iBridge is enabled, with the SSD warmed
// by a prior pass (compare fig2hist's case 2e). A single simulation, run
// through the harness so its host-CPU slot is accounted like any other
// data point.
func fig5(s Scale) (*stats.Table, error) {
	results, err := runner.Map(1, func(int) (cluster.Result, error) {
		cfg := baseConfig(s, cluster.IBridge)
		cfg.Trace = true
		c, err := cluster.New(cfg)
		if err != nil {
			return cluster.Result{}, err
		}
		// Custom workload: warm pass, idle, collector reset, measured pass.
		w := func(cl *cluster.Cluster, p *sim.Proc) {
			f, err := cl.FS.Create("fig5", s.MPIIOBytes+16*kb)
			if err != nil {
				panic(err)
			}
			world := mpiio.NewWorld(cl.Engine, cl.Client(), f, 64)
			iters := s.MPIIOBytes / (64 * 64 * kb)
			rng := sim.NewRNG(3)
			rngs := make([]*sim.RNG, 64)
			for i := range rngs {
				rngs[i] = rng.Fork()
			}
			pass := func(r *mpiio.Rank) {
				for k := int64(0); k < iters; k++ {
					r.Compute(rngs[r.ID].Duration(0, workload.DefaultJitter))
					r.ReadAt(k*64*64*kb+int64(r.ID)*64*kb+10*kb, 64*kb)
				}
			}
			done := world.Spawn("fig5", func(r *mpiio.Rank) {
				pass(r) // warm
				r.Barrier()
				r.Compute(5 * sim.Second) // idle: staging happens
				r.Barrier()
				if r.ID == 0 {
					for _, col := range cl.Collectors {
						col.Reset()
					}
				}
				r.Barrier()
				pass(r) // measured
			})
			done.Wait(p)
		}
		return c.Run(w)
	})
	if err != nil {
		return nil, err
	}
	res := results[0]
	t := &stats.Table{
		ID:      "fig5",
		Title:   "block-level request sizes, 64KB+10KB reads WITH iBridge (warmed)",
		Columns: []string{"bin", "sectors", "fraction"},
	}
	for i, sc := range res.Blocks.TopSizes(5) {
		t.AddRow(fmt.Sprint(i+1), fmt.Sprint(sc.Sectors), fmt.Sprintf("%.1f%%", sc.Fraction*100))
	}
	t.AddRow("mean", fmt.Sprintf("%.0f", res.Blocks.MeanSectors()), "")
	t.Note("paper: 128- and 256-sector requests predominate, in contrast to Figure 2(e)")
	t.Note("expected shape: mean dispatch size well above the stock 2e case (fragments absorbed by SSD)")
	return t, nil
}

// fig6 reproduces Figure 6: throughput scaling with process count for
// 65 KB requests, stock vs iBridge, reads and writes.
func fig6(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig6",
		Title:   "65KB mpi-io-test throughput (MB/s) vs process count",
		Columns: []string{"procs", "write stock", "write iBridge", "read stock", "read iBridge"},
	}
	procs := fig2procs(s)
	modes := []cluster.Mode{cluster.Stock, cluster.IBridge}
	// Grid layout: procs-major, then write/read, then stock/iBridge.
	cells, err := runner.Map(len(procs)*4, func(i int) (string, error) {
		write := (i/2)%2 == 0
		_, rep, err := mpiioRun(s, baseConfig(s, modes[i%2]), workload.MPIIOTestConfig{
			Procs: procs[i/4], RequestSize: 65 * kb, Write: write, Warm: !write,
		})
		if err != nil {
			return "", err
		}
		return mbps(rep.ThroughputMBps()), nil
	})
	if err != nil {
		return nil, err
	}
	for r, p := range procs {
		t.AddRow(append([]string{fmt.Sprint(p)}, cells[r*4:(r+1)*4]...)...)
	}
	t.Note("paper: iBridge improves throughput by 154%% on average across process counts; ~10%% of data served by SSDs")
	t.Note("expected shape: iBridge above stock at every process count for both directions")
	return t, nil
}

// fig7 reproduces Figures 7(a)/(b): scaling with the number of data
// servers, 64 processes: aligned 64 KB stock as the reference, 65 KB
// stock, and 65 KB iBridge.
func fig7(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig7",
		Title:   "throughput (MB/s) vs data server count (64 procs)",
		Columns: []string{"servers", "op", "64KB stock", "65KB stock", "65KB iBridge"},
	}
	serverCounts := []int{2, 4, 6, 8}
	type cfgCase struct {
		mode cluster.Mode
		size int64
	}
	cfgCases := []cfgCase{
		{cluster.Stock, 64 * kb}, {cluster.Stock, 65 * kb}, {cluster.IBridge, 65 * kb},
	}
	// Grid layout: servers-major, then write/read, then the three configs.
	cells, err := runner.Map(len(serverCounts)*2*len(cfgCases), func(i int) (string, error) {
		cc := cfgCases[i%len(cfgCases)]
		write := (i/len(cfgCases))%2 == 0
		cfg := baseConfig(s, cc.mode)
		cfg.Servers = serverCounts[i/(2*len(cfgCases))]
		_, rep, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{
			Procs: 64, RequestSize: cc.size, Write: write,
			Warm: !write && cc.mode == cluster.IBridge,
		})
		if err != nil {
			return "", err
		}
		return mbps(rep.ThroughputMBps()), nil
	})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, servers := range serverCounts {
		for _, op := range []string{"write", "read"} {
			t.AddRow(append([]string{fmt.Sprint(servers), op}, cells[i:i+len(cfgCases)]...)...)
			i += len(cfgCases)
		}
	}
	t.Note("paper: throughput grows with server count in all cases; the 64-vs-65KB stock gap grows with servers and iBridge nearly closes it")
	t.Note("expected shape: every column increases with servers; iBridge column between the two stock columns, closer to aligned")
	return t, nil
}
