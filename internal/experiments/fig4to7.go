package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig4", fig4)
	register("fig5", fig5)
	register("fig6", fig6)
	register("fig7", fig7)
}

// fig4Case is one bar group of Figure 4: a request size or offset.
type fig4Case struct {
	name        string
	size, shift int64
}

func fig4Cases() []fig4Case {
	return []fig4Case{
		{"33KB", 33 * kb, 0},
		{"65KB", 65 * kb, 0},
		{"129KB", 129 * kb, 0},
		{"+0KB", 64 * kb, 0},
		{"+1KB", 64 * kb, 1 * kb},
		{"+10KB", 64 * kb, 10 * kb},
	}
}

// fig4 reproduces Figures 4(a) and 4(b): mpi-io-test throughput with
// stock vs iBridge for unaligned sizes and offsets, 64 processes. Reads
// run warmed (the paper's read benefit relies on fragments cached by a
// prior run; Section II-B).
func fig4(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig4",
		Title:   "mpi-io-test throughput (MB/s), 64 procs: stock vs iBridge",
		Columns: []string{"case", "write stock", "write iBridge", "Δ", "read stock", "read iBridge", "Δ", "SSD frac"},
	}
	for _, cs := range fig4Cases() {
		row := []string{cs.name}
		var frac float64
		for _, write := range []bool{true, false} {
			warm := !write // reads are warmed
			var vals [2]float64
			for i, mode := range []cluster.Mode{cluster.Stock, cluster.IBridge} {
				res, rep, err := mpiioRun(s, baseConfig(s, mode), workload.MPIIOTestConfig{
					Procs: 64, RequestSize: cs.size, Shift: cs.shift,
					Write: write, Warm: warm,
				})
				if err != nil {
					return nil, err
				}
				vals[i] = rep.ThroughputMBps()
				if i == 1 && write {
					frac = res.SSDFraction
				}
			}
			row = append(row, mbps(vals[0]), mbps(vals[1]), stats.Speedup(vals[0], vals[1]))
		}
		row = append(row, fmt.Sprintf("%.0f%%", frac*100))
		t.AddRow(row...)
	}
	t.Note("paper writes: +105%%/+183%%/+171%% for 33/65/129KB; SSD-served bytes 19%%/10%%/4%%")
	t.Note("paper: at +0KB iBridge equals stock; with offsets iBridge changes little while stock collapses")
	t.Note("expected shape: iBridge above stock in every unaligned case, equal at +0KB; SSD fraction falls as size grows")
	return t, nil
}

// fig5 reproduces Figure 5: block-level request-size distribution of
// 64 KB + 10 KB-offset reads when iBridge is enabled, with the SSD warmed
// by a prior pass (compare fig2hist's case 2e).
func fig5(s Scale) (*stats.Table, error) {
	cfg := baseConfig(s, cluster.IBridge)
	cfg.Trace = true
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	var measured *struct{}
	_ = measured
	// Custom workload: warm pass, idle, collector reset, measured pass.
	w := func(cl *cluster.Cluster, p *sim.Proc) {
		f, err := cl.FS.Create("fig5", s.MPIIOBytes+16*kb)
		if err != nil {
			panic(err)
		}
		world := mpiio.NewWorld(cl.Engine, cl.Client(), f, 64)
		iters := s.MPIIOBytes / (64 * 64 * kb)
		rng := sim.NewRNG(3)
		rngs := make([]*sim.RNG, 64)
		for i := range rngs {
			rngs[i] = rng.Fork()
		}
		pass := func(r *mpiio.Rank) {
			for k := int64(0); k < iters; k++ {
				r.Compute(rngs[r.ID].Duration(0, workload.DefaultJitter))
				r.ReadAt(k*64*64*kb+int64(r.ID)*64*kb+10*kb, 64*kb)
			}
		}
		done := world.Spawn("fig5", func(r *mpiio.Rank) {
			pass(r) // warm
			r.Barrier()
			r.Compute(5 * sim.Second) // idle: staging happens
			r.Barrier()
			if r.ID == 0 {
				for _, col := range cl.Collectors {
					col.Reset()
				}
			}
			r.Barrier()
			pass(r) // measured
		})
		done.Wait(p)
	}
	res, err := c.Run(w)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		ID:      "fig5",
		Title:   "block-level request sizes, 64KB+10KB reads WITH iBridge (warmed)",
		Columns: []string{"bin", "sectors", "fraction"},
	}
	for i, sc := range res.Blocks.TopSizes(5) {
		t.AddRow(fmt.Sprint(i+1), fmt.Sprint(sc.Sectors), fmt.Sprintf("%.1f%%", sc.Fraction*100))
	}
	t.AddRow("mean", fmt.Sprintf("%.0f", res.Blocks.MeanSectors()), "")
	t.Note("paper: 128- and 256-sector requests predominate, in contrast to Figure 2(e)")
	t.Note("expected shape: mean dispatch size well above the stock 2e case (fragments absorbed by SSD)")
	return t, nil
}

// fig6 reproduces Figure 6: throughput scaling with process count for
// 65 KB requests, stock vs iBridge, reads and writes.
func fig6(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig6",
		Title:   "65KB mpi-io-test throughput (MB/s) vs process count",
		Columns: []string{"procs", "write stock", "write iBridge", "read stock", "read iBridge"},
	}
	for _, procs := range fig2procs(s) {
		row := []string{fmt.Sprint(procs)}
		for _, write := range []bool{true, false} {
			for _, mode := range []cluster.Mode{cluster.Stock, cluster.IBridge} {
				_, rep, err := mpiioRun(s, baseConfig(s, mode), workload.MPIIOTestConfig{
					Procs: procs, RequestSize: 65 * kb, Write: write, Warm: !write,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, mbps(rep.ThroughputMBps()))
			}
		}
		t.AddRow(row...)
	}
	t.Note("paper: iBridge improves throughput by 154%% on average across process counts; ~10%% of data served by SSDs")
	t.Note("expected shape: iBridge above stock at every process count for both directions")
	return t, nil
}

// fig7 reproduces Figures 7(a)/(b): scaling with the number of data
// servers, 64 processes: aligned 64 KB stock as the reference, 65 KB
// stock, and 65 KB iBridge.
func fig7(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig7",
		Title:   "throughput (MB/s) vs data server count (64 procs)",
		Columns: []string{"servers", "op", "64KB stock", "65KB stock", "65KB iBridge"},
	}
	for _, servers := range []int{2, 4, 6, 8} {
		for _, write := range []bool{true, false} {
			op := "read"
			if write {
				op = "write"
			}
			row := []string{fmt.Sprint(servers), op}
			type cfgCase struct {
				mode cluster.Mode
				size int64
			}
			for _, cc := range []cfgCase{
				{cluster.Stock, 64 * kb}, {cluster.Stock, 65 * kb}, {cluster.IBridge, 65 * kb},
			} {
				cfg := baseConfig(s, cc.mode)
				cfg.Servers = servers
				_, rep, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{
					Procs: 64, RequestSize: cc.size, Write: write,
					Warm: !write && cc.mode == cluster.IBridge,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, mbps(rep.ThroughputMBps()))
			}
			t.AddRow(row...)
		}
	}
	t.Note("paper: throughput grows with server count in all cases; the 64-vs-65KB stock gap grows with servers and iBridge nearly closes it")
	t.Note("expected shape: every column increases with servers; iBridge column between the two stock columns, closer to aligned")
	return t, nil
}
