package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
}

// fig12 reproduces Figure 12: heterogeneous workloads. mpi-io-test
// (65 KB writes — fragments) runs concurrently with BTIO (tiny writes —
// regular random requests). The SSD partitioning is either static (1:1 or
// 1:2 random:fragment) or iBridge's dynamic return-proportional split.
// The config × seed grid (every seed of every partition scheme is an
// independent cluster) fans out through the runner; times are averaged
// per config afterwards.
func fig12(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig12",
		Title:   "heterogeneous mpi-io-test + BTIO throughput (MB/s)",
		Columns: []string{"config", "mpi-io-test", "BTIO", "aggregate"},
	}
	type partition struct {
		name      string
		mode      cluster.Mode
		dynamic   bool
		fragShare float64
	}
	configs := []partition{
		{"stock (no SSD)", cluster.Stock, false, 0},
		{"static 1:1", cluster.IBridge, false, 0.5},
		{"static 1:2", cluster.IBridge, false, 2.0 / 3.0},
		{"dynamic", cluster.IBridge, true, 0},
	}
	// The paper sizes the SSD (8 GB against 10+6.8 GB of data) below
	// the combined candidate working set so that partitioning matters:
	// roughly half of (mpi-io-test fragments ≈ 10% of its data) plus
	// BTIO's dirty set, split across the servers.
	ssdPerServer := (s.MPIIOBytes/10 + s.BTIOBytes) / 8 / 2
	// Average *times* over seeds (rate averages let one fast outlier run
	// dominate): the partition effect (paper: 5–13%) is of the same order
	// as run-to-run variation.
	const seeds = 5
	type point struct {
		mpiTime, btioTime float64
	}
	pts, err := runner.Map(len(configs)*seeds, func(i int) (point, error) {
		pc := configs[i/seeds]
		seed := uint64(i%seeds) + 1
		cfg := baseConfig(s, pc.mode)
		cfg.IBridge.SSDCapacity = ssdPerServer
		cfg.IBridge.DynamicPartition = pc.dynamic
		if !pc.dynamic {
			cfg.IBridge.StaticFragShare = pc.fragShare
		}
		cfg.Seed = seed
		c, err := cluster.New(cfg)
		if err != nil {
			return point{}, err
		}
		mpiRep := &workload.Report{}
		var bt workload.BTIOResult
		mpi := workload.MPIIOTest(workload.MPIIOTestConfig{
			Procs: 64, RequestSize: 65 * kb, Write: true,
			FileBytes: s.MPIIOBytes, Jitter: workload.DefaultJitter,
			Seed: seed, Report: mpiRep,
		})
		btio := workload.BTIO(workload.BTIOConfig{
			Procs: 64, DataBytes: s.BTIOBytes, Steps: s.BTIOSteps,
			ComputePerStep: s.BTIOCompute / sim64(s.BTIOSteps),
		}, &bt)
		if _, err := c.Run(workload.Combine(mpi, btio)); err != nil {
			return point{}, err
		}
		return point{mpiTime: mpiRep.Elapsed().Seconds(), btioTime: bt.IOTime.Seconds()}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, pc := range configs {
		var mpiTime, btioTime float64
		for _, p := range pts[ci*seeds : (ci+1)*seeds] {
			mpiTime += p.mpiTime
			btioTime += p.btioTime
		}
		mpiT := float64(s.MPIIOBytes/(65*kb)/64*64*65*kb) / (mpiTime / seeds) / 1e6
		// BTIO's I/O throughput over its I/O phases (compute time is
		// not I/O throughput).
		btioT := float64(s.BTIOBytes) / (btioTime / seeds) / 1e6
		t.AddRow(pc.name, mbps(mpiT), mbps(btioT), mbps(mpiT+btioT))
	}
	t.Note("paper: dynamic partitioning beats static 1:1 by 13%% and 1:2 by 5%% in aggregate; iBridge aggregate is 53%% above stock")
	t.Note("expected shape: stock < static 1:1 <= static 1:2 <= dynamic in aggregate throughput")
	return t, nil
}

// fig13 reproduces Figure 13: the request-size threshold sweep for
// mpi-io-test with 65 KB writes. Throughput is normalized to the aligned
// 64 KB run; SSD usage is normalized to the total data accessed. The
// aligned reference is data point 0 of the grid; the threshold sweep
// follows.
func fig13(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig13",
		Title:   "threshold sweep: 65KB mpi-io-test (64 procs, writes)",
		Columns: []string{"threshold", "throughput MB/s", "normalized", "SSD usage / data"},
	}
	thresholds := []int64{10 * kb, 20 * kb, 30 * kb, 40 * kb}
	type point struct {
		mbps  float64
		usage float64
	}
	pts, err := runner.Map(1+len(thresholds), func(i int) (point, error) {
		if i == 0 {
			// Aligned reference.
			_, rep, err := mpiioRun(s, baseConfig(s, cluster.Stock), workload.MPIIOTestConfig{
				Procs: 64, RequestSize: 64 * kb, Write: true,
			})
			if err != nil {
				return point{}, err
			}
			return point{mbps: rep.ThroughputMBps()}, nil
		}
		th := thresholds[i-1]
		cfg := baseConfig(s, cluster.IBridge)
		cfg.FragmentThreshold = th
		cfg.RandomThreshold = th
		res, rep, err := mpiioRun(s, cfg, workload.MPIIOTestConfig{
			Procs: 64, RequestSize: 65 * kb, Write: true,
		})
		if err != nil {
			return point{}, err
		}
		return point{mbps: rep.ThroughputMBps(), usage: float64(res.PeakSSDUsage) / float64(res.Bytes)}, nil
	})
	if err != nil {
		return nil, err
	}
	aligned := pts[0].mbps
	for i, th := range thresholds {
		p := pts[i+1]
		t.AddRow(
			fmt.Sprintf("%dKB", th/kb),
			mbps(p.mbps),
			fmt.Sprintf("%.2f", p.mbps/aligned),
			fmt.Sprintf("%.1f%%", p.usage*100),
		)
	}
	t.Note("aligned 64KB reference: %.1f MB/s (paper: 164 MB/s)", aligned)
	t.Note("paper: 40KB threshold gives +56%% throughput over 10KB but SSD usage grows 3%%→42%%; 20KB chosen as the balance")
	t.Note("expected shape: throughput and SSD usage both increase monotonically with the threshold")
	return t, nil
}

// sim64 converts a product to sim.Duration divisor-friendly form.
func sim64(n int) sim.Duration { return sim.Duration(n) }
