package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
}

// fig8 reproduces Figures 8(a)/(b): ior-mpi-io throughput with random
// effective access, sizes 33–129 KB, stock vs iBridge, 64 processes.
func fig8(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig8",
		Title:   "ior-mpi-io throughput (MB/s), 64 procs: stock vs iBridge",
		Columns: []string{"size", "write stock", "write iBridge", "Δ", "read stock", "read iBridge", "Δ"},
	}
	sizes := []int64{33 * kb, 64 * kb, 65 * kb, 129 * kb}
	modes := []cluster.Mode{cluster.Stock, cluster.IBridge}
	// Grid layout: size-major, then write/read, then stock/iBridge.
	vals, err := runner.Map(len(sizes)*4, func(i int) (float64, error) {
		write := (i/2)%2 == 0
		_, rep, err := iorRun(s, baseConfig(s, modes[i%2]), workload.IORConfig{
			Procs: 64, RequestSize: sizes[i/4], Write: write, Warm: !write,
		})
		if err != nil {
			return 0, err
		}
		return rep.ThroughputMBps(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, sz := range sizes {
		v := vals[r*4 : (r+1)*4]
		t.AddRow(fmt.Sprintf("%dKB", sz/kb),
			mbps(v[0]), mbps(v[1]), stats.Speedup(v[0], v[1]),
			mbps(v[2]), mbps(v[3]), stats.Speedup(v[2], v[3]))
	}
	t.Note("paper: average improvement +169%% writes, +48%% reads; no improvement at fully aligned 64KB")
	t.Note("expected shape: iBridge wins at 33/65/129KB for both directions; 64KB row near parity")
	return t, nil
}

// fig9procs returns the BTIO process counts capped by scale.
func fig9procs(s Scale) []int {
	all := []int{9, 16, 64, 100}
	var out []int
	for _, p := range all {
		if p <= s.MaxProcs {
			out = append(out, p)
		}
	}
	return out
}

// fig9 reproduces Figure 9: BTIO execution time, stock vs iBridge, across
// process counts.
func fig9(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig9",
		Title:   "BTIO execution time (s): stock vs iBridge",
		Columns: []string{"procs", "recSize", "stock exec", "stock I/O frac", "iBridge exec", "iBridge I/O frac", "reduction"},
	}
	procs := fig9procs(s)
	modes := []cluster.Mode{cluster.Stock, cluster.IBridge}
	bts, err := runner.Map(len(procs)*2, func(i int) (workload.BTIOResult, error) {
		bt, _, err := btioRun(s, baseConfig(s, modes[i%2]), procs[i/2], s.SSDBytes)
		return bt, err
	})
	if err != nil {
		return nil, err
	}
	for r, p := range procs {
		st, ib := bts[r*2], bts[r*2+1]
		t.AddRow(
			fmt.Sprint(p),
			fmt.Sprintf("%dB", workload.RecordSize(p)),
			fmt.Sprintf("%.1f", st.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", 100*st.IOTime.Seconds()/st.TotalTime.Seconds()),
			fmt.Sprintf("%.1f", ib.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", 100*ib.IOTime.Seconds()/ib.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", 100*(1-ib.TotalTime.Seconds()/st.TotalTime.Seconds())),
		)
	}
	t.Note("paper: execution time reduced by 45%%/55%%/61%%/59%% at 9/16/64/100 procs; I/O share drops from 58%% to 4%% on average")
	t.Note("expected shape: large exec reductions at every process count; iBridge I/O fraction collapses")
	return t, nil
}

// fig10 reproduces Figure 10: BTIO execution time across disk-only
// (stock), SSD-only, and iBridge configurations.
func fig10(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig10",
		Title:   "BTIO execution time (s): disk-only vs SSD-only vs iBridge",
		Columns: []string{"procs", "disk-only", "SSD-only", "iBridge"},
	}
	procs := fig9procs(s)
	modes := []cluster.Mode{cluster.Stock, cluster.SSDOnly, cluster.IBridge}
	vals, err := runner.Map(len(procs)*len(modes), func(i int) (float64, error) {
		bt, _, err := btioRun(s, baseConfig(s, modes[i%len(modes)]), procs[i/len(modes)], s.SSDBytes)
		if err != nil {
			return 0, err
		}
		return bt.TotalTime.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, p := range procs {
		v := vals[r*len(modes) : (r+1)*len(modes)]
		t.AddRow(fmt.Sprint(p),
			fmt.Sprintf("%.1f", v[0]), fmt.Sprintf("%.1f", v[1]), fmt.Sprintf("%.1f", v[2]))
	}
	t.Note("paper: iBridge beats even SSD-only storage — its log-structured SSD writes avoid the SSD's random-write penalty (140 vs 30 MB/s)")
	t.Note("expected shape: iBridge < SSD-only < disk-only at every process count")
	return t, nil
}

// fig11 reproduces Figure 11: BTIO I/O time as a function of available
// SSD cache capacity, 64 processes.
func fig11(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig11",
		Title:   "BTIO I/O time (s) vs SSD capacity (64 procs)",
		Columns: []string{"SSD capacity", "I/O time", "exec time"},
	}
	// The paper sweeps 0..8 GB against 6.8 GB of data; scale the sweep
	// to the scaled dataset.
	fracs := []float64{0, 0.125, 0.25, 0.5, 1.0, 1.25}
	bts, err := runner.Map(len(fracs), func(i int) (workload.BTIOResult, error) {
		capBytes := int64(fracs[i] * float64(s.BTIOBytes))
		bt, _, err := btioRun(s, baseConfig(s, cluster.IBridge), 64, capBytes)
		return bt, err
	})
	if err != nil {
		return nil, err
	}
	var io0, ioFull float64
	for i, f := range fracs {
		bt := bts[i]
		capBytes := int64(f * float64(s.BTIOBytes))
		t.AddRow(
			fmt.Sprintf("%.0fMB (%.0f%% of data)", float64(capBytes)/float64(workload.MB), f*100),
			fmt.Sprintf("%.1f", bt.IOTime.Seconds()),
			fmt.Sprintf("%.1f", bt.TotalTime.Seconds()),
		)
		if f == 0 {
			io0 = bt.IOTime.Seconds()
		}
		if f == 1.25 {
			ioFull = bt.IOTime.Seconds()
		}
	}
	if ioFull > 0 {
		t.Note("measured I/O time ratio 0GB/fullGB = %.1fx (paper: 12x)", io0/ioFull)
	}
	t.Note("paper: almost-linear relationship between cached data and I/O performance; 12x I/O time at 0GB but only 2.2x total execution time")
	t.Note("expected shape: I/O time decreases monotonically (roughly linearly) as capacity grows")
	return t, nil
}
