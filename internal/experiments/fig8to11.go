package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
}

// fig8 reproduces Figures 8(a)/(b): ior-mpi-io throughput with random
// effective access, sizes 33–129 KB, stock vs iBridge, 64 processes.
func fig8(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig8",
		Title:   "ior-mpi-io throughput (MB/s), 64 procs: stock vs iBridge",
		Columns: []string{"size", "write stock", "write iBridge", "Δ", "read stock", "read iBridge", "Δ"},
	}
	for _, sz := range []int64{33 * kb, 64 * kb, 65 * kb, 129 * kb} {
		row := []string{fmt.Sprintf("%dKB", sz/kb)}
		for _, write := range []bool{true, false} {
			var vals [2]float64
			for i, mode := range []cluster.Mode{cluster.Stock, cluster.IBridge} {
				_, rep, err := iorRun(s, baseConfig(s, mode), workload.IORConfig{
					Procs: 64, RequestSize: sz, Write: write, Warm: !write,
				})
				if err != nil {
					return nil, err
				}
				vals[i] = rep.ThroughputMBps()
			}
			row = append(row, mbps(vals[0]), mbps(vals[1]), stats.Speedup(vals[0], vals[1]))
		}
		t.AddRow(row...)
	}
	t.Note("paper: average improvement +169%% writes, +48%% reads; no improvement at fully aligned 64KB")
	t.Note("expected shape: iBridge wins at 33/65/129KB for both directions; 64KB row near parity")
	return t, nil
}

// fig9procs returns the BTIO process counts capped by scale.
func fig9procs(s Scale) []int {
	all := []int{9, 16, 64, 100}
	var out []int
	for _, p := range all {
		if p <= s.MaxProcs {
			out = append(out, p)
		}
	}
	return out
}

// fig9 reproduces Figure 9: BTIO execution time, stock vs iBridge, across
// process counts.
func fig9(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig9",
		Title:   "BTIO execution time (s): stock vs iBridge",
		Columns: []string{"procs", "recSize", "stock exec", "stock I/O frac", "iBridge exec", "iBridge I/O frac", "reduction"},
	}
	for _, procs := range fig9procs(s) {
		st, _, err := btioRun(s, baseConfig(s, cluster.Stock), procs, s.SSDBytes)
		if err != nil {
			return nil, err
		}
		ib, _, err := btioRun(s, baseConfig(s, cluster.IBridge), procs, s.SSDBytes)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprint(procs),
			fmt.Sprintf("%dB", workload.RecordSize(procs)),
			fmt.Sprintf("%.1f", st.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", 100*st.IOTime.Seconds()/st.TotalTime.Seconds()),
			fmt.Sprintf("%.1f", ib.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", 100*ib.IOTime.Seconds()/ib.TotalTime.Seconds()),
			fmt.Sprintf("%.0f%%", 100*(1-ib.TotalTime.Seconds()/st.TotalTime.Seconds())),
		)
	}
	t.Note("paper: execution time reduced by 45%%/55%%/61%%/59%% at 9/16/64/100 procs; I/O share drops from 58%% to 4%% on average")
	t.Note("expected shape: large exec reductions at every process count; iBridge I/O fraction collapses")
	return t, nil
}

// fig10 reproduces Figure 10: BTIO execution time across disk-only
// (stock), SSD-only, and iBridge configurations.
func fig10(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig10",
		Title:   "BTIO execution time (s): disk-only vs SSD-only vs iBridge",
		Columns: []string{"procs", "disk-only", "SSD-only", "iBridge"},
	}
	for _, procs := range fig9procs(s) {
		var vals [3]float64
		for i, mode := range []cluster.Mode{cluster.Stock, cluster.SSDOnly, cluster.IBridge} {
			bt, _, err := btioRun(s, baseConfig(s, mode), procs, s.SSDBytes)
			if err != nil {
				return nil, err
			}
			vals[i] = bt.TotalTime.Seconds()
		}
		t.AddRow(fmt.Sprint(procs),
			fmt.Sprintf("%.1f", vals[0]), fmt.Sprintf("%.1f", vals[1]), fmt.Sprintf("%.1f", vals[2]))
	}
	t.Note("paper: iBridge beats even SSD-only storage — its log-structured SSD writes avoid the SSD's random-write penalty (140 vs 30 MB/s)")
	t.Note("expected shape: iBridge < SSD-only < disk-only at every process count")
	return t, nil
}

// fig11 reproduces Figure 11: BTIO I/O time as a function of available
// SSD cache capacity, 64 processes.
func fig11(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "fig11",
		Title:   "BTIO I/O time (s) vs SSD capacity (64 procs)",
		Columns: []string{"SSD capacity", "I/O time", "exec time"},
	}
	// The paper sweeps 0..8 GB against 6.8 GB of data; scale the sweep
	// to the scaled dataset.
	fracs := []float64{0, 0.125, 0.25, 0.5, 1.0, 1.25}
	var io0, ioFull float64
	for _, f := range fracs {
		capBytes := int64(f * float64(s.BTIOBytes))
		bt, _, err := btioRun(s, baseConfig(s, cluster.IBridge), 64, capBytes)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.0fMB (%.0f%% of data)", float64(capBytes)/float64(workload.MB), f*100),
			fmt.Sprintf("%.1f", bt.IOTime.Seconds()),
			fmt.Sprintf("%.1f", bt.TotalTime.Seconds()),
		)
		if f == 0 {
			io0 = bt.IOTime.Seconds()
		}
		if f == 1.25 {
			ioFull = bt.IOTime.Seconds()
		}
	}
	if ioFull > 0 {
		t.Note("measured I/O time ratio 0GB/fullGB = %.1fx (paper: 12x)", io0/ioFull)
	}
	t.Note("paper: almost-linear relationship between cached data and I/O performance; 12x I/O time at 0GB but only 2.2x total execution time")
	t.Note("expected shape: I/O time decreases monotonically (roughly linearly) as capacity grows")
	return t, nil
}
