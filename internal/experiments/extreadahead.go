package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ext-readahead", extReadahead)
}

// extReadahead reruns the Figure 5 measurement (64KB+10KB-offset reads
// with a warmed iBridge) with kernel-style readahead at the servers. The
// paper's testbed had readahead enabled, which is why its Figure 5 shows
// 128/256-sector dispatches; our default pipeline models the flushed-cache
// device path, so Fig 5 shows the raw 54KB pieces (EXPERIMENTS.md D3).
// With readahead on, the dispatch distribution shifts to full windows —
// closing that gap — and throughput rises further because the hole-y
// piece stream becomes pure sequential device reads.
func extReadahead(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		ID:      "ext-readahead",
		Title:   "warmed iBridge +10KB reads with/without server readahead",
		Columns: []string{"config", "throughput MB/s", "top dispatch bin", "mean sectors"},
	}
	variants := []bool{false, true}
	rows, err := runner.Map(len(variants), func(i int) ([]string, error) {
		ra := variants[i]
		cfg := baseConfig(s, cluster.IBridge)
		cfg.Readahead = ra
		cfg.Trace = true
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		rep := &workload.Report{}
		w := func(cl *cluster.Cluster, p *sim.Proc) {
			f, ferr := cl.FS.Create("ra", s.MPIIOBytes+16*kb)
			if ferr != nil {
				panic(ferr)
			}
			world := mpiio.NewWorld(cl.Engine, cl.Client(), f, 64)
			iters := s.MPIIOBytes / (64 * 64 * kb)
			rng := sim.NewRNG(3)
			rngs := make([]*sim.RNG, 64)
			for i := range rngs {
				rngs[i] = rng.Fork()
			}
			pass := func(r *mpiio.Rank) {
				for k := int64(0); k < iters; k++ {
					r.Compute(rngs[r.ID].Duration(0, workload.DefaultJitter))
					r.ReadAt(k*64*64*kb+int64(r.ID)*64*kb+10*kb, 64*kb)
				}
			}
			done := world.Spawn("ra", func(r *mpiio.Rank) {
				pass(r) // warm
				r.Barrier()
				r.Compute(5 * sim.Second)
				r.Barrier()
				if r.ID == 0 {
					for _, col := range cl.Collectors {
						col.Reset()
					}
					rep.Start = r.P.Now()
				}
				r.Barrier()
				pass(r)
				r.Barrier()
				if r.ID == 0 {
					rep.End = r.P.Now()
					rep.Bytes = iters * 64 * 64 * kb
				}
			})
			done.Wait(p)
		}
		res, err := c.Run(w)
		if err != nil {
			return nil, err
		}
		name := "no readahead (default)"
		if ra {
			name = "readahead 128KB"
		}
		top := res.Blocks.TopSizes(1)
		topStr := "-"
		if len(top) > 0 {
			topStr = fmt.Sprintf("%d sectors (%.0f%%)", top[0].Sectors, top[0].Fraction*100)
		}
		return []string{name, mbps(rep.ThroughputMBps()), topStr,
			fmt.Sprintf("%.0f", res.Blocks.MeanSectors())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Note("readahead nudges the dispatch stream toward full windows and raises throughput; the effect is bounded here because jittered arrival order breaks the sequential-detection streaks that fully-synchronous testbeds sustain (EXPERIMENTS.md D3)")
	return t, nil
}
