package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell, stripping %, x, and unit suffixes.
func cell(t *testing.T, tbl [][]string, row, col int) float64 {
	t.Helper()
	s := tbl[row][col]
	s = strings.TrimSuffix(s, "%")
	s = strings.Fields(s)[0]
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric: %v", row, col, tbl[row][col], err)
	}
	return v
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"smoke", "small", "medium", "full"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ScaleByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig2a", "fig2b", "fig2hist", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ablation-magnification", "ablation-partition", "ablation-ewma",
		"ablation-ssdlog", "ablation-writeback",
	}
	have := map[string]bool{}
	for _, id := range List() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, err := Run("nope", Smoke); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// The shape tests below run the cheap experiments at Smoke scale and
// assert the qualitative claims the paper makes — the reproduction's
// regression suite.

func TestShapeTable1(t *testing.T) {
	tbl, err := Run("table1", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// Each row's measured unaligned% within 3 points of the paper's.
	for r := range tbl.Rows {
		if d := cell(t, tbl.Rows, r, 1) - cell(t, tbl.Rows, r, 2); d > 3 || d < -3 {
			t.Errorf("row %d unaligned off by %.1f points", r, d)
		}
	}
}

func TestShapeTable2(t *testing.T) {
	tbl, err := Run("table2", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// SSD columns within 10% of the paper's.
	for r := range tbl.Rows {
		got, want := cell(t, tbl.Rows, r, 1), cell(t, tbl.Rows, r, 2)
		if got < 0.9*want || got > 1.1*want {
			t.Errorf("SSD %s = %.0f, paper %.0f", tbl.Rows[r][0], got, want)
		}
	}
	// HDD sequential rows match; random rows must be far below them.
	if got := cell(t, tbl.Rows, 0, 3); got < 80 || got > 90 {
		t.Errorf("HDD seq read = %.1f, want ≈85", got)
	}
	if seq, rnd := cell(t, tbl.Rows, 0, 3), cell(t, tbl.Rows, 1, 3); rnd > seq/10 {
		t.Errorf("HDD random read %.1f not ≪ sequential %.1f", rnd, seq)
	}
}

func TestShapeFig2a(t *testing.T) {
	tbl, err := Run("fig2a", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// Aligned column (1) clearly above every unaligned column (2..5).
	for r := range tbl.Rows {
		aligned := cell(t, tbl.Rows, r, 1)
		for c := 2; c <= 5; c++ {
			if v := cell(t, tbl.Rows, r, c); v > 0.8*aligned {
				t.Errorf("row %s col %d: unaligned %.1f not below aligned %.1f",
					tbl.Rows[r][0], c, v, aligned)
			}
		}
	}
}

func TestShapeFig9(t *testing.T) {
	tbl, err := Run("fig9", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// Execution-time reduction of at least 30% at every process count
	// (paper: 45–61%).
	for r := range tbl.Rows {
		if red := cell(t, tbl.Rows, r, 6); red < 30 {
			t.Errorf("procs %s: reduction %.0f%% below 30%%", tbl.Rows[r][0], red)
		}
	}
}

func TestShapeFig10(t *testing.T) {
	tbl, err := Run("fig10", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// iBridge <= SSD-only < disk-only.
	for r := range tbl.Rows {
		disk, ssdOnly, ib := cell(t, tbl.Rows, r, 1), cell(t, tbl.Rows, r, 2), cell(t, tbl.Rows, r, 3)
		if !(ib <= ssdOnly*1.02 && ssdOnly < disk) {
			t.Errorf("procs %s: ordering violated: disk %.1f ssd %.1f ib %.1f",
				tbl.Rows[r][0], disk, ssdOnly, ib)
		}
	}
}

func TestShapeFig11(t *testing.T) {
	tbl, err := Run("fig11", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// I/O time non-increasing as capacity grows.
	prev := cell(t, tbl.Rows, 0, 1)
	for r := 1; r < len(tbl.Rows); r++ {
		v := cell(t, tbl.Rows, r, 1)
		if v > prev*1.05 {
			t.Errorf("I/O time rose with capacity at row %d: %.1f after %.1f", r, v, prev)
		}
		prev = v
	}
	// Zero capacity must cost much more than full capacity.
	first, last := cell(t, tbl.Rows, 0, 1), cell(t, tbl.Rows, len(tbl.Rows)-1, 1)
	if first < 3*last {
		t.Errorf("0-capacity I/O time %.1f not ≫ full-capacity %.1f", first, last)
	}
}

func TestShapeFig13(t *testing.T) {
	tbl, err := Run("fig13", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput and SSD usage both increase with the threshold.
	for r := 1; r < len(tbl.Rows); r++ {
		if cell(t, tbl.Rows, r, 1) < cell(t, tbl.Rows, r-1, 1)*0.95 {
			t.Errorf("throughput fell at threshold %s", tbl.Rows[r][0])
		}
		if cell(t, tbl.Rows, r, 3) <= cell(t, tbl.Rows, r-1, 3) {
			t.Errorf("SSD usage did not grow at threshold %s", tbl.Rows[r][0])
		}
	}
}

func TestShapeAblationMagnification(t *testing.T) {
	tbl, err := Run("ablation-magnification", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	on, off := cell(t, tbl.Rows, 0, 1), cell(t, tbl.Rows, 1, 1)
	if on <= off {
		t.Errorf("magnification on (%.1f) not above off (%.1f)", on, off)
	}
	if cell(t, tbl.Rows, 0, 2) <= cell(t, tbl.Rows, 1, 2) {
		t.Error("magnification did not increase fragment admissions")
	}
}

func TestShapeAblationSSDLog(t *testing.T) {
	tbl, err := Run("ablation-ssdlog", Smoke)
	if err != nil {
		t.Fatal(err)
	}
	logIO, scatterIO := cell(t, tbl.Rows, 0, 2), cell(t, tbl.Rows, 1, 2)
	if logIO >= scatterIO {
		t.Errorf("log-structured I/O time %.1f not below scattered %.1f", logIO, scatterIO)
	}
}
