// Package core implements iBridge, the paper's contribution: a hybrid
// disk+SSD storage stack for parallel file system data servers that
// redirects fragments (small sub-requests of large striped requests) and
// regular random requests to an SSD cache when a dynamic
// resource-effectiveness analysis predicts a positive return.
//
// The package provides:
//
//   - the return-value model of Eqs. (1)–(3): a decayed average disk
//     service time T updated per request from the disk model
//     (D_to_T(Δλ) + R + size/B), the return T_ret of SSD-serving a
//     request, and the striping-magnification boost for fragments whose
//     disk is currently the slowest among the parent's servers;
//   - the T-value exchange through the metadata server (each data server
//     reports its T every second; the metadata server broadcasts the
//     vector back);
//   - the SSD cache: a mapping table from disk extents to locations in a
//     log-structured SSD region, dirty tracking, per-class (regular
//     random vs fragment) LRU lists, and the dynamic partition of SSD
//     space proportional to the classes' average recorded returns;
//   - the maintenance daemon that stages read data into the SSD and
//     writes dirty data back to the disk in long sequential runs during
//     idle device periods.
package core

import "repro/internal/sim"

// Class partitions cached data into the paper's two request types.
type Class int

// The two SSD-cache client classes.
const (
	ClassRandom   Class = 0 // regular random requests
	ClassFragment Class = 1 // fragments of striped parents
)

func (c Class) String() string {
	if c == ClassRandom {
		return "random"
	}
	return "fragment"
}

// Config tunes an iBridge instance. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// SSDCapacity is the size in bytes of the SSD cache partition
	// (10 GB in the paper's evaluation).
	SSDCapacity int64
	// EWMAOld and EWMANew are the Eq. (1) weights for the previous
	// average and the new sample (1/8 and 7/8, the values the paper
	// borrows from Linux anticipatory scheduling).
	EWMAOld, EWMANew float64
	// Magnification enables the Eq. (3) striping-magnification boost
	// for fragments on the currently slowest sibling disk. Disabling
	// it is the A1 ablation.
	Magnification bool
	// DynamicPartition partitions SSD space between the classes
	// proportionally to their average recorded return values; when
	// false, StaticFragShare fixes the fragment share (Fig. 12's 1:1
	// and 1:2 static configurations).
	DynamicPartition bool
	StaticFragShare  float64
	// LogStructured appends SSD writes to a log-managed region (the
	// paper's design); false places them at scattered locations (A4
	// ablation), paying the SSD's random-write penalty.
	LogStructured bool
	// TablePersist models the mapping table's dirty-entry updates
	// being journalled with each SSD write (one extra sector appended
	// to the log record).
	TablePersist bool
	// ReportPeriod is how often each server reports its T value to the
	// metadata server for broadcast (1 s in the paper).
	ReportPeriod sim.Duration
	// IdleCheck is the maintenance daemon's polling period, and
	// IdleAfter how long both devices must have been quiet before the
	// daemon stages reads or writes back dirty data.
	IdleCheck sim.Duration
	IdleAfter sim.Duration
	// WritebackBatch bounds how many dirty extents one idle pass
	// writes back before re-checking for foreground traffic.
	WritebackBatch int
	// WritebackMinDirty is the dirty fraction of the cache above which
	// idle writeback engages. Below it, dirty data waits for real
	// pressure or program termination: under a continuously loaded
	// disk, "idle" windows are brief anticipation gaps, and a random
	// writeback write in one delays the next foreground request (the
	// A5 ablation measures this).
	WritebackMinDirty float64
	// StageQueueMax bounds the pending read-staging queue.
	StageQueueMax int
}

// DefaultConfig returns the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{
		SSDCapacity:       10 << 30,
		EWMAOld:           1.0 / 8.0,
		EWMANew:           7.0 / 8.0,
		Magnification:     true,
		DynamicPartition:  true,
		StaticFragShare:   0.5,
		LogStructured:     true,
		TablePersist:      true,
		ReportPeriod:      sim.Second,
		IdleCheck:         2 * sim.Millisecond,
		IdleAfter:         sim.Millisecond,
		WritebackBatch:    32,
		WritebackMinDirty: 0.5,
		StageQueueMax:     4096,
	}
}

// Stats accumulates per-bridge iBridge statistics.
type Stats struct {
	// Bytes of user I/O served by each medium.
	SSDReadBytes   int64
	SSDWriteBytes  int64
	DiskReadBytes  int64
	DiskWriteBytes int64
	// Cache behaviour.
	Hits       int64
	Misses     int64
	Admissions [2]int64 // per Class
	Evictions  int64
	Rejections int64 // positive-return requests that could not fit
	// Offload decisions split by whether the Eq. (3) striping
	// magnification contributed to the positive return.
	BoostedOffloads int64
	PlainOffloads   int64
	// Background traffic.
	StagedBytes    int64
	WritebackBytes int64
	// PeakUsage is the maximum cache occupancy in bytes (the paper's
	// Fig. 13 "SSD usage" metric).
	PeakUsage int64
	// SSDFailures counts injected SSD-device failures survived by
	// degrading to the disk path (fault-plan chaos runs).
	SSDFailures int64
}

// SSDServedBytes returns user bytes served at the SSD.
func (s *Stats) SSDServedBytes() int64 { return s.SSDReadBytes + s.SSDWriteBytes }

// TotalServedBytes returns all user bytes served by this bridge.
func (s *Stats) TotalServedBytes() int64 {
	return s.SSDServedBytes() + s.DiskReadBytes + s.DiskWriteBytes
}

// SSDFraction returns the fraction of user bytes served at the SSD (the
// paper reports 19%/10%/4% for 33/65/129 KB mpi-io-test requests).
func (s *Stats) SSDFraction() float64 {
	t := s.TotalServedBytes()
	if t == 0 {
		return 0
	}
	return float64(s.SSDServedBytes()) / float64(t)
}

// Add folds other into s (for cluster-wide aggregation).
func (s *Stats) Add(other *Stats) {
	s.SSDReadBytes += other.SSDReadBytes
	s.SSDWriteBytes += other.SSDWriteBytes
	s.DiskReadBytes += other.DiskReadBytes
	s.DiskWriteBytes += other.DiskWriteBytes
	s.Hits += other.Hits
	s.Misses += other.Misses
	for i := range s.Admissions {
		s.Admissions[i] += other.Admissions[i]
	}
	s.Evictions += other.Evictions
	s.Rejections += other.Rejections
	s.BoostedOffloads += other.BoostedOffloads
	s.PlainOffloads += other.PlainOffloads
	s.StagedBytes += other.StagedBytes
	s.WritebackBytes += other.WritebackBytes
	s.PeakUsage += other.PeakUsage
	s.SSDFailures += other.SSDFailures
}
