package core

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/sim"
)

func newTestDisk(e *sim.Engine) *hdd.Disk {
	return hdd.New(e, "hdd0", hdd.DefaultSpec(), sim.NewRNG(1))
}

func TestTrackerEq1Update(t *testing.T) {
	e := sim.New()
	d := newTestDisk(e)
	trk := newTracker(d, 1.0/8, 7.0/8)
	r := device.Request{Op: device.Read, LBN: 1 << 28, Sectors: 8}
	sample := trk.sample(r)
	want := 0*1.0/8 + sample*7.0/8
	trk.servedAtDisk(r)
	if math.Abs(trk.T()-want) > 1e-12 {
		t.Fatalf("T = %v, want %v", trk.T(), want)
	}
	if trk.prevLBN != r.End() {
		t.Fatalf("λ = %d, want %d", trk.prevLBN, r.End())
	}
}

func TestTrackerEq2NoUpdate(t *testing.T) {
	e := sim.New()
	d := newTestDisk(e)
	trk := newTracker(d, 1.0/8, 7.0/8)
	trk.servedAtDisk(device.Request{Op: device.Read, LBN: 1 << 28, Sectors: 8})
	tBefore, lBefore := trk.T(), trk.prevLBN
	trk.servedAtSSD()
	if trk.T() != tBefore || trk.prevLBN != lBefore {
		t.Fatal("SSD-served request changed T or λ (violates Eq. 2)")
	}
}

func TestTrackerSampleDependsOnSeekDistance(t *testing.T) {
	e := sim.New()
	d := newTestDisk(e)
	trk := newTracker(d, 1.0/8, 7.0/8)
	trk.prevLBN = 1 << 20
	near := trk.sample(device.Request{Op: device.Read, LBN: 1 << 20, Sectors: 8})
	far := trk.sample(device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 8})
	if near >= far {
		t.Fatalf("near sample %v not below far sample %v", near, far)
	}
}

func TestTrackerConvergesToSteadySample(t *testing.T) {
	// Feeding identical random-ish samples must converge T to the
	// sample value, fast given the 7/8 new-sample weight.
	e := sim.New()
	d := newTestDisk(e)
	trk := newTracker(d, 1.0/8, 7.0/8)
	r := device.Request{Op: device.Read, LBN: 1 << 28, Sectors: 8}
	var s float64
	for i := 0; i < 10; i++ {
		trk.prevLBN = 0 // force the same seek distance each time
		s = trk.sample(r)
		trk.servedAtDisk(r)
		trk.prevLBN = 0
	}
	if math.Abs(trk.T()-s)/s > 1e-6 {
		t.Fatalf("T = %v did not converge to sample %v", trk.T(), s)
	}
}

func TestMagnificationBoostWhenSlowest(t *testing.T) {
	view := []float64{0.002, 0.001, 0.003}
	// Server 0's current T (0.010) is the strict max vs siblings 1,2.
	got := magnification(0.010, 0, []int{1, 2}, view)
	want := (0.010 - 0.003) * 2 // (T_max − T_sec_max) · n
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("boost = %v, want %v", got, want)
	}
}

func TestMagnificationZeroWhenNotSlowest(t *testing.T) {
	view := []float64{0.002, 0.050, 0.003}
	if got := magnification(0.010, 0, []int{1, 2}, view); got != 0 {
		t.Fatalf("boost = %v, want 0 (sibling 1 is slower)", got)
	}
	// Tie also yields no boost (not strict max).
	view[1] = 0.010
	if got := magnification(0.010, 0, []int{1, 2}, view); got != 0 {
		t.Fatalf("boost = %v, want 0 on tie", got)
	}
}

func TestMagnificationNoSiblings(t *testing.T) {
	if got := magnification(0.010, 0, nil, []float64{0.1}); got != 0 {
		t.Fatalf("boost = %v, want 0 with no siblings", got)
	}
}

func TestMagnificationIgnoresOutOfRangeSiblings(t *testing.T) {
	// A sibling id outside the view (e.g. server not registered) must
	// not panic and must not contribute.
	view := []float64{0.002, 0.001}
	got := magnification(0.010, 0, []int{1, 5}, view)
	want := (0.010 - 0.001) * 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("boost = %v, want %v", got, want)
	}
}

func TestExchangeBroadcastStaleness(t *testing.T) {
	e := sim.New()
	x := NewExchange(e, sim.Second)
	d := newTestDisk(e)
	rng := sim.NewRNG(2)
	diskQ := newDiskQueue(e, d)
	ssdQ := newSSDQueue(e, "ssd0")
	cfg := DefaultConfig()
	b := NewBridge(e, cfg, 0, d, diskQ, ssdQ, x, rng)
	x.Start()
	e.Go("main", func(p *sim.Proc) {
		// Drive T up via a disk-served request.
		b.trk.servedAtDisk(device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 8})
		if x.View()[0] != 0 {
			t.Error("view updated before broadcast period")
		}
		p.Sleep(sim.Second + sim.Millisecond)
		if x.View()[0] != b.T() {
			t.Errorf("view = %v after broadcast, want %v", x.View()[0], b.T())
		}
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
