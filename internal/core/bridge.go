package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Bridge is one data server's iBridge storage stack: a hard disk behind a
// merging elevator, an SSD behind a Noop queue, the return-value model,
// and the SSD cache. It implements pfs.Store.
type Bridge struct {
	e      *sim.Engine
	cfg    Config
	server int

	diskQ *iosched.Queue
	disk  *hdd.Disk
	ssdQ  *iosched.Queue

	trk  *tracker
	exch *Exchange

	table extentMap
	lru   [2]lruList
	usage [2]int64 // cached sectors per class
	// Running sums of recorded return values over cached entries, for
	// the dynamic partition (averages per class).
	retSum [2]float64
	retCnt [2]int64
	alloc  *logAlloc

	stage []stageItem

	journal journal

	// ssdFailed latches after an injected SSD-device failure: the cache
	// is drained and dropped once, and every later request takes the
	// disk path — graceful degradation, never data loss.
	ssdFailed bool

	stats Stats

	// Observability sinks; all nil when disabled, so the hot path pays
	// one branch per decision point.
	m    *obs.BridgeMetrics
	tr   *obs.Tracer
	run  int32
	comp string
}

// SetObs installs the observability sinks (either may be nil). run
// labels the cluster instance in trace output. Call before the
// simulation runs.
func (b *Bridge) SetObs(m *obs.BridgeMetrics, tr *obs.Tracer, run int32) {
	b.m = m
	b.tr = tr
	b.run = run
}

type stageItem struct {
	lbn     int64
	sectors int64
	ret     float64
	class   Class
}

// capSectors converts the configured capacity to sectors.
func (b *Bridge) capSectors() int64 { return b.cfg.SSDCapacity / device.SectorSize }

// NewBridge assembles an iBridge stack for one data server. serverID must
// be the pfs server index; exch may be nil for a standalone bridge (no
// magnification data). diskQ must wrap disk; ssdQ must wrap the SSD.
func NewBridge(e *sim.Engine, cfg Config, serverID int, disk *hdd.Disk, diskQ, ssdQ *iosched.Queue, exch *Exchange, rng *sim.RNG) *Bridge {
	if cfg.EWMAOld+cfg.EWMANew == 0 {
		panic("core: zero EWMA weights")
	}
	b := &Bridge{
		e:      e,
		cfg:    cfg,
		server: serverID,
		diskQ:  diskQ,
		disk:   disk,
		ssdQ:   ssdQ,
		trk:    newTracker(disk, cfg.EWMAOld, cfg.EWMANew),
		exch:   exch,
		alloc:  newLogAlloc(cfg.SSDCapacity/device.SectorSize, cfg.LogStructured, rng),
		comp:   fmt.Sprintf("bridge%d", serverID),
	}
	if exch != nil {
		exch.Register(b)
	}
	e.Go(fmt.Sprintf("ibridge-maint:srv%d", serverID), b.maintain)
	return b
}

// T returns the bridge's current decayed average disk service time.
func (b *Bridge) T() float64 { return b.trk.T() }

// Stats returns the bridge's statistics.
func (b *Bridge) Stats() *Stats { return &b.stats }

// Usage returns the cache occupancy in bytes per class.
func (b *Bridge) Usage() (random, fragment int64) {
	return b.usage[ClassRandom] * device.SectorSize, b.usage[ClassFragment] * device.SectorSize
}

// allocFor returns the partition size in sectors for the given class:
// proportional to the classes' average recorded returns when dynamic
// (with a 10% floor each), or the static split.
func (b *Bridge) allocFor(c Class) int64 {
	total := b.capSectors()
	fragShare := b.cfg.StaticFragShare
	if b.cfg.DynamicPartition {
		avg := [2]float64{}
		for i := range avg {
			if b.retCnt[i] > 0 {
				avg[i] = b.retSum[i] / float64(b.retCnt[i])
			}
		}
		switch {
		case avg[0]+avg[1] <= 0:
			fragShare = 0.5
		default:
			fragShare = avg[ClassFragment] / (avg[ClassRandom] + avg[ClassFragment])
		}
		if fragShare < 0.1 {
			fragShare = 0.1
		}
		if fragShare > 0.9 {
			fragShare = 0.9
		}
	}
	if c == ClassFragment {
		return int64(float64(total) * fragShare)
	}
	return int64(float64(total) * (1 - fragShare))
}

// classify returns the cache class of a redirectable request.
func classify(r *pfs.IORequest) Class {
	if r.Fragment {
		return ClassFragment
	}
	return ClassRandom
}

// evalReturn computes T_ret (or T_ret_frag for fragments) in seconds for
// request r arriving now, alongside the Eq. (3) magnification component
// of it (0 when this server is not the parent's bottleneck).
func (b *Bridge) evalReturn(r *pfs.IORequest) (ret, boost float64) {
	req := r.Request()
	ret = b.trk.hypothetical(req) - b.trk.T()
	if r.Fragment && b.cfg.Magnification && b.exch != nil {
		boost = magnification(b.trk.T(), b.server, r.Siblings, b.exch.View())
		ret += boost
	}
	return ret, boost
}

// countOffload records one committed positive-return redirect, split by
// whether the Eq. (3) boost contributed.
func (b *Bridge) countOffload(ret, boost float64) {
	if boost > 0 {
		b.stats.BoostedOffloads++
	} else {
		b.stats.PlainOffloads++
	}
	if b.m != nil {
		if boost > 0 {
			b.m.BoostedOffloads.Inc()
		} else {
			b.m.PlainOffloads.Inc()
		}
		b.m.Return.Observe(ret * 1e3)
	}
}

// Serve implements pfs.Store.
func (b *Bridge) Serve(p *sim.Proc, r *pfs.IORequest) {
	if r.Op == device.Read {
		b.serveRead(p, r)
	} else {
		b.serveWrite(p, r)
	}
}

func (b *Bridge) serveRead(p *sim.Proc, r *pfs.IORequest) {
	// Cache lookup: fully covered reads are served from the SSD.
	if segs, ok := b.table.covered(r.LBN, r.Sectors); ok && !b.ssdFailed {
		for _, s := range segs {
			b.ssdQ.Submit(p, device.Request{Op: device.Read, LBN: s.ssdLBN, Sectors: s.n})
			b.lru[s.e.class].touch(s.e)
		}
		b.stats.Hits++
		b.stats.SSDReadBytes += r.Bytes
		b.trk.servedAtSSD()
		if b.m != nil {
			b.m.Hits.Inc()
		}
		if b.tr != nil {
			b.tr.Instant(p.Now(), b.run, b.comp, "ssd-hit", r.ID)
		}
		return
	}
	b.stats.Misses++
	if b.m != nil {
		b.m.Misses.Inc()
	}
	// Any dirty cached pieces must come from the SSD even on a miss.
	for _, s := range b.table.dirtyOverlaps(r.LBN, r.Sectors) {
		b.ssdQ.Submit(p, device.Request{Op: device.Read, LBN: s.ssdLBN, Sectors: s.n})
	}
	candidate := (r.Fragment || r.Random) && !b.ssdFailed
	var ret, boost float64
	if candidate {
		ret, boost = b.evalReturn(r)
	}
	req := r.Request()
	b.diskQ.Submit(p, req)
	b.trk.servedAtDisk(req)
	b.stats.DiskReadBytes += r.Bytes
	if b.tr != nil {
		b.tr.Instant(p.Now(), b.run, b.comp, "disk-read", r.ID)
	}
	// The data is now in memory; if redirecting it would have paid off,
	// stage it into the SSD during the next idle period so future runs
	// hit (Section II-B's read path).
	if candidate && ret > 0 && len(b.stage) < b.cfg.StageQueueMax {
		b.stage = append(b.stage, stageItem{lbn: r.LBN, sectors: r.Sectors, ret: ret, class: classify(r)})
		b.countOffload(ret, boost)
		if b.tr != nil {
			b.tr.Instant(p.Now(), b.run, b.comp, "stage-queued", r.ID)
		}
	}
}

func (b *Bridge) serveWrite(p *sim.Proc, r *pfs.IORequest) {
	candidate := (r.Fragment || r.Random) && !b.ssdFailed
	if candidate {
		if ret, boost := b.evalReturn(r); ret > 0 {
			if b.writeToSSD(p, r, ret, classify(r)) {
				b.trk.servedAtSSD()
				b.stats.SSDWriteBytes += r.Bytes
				b.countOffload(ret, boost)
				if b.tr != nil {
					name := "ssd-offload"
					if boost > 0 {
						name = "ssd-offload-boosted"
					}
					b.tr.Instant(p.Now(), b.run, b.comp, name, r.ID)
				}
				return
			}
			b.stats.Rejections++
			if b.m != nil {
				b.m.Rejections.Inc()
			}
			if b.tr != nil {
				b.tr.Instant(p.Now(), b.run, b.comp, "ssd-reject", r.ID)
			}
		}
	}
	// Disk path: anything cached for this range is now stale.
	b.invalidate(r.LBN, r.Sectors)
	req := r.Request()
	b.diskQ.Submit(p, req)
	b.trk.servedAtDisk(req)
	b.stats.DiskWriteBytes += r.Bytes
	if b.tr != nil {
		b.tr.Instant(p.Now(), b.run, b.comp, "disk-write", r.ID)
	}
}

// writeToSSD admits a write into the cache: evicts within the class
// partition, appends to the SSD log, and records the mapping. Returns
// false if space cannot be made.
func (b *Bridge) writeToSSD(p *sim.Proc, r *pfs.IORequest, ret float64, c Class) bool {
	need := r.Sectors
	if b.cfg.TablePersist {
		need++ // journalled mapping-table record rides along
	}
	if !b.makeRoom(p, c, need) {
		return false
	}
	// Overwritten cached data is superseded.
	b.invalidate(r.LBN, r.Sectors)
	at, ok := b.alloc.alloc(need)
	if !ok {
		return false
	}
	b.ssdQ.Submit(p, device.Request{Op: device.Write, LBN: at, Sectors: need})
	// The mapping covers the data sectors only; the journalled table
	// record (if any) is allocator overhead owned by the entry's span.
	e := &entry{lbn: r.LBN, sectors: r.Sectors, ssdLBN: at, dirty: true, class: c, ret: ret}
	e.spanAt, e.spanN = at, need
	b.admit(e)
	return true
}

// admit links a fully initialized entry into the table, LRU list, and
// accounting, journalling the mapping (the paper's immediate table
// persistence).
func (b *Bridge) admit(e *entry) {
	b.journal.insert(e)
	b.table.insert(e)
	b.lru[e.class].pushMRU(e)
	b.usage[e.class] += e.sectors
	b.retSum[e.class] += e.ret
	b.retCnt[e.class]++
	b.stats.Admissions[e.class]++
	u := (b.usage[0] + b.usage[1]) * device.SectorSize
	if u > b.stats.PeakUsage {
		b.stats.PeakUsage = u
	}
	if b.m != nil {
		b.m.Occupancy.Set(u)
	}
}

// makeRoom evicts LRU entries of class c until need sectors fit within
// the class partition. Dirty victims are written back first.
func (b *Bridge) makeRoom(p *sim.Proc, c Class, need int64) bool {
	limit := b.allocFor(c)
	if need > limit {
		return false
	}
	for b.usage[c]+need > limit {
		victim := b.lru[c].head
		if victim == nil {
			return false
		}
		if victim.dirty {
			b.writebackEntry(p, victim)
		}
		b.dropEntry(victim)
		b.stats.Evictions++
		if b.m != nil {
			b.m.Evictions.Inc()
		}
	}
	return true
}

// invalidate punches [lbn, lbn+sectors) out of the cache, dropping
// superseded data without writeback.
func (b *Bridge) invalidate(lbn, sectors int64) {
	// Only journal drops that touch existing mappings.
	if lo, hi := b.table.overlapRange(lbn, sectors); hi > lo {
		b.journal.drop(lbn, sectors)
	}
	out := b.table.punch(lbn, sectors, func(e *entry) {
		// A split created a new right-hand entry: link it and account
		// for it. Its span bookkeeping stays with the original entry's
		// allocator span, so mark it spanless.
		b.lru[e.class].pushMRU(e)
		b.usage[e.class] += e.sectors
		b.retSum[e.class] += e.ret
		b.retCnt[e.class]++
	})
	for _, e := range out.removed {
		b.lru[e.class].remove(e)
		b.usage[e.class] -= e.sectors
		b.retSum[e.class] -= e.ret
		b.retCnt[e.class]--
		if e.spanN > 0 {
			b.alloc.release(e.spanAt, e.spanN)
			e.spanN = 0
		}
	}
	for cls, n := range out.freedSectors {
		b.usage[cls] -= n
	}
	// Note: trimmed portions of surviving entries keep their allocator
	// span until the whole entry is dropped; the usage counters above
	// govern partition pressure.
}

// dropEntry removes e from the table, LRU, and accounting, releasing its
// allocator span.
func (b *Bridge) dropEntry(e *entry) {
	b.journal.drop(e.lbn, e.sectors)
	if i := b.table.indexOf(e); i >= 0 {
		b.table.removeAt(i)
	}
	b.lru[e.class].remove(e)
	b.usage[e.class] -= e.sectors
	b.retSum[e.class] -= e.ret
	b.retCnt[e.class]--
	if e.spanN > 0 {
		b.alloc.release(e.spanAt, e.spanN)
		e.spanN = 0
	}
}

// writebackEntry copies one dirty extent from the SSD back to the disk
// (SSD read + disk write) and marks it clean. Writeback traffic does not
// update the tracker: the paper's T averages over requests *arriving* at
// the server, not the internal cache maintenance.
func (b *Bridge) writebackEntry(p *sim.Proc, e *entry) {
	b.ssdQ.Submit(p, device.Request{Op: device.Read, LBN: e.ssdLBN, Sectors: e.sectors})
	b.diskQ.Submit(p, device.Request{Op: device.Write, LBN: e.lbn, Sectors: e.sectors})
	e.dirty = false
	b.journal.clean(e)
	b.stats.WritebackBytes += e.sectors * device.SectorSize
	if b.m != nil {
		b.m.Writebacks.Inc()
	}
}

// idle reports whether both devices have been quiet long enough for
// background work.
func (b *Bridge) idle(now sim.Time) bool {
	quiet := now.Add(-b.cfg.IdleAfter)
	return b.diskQ.Pending() == 0 && b.ssdQ.Pending() == 0 &&
		b.disk.IdleSince() <= quiet
}

// maintain is the background daemon: during idle device periods it first
// stages queued read data into the SSD, then writes dirty data back to
// the disk in LBN order (long sequential runs).
func (b *Bridge) maintain(p *sim.Proc) {
	for {
		p.Sleep(b.cfg.IdleCheck)
		if b.ssdFailed {
			continue // no cache left to maintain
		}
		// Stage queued read data while the devices stay quiet.
		for len(b.stage) > 0 && b.idle(p.Now()) {
			it := b.stage[0]
			b.stage = b.stage[1:]
			b.stageOne(p, it)
		}
		if !b.idle(p.Now()) {
			continue
		}
		// Write back only under dirty pressure; otherwise dirty data
		// waits for eviction pressure or the final flush.
		if float64(b.DirtySectors()) >= b.cfg.WritebackMinDirty*float64(b.capSectors()) {
			b.writebackPass(p, b.cfg.WritebackBatch)
		}
	}
}

// stageOne admits one read-staged extent into the cache as clean data.
func (b *Bridge) stageOne(p *sim.Proc, it stageItem) {
	if _, ok := b.table.covered(it.lbn, it.sectors); ok {
		return // already cached meanwhile
	}
	need := it.sectors
	if b.cfg.TablePersist {
		need++
	}
	if !b.makeRoom(p, it.class, need) {
		return
	}
	b.invalidate(it.lbn, it.sectors)
	at, ok := b.alloc.alloc(need)
	if !ok {
		return
	}
	b.ssdQ.Submit(p, device.Request{Op: device.Write, LBN: at, Sectors: need})
	e := &entry{lbn: it.lbn, sectors: it.sectors, ssdLBN: at, class: it.class, ret: it.ret}
	e.spanAt, e.spanN = at, need
	b.admit(e)
	b.stats.StagedBytes += it.sectors * device.SectorSize
	if b.m != nil {
		b.m.Stages.Inc()
	}
	if b.tr != nil {
		b.tr.Instant(p.Now(), b.run, b.comp, "staged", 0)
	}
}

// writebackPass writes back up to batch dirty extents in ascending LBN
// order, forming sequential disk runs. It yields as soon as foreground
// requests arrive so cache maintenance never blocks application I/O.
// Returns the number written back.
func (b *Bridge) writebackPass(p *sim.Proc, batch int) int {
	n := 0
	for n < batch {
		var victim *entry
		for _, e := range b.table.entries {
			if e.dirty {
				victim = e
				break
			}
		}
		if victim == nil {
			return n
		}
		b.writebackEntry(p, victim)
		n++
		if b.diskQ.Pending() > 0 || b.ssdQ.Pending() > 0 {
			return n // foreground traffic arrived: yield
		}
	}
	return n
}

// Flush implements pfs.Store: write back all dirty cached data. The
// paper includes this in measured execution time.
func (b *Bridge) Flush(p *sim.Proc) {
	for {
		if b.writebackPass(p, 1<<30) == 0 {
			return
		}
	}
}

// FailSSD simulates an SSD-device failure at the current simulated time:
// dirty data is written back once (a controlled firmware degrade, not
// torn metadata), every mapping is dropped, staged work is discarded,
// and from then on the bridge serves everything from the disk. Eq. (2)'s
// observation that the SSD leaves the disk's T unchanged is what makes
// this a clean fallback: the cluster loses the acceleration, never the
// bytes.
func (b *Bridge) FailSSD(p *sim.Proc) {
	if b.ssdFailed {
		return
	}
	b.Flush(p)
	for len(b.table.entries) > 0 {
		b.dropEntry(b.table.entries[0])
	}
	b.stage = b.stage[:0]
	b.ssdFailed = true
	b.stats.SSDFailures++
	if b.tr != nil {
		b.tr.Instant(p.Now(), b.run, b.comp, "ssd-failed", 0)
	}
}

// SSDFailed reports whether this bridge's SSD device has failed.
func (b *Bridge) SSDFailed() bool { return b.ssdFailed }

// DirtySectors returns the number of dirty cached sectors (for tests).
func (b *Bridge) DirtySectors() int64 {
	var n int64
	for _, e := range b.table.entries {
		if e.dirty {
			n += e.sectors
		}
	}
	return n
}

var _ pfs.Store = (*Bridge)(nil)
