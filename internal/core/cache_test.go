package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLogAllocSequentialAppend(t *testing.T) {
	a := newLogAlloc(1000, true, sim.NewRNG(1))
	at1, ok1 := a.alloc(100)
	at2, ok2 := a.alloc(50)
	if !ok1 || !ok2 {
		t.Fatal("allocation failed")
	}
	if at1 != 0 || at2 != 100 {
		t.Fatalf("allocations at %d,%d; want 0,100 (log append)", at1, at2)
	}
	if a.Used() != 150 {
		t.Fatalf("used = %d", a.Used())
	}
}

func TestLogAllocCapacity(t *testing.T) {
	a := newLogAlloc(100, true, sim.NewRNG(1))
	if _, ok := a.alloc(101); ok {
		t.Fatal("over-capacity allocation succeeded")
	}
	if _, ok := a.alloc(100); !ok {
		t.Fatal("exact-capacity allocation failed")
	}
	if _, ok := a.alloc(1); ok {
		t.Fatal("allocation from a full log succeeded")
	}
}

func TestLogAllocRecycleAfterRelease(t *testing.T) {
	a := newLogAlloc(100, true, sim.NewRNG(1))
	at1, _ := a.alloc(60)
	a.alloc(40)
	a.release(at1, 60)
	at3, ok := a.alloc(50)
	if !ok {
		t.Fatal("recycled allocation failed")
	}
	if at3 != at1 {
		t.Fatalf("recycled at %d, want %d (first fit)", at3, at1)
	}
}

func TestLogAllocCoalescing(t *testing.T) {
	a := newLogAlloc(100, true, sim.NewRNG(1))
	a.alloc(100)
	// Release three adjacent pieces out of order; they must coalesce so
	// a large allocation fits.
	a.release(30, 10)
	a.release(50, 10)
	a.release(40, 10)
	if at, ok := a.alloc(30); !ok || at != 30 {
		t.Fatalf("coalesced alloc = (%d,%v), want (30,true)", at, ok)
	}
}

func TestLogAllocScatteredMode(t *testing.T) {
	a := newLogAlloc(1_000_000, false, sim.NewRNG(7))
	positions := map[int64]bool{}
	for i := 0; i < 50; i++ {
		at, ok := a.alloc(10)
		if !ok {
			t.Fatal("alloc failed")
		}
		positions[at] = true
	}
	if len(positions) < 45 {
		t.Fatalf("scattered mode produced only %d distinct positions", len(positions))
	}
	if a.Used() != 500 {
		t.Fatalf("used = %d", a.Used())
	}
}

func TestLRUOrder(t *testing.T) {
	var l lruList
	a := &entry{lbn: 1}
	b := &entry{lbn: 2}
	c := &entry{lbn: 3}
	l.pushMRU(a)
	l.pushMRU(b)
	l.pushMRU(c)
	if l.head != a || l.tail != c || l.count != 3 {
		t.Fatal("initial order wrong")
	}
	l.touch(a) // a becomes MRU
	if l.head != b || l.tail != a {
		t.Fatal("touch did not move to MRU")
	}
	l.remove(b)
	if l.head != c || l.count != 2 {
		t.Fatal("remove head failed")
	}
	l.remove(a)
	l.remove(c)
	if l.head != nil || l.tail != nil || l.count != 0 {
		t.Fatal("list not empty after removing all")
	}
}

func mkMap(exts ...[2]int64) *extentMap {
	m := &extentMap{}
	for i, x := range exts {
		m.insert(&entry{lbn: x[0], sectors: x[1], ssdLBN: int64(i * 10000)})
	}
	return m
}

func TestCoveredExact(t *testing.T) {
	m := mkMap([2]int64{100, 50})
	segs, ok := m.covered(100, 50)
	if !ok || len(segs) != 1 || segs[0].ssdLBN != 0 || segs[0].n != 50 {
		t.Fatalf("covered = %v, %v", segs, ok)
	}
}

func TestCoveredSubRange(t *testing.T) {
	m := mkMap([2]int64{100, 50})
	segs, ok := m.covered(110, 20)
	if !ok || segs[0].ssdLBN != 10 || segs[0].n != 20 {
		t.Fatalf("sub-range coverage = %v, %v", segs, ok)
	}
}

func TestCoveredAcrossEntries(t *testing.T) {
	m := mkMap([2]int64{100, 50}, [2]int64{150, 50})
	segs, ok := m.covered(120, 60)
	if !ok || len(segs) != 2 {
		t.Fatalf("cross-entry coverage = %v, %v", segs, ok)
	}
	if segs[0].n != 30 || segs[1].n != 30 {
		t.Fatalf("segment lengths = %d,%d", segs[0].n, segs[1].n)
	}
	if segs[1].ssdLBN != 10000 {
		t.Fatalf("second segment ssdLBN = %d", segs[1].ssdLBN)
	}
}

func TestNotCoveredWithGap(t *testing.T) {
	m := mkMap([2]int64{100, 50}, [2]int64{160, 50})
	if _, ok := m.covered(120, 60); ok {
		t.Fatal("gap reported as covered")
	}
	if _, ok := m.covered(0, 10); ok {
		t.Fatal("empty region reported as covered")
	}
	if _, ok := m.covered(140, 30); ok {
		t.Fatal("trailing gap reported as covered")
	}
}

func TestPunchWholeEntry(t *testing.T) {
	m := mkMap([2]int64{100, 50})
	out := m.punch(100, 50, func(*entry) {})
	if len(out.removed) != 1 || m.Len() != 0 {
		t.Fatalf("punch removed %d entries, map has %d", len(out.removed), m.Len())
	}
	if len(out.freed) != 1 || out.freed[0].n != 50 {
		t.Fatalf("freed = %v", out.freed)
	}
}

func TestPunchTail(t *testing.T) {
	m := mkMap([2]int64{100, 50})
	out := m.punch(130, 100, func(*entry) {})
	if len(out.removed) != 0 || m.Len() != 1 {
		t.Fatal("tail punch should shrink, not remove")
	}
	e := m.entries[0]
	if e.lbn != 100 || e.sectors != 30 {
		t.Fatalf("entry after tail punch = [%d,+%d]", e.lbn, e.sectors)
	}
	if out.freedSectors[e.class] != 20 {
		t.Fatalf("freedSectors = %v", out.freedSectors)
	}
}

func TestPunchHead(t *testing.T) {
	m := mkMap([2]int64{100, 50})
	m.punch(50, 70, func(*entry) {})
	e := m.entries[0]
	if e.lbn != 120 || e.sectors != 30 || e.ssdLBN != 20 {
		t.Fatalf("entry after head punch = lbn=%d n=%d ssd=%d", e.lbn, e.sectors, e.ssdLBN)
	}
}

func TestPunchSplit(t *testing.T) {
	m := mkMap([2]int64{100, 50})
	var added []*entry
	out := m.punch(110, 10, func(e *entry) { added = append(added, e) })
	if m.Len() != 2 || len(added) != 1 {
		t.Fatalf("split produced %d entries, %d callbacks", m.Len(), len(added))
	}
	left, right := m.entries[0], m.entries[1]
	if left.lbn != 100 || left.sectors != 10 {
		t.Fatalf("left = [%d,+%d]", left.lbn, left.sectors)
	}
	if right.lbn != 120 || right.sectors != 30 || right.ssdLBN != 20 {
		t.Fatalf("right = lbn=%d n=%d ssd=%d", right.lbn, right.sectors, right.ssdLBN)
	}
	if out.freedSectors[left.class] != 10 {
		t.Fatalf("freedSectors = %v", out.freedSectors)
	}
	// Coverage across the split must now fail.
	if _, ok := m.covered(100, 50); ok {
		t.Fatal("punched range still covered")
	}
	// But the remnants must still be covered.
	if _, ok := m.covered(100, 10); !ok {
		t.Fatal("left remnant lost")
	}
	if _, ok := m.covered(120, 30); !ok {
		t.Fatal("right remnant lost")
	}
}

func TestPunchSpanningMultipleEntries(t *testing.T) {
	m := mkMap([2]int64{100, 50}, [2]int64{150, 50}, [2]int64{200, 50})
	out := m.punch(130, 90, func(*entry) {})
	// Middle entry removed entirely; first loses tail, last loses head.
	if len(out.removed) != 1 || out.removed[0].lbn != 150 {
		t.Fatalf("removed = %v", out.removed)
	}
	if m.Len() != 2 {
		t.Fatalf("map has %d entries", m.Len())
	}
	if m.entries[0].sectors != 30 || m.entries[1].lbn != 220 {
		t.Fatalf("remnants = %v %v", m.entries[0], m.entries[1])
	}
}

func TestDirtyOverlaps(t *testing.T) {
	m := &extentMap{}
	m.insert(&entry{lbn: 100, sectors: 50, dirty: true})
	m.insert(&entry{lbn: 200, sectors: 50, dirty: false})
	segs := m.dirtyOverlaps(120, 150)
	if len(segs) != 1 || segs[0].n != 30 {
		t.Fatalf("dirtyOverlaps = %v", segs)
	}
}

// TestExtentMapInvariant property-checks that after arbitrary insert and
// punch sequences the map stays sorted and non-overlapping.
func TestExtentMapInvariant(t *testing.T) {
	type op struct {
		Punch        bool
		Lbn, Sectors uint16
	}
	if err := quick.Check(func(ops []op) bool {
		m := &extentMap{}
		for _, o := range ops {
			lbn := int64(o.Lbn)
			sectors := int64(o.Sectors%256) + 1
			if o.Punch {
				m.punch(lbn, sectors, func(*entry) {})
			} else {
				m.punch(lbn, sectors, func(*entry) {}) // clear first
				m.insert(&entry{lbn: lbn, sectors: sectors})
			}
			// Invariant: sorted, non-overlapping.
			for i := 1; i < len(m.entries); i++ {
				if m.entries[i-1].end() > m.entries[i].lbn {
					return false
				}
			}
			for _, e := range m.entries {
				if e.sectors <= 0 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageMatchesReference property-checks covered() against a naive
// per-sector reference model.
func TestCoverageMatchesReference(t *testing.T) {
	type op struct {
		Lbn, Sectors uint8
	}
	if err := quick.Check(func(inserts []op, qLbn, qSectors uint8) bool {
		m := &extentMap{}
		ref := map[int64]bool{}
		for _, o := range inserts {
			lbn, n := int64(o.Lbn), int64(o.Sectors%32)+1
			m.punch(lbn, n, func(*entry) {})
			m.insert(&entry{lbn: lbn, sectors: n})
			for s := lbn; s < lbn+n; s++ {
				ref[s] = true
			}
		}
		qn := int64(qSectors%32) + 1
		_, got := m.covered(int64(qLbn), qn)
		want := true
		for s := int64(qLbn); s < int64(qLbn)+qn; s++ {
			if !ref[s] {
				want = false
				break
			}
		}
		return got == want
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
