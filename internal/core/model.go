package core

import (
	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/sim"
)

// tracker maintains the decayed average disk service time T of Eqs. (1)
// and (2) for one data server's disk, together with the location λ of the
// previous disk-served request.
type tracker struct {
	disk    *hdd.Disk
	wOld    float64
	wNew    float64
	tAvg    float64 // seconds
	prevLBN int64
}

func newTracker(disk *hdd.Disk, wOld, wNew float64) *tracker {
	return &tracker{disk: disk, wOld: wOld, wNew: wNew}
}

// sample returns the Eq. (1) service-time sample for request r arriving
// now: D_to_T(λ_i − λ_{i-1}) + R + size/B, in seconds.
func (t *tracker) sample(r device.Request) float64 {
	return t.disk.EstimateFrom(t.prevLBN, r).Seconds()
}

// hypothetical returns what T would become if r were served at the disk
// (Eq. 1), without committing the update.
func (t *tracker) hypothetical(r device.Request) float64 {
	return t.wOld*t.tAvg + t.wNew*t.sample(r)
}

// servedAtDisk commits the Eq. (1) update after r has been sent to the
// disk, and advances λ.
func (t *tracker) servedAtDisk(r device.Request) {
	t.tAvg = t.hypothetical(r)
	t.prevLBN = r.End()
}

// servedAtSSD is Eq. (2): serving at the SSD leaves both T and λ
// untouched.
func (t *tracker) servedAtSSD() {}

// T returns the current decayed average service time in seconds.
func (t *tracker) T() float64 { return t.tAvg }

// Exchange implements the T-value reporting protocol: every ReportPeriod
// each data server's current T is collected at the metadata server and
// the full vector is broadcast back. Between broadcasts, servers see a
// stale snapshot — exactly the paper's once-per-second daemon pair.
type Exchange struct {
	e       *sim.Engine
	period  sim.Duration
	bridges []*Bridge
	view    []float64
	started bool
	// sampler, when non-nil, observes each broadcast (the T_i telemetry
	// hook); it must not mutate the view or block.
	sampler func(now sim.Time, view []float64)
}

// SetSampler installs a broadcast observer (nil disables). Call before
// Start.
func (x *Exchange) SetSampler(fn func(now sim.Time, view []float64)) { x.sampler = fn }

// NewExchange returns an exchange with the given broadcast period.
func NewExchange(e *sim.Engine, period sim.Duration) *Exchange {
	if period <= 0 {
		period = sim.Second
	}
	return &Exchange{e: e, period: period}
}

// Register adds a bridge to the exchange. Bridges must be registered in
// data-server order so that the broadcast vector indexes match the
// sibling-server identifiers carried by fragment requests.
func (x *Exchange) Register(b *Bridge) {
	if x.started {
		panic("core: Register after Start")
	}
	x.bridges = append(x.bridges, b)
	x.view = append(x.view, 0)
}

// Start launches the collection/broadcast daemon.
func (x *Exchange) Start() {
	if x.started || len(x.bridges) == 0 {
		x.started = true
		return
	}
	x.started = true
	x.e.Go("ibridge-exchange", func(p *sim.Proc) {
		for {
			p.Sleep(x.period)
			for i, b := range x.bridges {
				x.view[i] = b.T()
			}
			if x.sampler != nil {
				x.sampler(p.Now(), x.view)
			}
		}
	})
}

// View returns the last broadcast T vector, indexed by server id. The
// caller must not mutate it.
func (x *Exchange) View() []float64 { return x.view }

// magnification computes the Eq. (3) boost for a fragment arriving at
// server self with the given sibling servers: if self's current T is the
// strict maximum among the parent's servers, the return grows by
// (T_max − T_sec_max) · n, with n the sibling count. The comparison uses
// self's *current* T but the siblings' *broadcast* (possibly stale) T
// values, as in the paper.
func magnification(selfT float64, self int, siblings []int, view []float64) float64 {
	if len(siblings) == 0 {
		return 0
	}
	secMax := -1.0
	for _, s := range siblings {
		if s == self || s < 0 || s >= len(view) {
			continue
		}
		if view[s] >= selfT {
			// Some other server is at least as slow: no boost; the
			// parent is bottlenecked elsewhere.
			return 0
		}
		if view[s] > secMax {
			secMax = view[s]
		}
	}
	if secMax < 0 {
		return 0
	}
	return (selfT - secMax) * float64(len(siblings))
}
