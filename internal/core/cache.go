package core

import (
	"sort"

	"repro/internal/sim"
)

// entry is one cached disk extent: a contiguous sector range of the disk
// mirrored at a location in the SSD cache region.
type entry struct {
	lbn     int64 // first disk sector
	sectors int64
	ssdLBN  int64 // first sector in the SSD cache region
	dirty   bool
	class   Class
	ret     float64 // recorded return value at admission
	// spanAt/spanN record the allocator span this entry owns (the data
	// plus any journalled table record); split remnants own no span —
	// the original left-hand entry keeps it until fully dropped.
	spanAt, spanN int64
	// LRU links (nil-terminated, per class).
	prev, next *entry
}

func (e *entry) end() int64 { return e.lbn + e.sectors }

// lruList is an intrusive doubly-linked LRU list; head is least recently
// used, tail most recently used.
type lruList struct {
	head, tail *entry
	count      int
}

func (l *lruList) pushMRU(e *entry) {
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	}
	l.tail = e
	if l.head == nil {
		l.head = e
	}
	l.count++
}

func (l *lruList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.count--
}

func (l *lruList) touch(e *entry) {
	l.remove(e)
	l.pushMRU(e)
}

// span is a contiguous SSD sector range.
type span struct {
	at, n int64
}

// logAlloc manages the SSD cache region like a log-based file: space is
// handed out by appending at the head, so consecutive cache writes are
// physically sequential on the SSD; freed extents are recycled first-fit
// once the head reaches capacity.
type logAlloc struct {
	capSectors int64
	head       int64
	free       []span // sorted by position, coalesced
	used       int64
	// sequential false scatters allocations (ablation A4): positions
	// are drawn from rng anywhere in the region.
	sequential bool
	rng        *sim.RNG
}

func newLogAlloc(capSectors int64, sequential bool, rng *sim.RNG) *logAlloc {
	return &logAlloc{capSectors: capSectors, sequential: sequential, rng: rng}
}

// alloc reserves n sectors, returning the position, or false if no
// contiguous run of n sectors is available.
func (a *logAlloc) alloc(n int64) (int64, bool) {
	if n <= 0 || a.used+n > a.capSectors {
		return 0, false
	}
	if !a.sequential {
		// Scattered placement: timing model only (overlap harmless).
		a.used += n
		return a.rng.Range(0, a.capSectors), true
	}
	if a.head+n <= a.capSectors {
		at := a.head
		a.head += n
		a.used += n
		return at, true
	}
	for i, f := range a.free {
		if f.n >= n {
			at := f.at
			if f.n == n {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{at: f.at + n, n: f.n - n}
			}
			a.used += n
			return at, true
		}
	}
	return 0, false
}

// release returns a span to the allocator, coalescing with neighbours.
func (a *logAlloc) release(at, n int64) {
	if n <= 0 {
		return
	}
	a.used -= n
	if !a.sequential {
		return
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].at >= at })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{at: at, n: n}
	// Coalesce with the next span, then the previous one.
	if i+1 < len(a.free) && a.free[i].at+a.free[i].n == a.free[i+1].at {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].at+a.free[i-1].n == a.free[i].at {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// Used returns allocated sectors.
func (a *logAlloc) Used() int64 { return a.used }

// extentMap is the iBridge mapping table: an ordered set of
// non-overlapping cached disk extents, supporting coverage queries for
// reads and punch-out (with splitting) for overwrites.
type extentMap struct {
	entries []*entry // sorted by lbn, non-overlapping
}

// overlapRange returns the index range [lo, hi) of entries overlapping
// [lbn, lbn+sectors).
func (m *extentMap) overlapRange(lbn, sectors int64) (int, int) {
	end := lbn + sectors
	lo := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].end() > lbn })
	hi := lo
	for hi < len(m.entries) && m.entries[hi].lbn < end {
		hi++
	}
	return lo, hi
}

// insert adds e; the caller guarantees no overlap with existing entries.
func (m *extentMap) insert(e *entry) {
	i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].lbn > e.lbn })
	m.entries = append(m.entries, nil)
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = e
}

// removeAt deletes the entry at index i.
func (m *extentMap) removeAt(i int) {
	m.entries = append(m.entries[:i], m.entries[i+1:]...)
}

// indexOf returns the index of e, or -1.
func (m *extentMap) indexOf(e *entry) int {
	i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].lbn >= e.lbn })
	if i < len(m.entries) && m.entries[i] == e {
		return i
	}
	return -1
}

// segment is a piece of a coverage query: n sectors to read at ssdLBN,
// touching entry e.
type segment struct {
	ssdLBN int64
	n      int64
	e      *entry
}

// covered reports whether [lbn, lbn+sectors) is fully covered by cached
// extents, and if so returns the SSD segments to read, in disk order.
func (m *extentMap) covered(lbn, sectors int64) ([]segment, bool) {
	lo, hi := m.overlapRange(lbn, sectors)
	cur := lbn
	end := lbn + sectors
	var segs []segment
	for i := lo; i < hi; i++ {
		e := m.entries[i]
		if e.lbn > cur {
			return nil, false // gap
		}
		from := cur
		to := min(e.end(), end)
		segs = append(segs, segment{ssdLBN: e.ssdLBN + (from - e.lbn), n: to - from, e: e})
		cur = to
		if cur >= end {
			return segs, true
		}
	}
	return nil, false
}

// dirtyOverlaps returns the SSD segments of dirty entries intersecting
// [lbn, lbn+sectors) (a partially cached read must still fetch dirty
// pieces from the SSD for correctness).
func (m *extentMap) dirtyOverlaps(lbn, sectors int64) []segment {
	lo, hi := m.overlapRange(lbn, sectors)
	end := lbn + sectors
	var segs []segment
	for i := lo; i < hi; i++ {
		e := m.entries[i]
		if !e.dirty {
			continue
		}
		from := max(e.lbn, lbn)
		to := min(e.end(), end)
		segs = append(segs, segment{ssdLBN: e.ssdLBN + (from - e.lbn), n: to - from, e: e})
	}
	return segs
}

// punched describes the outcome of a punch: entries removed entirely and
// freed SSD spans (per class, for usage accounting).
type punched struct {
	removed []*entry
	freed   []span
	// freedSectors[class] accumulates sectors trimmed off surviving
	// (split/shrunk) entries, which stay in their LRU lists.
	freedSectors [2]int64
}

// punch removes the range [lbn, lbn+sectors) from the map, splitting or
// shrinking entries that partially overlap. New entries created by splits
// are returned via addMRU so the bridge can link them into its LRU lists.
func (m *extentMap) punch(lbn, sectors int64, addMRU func(*entry)) punched {
	var out punched
	end := lbn + sectors
	lo, hi := m.overlapRange(lbn, sectors)
	i := lo
	for i < hi {
		e := m.entries[i]
		switch {
		case e.lbn >= lbn && e.end() <= end:
			// Entirely inside: remove.
			out.removed = append(out.removed, e)
			out.freed = append(out.freed, span{at: e.ssdLBN, n: e.sectors})
			m.removeAt(i)
			hi--
		case e.lbn < lbn && e.end() > end:
			// Punch strictly inside e: split into left and right.
			leftN := lbn - e.lbn
			rightN := e.end() - end
			cut := e.sectors - leftN - rightN
			right := &entry{
				lbn:     end,
				sectors: rightN,
				ssdLBN:  e.ssdLBN + leftN + cut,
				dirty:   e.dirty,
				class:   e.class,
				ret:     e.ret,
			}
			out.freed = append(out.freed, span{at: e.ssdLBN + leftN, n: cut})
			out.freedSectors[e.class] += cut
			e.sectors = leftN
			m.insert(right)
			addMRU(right)
			return out // nothing else can overlap
		case e.lbn < lbn:
			// Punch cuts e's tail.
			cut := e.end() - lbn
			out.freed = append(out.freed, span{at: e.ssdLBN + e.sectors - cut, n: cut})
			out.freedSectors[e.class] += cut
			e.sectors -= cut
			i++
		default:
			// Punch cuts e's head.
			cut := end - e.lbn
			out.freed = append(out.freed, span{at: e.ssdLBN, n: cut})
			out.freedSectors[e.class] += cut
			e.lbn += cut
			e.ssdLBN += cut
			e.sectors -= cut
			i++
		}
	}
	return out
}

// Len returns the number of cached extents.
func (m *extentMap) Len() int { return len(m.entries) }


