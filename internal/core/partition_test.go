package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// These tests exercise the SSD-space partitioning and maintenance
// behaviours beyond the basics covered in bridge_test.go.

func TestPartitionSeparatesClasses(t *testing.T) {
	// With a tiny cache split 1:1, flooding the fragment class must not
	// evict random-class entries.
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) {
		c.SSDCapacity = 32 * device.SectorSize
		c.DynamicPartition = false
		c.StaticFragShare = 0.5
		c.TablePersist = false
		c.IdleCheck = sim.Second
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		// Fill the random class.
		for i := int64(0); i < 4; i++ {
			b.Serve(p, random(device.Write, 1<<26+i*100, 4))
			b.trk.prevLBN = 0
		}
		randomUsage, _ := b.Usage()
		// Flood fragments: they may evict each other, never randoms.
		for i := int64(0); i < 20; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*100, 4))
			b.trk.prevLBN = 0
		}
		after, _ := b.Usage()
		if after != randomUsage {
			t.Errorf("random-class usage changed %d → %d under fragment pressure", randomUsage, after)
		}
		// All random entries still readable from the SSD.
		for i := int64(0); i < 4; i++ {
			if _, ok := b.table.covered(1<<26+i*100, 4); !ok {
				t.Errorf("random entry %d evicted by fragment pressure", i)
			}
		}
	})
}

func TestDynamicPartitionFloors(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {})
	// Extreme imbalance clamps at the 10%/90% floors.
	b.retSum[ClassFragment] = 100
	b.retCnt[ClassFragment] = 1
	b.retSum[ClassRandom] = 1e-9
	b.retCnt[ClassRandom] = 1
	total := b.capSectors()
	if f := b.allocFor(ClassFragment); f > total*9/10+1 {
		t.Fatalf("fragment share %d exceeds 90%% cap", f)
	}
	if r := b.allocFor(ClassRandom); r < total/10-1 {
		t.Fatalf("random share %d below 10%% floor", r)
	}
	// No data at all: even split.
	b.retCnt = [2]int64{}
	b.retSum = [2]float64{}
	if f := b.allocFor(ClassFragment); f != total/2 {
		t.Fatalf("empty-cache fragment share = %d, want %d", f, total/2)
	}
}

func TestStageQueueBounded(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) {
		c.StageQueueMax = 4
		c.IdleCheck = sim.Second // no draining during the test
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 10; i++ {
			b.Serve(p, frag(device.Read, 1<<27+i*1000, 2))
			b.trk.prevLBN = 0
		}
		if len(b.stage) > 4 {
			t.Errorf("stage queue grew to %d, cap 4", len(b.stage))
		}
	})
}

func TestTablePersistAddsJournalSector(t *testing.T) {
	used := func(persist bool) int64 {
		e := sim.New()
		b, _ := testBridge(e, func(c *Config) {
			c.TablePersist = persist
			c.IdleCheck = sim.Second
		})
		runSim(t, e, func(p *sim.Proc) {
			driveT(p, b)
			for i := int64(0); i < 5; i++ {
				b.Serve(p, frag(device.Write, 1<<27+i*1000, 2))
				b.trk.prevLBN = 0
			}
		})
		return b.alloc.Used()
	}
	with, without := used(true), used(false)
	if with != without+5 {
		t.Fatalf("journalled allocation %d, plain %d: want exactly one extra sector per entry", with, without)
	}
}

func TestStagingRespectsPartition(t *testing.T) {
	// Staged read data is subject to the same partition limits as
	// admitted writes.
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) {
		c.SSDCapacity = 16 * device.SectorSize
		c.DynamicPartition = false
		c.StaticFragShare = 0.5
		c.TablePersist = false
		c.IdleCheck = sim.Millisecond
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 10; i++ {
			b.Serve(p, frag(device.Read, 1<<27+i*1000, 2))
			b.trk.prevLBN = 0
		}
		p.Sleep(200 * sim.Millisecond) // let staging drain
		_, fragBytes := b.Usage()
		if fragBytes > 8*device.SectorSize {
			t.Errorf("staged fragments occupy %d bytes, partition is %d", fragBytes, 8*device.SectorSize)
		}
	})
}

func TestExchangeViewIndexesMatchServers(t *testing.T) {
	e := sim.New()
	x := NewExchange(e, 10*sim.Millisecond)
	var bridges []*Bridge
	for i := 0; i < 3; i++ {
		d := newTestDisk(e)
		b := NewBridge(e, DefaultConfig(), i, d, newDiskQueue(e, d), newSSDQueue(e, "ssd"), x, sim.NewRNG(uint64(i)))
		bridges = append(bridges, b)
	}
	x.Start()
	runSim(t, e, func(p *sim.Proc) {
		// Raise only server 1's T.
		bridges[1].trk.servedAtDisk(device.Request{Op: device.Read, LBN: 1 << 30, Sectors: 8})
		p.Sleep(20 * sim.Millisecond)
		v := x.View()
		if len(v) != 3 {
			t.Fatalf("view has %d entries", len(v))
		}
		if v[1] <= v[0] || v[1] <= v[2] {
			t.Fatalf("view = %v, want index 1 largest", v)
		}
	})
}
