package core

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// statesEqual compares a live snapshot with a recovery.
func statesEqual(a, b RecoveredState) bool {
	if a.DirtySectors != b.DirtySectors || len(a.Extents) != len(b.Extents) {
		return false
	}
	for i := range a.Extents {
		if a.Extents[i] != b.Extents[i] {
			return false
		}
	}
	return true
}

func TestJournalRecoverMatchesAfterWrites(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) { c.IdleCheck = sim.Second })
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 20; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*1000, 2))
			b.trk.prevLBN = 0
		}
	})
	if b.JournalRecords() == 0 {
		t.Fatal("no journal records written")
	}
	if !statesEqual(b.Snapshot(), b.Recover()) {
		t.Fatalf("recovery diverged:\nlive:      %+v\nrecovered: %+v", b.Snapshot(), b.Recover())
	}
	if b.Recover().DirtySectors != 40 {
		t.Fatalf("recovered dirty sectors = %d, want 40", b.Recover().DirtySectors)
	}
}

func TestJournalRecoverAfterWriteback(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) { c.IdleCheck = sim.Second })
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 8; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*1000, 2))
			b.trk.prevLBN = 0
		}
		b.Flush(p)
	})
	rec := b.Recover()
	if rec.DirtySectors != 0 {
		t.Fatalf("recovered %d dirty sectors after flush; a crash now would redo writeback", rec.DirtySectors)
	}
	if !statesEqual(b.Snapshot(), rec) {
		t.Fatal("recovery diverged after writeback")
	}
}

func TestJournalRecoverAfterInvalidation(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) { c.IdleCheck = sim.Second })
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Write, 1<<27, 8))
		// Overwrite the middle through the disk path: split.
		b.Serve(p, large(device.Write, 1<<27+2, 2))
	})
	rec := b.Recover()
	if len(rec.Extents) != 2 {
		t.Fatalf("recovered %d extents, want 2 (split remnants)", len(rec.Extents))
	}
	if !statesEqual(b.Snapshot(), rec) {
		t.Fatalf("recovery diverged:\nlive:      %+v\nrecovered: %+v", b.Snapshot(), rec)
	}
}

func TestJournalRecoverAfterEvictions(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) {
		c.SSDCapacity = 16 * device.SectorSize
		c.DynamicPartition = false
		c.StaticFragShare = 0.5
		c.TablePersist = false
		c.IdleCheck = sim.Second
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 12; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*100, 2))
			b.trk.prevLBN = 0
		}
	})
	if b.Stats().Evictions == 0 {
		t.Fatal("test needs evictions")
	}
	if !statesEqual(b.Snapshot(), b.Recover()) {
		t.Fatal("recovery diverged after evictions")
	}
}

// TestJournalRecoveryProperty drives a random mixed workload and asserts
// the crash-recovery invariant: replaying the journal always rebuilds
// exactly the live mapping table.
func TestJournalRecoveryProperty(t *testing.T) {
	type op struct {
		Write   bool
		Frag    bool
		Slot    uint8
		Sectors uint8
	}
	if err := quick.Check(func(ops []op) bool {
		e := sim.New()
		b, _ := testBridge(e, func(c *Config) {
			c.SSDCapacity = 64 * device.SectorSize
			c.IdleCheck = 100 * sim.Millisecond
		})
		ok := true
		e.Go("wl", func(p *sim.Proc) {
			driveT(p, b)
			for _, o := range ops {
				lbn := 1<<26 + int64(o.Slot%32)*16
				n := int64(o.Sectors%6) + 1
				var r *pfs.IORequest
				switch {
				case o.Frag:
					r = frag(opOf(o.Write), lbn, n)
				default:
					r = random(opOf(o.Write), lbn, n)
				}
				b.Serve(p, r)
				b.trk.prevLBN = 0
			}
			if !statesEqual(b.Snapshot(), b.Recover()) {
				ok = false
			}
			e.Halt()
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func opOf(write bool) device.Op {
	if write {
		return device.Write
	}
	return device.Read
}
