package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Test helpers shared with model_test.go.

func newDiskQueue(e *sim.Engine, d *hdd.Disk) *iosched.Queue {
	return iosched.New(e, d, iosched.DiskDefaults(), nil)
}

func newSSDQueue(e *sim.Engine, name string) *iosched.Queue {
	dev := ssd.New(e, name, ssd.DefaultSpec())
	return iosched.New(e, dev, iosched.SSDDefaults(), nil)
}

// testBridge builds a standalone bridge (no exchange) with the given
// config tweaks applied.
func testBridge(e *sim.Engine, mod func(*Config)) (*Bridge, *hdd.Disk) {
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	d := hdd.New(e, "hdd0", hdd.DefaultSpec(), sim.NewRNG(1))
	b := NewBridge(e, cfg, 0, d, newDiskQueue(e, d), newSSDQueue(e, "ssd0"), nil, sim.NewRNG(2))
	return b, d
}

// runSim runs fn in a simulated process, halting afterwards.
func runSim(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Go("test-main", func(p *sim.Proc) {
		fn(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// frag builds a fragment write/read request.
func frag(op device.Op, lbn, sectors int64) *pfs.IORequest {
	return &pfs.IORequest{
		Op: op, LBN: lbn, Sectors: sectors, Bytes: sectors * device.SectorSize,
		Fragment: true, Siblings: []int{1}, Server: 0,
	}
}

// random builds a regular random request.
func random(op device.Op, lbn, sectors int64) *pfs.IORequest {
	return &pfs.IORequest{
		Op: op, LBN: lbn, Sectors: sectors, Bytes: sectors * device.SectorSize,
		Random: true, Server: 0,
	}
}

// large builds a non-candidate bulk request.
func large(op device.Op, lbn, sectors int64) *pfs.IORequest {
	return &pfs.IORequest{Op: op, LBN: lbn, Sectors: sectors, Bytes: sectors * device.SectorSize, Server: 0}
}

// driveT initializes the bridge's T with a cheap sequential request, so
// that a subsequent far-seeking candidate shows a clearly positive return.
func driveT(p *sim.Proc, b *Bridge) {
	b.Serve(p, large(device.Read, 0, 128)) // contiguous with head at 0
}

func TestFragmentWriteRedirectedToSSD(t *testing.T) {
	e := sim.New()
	b, d := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		before := d.Stats().Bytes[device.Write]
		b.Serve(p, frag(device.Write, 1<<27, 2)) // 1 KB fragment, far away
		if d.Stats().Bytes[device.Write] != before {
			t.Error("fragment write reached the disk")
		}
	})
	if b.Stats().SSDWriteBytes == 0 {
		t.Fatal("no SSD write recorded")
	}
	if b.Stats().Admissions[ClassFragment] != 1 {
		t.Fatalf("admissions = %v", b.Stats().Admissions)
	}
}

func TestLargeSubRequestNeverRedirected(t *testing.T) {
	e := sim.New()
	b, d := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, large(device.Write, 1<<27, 128))
	})
	if b.Stats().SSDWriteBytes != 0 {
		t.Fatal("bulk sub-request went to SSD")
	}
	if d.Stats().Bytes[device.Write] == 0 {
		t.Fatal("bulk sub-request did not reach disk")
	}
}

func TestNegativeReturnStaysOnDisk(t *testing.T) {
	// A request contiguous with the previous disk location has a small
	// sample; with high T it yields a negative return and stays on
	// disk (serving it there *improves* disk efficiency).
	e := sim.New()
	b, d := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		// Raise T with an expensive far request.
		b.Serve(p, large(device.Read, 1<<28, 128))
		// Now a random request exactly at the disk's last location:
		// near-zero positioning cost, sample ≪ T → negative return.
		before := b.Stats().SSDWriteBytes
		b.Serve(p, random(device.Write, b.trk.prevLBN, 2))
		if b.Stats().SSDWriteBytes != before {
			t.Error("cheap-on-disk request was redirected")
		}
	})
	if d.Stats().Ops[device.Write] != 1 {
		t.Fatalf("disk writes = %d, want 1", d.Stats().Ops[device.Write])
	}
}

func TestReadHitServedFromSSD(t *testing.T) {
	e := sim.New()
	b, d := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Write, 1<<27, 2))
		diskReads := d.Stats().Ops[device.Read]
		b.Serve(p, frag(device.Read, 1<<27, 2))
		if d.Stats().Ops[device.Read] != diskReads {
			t.Error("read hit went to disk")
		}
	})
	if b.Stats().Hits != 1 {
		t.Fatalf("hits = %d, want 1", b.Stats().Hits)
	}
	if b.Stats().SSDReadBytes != 2*device.SectorSize {
		t.Fatalf("SSD read bytes = %d", b.Stats().SSDReadBytes)
	}
}

func TestReadMissGoesToDiskAndStages(t *testing.T) {
	e := sim.New()
	b, d := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Read, 1<<27, 2))
		if d.Stats().Ops[device.Read] != 2 { // driveT + miss
			t.Errorf("disk reads = %d", d.Stats().Ops[device.Read])
		}
		if len(b.stage) != 1 {
			t.Errorf("stage queue = %d, want 1", len(b.stage))
		}
		// Idle for a while: the maintenance daemon stages the extent.
		p.Sleep(50 * sim.Millisecond)
		if b.Stats().StagedBytes == 0 {
			t.Error("staging did not run during idle period")
		}
		// A repeat of the same read now hits.
		b.Serve(p, frag(device.Read, 1<<27, 2))
		if b.Stats().Hits != 1 {
			t.Errorf("hits = %d after staging", b.Stats().Hits)
		}
	})
}

func TestWriteInvalidatesStaleCache(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Write, 1<<27, 2)) // cached dirty
		// Overwrite the same range with a bulk (non-candidate) write:
		// the cached copy must be dropped.
		b.Serve(p, large(device.Write, 1<<27, 2))
		if _, ok := b.table.covered(1<<27, 2); ok {
			t.Error("stale cached extent survived an overwrite")
		}
		// A read now must miss.
		b.Serve(p, frag(device.Read, 1<<27, 2))
		if b.Stats().Hits != 0 {
			t.Error("read hit on invalidated data")
		}
	})
}

func TestFlushWritesBackAllDirty(t *testing.T) {
	e := sim.New()
	b, d := testBridge(e, func(c *Config) {
		c.IdleCheck = sim.Second // keep the daemon out of the way
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 10; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*1000, 2))
			b.trk.prevLBN = 0
		}
		if b.DirtySectors() != 20 {
			t.Fatalf("dirty sectors = %d, want 20", b.DirtySectors())
		}
		diskWritesBefore := d.Stats().Ops[device.Write]
		b.Flush(p)
		if b.DirtySectors() != 0 {
			t.Error("dirty data survived Flush")
		}
		if d.Stats().Ops[device.Write] == diskWritesBefore {
			t.Error("Flush wrote nothing to disk")
		}
	})
	if b.Stats().WritebackBytes != 10*2*device.SectorSize {
		t.Fatalf("writeback bytes = %d", b.Stats().WritebackBytes)
	}
}

func TestIdleWritebackRuns(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) { c.WritebackMinDirty = 0 })
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Write, 1<<27, 2))
		p.Sleep(100 * sim.Millisecond) // idle
		if b.DirtySectors() != 0 {
			t.Error("idle writeback did not clean dirty data")
		}
	})
	if b.Stats().WritebackBytes == 0 {
		t.Fatal("no writeback bytes recorded")
	}
}

func TestEvictionLRUWithinPartition(t *testing.T) {
	e := sim.New()
	// Tiny cache: 16 sectors total, fragments get half (static) = 8.
	b, _ := testBridge(e, func(c *Config) {
		c.SSDCapacity = 16 * device.SectorSize
		c.DynamicPartition = false
		c.StaticFragShare = 0.5
		c.TablePersist = false
		c.IdleCheck = sim.Second
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		// Four 2-sector fragments fill the 8-sector fragment share.
		for i := int64(0); i < 4; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*100, 2))
			b.trk.prevLBN = 0
		}
		if b.Stats().Evictions != 0 {
			t.Fatalf("premature evictions: %d", b.Stats().Evictions)
		}
		// A fifth must evict the LRU (first) entry.
		b.Serve(p, frag(device.Write, 1<<27+400, 2))
		if b.Stats().Evictions != 1 {
			t.Fatalf("evictions = %d, want 1", b.Stats().Evictions)
		}
		if _, ok := b.table.covered(1<<27, 2); ok {
			t.Error("LRU entry still cached")
		}
		if _, ok := b.table.covered(1<<27+400, 2); !ok {
			t.Error("newest entry not cached")
		}
	})
}

func TestOversizedCandidateRejected(t *testing.T) {
	e := sim.New()
	b, d := testBridge(e, func(c *Config) {
		c.SSDCapacity = 8 * device.SectorSize
		c.DynamicPartition = false
		c.StaticFragShare = 0.5
		c.TablePersist = false
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Write, 1<<27, 32)) // larger than partition
	})
	if b.Stats().Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", b.Stats().Rejections)
	}
	if d.Stats().Ops[device.Write] != 1 {
		t.Fatal("rejected request did not fall back to disk")
	}
}

func TestDynamicPartitionFollowsReturns(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) {
		c.TablePersist = false
		c.IdleCheck = sim.Second
	})
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		// Admit fragments with large recorded returns by hand-tuning
		// the accounting, then check allocFor.
		b.retSum[ClassFragment] = 0.9
		b.retCnt[ClassFragment] = 1
		b.retSum[ClassRandom] = 0.1
		b.retCnt[ClassRandom] = 1
		fragAlloc := b.allocFor(ClassFragment)
		randAlloc := b.allocFor(ClassRandom)
		if fragAlloc <= randAlloc {
			t.Errorf("fragment alloc %d not above random alloc %d", fragAlloc, randAlloc)
		}
		if got := float64(fragAlloc) / float64(b.capSectors()); got < 0.85 || got > 0.95 {
			t.Errorf("fragment share = %.2f, want ≈0.9 (clamped)", got)
		}
	})
}

func TestStaticPartitionShares(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) {
		c.DynamicPartition = false
		c.StaticFragShare = 2.0 / 3.0 // the paper's 1:2 configuration
	})
	runSim(t, e, func(p *sim.Proc) {})
	total := b.capSectors()
	if f := b.allocFor(ClassFragment); f < total*2/3-1 || f > total*2/3+1 {
		t.Fatalf("fragment alloc = %d, want ≈%d", f, total*2/3)
	}
}

func TestMagnificationChangesDecision(t *testing.T) {
	// With magnification, a fragment on the slowest disk gets a boost
	// that can flip a marginal negative return positive.
	e := sim.New()
	x := NewExchange(e, 10*sim.Millisecond)
	cfg := DefaultConfig()
	mk := func(i int) *Bridge {
		d := hdd.New(e, "hdd", hdd.DefaultSpec(), sim.NewRNG(uint64(i)))
		return NewBridge(e, cfg, i, d, newDiskQueue(e, d), newSSDQueue(e, "ssd"), x, sim.NewRNG(uint64(10+i)))
	}
	b0, b1 := mk(0), mk(1)
	_ = b1 // stays at T = 0: the fast sibling
	x.Start()
	runSim(t, e, func(p *sim.Proc) {
		// Make server 0 slow (high T) and let a broadcast happen.
		b0.Serve(p, large(device.Read, 1<<30, 128))
		p.Sleep(20 * sim.Millisecond)
		// A fragment contiguous with the previous location: raw return
		// is negative (serving it on disk is cheap).
		r := frag(device.Write, b0.trk.prevLBN, 2)
		r.Siblings = []int{1}
		raw := b0.trk.hypothetical(r.Request()) - b0.trk.T()
		if raw > 0 {
			t.Fatalf("raw return %v unexpectedly positive", raw)
		}
		boosted, boost := b0.evalReturn(r)
		if boost <= 0 {
			t.Errorf("expected a positive Eq. (3) boost, got %v", boost)
		}
		if boosted <= raw {
			t.Errorf("magnification did not raise return: raw %v, boosted %v", raw, boosted)
		}
		if boosted <= 0 {
			t.Errorf("boost did not flip the decision: %v", boosted)
		}
		// With magnification disabled the boost disappears.
		b0.cfg.Magnification = false
		if got, gotBoost := b0.evalReturn(r); got != raw || gotBoost != 0 {
			t.Errorf("ablation: return = %v boost = %v, want raw %v and no boost", got, gotBoost, raw)
		}
	})
}

func TestPeakUsageTracked(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, func(c *Config) { c.TablePersist = false; c.IdleCheck = sim.Second })
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		for i := int64(0); i < 5; i++ {
			b.Serve(p, frag(device.Write, 1<<27+i*100, 2))
			b.trk.prevLBN = 0
		}
	})
	if b.Stats().PeakUsage != 10*device.SectorSize {
		t.Fatalf("peak usage = %d, want %d", b.Stats().PeakUsage, 10*device.SectorSize)
	}
}

func TestSSDFractionStat(t *testing.T) {
	e := sim.New()
	b, _ := testBridge(e, nil)
	runSim(t, e, func(p *sim.Proc) {
		driveT(p, b)
		b.Serve(p, frag(device.Write, 1<<27, 2))    // SSD: 1 KB
		b.Serve(p, large(device.Write, 1<<26, 126)) // disk: 63 KB
	})
	st := b.Stats()
	// driveT read 64 KB from disk; total = 64+63+1 = 128 KB, SSD = 1 KB.
	want := 1.0 / 128.0
	if got := st.SSDFraction(); got < want*0.9 || got > want*1.1 {
		t.Fatalf("SSD fraction = %v, want ≈%v", got, want)
	}
}
