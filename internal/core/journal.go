package core

// This file implements the mapping table's crash consistency: "To ensure
// reliability, the dirty entries of the mapping table are immediately
// updated on the SSD with the write requests to the SSD" (Section II-B).
// Every cache mutation appends a journal record alongside the data in the
// SSD log (the extra sector writeToSSD/stageOne budget for); after a
// server crash the table is rebuilt by replaying the journal, so dirty
// data that only exists in the SSD is never lost.
//
// The simulator does not persist bytes, so the journal is kept as an
// in-memory record sequence with the same information a real
// implementation would serialize; Snapshot/Recover exercise the exact
// rebuild logic.

// journalOp is the kind of one journal record.
type journalOp uint8

const (
	// jInsert records a new mapping (admission or staging).
	jInsert journalOp = iota
	// jClean marks an extent written back to the disk.
	jClean
	// jDrop records an invalidation or eviction of a disk-extent range.
	jDrop
)

// journalRecord is one persisted table mutation.
type journalRecord struct {
	op      journalOp
	lbn     int64
	sectors int64
	ssdLBN  int64
	dirty   bool
	class   Class
	ret     float64
	spanAt  int64
	spanN   int64
}

// journal accumulates records; a real system would write each record
// into the log stream (the TablePersist sector).
type journal struct {
	records []journalRecord
}

func (j *journal) insert(e *entry) {
	j.records = append(j.records, journalRecord{
		op: jInsert, lbn: e.lbn, sectors: e.sectors, ssdLBN: e.ssdLBN,
		dirty: e.dirty, class: e.class, ret: e.ret, spanAt: e.spanAt, spanN: e.spanN,
	})
}

func (j *journal) clean(e *entry) {
	j.records = append(j.records, journalRecord{op: jClean, lbn: e.lbn, sectors: e.sectors})
}

func (j *journal) drop(lbn, sectors int64) {
	j.records = append(j.records, journalRecord{op: jDrop, lbn: lbn, sectors: sectors})
}

// Len returns the number of journal records (for tests and stats).
func (j *journal) Len() int { return len(j.records) }

// RecoveredState is the rebuilt cache image after journal replay.
type RecoveredState struct {
	// Extents is the rebuilt mapping table in LBN order.
	Extents []RecoveredExtent
	// DirtySectors counts sectors whose only copy is in the SSD.
	DirtySectors int64
}

// RecoveredExtent is one rebuilt mapping entry.
type RecoveredExtent struct {
	LBN     int64
	Sectors int64
	SSDLBN  int64
	Dirty   bool
	Class   Class
}

// Recover replays the journal into a fresh extent map — the crash
// recovery path. The rebuilt state must match the live table; tests
// assert this invariant after arbitrary workloads.
func (j *journal) Recover() RecoveredState {
	var m extentMap
	for _, r := range j.records {
		switch r.op {
		case jInsert:
			m.punch(r.lbn, r.sectors, func(e *entry) {})
			e := &entry{
				lbn: r.lbn, sectors: r.sectors, ssdLBN: r.ssdLBN,
				dirty: r.dirty, class: r.class, ret: r.ret,
				spanAt: r.spanAt, spanN: r.spanN,
			}
			m.insert(e)
		case jClean:
			lo, hi := m.overlapRange(r.lbn, r.sectors)
			for i := lo; i < hi; i++ {
				m.entries[i].dirty = false
			}
		case jDrop:
			m.punch(r.lbn, r.sectors, func(e *entry) {})
		}
	}
	var out RecoveredState
	for _, e := range m.entries {
		out.Extents = append(out.Extents, RecoveredExtent{
			LBN: e.lbn, Sectors: e.sectors, SSDLBN: e.ssdLBN, Dirty: e.dirty, Class: e.class,
		})
		if e.dirty {
			out.DirtySectors += e.sectors
		}
	}
	return out
}

// Snapshot returns the live table in the same form, for comparison with
// a recovery.
func (b *Bridge) Snapshot() RecoveredState {
	var out RecoveredState
	for _, e := range b.table.entries {
		out.Extents = append(out.Extents, RecoveredExtent{
			LBN: e.lbn, Sectors: e.sectors, SSDLBN: e.ssdLBN, Dirty: e.dirty, Class: e.class,
		})
		if e.dirty {
			out.DirtySectors += e.sectors
		}
	}
	return out
}

// Recover rebuilds the cache state from the bridge's journal, as a
// post-crash server would.
func (b *Bridge) Recover() RecoveredState { return b.journal.Recover() }

// JournalRecords returns the number of journal records written.
func (b *Bridge) JournalRecords() int { return b.journal.Len() }
