package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level orders logger verbosity.
type Level int

// Logger levels: Quiet suppresses everything, Info is the default
// operator-facing level, Debug adds per-step diagnostics.
const (
	LevelQuiet Level = iota
	LevelInfo
	LevelDebug
)

// Logger is a minimal leveled logger for the command-line tools. It
// exists so diagnostic chatter (timings, progress) has a switchable
// channel separate from the byte-stable result streams: results go to
// stdout (and -out files), the logger writes to stderr. A nil *Logger
// is valid and discards everything.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Infof logs at Info level (operator-facing summaries).
func (l *Logger) Infof(format string, args ...interface{}) { l.logf(LevelInfo, format, args...) }

// Debugf logs at Debug level (per-step diagnostics, enabled by -v).
func (l *Logger) Debugf(format string, args ...interface{}) { l.logf(LevelDebug, format, args...) }

func (l *Logger) logf(at Level, format string, args ...interface{}) {
	if l == nil || l.level < at {
		return
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, format+"\n", args...)
	l.mu.Unlock()
}
