// Package sketch provides a windowed decaying quantile estimator: a
// ring of fixed-bucket stats.Hist windows rotated on a wall-clock
// schedule, with quantiles computed by merging the live windows on
// read. Old observations age out as their window is recycled, so the
// estimate tracks "how slow is this server *now*", not cumulatively
// since boot — exactly the signal a straggler-aware hedging scheduler
// needs (ROADMAP: hedged fragment reads; Tavakoli et al., PAPERS.md).
//
// The pfsnet client keeps one Sketch per (server, op class); see
// pfsnet.Client.LatencySnapshot. Recording is a mutex plus a histogram
// bucket increment; reading merges windows*buckets int64 counts into a
// scratch histogram, so reads are cheap enough for scrape-time gauges
// but recording stays the only operation on the request hot path.
package sketch

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// Defaults chosen for request latencies in milliseconds: 8 windows of
// 2 s each give a ~16 s sliding horizon with 2 s granularity — long
// enough to smooth one slow scrape, short enough that a recovered
// server sheds its "slow" label within seconds.
const (
	DefaultWindows = 8
	DefaultWidth   = 2 * time.Second
)

// Sketch is a sliding-window quantile estimator. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Sketch struct {
	mu      sync.Mutex
	windows []*stats.Hist // ring of per-window histograms
	start   time.Time     // start instant of the current window
	cur     int           // ring index of the current window
	width   time.Duration
	now     func() time.Time
	scratch *stats.Hist // merge-on-read target, reused across reads
}

// New returns a sketch over `windows` ring slots of `width` each,
// using the standard latency bucket layout (1 µs .. 100 s at 9 buckets
// per decade, in milliseconds). Non-positive arguments fall back to
// the defaults.
func New(windows int, width time.Duration) *Sketch {
	return NewAt(windows, width, time.Now)
}

// NewAt is New with an injectable clock, for tests.
func NewAt(windows int, width time.Duration, now func() time.Time) *Sketch {
	if windows <= 0 {
		windows = DefaultWindows
	}
	if width <= 0 {
		width = DefaultWidth
	}
	bounds := stats.ExpBounds(1e-3, 1e5, 9)
	s := &Sketch{
		windows: make([]*stats.Hist, windows),
		width:   width,
		now:     now,
		scratch: stats.NewHist(bounds),
	}
	for i := range s.windows {
		s.windows[i] = stats.NewHist(bounds)
	}
	s.start = now()
	return s
}

// rotate advances the ring so the current window covers t, recycling
// every window that expired since the last call. Caller holds s.mu.
func (s *Sketch) rotate(t time.Time) {
	elapsed := t.Sub(s.start)
	if elapsed < s.width {
		return
	}
	steps := int(elapsed / s.width)
	if steps >= len(s.windows) {
		// Idle longer than the whole horizon: every window is stale.
		for _, w := range s.windows {
			w.Reset()
		}
		s.cur = 0
	} else {
		for i := 0; i < steps; i++ {
			s.cur = (s.cur + 1) % len(s.windows)
			s.windows[s.cur].Reset()
		}
	}
	s.start = s.start.Add(time.Duration(steps) * s.width)
}

// Observe records one value (milliseconds by convention) into the
// current window.
func (s *Sketch) Observe(v float64) {
	s.mu.Lock()
	s.rotate(s.now())
	s.windows[s.cur].Observe(v)
	s.mu.Unlock()
}

// Quantile estimates the q-th quantile (0..1) over the sliding
// horizon. It returns 0 when no observations are live.
func (s *Sketch) Quantile(q float64) float64 {
	return s.Quantiles(q)[0]
}

// Quantiles estimates several quantiles from a single merge pass —
// the cheap way to scrape p50/p95/p99 together.
func (s *Sketch) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(s.now())
	s.scratch.Reset()
	for _, w := range s.windows {
		// Windows share one bucket layout by construction, so Merge
		// cannot fail; a non-nil error here is a program bug.
		if err := s.scratch.Merge(w); err != nil {
			panic(err)
		}
	}
	for i, q := range qs {
		out[i] = s.scratch.Quantile(q)
	}
	return out
}

// Count returns the number of live observations across the horizon.
func (s *Sketch) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(s.now())
	var n int64
	for _, w := range s.windows {
		n += w.Count()
	}
	return n
}
