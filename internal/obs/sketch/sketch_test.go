package sketch

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for driving window rotation.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestSketch(windows int, width time.Duration) (*Sketch, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	return NewAt(windows, width, c.now), c
}

func TestSketchEmpty(t *testing.T) {
	s, _ := newTestSketch(4, time.Second)
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if got := s.Quantile(0.95); got != 0 {
		t.Fatalf("Quantile(0.95) = %g, want 0 on empty sketch", got)
	}
}

func TestSketchQuantiles(t *testing.T) {
	s, _ := newTestSketch(4, time.Second)
	for v := 1.0; v <= 100; v++ {
		s.Observe(v)
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d, want 100", s.Count())
	}
	qs := s.Quantiles(0, 0.5, 1)
	if qs[0] != 1 || qs[2] != 100 {
		t.Errorf("Quantiles extremes = %g/%g, want 1/100", qs[0], qs[2])
	}
	// Bucket interpolation: p50 within one exp bucket (~1.3x) of 50.
	if qs[1] < 35 || qs[1] > 70 {
		t.Errorf("p50 = %g, want near 50", qs[1])
	}
}

// The defining property: observations decay out of the estimate once
// their window rotates past the horizon.
func TestSketchDecay(t *testing.T) {
	s, c := newTestSketch(4, time.Second)
	for i := 0; i < 50; i++ {
		s.Observe(1000) // slow era
	}
	if p95 := s.Quantile(0.95); p95 < 500 {
		t.Fatalf("p95 = %g during slow era, want ~1000", p95)
	}
	// Two windows later the slow samples are still inside the horizon.
	c.advance(2 * time.Second)
	for i := 0; i < 50; i++ {
		s.Observe(1) // fast era
	}
	if p99 := s.Quantile(0.99); p99 < 500 {
		t.Fatalf("p99 = %g with slow era still in horizon, want ~1000", p99)
	}
	// Past the full horizon the slow era must be forgotten.
	c.advance(5 * time.Second)
	for i := 0; i < 50; i++ {
		s.Observe(1)
	}
	if p99 := s.Quantile(0.99); p99 > 10 {
		t.Fatalf("p99 = %g after slow era aged out, want ~1", p99)
	}
	if n := s.Count(); n != 50 {
		t.Fatalf("Count = %d after decay, want 50", n)
	}
}

// An idle gap longer than the whole horizon clears every window, even
// though fewer than len(windows) rotations happen per rotate call.
func TestSketchLongIdleGap(t *testing.T) {
	s, c := newTestSketch(4, time.Second)
	for i := 0; i < 10; i++ {
		s.Observe(42)
	}
	c.advance(time.Hour)
	if n := s.Count(); n != 0 {
		t.Fatalf("Count = %d after long idle gap, want 0", n)
	}
	s.Observe(7)
	if got := s.Quantile(1); got != 7 {
		t.Fatalf("Quantile(1) = %g after gap, want 7", got)
	}
}

// Sub-window advances must not rotate; rotation happens only on full
// window boundaries, measured from the sketch's own start instant.
func TestSketchPartialWindowNoRotate(t *testing.T) {
	s, c := newTestSketch(2, time.Second)
	s.Observe(5)
	c.advance(999 * time.Millisecond)
	s.Observe(6)
	if n := s.Count(); n != 2 {
		t.Fatalf("Count = %d, want 2 (no rotation inside a window)", n)
	}
	c.advance(2 * time.Millisecond) // crosses the 1 s boundary once
	if n := s.Count(); n != 2 {
		t.Fatalf("Count = %d, want 2 (one rotation keeps a 2-window ring)", n)
	}
}

func TestSketchDefaults(t *testing.T) {
	s := New(0, 0)
	if len(s.windows) != DefaultWindows || s.width != DefaultWidth {
		t.Fatalf("defaults = %d windows x %v, want %d x %v",
			len(s.windows), s.width, DefaultWindows, DefaultWidth)
	}
	s.Observe(1)
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestSketchConcurrent(t *testing.T) {
	s, c := newTestSketch(4, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(float64(i % 100))
				if i%100 == 0 {
					s.Quantiles(0.5, 0.95, 0.99)
					c.advance(time.Millisecond / 2)
				}
			}
		}()
	}
	wg.Wait()
	s.Quantile(0.99) // must not panic on mixed-rotation state
}
