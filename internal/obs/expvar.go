package obs

import "expvar"

// PublishExpvar exposes the registry under the given expvar name: a
// single JSON map of every metric's current value, served at
// /debug/vars by any net/http server using the default mux (the
// cmd/pfs-server -debug-addr endpoint). Snapshot is taken per request,
// so values are always live. Publishing the same name twice panics, as
// with expvar.Publish.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() interface{} {
		return r.Snapshot()
	}))
}
