package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

func TestNewDisabledIsNil(t *testing.T) {
	if s := New(Config{}); s != nil {
		t.Fatalf("New with nothing enabled = %v, want nil", s)
	}
}

func TestNilSetAccessorsAreSafe(t *testing.T) {
	var s *Set
	if s.Registry() != nil || s.Tracer() != nil {
		t.Error("nil Set accessors must return nil sinks")
	}
	if s.EngineMetrics() != nil || s.DeviceMetrics("hdd") != nil ||
		s.QueueMetrics("q") != nil || s.BridgeMetrics() != nil || s.PFSMetrics() != nil {
		t.Error("nil Set metric bundles must be nil")
	}
	if s.TiSampler("x") != nil {
		t.Error("nil Set TiSampler must be nil")
	}
	if s.NextRun() != 0 {
		t.Error("nil Set NextRun must be 0")
	}
	// Writers must be no-ops, not panics.
	s.WriteMetrics(&strings.Builder{})
	s.WriteTiSeries(&strings.Builder{})
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter lookup must be idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge lookup must be idempotent")
	}
	if r.Hist("h") != r.Hist("h") {
		t.Error("Hist lookup must be idempotent")
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Hist("h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(int64(i*1000 + j))
				h.Observe(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Max() < 7000 {
		t.Errorf("gauge max = %d, want >= 7000", g.Max())
	}
	if s := h.Snapshot(); s.Count() != 8000 {
		t.Errorf("hist count = %d, want 8000", s.Count())
	}
}

func TestRegistryRenderAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("bridge.hits").Add(7)
	r.Gauge("engine.pending").Set(42)
	r.Hist("hdd.service_ms").Observe(3.5)
	r.RegisterFunc("live.reads", func() float64 { return 11 })

	out := r.Render()
	for _, want := range []string{"bridge.hits", "7", "engine.pending", "hdd.service_ms", "live.reads", "-- metrics --"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap["bridge.hits"] != float64(7) {
		t.Errorf("snapshot bridge.hits = %v", snap["bridge.hits"])
	}
	if snap["live.reads"] != float64(11) {
		t.Errorf("snapshot live.reads = %v", snap["live.reads"])
	}
	if snap["hdd.service_ms.count"] != float64(1) {
		t.Errorf("snapshot hist count = %v", snap["hdd.service_ms.count"])
	}
}

func TestDeviceMetricsObserve(t *testing.T) {
	s := New(Config{Metrics: true})
	m := s.DeviceMetrics("hdd")
	m.ObserveIO(device.Request{Op: device.Read, Sectors: 8}, 2*sim.Millisecond, sim.Millisecond)
	m.ObserveIO(device.Request{Op: device.Write, Sectors: 8}, 0, sim.Millisecond)
	if m.Reads.Value() != 1 || m.Writes.Value() != 1 {
		t.Errorf("ops = %d/%d, want 1/1", m.Reads.Value(), m.Writes.Value())
	}
	if sn := m.Service.Snapshot(); sn.Count() != 2 || sn.Max() < 2.9 {
		t.Errorf("service hist: %s", sn.Summary())
	}
}

func TestSetAggregatesAcrossBundles(t *testing.T) {
	s := New(Config{Metrics: true})
	// Two "clusters" resolving the same names share the counters.
	a, b := s.BridgeMetrics(), s.BridgeMetrics()
	a.Hits.Inc()
	b.Hits.Inc()
	if got := s.Registry().Counter("bridge.hits").Value(); got != 2 {
		t.Errorf("aggregated hits = %d, want 2", got)
	}
}

func TestTiSampler(t *testing.T) {
	s := New(Config{Metrics: true, SampleEvery: 10 * sim.Millisecond})
	ts := s.TiSampler("run1")
	view := []float64{0.001, 0.002}
	ts.Sample(0, view, TiSnapshot{Hits: 1})
	ts.Sample(5*sim.Time(sim.Millisecond), view, TiSnapshot{}) // inside rate limit: dropped
	ts.Sample(10*sim.Time(sim.Millisecond), view, TiSnapshot{Hits: 3, BoostedOffloads: 2})
	got := ts.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d, want 2 (rate limit)", len(got))
	}
	if got[1].Snap.Hits != 3 || got[1].Snap.BoostedOffloads != 2 {
		t.Errorf("snapshot not carried: %+v", got[1].Snap)
	}
	// The view must be copied, not aliased.
	view[0] = 99
	if got := ts.Samples(); got[0].T[0] == 99 {
		t.Error("sampler aliased the live view slice")
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "ti[run1]") {
		t.Errorf("WriteMetrics missing sampler summary:\n%s", sb.String())
	}
	sb.Reset()
	s.WriteTiSeries(&sb)
	if !strings.Contains(sb.String(), "T_i series [run1]") || !strings.Contains(sb.String(), "boosted=2") {
		t.Errorf("WriteTiSeries output:\n%s", sb.String())
	}
}

func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo)
	l.Infof("info %d", 1)
	l.Debugf("debug %d", 2)
	if got := sb.String(); got != "info 1\n" {
		t.Errorf("info-level output = %q", got)
	}
	sb.Reset()
	l = NewLogger(&sb, LevelDebug)
	l.Infof("a")
	l.Debugf("b")
	if got := sb.String(); got != "a\nb\n" {
		t.Errorf("debug-level output = %q", got)
	}
	var nilLogger *Logger
	nilLogger.Infof("must not panic")
}
