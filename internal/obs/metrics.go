package obs

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// This file defines the per-component metric bundles. Each bundle is a
// plain struct of registry pointers that a component resolves once at
// wiring time and updates directly on its hot path — the registry map
// is never touched again. All constructors are nil-safe: a nil Set (or
// a Set without metrics) yields a nil bundle, and the component's
// instrumentation reduces to one branch on that nil pointer.
//
// Bundles from different cluster instances built against the same Set
// resolve to the same named metrics, so a parallel experiment grid
// aggregates into one registry.

// EngineMetrics instruments the simulation engine's event loop. It
// implements sim.Probe.
type EngineMetrics struct {
	Events  *Counter
	Pending *Gauge
}

// EngineMetrics returns the engine bundle, or nil when metrics are off.
func (s *Set) EngineMetrics() *EngineMetrics {
	r := s.Registry()
	if r == nil {
		return nil
	}
	return &EngineMetrics{
		Events:  r.Counter("engine.events"),
		Pending: r.Gauge("engine.pending"),
	}
}

// OnEvent implements sim.Probe.
func (m *EngineMetrics) OnEvent(now sim.Time, pending int) {
	m.Events.Inc()
	m.Pending.Set(int64(pending))
}

// DeviceMetrics instruments one class of device ("hdd" or "ssd") with
// per-request service-time histograms split into positioning and
// transfer components. It implements device.Probe.
type DeviceMetrics struct {
	Reads, Writes *Counter
	Service       *Hist // full service time
	Position      *Hist // seek+rotation (HDD) or per-op latency (SSD)
	Transfer      *Hist // media transfer
}

// DeviceMetrics returns the bundle for the device class kind, or nil
// when metrics are off.
func (s *Set) DeviceMetrics(kind string) *DeviceMetrics {
	r := s.Registry()
	if r == nil {
		return nil
	}
	return &DeviceMetrics{
		Reads:    r.Counter(kind + ".reads"),
		Writes:   r.Counter(kind + ".writes"),
		Service:  r.Hist(kind + ".service_ms"),
		Position: r.Hist(kind + ".position_ms"),
		Transfer: r.Hist(kind + ".transfer_ms"),
	}
}

// ObserveIO implements device.Probe.
func (m *DeviceMetrics) ObserveIO(r device.Request, position, transfer sim.Duration) {
	if r.Op == device.Read {
		m.Reads.Inc()
	} else {
		m.Writes.Inc()
	}
	m.Service.ObserveDur(position + transfer)
	m.Position.ObserveDur(position)
	m.Transfer.ObserveDur(transfer)
}

// QueueMetrics instruments one class of I/O scheduler queue.
type QueueMetrics struct {
	Submitted   *Counter
	Dispatches  *Counter
	BackMerges  *Counter
	FrontMerges *Counter
	Wait        *Hist  // submit-to-completion latency
	Depth       *Gauge // pending-queue length at dispatch
}

// QueueMetrics returns the bundle for the scheduler class kind (e.g.
// "iosched.hdd"), or nil when metrics are off.
func (s *Set) QueueMetrics(kind string) *QueueMetrics {
	r := s.Registry()
	if r == nil {
		return nil
	}
	return &QueueMetrics{
		Submitted:   r.Counter(kind + ".submitted"),
		Dispatches:  r.Counter(kind + ".dispatches"),
		BackMerges:  r.Counter(kind + ".back_merges"),
		FrontMerges: r.Counter(kind + ".front_merges"),
		Wait:        r.Hist(kind + ".wait_ms"),
		Depth:       r.Gauge(kind + ".depth"),
	}
}

// BridgeMetrics instruments the iBridge decision engine and SSD cache.
type BridgeMetrics struct {
	Hits, Misses    *Counter
	Evictions       *Counter
	Rejections      *Counter
	BoostedOffloads *Counter // Eq. (3) magnification applied
	PlainOffloads   *Counter // positive return without boost
	Stages          *Counter // read data staged during idle
	Writebacks      *Counter
	Return          *Hist  // accepted T_ret values
	Occupancy       *Gauge // cache occupancy in bytes
}

// BridgeMetrics returns the bridge bundle, or nil when metrics are off.
func (s *Set) BridgeMetrics() *BridgeMetrics {
	r := s.Registry()
	if r == nil {
		return nil
	}
	return &BridgeMetrics{
		Hits:            r.Counter("bridge.hits"),
		Misses:          r.Counter("bridge.misses"),
		Evictions:       r.Counter("bridge.evictions"),
		Rejections:      r.Counter("bridge.rejections"),
		BoostedOffloads: r.Counter("bridge.offloads_boosted"),
		PlainOffloads:   r.Counter("bridge.offloads_plain"),
		Stages:          r.Counter("bridge.stages"),
		Writebacks:      r.Counter("bridge.writebacks"),
		Return:          r.Hist("bridge.return_ms"),
		Occupancy:       r.Gauge("bridge.occupancy_bytes"),
	}
}

// PFSMetrics instruments the parallel file system's request flow: the
// client-observed parent requests and the per-server sub-request fan-out.
type PFSMetrics struct {
	Requests    *Counter
	SubRequests *Counter
	Fragments   *Counter
	Parent      *Hist // parent request completion latency
	SubServe    *Hist // per-sub-request store service time
}

// PFSMetrics returns the file-system bundle, or nil when metrics are
// off.
func (s *Set) PFSMetrics() *PFSMetrics {
	r := s.Registry()
	if r == nil {
		return nil
	}
	return &PFSMetrics{
		Requests:    r.Counter("pfs.requests"),
		SubRequests: r.Counter("pfs.sub_requests"),
		Fragments:   r.Counter("pfs.fragments"),
		Parent:      r.Hist("pfs.parent_ms"),
		SubServe:    r.Hist("pfs.sub_serve_ms"),
	}
}
