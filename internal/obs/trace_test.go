package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTracerRecordAndTimeline(t *testing.T) {
	tr := NewTracer(0)
	tr.Span(sim.Time(sim.Millisecond), 2*sim.Millisecond, 1, "client", "read", 7)
	tr.Instant(2*sim.Time(sim.Millisecond), 1, "bridge0", "ssd-hit", 7)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	var sb strings.Builder
	tr.WriteTimeline(&sb, 0)
	out := sb.String()
	for _, want := range []string{"read", "ssd-hit", "req=7", "dur=2.000ms", "run1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTracerBufferBound(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Instant(sim.Time(i), 1, "c", "e", int64(i))
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
	var sb strings.Builder
	tr.WriteTimeline(&sb, 0)
	if !strings.Contains(sb.String(), "3 events dropped") {
		t.Errorf("timeline must report drops:\n%s", sb.String())
	}
}

func TestTracerTimelineLimit(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 10; i++ {
		tr.Instant(sim.Time(i), 1, "c", "e", 0)
	}
	var sb strings.Builder
	tr.WriteTimeline(&sb, 3)
	if !strings.Contains(sb.String(), "7 more events") {
		t.Errorf("timeline must report elision:\n%s", sb.String())
	}
}

// TestTracerChromeJSON validates the trace_event export: parseable
// JSON, the documented top-level shape, phase/ts/dur semantics, and
// metadata events naming runs and components.
func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(0)
	tr.Span(sim.Time(sim.Millisecond), 2*sim.Millisecond, 1, "client", "read", 7)
	tr.Instant(2*sim.Time(sim.Millisecond), 1, "bridge0", "ssd-hit", 7)
	tr.Span(0, sim.Microsecond, 2, "client", "write", 1)

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			TS    float64                `json:"ts"`
			Dur   float64                `json:"dur"`
			Pid   int32                  `json:"pid"`
			Tid   int32                  `json:"tid"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			spans++
			if ev.Name == "read" {
				if ev.TS != 1000 || ev.Dur != 2000 {
					t.Errorf("read span ts/dur = %g/%g µs, want 1000/2000", ev.TS, ev.Dur)
				}
				if ev.Pid != 1 {
					t.Errorf("read span pid = %d, want run 1", ev.Pid)
				}
				if ev.Args["req"] != float64(7) {
					t.Errorf("read span args = %v", ev.Args)
				}
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if spans != 2 || instants != 1 {
		t.Errorf("spans/instants = %d/%d, want 2/1", spans, instants)
	}
	// 2 runs + 3 lanes (client@1, bridge0@1, client@2) named.
	if meta != 5 {
		t.Errorf("metadata events = %d, want 5", meta)
	}
}
