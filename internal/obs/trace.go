package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Event is one trace record: a span (Dur > 0 or a completed interval)
// or an instant marker, stamped with the virtual time, the run (cluster
// instance) it belongs to, the component that emitted it, and the
// parent-request id it pertains to (0 when not request-scoped).
type Event struct {
	TS   sim.Time
	Dur  sim.Duration
	Run  int32
	Comp string
	Name string
	ID   int64
	Span bool
}

// Tracer records request-flow events. Recording takes a mutex and an
// amortized slice append; the buffer is bounded and overflow is counted
// rather than grown without limit. Overflow is not silent: the drop
// count is mirrored into a registry counter when one is attached (see
// SetDropCounter) and the first drop logs a warning.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	max     int
	dropped int64
	dropC   *Counter
	warned  bool
}

// DefaultMaxEvents bounds the tracer buffer when Config.MaxTraceEvents
// is zero.
const DefaultMaxEvents = 1 << 20

// NewTracer returns a tracer buffering up to max events (0 uses
// DefaultMaxEvents).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &Tracer{max: max}
}

// Span records a completed interval that started at ts and lasted dur.
func (t *Tracer) Span(ts sim.Time, dur sim.Duration, run int32, comp, name string, id int64) {
	t.record(Event{TS: ts, Dur: dur, Run: run, Comp: comp, Name: name, ID: id, Span: true})
}

// Instant records a point event at ts.
func (t *Tracer) Instant(ts sim.Time, run int32, comp, name string, id int64) {
	t.record(Event{TS: ts, Run: run, Comp: comp, Name: name, ID: id})
}

// SetDropCounter mirrors buffer-overflow drops into c — conventionally
// the registry's "obs.trace.dropped_events" counter (wired by New when
// both metrics and tracing are enabled) — so a truncated trace is
// visible in the metrics instead of only inside the tracer.
func (t *Tracer) SetDropCounter(c *Counter) {
	t.mu.Lock()
	t.dropC = c
	t.mu.Unlock()
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
		if t.dropC != nil {
			t.dropC.Inc()
		}
		warn := !t.warned
		t.warned = true
		max := t.max
		t.mu.Unlock()
		if warn {
			log.Printf("obs: trace buffer full (%d events); dropping further events (count: obs.trace.dropped_events)", max)
		}
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events lost to the buffer bound.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshot returns the events sorted by (Run, TS, ID) — a deterministic
// order even when concurrent simulations interleaved their appends.
func (t *Tracer) snapshot() []Event {
	t.mu.Lock()
	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Run != evs[j].Run {
			return evs[i].Run < evs[j].Run
		}
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].ID < evs[j].ID
	})
	return evs
}

// chromeEvent is one entry of the Chrome trace_event JSON format
// (https://chromium.googlesource.com/catapult trace-viewer), consumable
// by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"` // microseconds
	Dur   *float64               `json:"dur,omitempty"`
	Pid   int32                  `json:"pid"`
	Tid   int32                  `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChrome emits the buffered events as Chrome trace_event JSON.
// Spans become complete ("X") events and instants become thread-scoped
// instant ("i") events; runs map to pids and components to tids, with
// metadata events naming both.
func (t *Tracer) WriteChrome(w io.Writer) error {
	evs := t.snapshot()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{}

	type lane struct {
		run  int32
		comp string
	}
	tids := map[lane]int32{}
	runs := map[int32]bool{}
	for _, ev := range evs {
		if !runs[ev.Run] {
			runs[ev.Run] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", Pid: ev.Run,
				Args: map[string]interface{}{"name": fmt.Sprintf("run %d", ev.Run)},
			})
		}
		l := lane{ev.Run, ev.Comp}
		tid, ok := tids[l]
		if !ok {
			tid = int32(len(tids) + 1)
			tids[l] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: ev.Run, Tid: tid,
				Args: map[string]interface{}{"name": ev.Comp},
			})
		}
		ce := chromeEvent{
			Name: ev.Name,
			TS:   float64(ev.TS) / 1e3, // ns → µs
			Pid:  ev.Run,
			Tid:  tid,
		}
		if ev.ID != 0 {
			ce.Args = map[string]interface{}{"req": ev.ID}
		}
		if ev.Span {
			ce.Phase = "X"
			d := float64(ev.Dur) / 1e3
			ce.Dur = &d
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTimeline emits a compact text timeline: one line per event in
// virtual-time order, grouped by run. limit bounds the number of lines
// (0 = all); a trailing line reports anything elided or dropped.
func (t *Tracer) WriteTimeline(w io.Writer, limit int) {
	evs := t.snapshot()
	n := len(evs)
	if limit > 0 && n > limit {
		n = limit
	}
	fmt.Fprintf(w, "-- trace timeline (%d events) --\n", len(evs))
	for _, ev := range evs[:n] {
		id := ""
		if ev.ID != 0 {
			id = fmt.Sprintf(" req=%d", ev.ID)
		}
		if ev.Span {
			fmt.Fprintf(w, "[run%d %12v] %-12s %-16s dur=%v%s\n",
				ev.Run, ev.TS, ev.Comp, ev.Name, ev.Dur, id)
		} else {
			fmt.Fprintf(w, "[run%d %12v] %-12s %-16s%s\n",
				ev.Run, ev.TS, ev.Comp, ev.Name, id)
		}
	}
	if elided := len(evs) - n; elided > 0 {
		fmt.Fprintf(w, "... %d more events\n", elided)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "... %d events dropped (buffer bound)\n", d)
	}
}
