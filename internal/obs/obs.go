// Package obs is the simulation observability layer: a metrics registry
// (counters, gauges, fixed-bucket latency histograms), a span-based
// request-flow tracer that exports Chrome trace_event JSON, and T_i
// telemetry sampled at the metadata-server broadcast tick.
//
// The package is built around a zero-cost-when-off contract. A nil *Set
// disables everything: components receive nil metric structs and a nil
// tracer, and every instrumentation point in the simulator reduces to a
// single branch on a nil pointer — no interface dispatch, no map lookup,
// no allocation. The hot-path microbenchmarks in internal/sim assert
// that the disabled path stays at 0 allocs/op.
//
// When enabled, components register their metrics once at construction
// (the only point where names are resolved) and thereafter update them
// through pointers. Counters and gauges are atomics and histograms take
// a short mutex, so one Set can safely aggregate across the parallel
// experiment runner's concurrent simulations.
//
// Observability never perturbs the simulation: probes only read state
// and record, so a traced run is byte-identical to an untraced one
// (enforced by internal/experiments' determinism tests).
package obs

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/sim"
)

// Config selects which observability features are enabled.
type Config struct {
	// Metrics enables the registry (counters, gauges, histograms).
	Metrics bool
	// Trace enables the request-flow tracer.
	Trace bool
	// SampleEvery throttles T_i sampling: samples closer together than
	// this are dropped. 0 samples at every metadata broadcast tick.
	SampleEvery sim.Duration
	// MaxTraceEvents bounds the tracer's in-memory event buffer
	// (default 1<<20); later events are counted as dropped.
	MaxTraceEvents int
}

// Set is one observability instance: the registry, the tracer, and the
// per-run T_i samplers. A nil *Set is valid and means "disabled"; all
// accessors return nil so callers wire nil sinks into components.
type Set struct {
	cfg     Config
	reg     *Registry
	tr      *Tracer
	nextRun atomic.Int32
	ti      tiList
}

// New returns a Set per cfg, or nil when nothing is enabled (so callers
// can thread the result straight into components as the disabled sink).
func New(cfg Config) *Set {
	if !cfg.Metrics && !cfg.Trace {
		return nil
	}
	s := &Set{cfg: cfg}
	if cfg.Metrics {
		s.reg = NewRegistry()
	}
	if cfg.Trace {
		s.tr = NewTracer(cfg.MaxTraceEvents)
		if s.reg != nil {
			// Surface overflow in the metrics: a truncated trace should
			// show up in the registry, not be discovered by its absence.
			s.tr.SetDropCounter(s.reg.Counter("obs.trace.dropped_events"))
		}
	}
	return s
}

// Registry returns the metrics registry, or nil when metrics are off.
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the request-flow tracer, or nil when tracing is off.
func (s *Set) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// NextRun allocates a run id, labelling one cluster instance in the
// trace (the Chrome trace pid) and the T_i sampler list.
func (s *Set) NextRun() int32 {
	if s == nil {
		return 0
	}
	return s.nextRun.Add(1)
}

// WriteMetrics renders the registry and the T_i telemetry to w.
func (s *Set) WriteMetrics(w io.Writer) {
	if s == nil {
		return
	}
	if s.reg != nil {
		io.WriteString(w, s.reg.Render())
	}
	s.ti.render(w)
}

// fmtDur formats a millisecond quantity for metric output.
func fmtMS(ms float64) string { return fmt.Sprintf("%.3fms", ms) }
