package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the cross-process half of the tracing story. The sim
// Tracer above stamps events with virtual time inside one process; an
// XTracer stamps wall-clock spans that carry an explicit
// {traceID, spanID, parentSpanID} context, so spans emitted by the
// pfsnet client and by every data server it fans out to can be written
// to per-process span files and later aligned into one Chrome trace
// (cmd/ibridge-trace -merge). The trace context itself travels on the
// v2 wire as an opHello-negotiated frame extension (DESIGN §12).

// XEvent is one cross-process trace record: a completed span when
// Dur > 0, an instant marker when Dur == 0. Start is wall-clock
// UnixNano; Proc names the emitting logical process (e.g. "client",
// "srv0") and Scope the lane within it (op class, connection, ...).
type XEvent struct {
	Trace  uint64 `json:"trace,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Proc   string `json:"proc"`
	Name   string `json:"name"`
	Scope  string `json:"scope,omitempty"`
	Start  int64  `json:"start"`
	Dur    int64  `json:"dur,omitempty"`
}

// XTracer buffers XEvents for one logical process. A nil *XTracer is
// valid and records nothing — the same zero-cost-when-nil contract as
// the rest of the package, so the pfsnet hot path pays one pointer
// test when tracing is off. All methods are safe for concurrent use.
type XTracer struct {
	proc    string
	mu      sync.Mutex
	events  []XEvent
	max     int
	dropped int64
	dropC   *Counter
	warned  bool
	ids     atomic.Uint64
	seed    uint64
}

// NewXTracer returns a tracer for the named logical process, buffering
// up to max events (0 uses DefaultMaxEvents).
func NewXTracer(proc string, max int) *XTracer {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	// Seed the ID sequence from the process name so IDs allocated by
	// different processes of one run do not collide (FNV-1a offset).
	seed := uint64(14695981039346656037)
	for i := 0; i < len(proc); i++ {
		seed ^= uint64(proc[i])
		seed *= 1099511628211
	}
	return &XTracer{proc: proc, max: max, seed: seed}
}

// Proc returns the logical process name ("" for a nil tracer).
func (t *XTracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// NewID allocates a nonzero trace or span identifier: a splitmix64
// stream seeded from the process name, so IDs are deterministic within
// a process and disjoint across differently named processes.
func (t *XTracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	z := t.seed + t.ids.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// SetDropCounter mirrors overflow drops into c (conventionally
// "obs.trace.dropped_events").
func (t *XTracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropC = c
	t.mu.Unlock()
}

// Span records a completed span. span must come from NewID; parent is
// 0 for a root span.
func (t *XTracer) Span(trace, span, parent uint64, name, scope string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.record(XEvent{
		Trace: trace, Span: span, Parent: parent,
		Name: name, Scope: scope,
		Start: start.UnixNano(), Dur: int64(dur),
	})
}

// Instant records a point event under the given context (both ids may
// be 0 for unattributed events such as fault injections).
func (t *XTracer) Instant(trace, parent uint64, name, scope string, at time.Time) {
	if t == nil {
		return
	}
	t.record(XEvent{Trace: trace, Parent: parent, Name: name, Scope: scope, Start: at.UnixNano()})
}

// InstantNow is Instant stamped with the current wall clock. It exists
// so packages banned from reading the clock themselves (internal/faults
// is on the detclock deterministic surface) can still mirror events
// into a trace: the timestamp is taken here, inside obs.
func (t *XTracer) InstantNow(name, scope string) {
	if t == nil {
		return
	}
	t.record(XEvent{Name: name, Scope: scope, Start: time.Now().UnixNano()})
}

func (t *XTracer) record(ev XEvent) {
	ev.Proc = t.proc
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
		if t.dropC != nil {
			t.dropC.Inc()
		}
		warn := !t.warned
		t.warned = true
		max := t.max
		t.mu.Unlock()
		if warn {
			log.Printf("obs: span buffer full for %q (%d events); dropping further events (count: obs.trace.dropped_events)", t.proc, max)
		}
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *XTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events lost to the buffer bound.
func (t *XTracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events sorted by
// (Start, Span, Name) — stable regardless of recording interleave.
func (t *XTracer) Events() []XEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := make([]XEvent, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()
	sortXEvents(evs)
	return evs
}

func sortXEvents(evs []XEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		if evs[i].Span != evs[j].Span {
			return evs[i].Span < evs[j].Span
		}
		return evs[i].Name < evs[j].Name
	})
}

// WriteSpans emits the buffered events as JSON lines — the span-file
// format consumed by ReadSpans and `ibridge-trace -merge`.
func (t *XTracer) WriteSpans(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a span file written by WriteSpans.
func ReadSpans(r io.Reader) ([]XEvent, error) {
	var evs []XEvent
	dec := json.NewDecoder(r)
	for {
		var ev XEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return evs, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: parsing span file: %w", err)
		}
		evs = append(evs, ev)
	}
}

// WriteChromeX merges XEvents — typically read from several
// per-process span files — into one Chrome trace_event JSON document.
// Processes map to pids (sorted by name) and scopes within a process
// to tids; timestamps are normalized so the earliest event across all
// processes sits at t=0, which is what visually aligns a client's
// request span with the server-side queue-wait/store/respond child
// spans it caused. Span/parent/trace ids ride in args.
func WriteChromeX(w io.Writer, evs []XEvent) error {
	evs = append([]XEvent(nil), evs...)
	sortXEvents(evs)

	var t0 int64
	procs := map[string]int32{}
	var procNames []string
	for _, ev := range evs {
		if t0 == 0 || ev.Start < t0 {
			t0 = ev.Start
		}
		if _, ok := procs[ev.Proc]; !ok {
			procs[ev.Proc] = 0
			procNames = append(procNames, ev.Proc)
		}
	}
	sort.Strings(procNames)
	for i, name := range procNames {
		procs[name] = int32(i + 1)
	}

	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{}
	type lane struct {
		pid   int32
		scope string
	}
	tids := map[lane]int32{}
	for _, name := range procNames {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", Pid: procs[name],
			Args: map[string]interface{}{"name": name},
		})
	}
	for _, ev := range evs {
		pid := procs[ev.Proc]
		scope := ev.Scope
		if scope == "" {
			scope = "main"
		}
		l := lane{pid, scope}
		tid, ok := tids[l]
		if !ok {
			tid = int32(len(tids) + 1)
			tids[l] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
				Args: map[string]interface{}{"name": scope},
			})
		}
		ce := chromeEvent{
			Name: ev.Name,
			TS:   float64(ev.Start-t0) / 1e3, // ns → µs
			Pid:  pid,
			Tid:  tid,
		}
		args := map[string]interface{}{}
		if ev.Trace != 0 {
			args["trace"] = fmt.Sprintf("%016x", ev.Trace)
		}
		if ev.Span != 0 {
			args["span"] = fmt.Sprintf("%016x", ev.Span)
		}
		if ev.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", ev.Parent)
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			d := float64(ev.Dur) / 1e3
			ce.Dur = &d
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return json.NewEncoder(w).Encode(out)
}
