package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestXTracerNilSafe(t *testing.T) {
	var tr *XTracer
	tr.Span(1, 2, 3, "x", "s", time.Unix(0, 0), time.Second)
	tr.Instant(1, 2, "x", "s", time.Unix(0, 0))
	tr.InstantNow("x", "s")
	tr.SetDropCounter(nil)
	if tr.NewID() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Proc() != "" || tr.Events() != nil {
		t.Fatal("nil XTracer must be inert")
	}
	if err := tr.WriteSpans(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteSpans: %v", err)
	}
}

func TestXTracerIDs(t *testing.T) {
	a, b := NewXTracer("client", 0), NewXTracer("srv0", 0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, id := range []uint64{a.NewID(), b.NewID()} {
			if id == 0 {
				t.Fatal("NewID returned 0")
			}
			if seen[id] {
				t.Fatalf("duplicate id %x", id)
			}
			seen[id] = true
		}
	}
	// Same process name → same deterministic sequence.
	if NewXTracer("client", 0).NewID() != NewXTracer("client", 0).NewID() {
		t.Fatal("NewID not deterministic per process name")
	}
}

func TestXTracerSpanFileRoundTrip(t *testing.T) {
	tr := NewXTracer("srv0", 0)
	trace, parent := tr.NewID(), tr.NewID()
	span := tr.NewID()
	start := time.Unix(100, 500)
	tr.Span(trace, span, parent, "queue-wait", "conn1", start, 3*time.Millisecond)
	tr.Instant(trace, parent, "fault.reset", "srv0", start.Add(time.Millisecond))

	var buf bytes.Buffer
	if err := tr.WriteSpans(&buf); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("round-tripped %d events, want 2", len(evs))
	}
	sp := evs[0]
	if sp.Proc != "srv0" || sp.Trace != trace || sp.Span != span || sp.Parent != parent ||
		sp.Name != "queue-wait" || sp.Scope != "conn1" ||
		sp.Start != start.UnixNano() || sp.Dur != int64(3*time.Millisecond) {
		t.Fatalf("span mangled in round trip: %+v", sp)
	}
	if evs[1].Dur != 0 || evs[1].Name != "fault.reset" {
		t.Fatalf("instant mangled: %+v", evs[1])
	}
}

func TestWriteChromeXMerge(t *testing.T) {
	client := NewXTracer("client", 0)
	srv := NewXTracer("srv0", 0)
	trace := client.NewID()
	parent := client.NewID()
	base := time.Unix(1000, 0)
	client.Span(trace, parent, 0, "WriteAt", "write", base, 10*time.Millisecond)
	srv.Span(trace, srv.NewID(), parent, "store", "conn1", base.Add(2*time.Millisecond), 4*time.Millisecond)

	evs := append(client.Events(), srv.Events()...)
	var buf bytes.Buffer
	if err := WriteChromeX(&buf, evs); err != nil {
		t.Fatalf("WriteChromeX: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged output is not JSON: %v", err)
	}
	var pids = map[string]float64{}
	var sawClientSpan, sawServerSpan bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			args := ev["args"].(map[string]interface{})
			pids[args["name"].(string)] = ev["pid"].(float64)
		}
		if ev["ph"] == "X" && ev["name"] == "WriteAt" {
			sawClientSpan = true
			if ev["ts"].(float64) != 0 {
				t.Errorf("earliest span should be normalized to ts=0, got %v", ev["ts"])
			}
		}
		if ev["ph"] == "X" && ev["name"] == "store" {
			sawServerSpan = true
			if ev["ts"].(float64) != 2000 { // 2 ms after the client span, in µs
				t.Errorf("server span ts = %v µs, want 2000", ev["ts"])
			}
			args := ev["args"].(map[string]interface{})
			if args["parent"] == "" || args["trace"] == "" {
				t.Errorf("server span lost its context: %v", args)
			}
		}
	}
	if !sawClientSpan || !sawServerSpan {
		t.Fatalf("merged trace missing spans (client=%v server=%v)", sawClientSpan, sawServerSpan)
	}
	if len(pids) != 2 || pids["client"] == pids["srv0"] {
		t.Fatalf("processes should map to distinct pids: %v", pids)
	}
}

func TestXTracerDropCounter(t *testing.T) {
	reg := NewRegistry()
	tr := NewXTracer("client", 2)
	tr.SetDropCounter(reg.Counter("obs.trace.dropped_events"))
	for i := 0; i < 5; i++ {
		tr.InstantNow("ev", "")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (bounded)", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	if got := reg.Counter("obs.trace.dropped_events").Value(); got != 3 {
		t.Fatalf("obs.trace.dropped_events = %d, want 3", got)
	}
}

// The sim tracer's overflow must be mirrored the same way when a Set
// enables both metrics and tracing.
func TestTracerDropCounterWired(t *testing.T) {
	s := New(Config{Metrics: true, Trace: true, MaxTraceEvents: 1})
	s.Tracer().Instant(0, 1, "c", "a", 1)
	s.Tracer().Instant(0, 1, "c", "b", 2)
	s.Tracer().Instant(0, 1, "c", "c", 3)
	if d := s.Tracer().Dropped(); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
	if got := s.Registry().Counter("obs.trace.dropped_events").Value(); got != 2 {
		t.Fatalf("obs.trace.dropped_events = %d, want 2", got)
	}
	snap := s.Registry().Snapshot()
	if _, ok := snap["obs.trace.dropped_events"]; !ok {
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		t.Fatalf("dropped_events not in snapshot: %s", strings.Join(keys, ","))
	}
}
