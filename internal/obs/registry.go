package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Registry holds named metrics. Components resolve their metrics by name
// exactly once, at construction, and keep the returned pointers; the
// registry's map is never consulted on the hot path. Lookups are
// idempotent, so concurrently built clusters share one aggregate metric
// per name.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		funcs:    make(map[string]func() float64),
	}
}

// Counter is a monotonically increasing metric. Updates are atomic so
// concurrent simulations may share one counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric that also tracks the maximum it has held.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records v as the current value, updating the running maximum.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the largest value ever set.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Hist is a concurrency-safe latency histogram in milliseconds, backed
// by stats.Hist (exponential buckets from 1 µs to 100 s).
type Hist struct {
	mu sync.Mutex
	h  *stats.Hist
}

// histBounds covers 1 µs .. 100 s with 9 buckets per decade: better
// than 30% relative quantile resolution over the whole latency range
// the simulated devices produce.
func histBounds() []float64 { return stats.ExpBounds(1e-3, 1e5, 9) }

// Observe records one value in milliseconds.
func (h *Hist) Observe(ms float64) {
	h.mu.Lock()
	h.h.Observe(ms)
	h.mu.Unlock()
}

// ObserveDur records one virtual duration.
func (h *Hist) ObserveDur(d sim.Duration) { h.Observe(d.Milliseconds()) }

// Snapshot returns a copy of the underlying histogram for reading.
func (h *Hist) Snapshot() stats.Hist {
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := *h.h
	return cp
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{h: stats.NewHist(histBounds())}
		r.hists[name] = h
	}
	return h
}

// CounterValues returns every counter's current value keyed by name.
// Chaos tests use it as a reproducibility fingerprint: two runs of the
// same workload under the same fault plan must produce identical maps
// for the deterministic counters (retries, breaker transitions,
// injected faults).
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// RegisterFunc registers a derived metric computed on demand at
// snapshot time (used by cmd/pfs-server to surface live server stats
// through the same registry).
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns every metric's current value keyed by name, with
// histograms expanded into count/mean/p50/p95/p99/max sub-keys. The
// result is expvar-friendly (only strings and float64s).
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]interface{}, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
		out[name+".max"] = float64(g.Max())
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		out[name+".count"] = float64(s.Count())
		out[name+".mean_ms"] = s.Mean()
		out[name+".p50_ms"] = s.Quantile(0.50)
		out[name+".p95_ms"] = s.Quantile(0.95)
		out[name+".p99_ms"] = s.Quantile(0.99)
		out[name+".max_ms"] = s.Max()
	}
	for name, fn := range r.funcs {
		out[name] = fn()
	}
	return out
}

// Render formats the registry as sorted text: one line per counter and
// gauge, one summary line per histogram.
func (r *Registry) Render() string {
	r.mu.Lock()
	type hsnap struct {
		name string
		h    stats.Hist
	}
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%-40s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%-40s %d (max %d)", name, g.Value(), g.Max()))
	}
	for name, fn := range r.funcs {
		lines = append(lines, fmt.Sprintf("%-40s %g", name, fn()))
	}
	hists := make([]hsnap, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, hsnap{name, h.Snapshot()})
	}
	r.mu.Unlock()

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, hs := range hists {
		s := hs.h
		lines = append(lines, fmt.Sprintf("%-40s n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
			hs.name, s.Count(), fmtMS(s.Mean()), fmtMS(s.Quantile(0.50)),
			fmtMS(s.Quantile(0.95)), fmtMS(s.Quantile(0.99)), fmtMS(s.Max())))
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("-- metrics --\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
