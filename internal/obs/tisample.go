package obs

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// TiSnapshot is the cumulative iBridge decision state captured with each
// T_i sample: how many positive-return offloads had the Eq. (3)
// magnification boost applied versus not, and the SSD cache behaviour.
type TiSnapshot struct {
	BoostedOffloads int64
	PlainOffloads   int64
	Hits            int64
	Misses          int64
	Evictions       int64
}

// TiSample is one observation of the broadcast T vector.
type TiSample struct {
	At   sim.Time
	T    []float64 // seconds, indexed by server id
	Snap TiSnapshot
}

// maxTiSamples bounds the retained series per sampler so long runs (or
// wide experiment grids sharing one Set) stay bounded in memory.
const maxTiSamples = 4096

// TiSampler collects the T_i time series of one cluster run, hooked
// into the metadata-server broadcast tick via core.Exchange.
type TiSampler struct {
	mu      sync.Mutex
	label   string
	every   sim.Duration
	last    sim.Time
	started bool
	samples []TiSample
	dropped int64
}

// tiList owns the samplers of a Set.
type tiList struct {
	mu       sync.Mutex
	samplers []*TiSampler
}

// TiSampler returns a new sampler labelled label (typically the run id
// plus the cluster mode), registered with the Set, or nil when s is nil
// so disabled runs wire a nil sink.
func (s *Set) TiSampler(label string) *TiSampler {
	if s == nil {
		return nil
	}
	ts := &TiSampler{label: label, every: s.cfg.SampleEvery}
	s.ti.mu.Lock()
	s.ti.samplers = append(s.ti.samplers, ts)
	s.ti.mu.Unlock()
	return ts
}

// Sample records the broadcast T vector at virtual time now, subject to
// the sampler's rate limit. The view slice is copied; snap carries the
// cumulative decision counters at the same instant.
func (ts *TiSampler) Sample(now sim.Time, view []float64, snap TiSnapshot) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.started && ts.every > 0 && now.Sub(ts.last) < ts.every {
		return
	}
	ts.started = true
	ts.last = now
	if len(ts.samples) >= maxTiSamples {
		ts.dropped++
		return
	}
	t := make([]float64, len(view))
	copy(t, view)
	ts.samples = append(ts.samples, TiSample{At: now, T: t, Snap: snap})
}

// Samples returns the retained series.
func (ts *TiSampler) Samples() []TiSample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TiSample, len(ts.samples))
	copy(out, ts.samples)
	return out
}

// Label returns the sampler's label.
func (ts *TiSampler) Label() string { return ts.label }

// summary formats one line: sample count and the final vector's range.
func (ts *TiSampler) summary() string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.samples) == 0 {
		return fmt.Sprintf("ti[%s]: no samples", ts.label)
	}
	lastSample := ts.samples[len(ts.samples)-1]
	min, max, sum := lastSample.T[0], lastSample.T[0], 0.0
	for _, v := range lastSample.T {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	sn := lastSample.Snap
	return fmt.Sprintf("ti[%s]: %d samples; last T min/mean/max = %.3f/%.3f/%.3f ms; offloads boosted/plain = %d/%d; hits/misses/evictions = %d/%d/%d",
		ts.label, len(ts.samples), min*1e3, sum/float64(len(lastSample.T))*1e3, max*1e3,
		sn.BoostedOffloads, sn.PlainOffloads, sn.Hits, sn.Misses, sn.Evictions)
}

// WriteSeries emits the full retained series as text: one line per
// sample with the T vector in milliseconds and the decision counters.
func (ts *TiSampler) WriteSeries(w io.Writer) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	fmt.Fprintf(w, "-- T_i series [%s] (%d samples) --\n", ts.label, len(ts.samples))
	for _, s := range ts.samples {
		fmt.Fprintf(w, "%12v T(ms)=[", s.At)
		for i, v := range s.T {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%.3f", v*1e3)
		}
		fmt.Fprintf(w, "] boosted=%d plain=%d hits=%d misses=%d evictions=%d\n",
			s.Snap.BoostedOffloads, s.Snap.PlainOffloads, s.Snap.Hits, s.Snap.Misses, s.Snap.Evictions)
	}
	if ts.dropped > 0 {
		fmt.Fprintf(w, "... %d samples dropped (series bound)\n", ts.dropped)
	}
}

// render writes one summary line per sampler.
func (l *tiList) render(w io.Writer) {
	l.mu.Lock()
	samplers := make([]*TiSampler, len(l.samplers))
	copy(samplers, l.samplers)
	l.mu.Unlock()
	if len(samplers) == 0 {
		return
	}
	fmt.Fprintf(w, "-- T_i telemetry (%d runs) --\n", len(samplers))
	for _, ts := range samplers {
		fmt.Fprintln(w, ts.summary())
	}
}

// WriteTiSeries emits every sampler's full series (the single-run
// ibridge-sim view; for wide bench grids prefer WriteMetrics's
// one-line-per-run summaries).
func (s *Set) WriteTiSeries(w io.Writer) {
	if s == nil {
		return
	}
	s.ti.mu.Lock()
	samplers := make([]*TiSampler, len(s.ti.samplers))
	copy(samplers, s.ti.samplers)
	s.ti.mu.Unlock()
	for _, ts := range samplers {
		ts.WriteSeries(w)
	}
}
