// Package stats provides the small numeric and rendering helpers shared
// by the experiment harness: aligned text tables for reproducing the
// paper's tables/figures as terminal output, and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a renderable experiment result: an ID (e.g. "fig4a"), a title,
// column headers, string rows, and free-form notes comparing against the
// paper.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row, applying fmt.Sprint to each cell value.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Speedup formats the ratio b/a as a "+NN%" improvement string.
func Speedup(base, improved float64) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*(improved/base-1))
}
