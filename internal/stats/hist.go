package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is a fixed-bucket histogram: bucket boundaries are chosen once at
// construction and observations are counted into them, so recording a
// value is a binary search plus two integer increments — no allocation
// and no data retention beyond the counts. Quantiles are estimated by
// linear interpolation within the containing bucket, clamped to the
// observed min/max, which keeps the estimate exact at the extremes and
// within one bucket's resolution elsewhere.
//
// Hist is the percentile engine behind internal/obs's latency metrics;
// it is not safe for concurrent use (obs wraps it with a lock).
type Hist struct {
	// bounds[i] is the inclusive upper bound of bucket i; bucket
	// len(bounds) is the overflow bucket.
	bounds []float64
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// NewHist returns a histogram over the given ascending bucket upper
// bounds. An extra overflow bucket catches values above the last bound.
func NewHist(bounds []float64) *Hist {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Hist{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExpBounds returns exponentially spaced bucket bounds from lo to hi
// (both > 0) with perDecade buckets per factor of ten — the standard
// layout for latency histograms, giving constant relative resolution.
func ExpBounds(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("stats: ExpBounds requires 0 < lo < hi and perDecade > 0")
	}
	step := math.Pow(10, 1/float64(perDecade))
	var bounds []float64
	for b := lo; b < hi*(1+1e-12); b *= step {
		bounds = append(bounds, b)
	}
	return bounds
}

// Observe counts one value. It performs no allocation.
func (h *Hist) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-th quantile (0..1) by locating the bucket
// containing the target rank and interpolating linearly inside it. The
// estimate is clamped to the observed [min, max].
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := h.bucketRange(i)
			frac := (rank - float64(cum)) / float64(c)
			v := lo + frac*(hi-lo)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// bucketRange returns the value range covered by bucket i, clamped to
// the observed min/max so sparse edge buckets do not over-widen the
// interpolation interval.
func (h *Hist) bucketRange(i int) (lo, hi float64) {
	switch {
	case i == 0:
		lo = h.min
	default:
		lo = h.bounds[i-1]
	}
	if i < len(h.bounds) {
		hi = h.bounds[i]
	} else {
		hi = h.max
	}
	if hi > h.max {
		hi = h.max
	}
	if lo < h.min {
		lo = h.min
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Merge folds other into h. Both histograms must share identical
// bounds; merging histograms with different bucket layouts would
// silently misattribute counts, so a mismatch is reported as an error
// and h is left unchanged.
func (h *Hist) Merge(other *Hist) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("stats: merging histograms with different bounds (%d vs %d buckets)",
			len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("stats: merging histograms with different bounds (bucket %d: %g vs %g)",
				i, h.bounds[i], other.bounds[i])
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	return nil
}

// Reset clears all observations while keeping the bucket layout, so a
// histogram can be recycled (e.g. as a ring window) without
// reallocating its counts slice.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Summary formats the histogram's headline statistics on one line:
// count, mean, p50/p95/p99, and max.
func (h *Hist) Summary() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// RenderBars formats the non-empty buckets as an ASCII bar chart (for
// debugging and the observability text dumps).
func (h *Hist) RenderBars() string {
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.bucketRange(i)
		frac := float64(c) / float64(h.n)
		bar := strings.Repeat("#", int(frac*50+0.5))
		fmt.Fprintf(&b, "[%10.4g, %10.4g] %6.1f%% %s\n", lo, hi, frac*100, bar)
	}
	return b.String()
}
