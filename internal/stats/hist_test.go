package stats

import (
	"math"
	"strings"
	"testing"
)

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1, 1000, 1)
	want := []float64{1, 10, 100, 1000}
	if len(b) != len(want) {
		t.Fatalf("ExpBounds(1,1000,1) = %v, want %v", b, want)
	}
	for i := range want {
		if math.Abs(b[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("bound %d = %g, want %g", i, b[i], want[i])
		}
	}
	fine := ExpBounds(0.01, 1000, 4)
	for i := 1; i < len(fine); i++ {
		if fine[i] <= fine[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, fine)
		}
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist(ExpBounds(1, 100, 2))
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Errorf("empty histogram should report zeros: %s", h.Summary())
	}
	if h.Summary() != "n=0" {
		t.Errorf("Summary = %q", h.Summary())
	}
}

func TestHistBasicStats(t *testing.T) {
	h := NewHist(ExpBounds(0.1, 1000, 4))
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %g, want 50.5", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %g/%g, want 1/100", h.Min(), h.Max())
	}
	// Quantiles are bucket-interpolated: with 4 buckets per decade the
	// relative error is bounded by one bucket width (10^(1/4) ≈ 1.78x).
	checks := []struct{ q, want float64 }{{0.5, 50}, {0.95, 95}, {0.99, 99}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/1.8 || got > c.want*1.8 {
			t.Errorf("Quantile(%g) = %g, want within a bucket of %g", c.q, got, c.want)
		}
	}
	// Extremes are exact.
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Errorf("Quantile extremes = %g/%g, want 1/100", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistSingleValue(t *testing.T) {
	h := NewHist(ExpBounds(1, 1000, 2))
	for i := 0; i < 10; i++ {
		h.Observe(42)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42 (clamped to observed range)", q, got)
		}
	}
}

func TestHistOverflowBucket(t *testing.T) {
	h := NewHist([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(1e6) // above the last bound: overflow bucket
	if h.Max() != 1e6 {
		t.Errorf("Max = %g, want 1e6", h.Max())
	}
	if got := h.Quantile(1); got != 1e6 {
		t.Errorf("Quantile(1) = %g, want 1e6", got)
	}
}

func TestHistMerge(t *testing.T) {
	bounds := ExpBounds(1, 100, 2)
	a, b := NewHist(bounds), NewHist(bounds)
	for v := 1.0; v <= 50; v++ {
		a.Observe(v)
	}
	for v := 51.0; v <= 100; v++ {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 100 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if math.Abs(a.Mean()-50.5) > 1e-9 {
		t.Errorf("merged Mean = %g, want 50.5", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Errorf("merged Min/Max = %g/%g", a.Min(), a.Max())
	}
}

// TestHistQuantileEdgeCases is the table form of the quantile contract:
// empty histograms report zero, a single observation pins every
// quantile, values beyond the last bound land in the overflow bucket
// but stay clamped to the observed max, and merging incompatible
// layouts is an error that leaves the receiver untouched.
func TestHistQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Hist
		q, want float64
	}{
		{"empty p50", func() *Hist { return NewHist(ExpBounds(1, 100, 2)) }, 0.5, 0},
		{"empty p99", func() *Hist { return NewHist(ExpBounds(1, 100, 2)) }, 0.99, 0},
		{"single observation p50", func() *Hist {
			h := NewHist(ExpBounds(1, 1000, 4))
			h.Observe(7)
			return h
		}, 0.5, 7},
		{"single observation p99", func() *Hist {
			h := NewHist(ExpBounds(1, 1000, 4))
			h.Observe(7)
			return h
		}, 0.99, 7},
		{"all in overflow bucket p50", func() *Hist {
			h := NewHist([]float64{1, 10})
			for i := 0; i < 5; i++ {
				h.Observe(1e4)
			}
			return h
		}, 0.5, 1e4},
		{"all in overflow bucket p100", func() *Hist {
			h := NewHist([]float64{1, 10})
			h.Observe(100)
			h.Observe(200)
			return h
		}, 1, 200},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.build().Quantile(c.q); got != c.want {
				t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
			}
		})
	}
}

func TestHistMergeBoundsMismatch(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
	}{
		{"different lengths", []float64{1, 2, 3}, []float64{1, 2}},
		{"same length, different values", []float64{1, 2}, []float64{1, 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, b := NewHist(c.a), NewHist(c.b)
			a.Observe(1.5)
			b.Observe(1.5)
			if err := a.Merge(b); err == nil {
				t.Fatal("Merge with mismatched bounds should return an error")
			}
			if a.Count() != 1 {
				t.Errorf("failed Merge mutated receiver: Count = %d, want 1", a.Count())
			}
		})
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist(ExpBounds(1, 100, 2))
	for v := 1.0; v <= 10; v++ {
		h.Observe(v)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("Reset histogram should report zeros: %s", h.Summary())
	}
	h.Observe(3)
	if h.Count() != 1 || h.Quantile(0.5) != 3 {
		t.Errorf("histogram unusable after Reset: %s", h.Summary())
	}
}

func TestHistRender(t *testing.T) {
	h := NewHist(ExpBounds(1, 100, 1))
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if s := h.Summary(); !strings.Contains(s, "n=10") {
		t.Errorf("Summary = %q, missing count", s)
	}
	if s := h.RenderBars(); !strings.Contains(s, "100.0%") {
		t.Errorf("RenderBars = %q, missing single full bucket", s)
	}
}
