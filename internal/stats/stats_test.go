package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "demo",
		Title:   "a demo table",
		Columns: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1.0")
	tbl.AddRowf("beta", 2.5)
	tbl.Note("a note with %d parts", 2)
	out := tbl.Render()
	for _, want := range []string{"== demo: a demo table ==", "alpha", "beta", "2.5", "note: a note with 2 parts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns must align: "alpha" and "beta " occupy the same width.
	lines := strings.Split(out, "\n")
	var alphaIdx, betaIdx int
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaIdx = strings.Index(l, "1.0")
		}
		if strings.HasPrefix(l, "beta") {
			betaIdx = strings.Index(l, "2.5")
		}
	}
	if alphaIdx == 0 || alphaIdx != betaIdx {
		t.Fatalf("columns misaligned: %d vs %d\n%s", alphaIdx, betaIdx, out)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with non-positive value did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {100, 5}, {50, 3}, {20, 1}, {80, 4}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileWithinRange(t *testing.T) {
	if err := quick.Check(func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		v := Percentile(xs, p)
		return v >= lo && v <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 150); got != "+50%" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Speedup(100, 80); got != "-20%" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Speedup(0, 80); got != "n/a" {
		t.Fatalf("Speedup = %q", got)
	}
}
