// Package device defines the abstractions shared by the simulated storage
// devices (internal/hdd, internal/ssd): block-level requests, device specs
// in the style of the paper's Table II, and service statistics.
//
// Devices operate on a logical-block-number (LBN) address space measured in
// 512-byte sectors, matching the granularity the paper uses for its
// blktrace request-size distributions.
package device

import (
	"fmt"

	"repro/internal/sim"
)

// SectorSize is the size in bytes of one logical block (disk sector).
const SectorSize = 512

// Op distinguishes reads from writes.
type Op uint8

// The two block-level operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Request is one block-level I/O request dispatched to a device.
type Request struct {
	Op      Op
	LBN     int64 // first sector
	Sectors int64 // length in sectors
	// Origin identifies the issuing process context (MPI rank or
	// server daemon); the CFQ-style scheduler groups requests by it.
	Origin int32
}

// Bytes returns the request length in bytes.
func (r Request) Bytes() int64 { return r.Sectors * SectorSize }

// End returns the LBN one past the last sector of the request.
func (r Request) End() int64 { return r.LBN + r.Sectors }

func (r Request) String() string {
	return fmt.Sprintf("%s[%d+%d]", r.Op, r.LBN, r.Sectors)
}

// Contiguous reports whether s starts exactly where r ends (back-merge
// candidate) and has the same operation.
func (r Request) Contiguous(s Request) bool {
	return r.Op == s.Op && r.End() == s.LBN
}

// Device is a simulated block storage device. Serve blocks the calling
// simulated process for the virtual duration of the request and returns
// that duration. Devices serialize internally: concurrent Serve calls
// queue at the medium.
type Device interface {
	// Serve executes r, blocking p in virtual time.
	Serve(p *sim.Proc, r Request) sim.Duration
	// EstimateService predicts the service time of r if it were issued
	// right now, without executing it. Used by the iBridge return-value
	// model (Eq. 1 of the paper).
	EstimateService(r Request) sim.Duration
	// Name identifies the device in traces and logs.
	Name() string
	// Stats returns accumulated service statistics.
	Stats() *Stats
	// IdleSince returns the virtual time at which the device last
	// completed a request with an empty queue, for idle detection by
	// the writeback daemon. A busy device returns the current time.
	IdleSince() sim.Time
	// Capacity returns the device capacity in bytes.
	Capacity() int64
}

// Probe observes completed device requests with the service time split
// into its positioning and transfer components (the seek-vs-transfer
// decomposition behind the paper's Eq. 1). Implemented by
// obs.DeviceMetrics; a nil Probe disables observation at the cost of a
// single branch per request.
//
// Probes run inline in the serving process after the request's virtual
// time has elapsed; they must not block or mutate simulation state.
type Probe interface {
	ObserveIO(r Request, position, transfer sim.Duration)
}

// Stats accumulates device service statistics.
type Stats struct {
	Ops      [2]int64     // per Op
	Bytes    [2]int64     // per Op
	BusyTime sim.Duration // total time the medium was busy
	SeekTime sim.Duration // time spent positioning (HDD only)
	Seeks    int64        // repositioning operations (HDD only)
	SeqOps   [2]int64     // requests served without repositioning
}

// TotalOps returns the total number of requests served.
func (s *Stats) TotalOps() int64 { return s.Ops[Read] + s.Ops[Write] }

// TotalBytes returns the total number of bytes moved.
func (s *Stats) TotalBytes() int64 { return s.Bytes[Read] + s.Bytes[Write] }

// Throughput returns the average device throughput in bytes per second of
// virtual time over elapsed.
func (s *Stats) Throughput(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.TotalBytes()) / elapsed.Seconds()
}

// Utilization returns the fraction of elapsed virtual time the medium was
// busy.
func (s *Stats) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.BusyTime.Seconds() / elapsed.Seconds()
}
