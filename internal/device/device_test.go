package device

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRequestBytes(t *testing.T) {
	r := Request{Op: Read, LBN: 10, Sectors: 8}
	if r.Bytes() != 8*SectorSize {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
	if r.End() != 18 {
		t.Fatalf("End = %d", r.End())
	}
}

func TestContiguous(t *testing.T) {
	a := Request{Op: Read, LBN: 0, Sectors: 8}
	b := Request{Op: Read, LBN: 8, Sectors: 8}
	c := Request{Op: Write, LBN: 8, Sectors: 8}
	d := Request{Op: Read, LBN: 9, Sectors: 8}
	if !a.Contiguous(b) {
		t.Fatal("adjacent same-op requests not contiguous")
	}
	if a.Contiguous(c) {
		t.Fatal("cross-op requests reported contiguous")
	}
	if a.Contiguous(d) {
		t.Fatal("gapped requests reported contiguous")
	}
	if b.Contiguous(a) {
		t.Fatal("contiguity is not symmetric; b precedes a")
	}
}

func TestContiguousProperty(t *testing.T) {
	if err := quick.Check(func(lbn int64, sectors uint16) bool {
		n := int64(sectors%512) + 1
		lbn &= 0xFFFFFFFF
		a := Request{Op: Write, LBN: lbn, Sectors: n}
		b := Request{Op: Write, LBN: a.End(), Sectors: 4}
		return a.Contiguous(b) && !b.Contiguous(a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
	if got := (Request{Op: Write, LBN: 5, Sectors: 2}).String(); got != "write[5+2]" {
		t.Fatalf("Request.String = %q", got)
	}
}

func TestStatsAggregation(t *testing.T) {
	var s Stats
	s.Ops[Read] = 3
	s.Ops[Write] = 2
	s.Bytes[Read] = 3000
	s.Bytes[Write] = 2000
	s.BusyTime = sim.Duration(sim.Second / 2)
	if s.TotalOps() != 5 || s.TotalBytes() != 5000 {
		t.Fatalf("totals = %d ops, %d bytes", s.TotalOps(), s.TotalBytes())
	}
	if got := s.Throughput(sim.Second); got != 5000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := s.Utilization(sim.Second); got != 0.5 {
		t.Fatalf("Utilization = %v", got)
	}
	if s.Throughput(0) != 0 || s.Utilization(0) != 0 {
		t.Fatal("zero-elapsed stats not zero")
	}
}
