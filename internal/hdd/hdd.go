// Package hdd models a 7200-RPM hard disk drive with an explicit
// seek-time curve, rotational latency, and sequential transfer bandwidth.
//
// The model is the one the paper's Eq. (1) assumes: the service time of a
// request is D_to_T(seek distance) + R + size/B, where D_to_T is obtained
// from an offline profile of the disk (here, a parametric square-root seek
// curve, the standard fit for voice-coil actuators), R is rotational
// latency, and B is the peak transfer bandwidth. Requests that continue
// exactly where the head stopped pay no positioning cost, which is the
// entire source of the sequential-vs-random efficiency gap that fragments
// exploit.
package hdd

import (
	"math"

	"repro/internal/device"
	"repro/internal/sim"
)

// Spec holds the parameters of the disk model. The defaults are calibrated
// so that the sequential rows of the paper's Table II hold (85 MB/s read,
// 80 MB/s write) and random access is an order of magnitude slower, which
// is the property all of the paper's figures depend on.
type Spec struct {
	// CapacityBytes is the size of the LBN space.
	CapacityBytes int64
	// SeqReadBW and SeqWriteBW are media transfer rates in bytes/second.
	SeqReadBW  float64
	SeqWriteBW float64
	// MinSeek and MaxSeek bound the seek-time curve: a single-track seek
	// costs MinSeek, a full-stroke seek costs MaxSeek, and intermediate
	// distances follow MinSeek + (MaxSeek-MinSeek)*sqrt(d/D).
	MinSeek sim.Duration
	MaxSeek sim.Duration
	// RotationPeriod is one platter revolution (8.33 ms at 7200 RPM).
	// Each repositioned request pays a uniformly distributed rotational
	// latency in [0, RotationPeriod).
	RotationPeriod sim.Duration
	// WriteSettle is the extra head-settle penalty a write pays after
	// repositioning (writes need tighter positioning than reads), which
	// produces the paper's rand-write ≪ rand-read gap.
	WriteSettle sim.Duration
	// NearSectors is the distance, in sectors, under which a
	// reposition counts as a short head move costing MinSeek only.
	NearSectors int64
}

// forwardSkip returns the cost of letting the platter rotate forward past
// dist sectors (read-through at media rate): a short forward hop costs
// only the angular wait for the skipped sectors to pass under the head.
func (s Spec) forwardSkip(dist int64) sim.Duration {
	return sim.Duration(float64(dist*device.SectorSize) / s.SeqReadBW * float64(sim.Second))
}

// DefaultSpec returns the model of the evaluation platform's HP 7200-RPM
// drive (Table II).
func DefaultSpec() Spec {
	return Spec{
		CapacityBytes:  1 << 40, // 1 TB
		SeqReadBW:      85e6,
		SeqWriteBW:     80e6,
		MinSeek:        500 * sim.Microsecond,
		MaxSeek:        9 * sim.Millisecond,
		RotationPeriod: 8333 * sim.Microsecond, // 7200 RPM
		WriteSettle:    1200 * sim.Microsecond,
		NearSectors:    16, // 8 KB: longer hops miss the rotation
	}
}

// Disk is a simulated hard disk. The medium serves one request at a time;
// concurrent callers queue FIFO at the medium (request reordering is the
// job of the I/O scheduler in internal/iosched).
type Disk struct {
	e    *sim.Engine
	spec Spec
	name string
	mu   *sim.Semaphore
	rng  *sim.RNG
	head int64 // sector after the last one accessed

	stats     device.Stats
	idleSince sim.Time
	inFlight  int
	probe     device.Probe
}

// SetProbe installs an observer for served requests (nil disables).
func (d *Disk) SetProbe(p device.Probe) { d.probe = p }

// New returns a disk with the given spec. The rng seeds the rotational
// latency draws; the same seed reproduces the same run exactly.
func New(e *sim.Engine, name string, spec Spec, rng *sim.RNG) *Disk {
	return &Disk{
		e:    e,
		spec: spec,
		name: name,
		mu:   sim.NewSemaphore(e, 1),
		rng:  rng,
	}
}

// Name implements device.Device.
func (d *Disk) Name() string { return d.name }

// Spec returns the disk's model parameters.
func (d *Disk) Spec() Spec { return d.spec }

// Stats implements device.Device.
func (d *Disk) Stats() *device.Stats { return &d.stats }

// Capacity implements device.Device.
func (d *Disk) Capacity() int64 { return d.spec.CapacityBytes }

// Head returns the current head position (sector after the last access).
func (d *Disk) Head() int64 { return d.head }

// IdleSince implements device.Device.
func (d *Disk) IdleSince() sim.Time {
	if d.inFlight > 0 {
		return d.e.Now()
	}
	return d.idleSince
}

// SeekTime is the paper's D_to_T function: it converts a seek distance in
// sectors to a seek time using the square-root curve of the spec.
func (d *Disk) SeekTime(distance int64) sim.Duration {
	if distance < 0 {
		distance = -distance
	}
	if distance == 0 {
		return 0
	}
	if distance <= d.spec.NearSectors {
		return d.spec.MinSeek
	}
	maxDist := float64(d.spec.CapacityBytes / device.SectorSize)
	frac := math.Sqrt(float64(distance) / maxDist)
	return d.spec.MinSeek + sim.Duration(frac*float64(d.spec.MaxSeek-d.spec.MinSeek))
}

// AvgRotation returns the expected rotational latency R of Eq. (1): half a
// revolution.
func (d *Disk) AvgRotation() sim.Duration { return d.spec.RotationPeriod / 2 }

// TransferTime returns size/B for the given operation.
func (d *Disk) TransferTime(bytes int64, op device.Op) sim.Duration {
	bw := d.spec.SeqReadBW
	if op == device.Write {
		bw = d.spec.SeqWriteBW
	}
	return sim.Duration(float64(bytes) / bw * float64(sim.Second))
}

// positionCost returns the positioning time from prev to r, using rot for
// the rotational component (a drawn or average value). A forward hop may
// be served by letting the platter rotate past the skipped sectors
// (read-through at media rate) when that beats a seek; a backward hop
// always seeks and pays the rotational miss.
func (d *Disk) positionCost(prev int64, r device.Request, rot sim.Duration) sim.Duration {
	dist := r.LBN - prev
	if dist == 0 {
		return 0
	}
	forward := dist > 0
	if dist < 0 {
		dist = -dist
	}
	cost := d.SeekTime(dist)
	if dist > d.spec.NearSectors {
		cost += rot
		if r.Op == device.Write {
			cost += d.spec.WriteSettle
		}
	}
	if forward {
		if skip := d.spec.forwardSkip(dist); skip < cost {
			return skip
		}
	}
	return cost
}

// EstimateService implements device.Device: the service time r would see
// if dispatched now, using the average rotational latency (this is exactly
// the Eq. (1) sample D_to_T(Δλ) + R + size/B).
func (d *Disk) EstimateService(r device.Request) sim.Duration {
	return d.positionCost(d.head, r, d.AvgRotation()) + d.TransferTime(r.Bytes(), r.Op)
}

// EstimateFrom is EstimateService with an explicit previous location,
// used by the iBridge return model which tracks its own λ_{i-1} that may
// differ from the physical head position.
func (d *Disk) EstimateFrom(prevLBN int64, r device.Request) sim.Duration {
	return d.positionCost(prevLBN, r, d.AvgRotation()) + d.TransferTime(r.Bytes(), r.Op)
}

// Serve implements device.Device. It blocks p for the full positioning and
// transfer time of r and moves the head.
func (d *Disk) Serve(p *sim.Proc, r device.Request) sim.Duration {
	if r.Sectors <= 0 {
		return 0
	}
	d.inFlight++
	d.mu.Acquire(p)
	rot := d.rng.Duration(0, d.spec.RotationPeriod)
	pos := d.positionCost(d.head, r, rot)
	xfer := d.TransferTime(r.Bytes(), r.Op)
	t := pos + xfer
	p.Sleep(t)

	d.head = r.End()
	d.stats.Ops[r.Op]++
	d.stats.Bytes[r.Op] += r.Bytes()
	d.stats.BusyTime += t
	if pos > 0 {
		d.stats.SeekTime += pos
		d.stats.Seeks++
	} else {
		d.stats.SeqOps[r.Op]++
	}
	d.inFlight--
	if d.inFlight == 0 {
		d.idleSince = p.Now()
	}
	if d.probe != nil {
		d.probe.ObserveIO(r, pos, xfer)
	}
	d.mu.Release()
	return t
}
