package hdd

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func newDisk(e *sim.Engine) *Disk {
	return New(e, "hdd0", DefaultSpec(), sim.NewRNG(1))
}

func TestSequentialReadBandwidth(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	const nReq = 256
	const sectors = 128 // 64 KB
	e.Go("reader", func(p *sim.Proc) {
		lbn := int64(0)
		for i := 0; i < nReq; i++ {
			d.Serve(p, device.Request{Op: device.Read, LBN: lbn, Sectors: sectors})
			lbn += sectors
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	bytes := int64(nReq * sectors * device.SectorSize)
	bw := float64(bytes) / sim.Duration(e.Now()).Seconds()
	// First request pays one seek; the rest stream at media rate.
	if bw < 75e6 || bw > 86e6 {
		t.Fatalf("sequential read bandwidth = %.1f MB/s, want ≈85", bw/1e6)
	}
}

func TestSequentialWriteBandwidth(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	const nReq = 256
	e.Go("writer", func(p *sim.Proc) {
		lbn := int64(0)
		for i := 0; i < nReq; i++ {
			d.Serve(p, device.Request{Op: device.Write, LBN: lbn, Sectors: 128})
			lbn += 128
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	bw := float64(nReq*128*device.SectorSize) / sim.Duration(e.Now()).Seconds()
	if bw < 70e6 || bw > 81e6 {
		t.Fatalf("sequential write bandwidth = %.1f MB/s, want ≈80", bw/1e6)
	}
}

func TestRandomMuchSlowerThanSequential(t *testing.T) {
	run := func(random bool) float64 {
		e := sim.New()
		d := newDisk(e)
		rng := sim.NewRNG(7)
		const nReq = 200
		e.Go("io", func(p *sim.Proc) {
			lbn := int64(0)
			for i := 0; i < nReq; i++ {
				if random {
					lbn = rng.Range(0, d.Capacity()/device.SectorSize-8)
				}
				d.Serve(p, device.Request{Op: device.Read, LBN: lbn, Sectors: 8})
				lbn += 8
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return float64(nReq*8*device.SectorSize) / sim.Duration(e.Now()).Seconds()
	}
	seq, rnd := run(false), run(true)
	if seq/rnd < 10 {
		t.Fatalf("sequential/random ratio = %.1f (seq %.1f MB/s, rand %.2f MB/s), want ≥10×",
			seq/rnd, seq/1e6, rnd/1e6)
	}
}

func TestRandomWriteSlowerThanRandomRead(t *testing.T) {
	run := func(op device.Op) float64 {
		e := sim.New()
		d := newDisk(e)
		rng := sim.NewRNG(7)
		const nReq = 200
		e.Go("io", func(p *sim.Proc) {
			for i := 0; i < nReq; i++ {
				lbn := rng.Range(0, d.Capacity()/device.SectorSize-8)
				d.Serve(p, device.Request{Op: op, LBN: lbn, Sectors: 8})
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return float64(nReq*8*device.SectorSize) / sim.Duration(e.Now()).Seconds()
	}
	rr, rw := run(device.Read), run(device.Write)
	if rw >= rr {
		t.Fatalf("random write %.2f MB/s not slower than random read %.2f MB/s", rw/1e6, rr/1e6)
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	prev := sim.Duration(0)
	for dist := int64(1); dist < d.Capacity()/device.SectorSize; dist *= 4 {
		st := d.SeekTime(dist)
		if st < prev {
			t.Fatalf("seek time not monotone at distance %d: %v < %v", dist, st, prev)
		}
		prev = st
	}
	if d.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should cost nothing")
	}
	spec := DefaultSpec()
	maxDist := spec.CapacityBytes / device.SectorSize
	if st := d.SeekTime(maxDist); st < spec.MaxSeek-sim.Millisecond/10 {
		t.Fatalf("full-stroke seek %v, want ≈%v", st, spec.MaxSeek)
	}
}

func TestSeekTimeSymmetric(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	if err := quick.Check(func(dist int64) bool {
		if dist < 0 {
			dist = -dist
		}
		dist %= d.Capacity() / device.SectorSize
		return d.SeekTime(dist) == d.SeekTime(-dist)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMatchesAvgServe(t *testing.T) {
	// EstimateService uses average rotation; actual Serve draws uniform
	// rotation. Over many requests the mean service time must agree.
	e := sim.New()
	d := newDisk(e)
	rng := sim.NewRNG(3)
	var estimated, actual sim.Duration
	const nReq = 2000
	e.Go("io", func(p *sim.Proc) {
		for i := 0; i < nReq; i++ {
			lbn := rng.Range(0, d.Capacity()/device.SectorSize-128)
			r := device.Request{Op: device.Read, LBN: lbn, Sectors: 128}
			estimated += d.EstimateService(r)
			actual += d.Serve(p, r)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ratio := float64(actual) / float64(estimated)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("estimate/actual mean ratio = %.3f, want ≈1", ratio)
	}
}

func TestEstimateFromUsesGivenLocation(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	r := device.Request{Op: device.Read, LBN: 1 << 20, Sectors: 128}
	near := d.EstimateFrom(1<<20, r) // contiguous: transfer only
	far := d.EstimateFrom(1<<30, r)  // long seek
	if near >= far {
		t.Fatalf("contiguous estimate %v not cheaper than far estimate %v", near, far)
	}
	if near != d.TransferTime(r.Bytes(), device.Read) {
		t.Fatalf("contiguous estimate %v, want pure transfer %v", near, d.TransferTime(r.Bytes(), device.Read))
	}
}

func TestConcurrentCallersSerialize(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	var totalService sim.Duration
	for i := 0; i < 4; i++ {
		e.Go("io", func(p *sim.Proc) {
			totalService += d.Serve(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The medium serves one at a time, so elapsed == sum of service times.
	if sim.Duration(e.Now()) != totalService {
		t.Fatalf("elapsed %v != total service %v", sim.Duration(e.Now()), totalService)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	e.Go("io", func(p *sim.Proc) {
		d.Serve(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
		d.Serve(p, device.Request{Op: device.Read, LBN: 128, Sectors: 128}) // sequential
		d.Serve(p, device.Request{Op: device.Write, LBN: 1 << 25, Sectors: 64})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := d.Stats()
	if s.Ops[device.Read] != 2 || s.Ops[device.Write] != 1 {
		t.Fatalf("ops = %v", s.Ops)
	}
	if s.Bytes[device.Read] != 2*128*device.SectorSize {
		t.Fatalf("read bytes = %d", s.Bytes[device.Read])
	}
	// Head starts at 0, so the first request is contiguous too.
	if s.SeqOps[device.Read] != 2 {
		t.Fatalf("seq reads = %d, want 2", s.SeqOps[device.Read])
	}
	if s.Seeks != 1 {
		t.Fatalf("seeks = %d, want 1", s.Seeks)
	}
	if s.BusyTime != sim.Duration(e.Now()) {
		t.Fatalf("busy %v != elapsed %v for single-stream load", s.BusyTime, sim.Duration(e.Now()))
	}
}

func TestZeroLengthRequestFree(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	e.Go("io", func(p *sim.Proc) {
		if got := d.Serve(p, device.Request{Op: device.Read, LBN: 5, Sectors: 0}); got != 0 {
			t.Errorf("zero-length request cost %v", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Stats().TotalOps() != 0 {
		t.Fatal("zero-length request was counted")
	}
}

func TestIdleSince(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	e.Go("io", func(p *sim.Proc) {
		d.Serve(p, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
		done := p.Now()
		p.Sleep(10 * sim.Millisecond)
		if d.IdleSince() != done {
			t.Errorf("IdleSince = %v, want %v", d.IdleSince(), done)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
