package hdd

import (
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// TestForwardSkipCheaperThanBackwardSeek verifies the rotational
// geometry: a short hop forward costs only the angular wait for the
// skipped sectors, while the same distance backward costs a seek plus
// rotational miss.
func TestForwardSkipCheaperThanBackwardSeek(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	const start = 1 << 20
	const hop = 40 // 20 KB in sectors
	fwd := d.EstimateFrom(start, device.Request{Op: device.Read, LBN: start + hop, Sectors: 8})
	bwd := d.EstimateFrom(start, device.Request{Op: device.Read, LBN: start - hop, Sectors: 8})
	if fwd*4 > bwd {
		t.Fatalf("forward hop %v not ≪ backward hop %v", fwd, bwd)
	}
	// The forward hop's positioning is about the read-through time.
	xfer := d.TransferTime(8*device.SectorSize, device.Read)
	skip := d.TransferTime(hop*device.SectorSize, device.Read)
	if fwd < xfer+skip/2 || fwd > xfer+2*skip {
		t.Fatalf("forward hop %v, want ≈ transfer %v + skip %v", fwd, xfer, skip)
	}
}

// TestLongForwardHopSeeks verifies that beyond the break-even point the
// disk seeks instead of reading through: the cost is capped by seek +
// rotation.
func TestLongForwardHopSeeks(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	spec := DefaultSpec()
	const start = 1 << 20
	farHop := int64(4 << 20) // 2 GB forward: read-through would take seconds
	got := d.EstimateFrom(start, device.Request{Op: device.Read, LBN: start + farHop, Sectors: 8})
	cap := spec.MaxSeek + spec.RotationPeriod // generous bound
	if got > cap {
		t.Fatalf("far forward hop cost %v exceeds seek+rotation bound %v", got, cap)
	}
}

// TestHoleTilingStreamsNearMediaRate is the property iBridge's write
// path depends on: a stream of 54KB pieces with 10KB holes (the +10KB
// offset pattern after fragments go to the SSD) must flow at close to
// media rate, not at random-write rate.
func TestHoleTilingStreamsNearMediaRate(t *testing.T) {
	e := sim.New()
	d := newDisk(e)
	const pieces = 200
	const pieceSectors = 108 // 54 KB
	const holeSectors = 20   // 10 KB
	var useful int64
	e.Go("io", func(p *sim.Proc) {
		lbn := int64(0)
		for i := 0; i < pieces; i++ {
			d.Serve(p, device.Request{Op: device.Write, LBN: lbn, Sectors: pieceSectors})
			useful += pieceSectors * device.SectorSize
			lbn += pieceSectors + holeSectors
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	bw := float64(useful) / sim.Duration(e.Now()).Seconds()
	// Media rate × useful fraction (54/64) ≈ 67 MB/s; demand ≥ 50.
	if bw < 50e6 {
		t.Fatalf("hole-tiled write stream = %.1f MB/s, want ≥50 (forward-skip broken)", bw/1e6)
	}
}
