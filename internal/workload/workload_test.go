package workload_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newCluster(t *testing.T, mode cluster.Mode) *cluster.Cluster {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Mode = mode
	cfg.IBridge.SSDCapacity = 256 << 20
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return c
}

func TestMPIIOTestCoversFile(t *testing.T) {
	c := newCluster(t, cluster.Stock)
	res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs: 16, RequestSize: 64 * workload.KB, FileBytes: 16 * workload.MB,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Bytes != 16*workload.MB {
		t.Fatalf("accessed %d bytes, want %d", res.Bytes, 16*workload.MB)
	}
	// iters * procs requests issued.
	wantReqs := int64(16 * workload.MB / (64 * workload.KB))
	if res.Requests != wantReqs {
		t.Fatalf("requests = %d, want %d", res.Requests, wantReqs)
	}
}

func TestMPIIOTestBarrierSlowsButCompletes(t *testing.T) {
	run := func(barrier bool) cluster.Result {
		c := newCluster(t, cluster.Stock)
		res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
			Procs: 16, RequestSize: 64 * workload.KB, FileBytes: 8 * workload.MB,
			Barrier: barrier, Jitter: workload.DefaultJitter,
		}))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	free := run(false)
	synced := run(true)
	if synced.Elapsed < free.Elapsed {
		t.Fatalf("barrier run faster (%v) than free run (%v)", synced.Elapsed, free.Elapsed)
	}
}

func TestMPIIOTestWarmReportWindow(t *testing.T) {
	c := newCluster(t, cluster.IBridge)
	rep := &workload.Report{}
	res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs: 16, RequestSize: 65 * workload.KB, FileBytes: 8 * workload.MB,
		Warm: true, WarmIdle: sim.Second, Report: rep,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Start <= 0 || rep.End <= rep.Start {
		t.Fatalf("report window [%v,%v] not inside run", rep.Start, rep.End)
	}
	if rep.Elapsed() >= res.Elapsed {
		t.Fatalf("measured window %v not smaller than whole run %v", rep.Elapsed(), res.Elapsed)
	}
	// Two passes: total client bytes are double the per-pass bytes.
	if res.Bytes != 2*rep.Bytes {
		t.Fatalf("total bytes %d, measured-pass bytes %d", res.Bytes, rep.Bytes)
	}
}

func TestIORAccessesDisjointChunks(t *testing.T) {
	c := newCluster(t, cluster.Stock)
	res, err := c.Run(workload.IOR(workload.IORConfig{
		Procs: 8, RequestSize: 64 * workload.KB, FileBytes: 8 * workload.MB,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Bytes != 8*workload.MB {
		t.Fatalf("accessed %d bytes", res.Bytes)
	}
}

func TestBTIORecordSize(t *testing.T) {
	cases := map[int]int64{9: 2160, 16: 1620, 64: 810, 100: 648}
	for procs, want := range cases {
		if got := workload.RecordSize(procs); got != want {
			t.Errorf("RecordSize(%d) = %d, want %d", procs, got, want)
		}
	}
}

func TestBTIOTimingSplit(t *testing.T) {
	c := newCluster(t, cluster.Stock)
	var bt workload.BTIOResult
	_, err := c.Run(workload.BTIO(workload.BTIOConfig{
		Procs: 9, DataBytes: 8 * workload.MB, Steps: 3,
		ComputePerStep: 100 * sim.Millisecond,
	}, &bt))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bt.IOTime <= 0 {
		t.Fatal("no I/O time recorded")
	}
	compute := 3 * 100 * sim.Millisecond
	if bt.TotalTime < bt.IOTime+compute {
		t.Fatalf("total %v < io %v + compute %v", bt.TotalTime, bt.IOTime, compute)
	}
}

func TestBTIOAllWritesAbsorbedByIBridge(t *testing.T) {
	c := newCluster(t, cluster.IBridge)
	var bt workload.BTIOResult
	res, err := c.Run(workload.BTIO(workload.BTIOConfig{
		Procs: 16, DataBytes: 8 * workload.MB, Steps: 3,
		ComputePerStep: 50 * sim.Millisecond,
	}, &bt))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SSDFraction < 0.95 {
		t.Fatalf("SSD fraction = %.2f; the paper notes all BTIO writes are served by the SSDs", res.SSDFraction)
	}
}

func TestReplayIssuesAllRecords(t *testing.T) {
	tr := trace.Generate(trace.Workloads(200, 64*workload.MB, 7)[0])
	c := newCluster(t, cluster.Stock)
	res, err := c.Run(workload.Replay(tr, 64*workload.MB))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 200 {
		t.Fatalf("replayed %d requests, want 200", res.Requests)
	}
}

func TestCombineRunsBothToCompletion(t *testing.T) {
	c := newCluster(t, cluster.Stock)
	repA := &workload.Report{}
	repB := &workload.Report{}
	a := workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs: 4, RequestSize: 64 * workload.KB, FileBytes: 4 * workload.MB, Report: repA,
	})
	b := workload.IOR(workload.IORConfig{
		Procs: 4, RequestSize: 64 * workload.KB, FileBytes: 4 * workload.MB, Report: repB,
	})
	if _, err := c.Run(workload.Combine(a, b)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if repA.Bytes != 4*workload.MB || repB.Bytes != 4*workload.MB {
		t.Fatalf("bytes: %d, %d", repA.Bytes, repB.Bytes)
	}
}

func TestFig3FragmentCostsThroughput(t *testing.T) {
	run := func(fragment bool) float64 {
		c := newCluster(t, cluster.Stock)
		res, err := c.Run(workload.Fig3(workload.Fig3Config{
			Procs: 16, K: 2, Fragment: fragment, Iters: 6,
		}))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.ThroughputMBps()
	}
	noFrag, frag := run(false), run(true)
	if frag >= noFrag {
		t.Fatalf("fragments did not cost throughput: %.1f vs %.1f MB/s", frag, noFrag)
	}
}

func TestReportThroughput(t *testing.T) {
	rep := &workload.Report{Start: 0, End: sim.Time(sim.Second), Bytes: 100e6}
	if got := rep.ThroughputMBps(); got != 100 {
		t.Fatalf("ThroughputMBps = %v", got)
	}
	empty := &workload.Report{}
	if empty.ThroughputMBps() != 0 {
		t.Fatal("empty report throughput not 0")
	}
}
