// Package workload implements the paper's benchmark programs and trace
// replay against the simulated cluster: mpi-io-test (strided sequential
// access with configurable size/offset), ior-mpi-io (per-rank chunks,
// effectively random at the servers), a BTIO model (tiny strided records
// interleaved with computation), the Figure 3 striping-magnification
// microbenchmark, and single-process trace replay.
package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/trace"
)

const (
	// KB and MB are decimal-free binary units used throughout the
	// benchmark configurations (the paper's "64KB" is 65536 bytes).
	KB = 1024
	MB = 1024 * KB
	GB = 1024 * MB
)

// MPIIOTestConfig parameterizes the mpi-io-test benchmark of Sections I
// and III-B: N processes iterate over a shared file; at iteration k,
// process i accesses one segment at offset k·N·s + i·s (+ Shift).
type MPIIOTestConfig struct {
	Procs       int
	RequestSize int64
	// Shift displaces every request by a constant (the paper's
	// Pattern III "+x KB offset" experiments).
	Shift int64
	// FileBytes bounds the data volume accessed (10 GB in the paper;
	// scaled down for simulation speed — shapes are volume-invariant
	// once steady state is reached).
	FileBytes int64
	Write     bool
	// Barrier inserts a barrier between access iterations (the paper
	// removes it by default to maximize concurrency).
	Barrier bool
	// Jitter is the per-rank think time drawn uniformly from
	// [0, Jitter) before each request, modelling the computation and
	// MPI overhead that makes real ranks drift apart ("uncoordinated
	// concurrent processes", Section I-A). Zero disables it; the
	// experiments use DefaultJitter.
	Jitter sim.Duration
	// Seed feeds the per-rank jitter streams.
	Seed uint64
	// Warm runs one unmeasured pass over the file first, followed by
	// an idle window long enough for iBridge to stage identified
	// fragments into the SSD. This reproduces the paper's observation
	// that production MPI programs run repeatedly with consistent
	// access patterns, so fragments cached in one run serve the next
	// (Section II-B). Use Report to read the measured pass's timing.
	Warm bool
	// WarmIdle is the idle window after the warm pass (default 5 s).
	WarmIdle sim.Duration
	// Report, when non-nil, receives the measured window (the second
	// pass when Warm, otherwise the whole run).
	Report *Report
}

// DefaultJitter is the think-time bound used by the experiments.
const DefaultJitter = 2 * sim.Millisecond

// Report is the measured window of a workload run, for runs whose
// interesting phase is narrower than the whole simulation (warm-up runs,
// BTIO's I/O phases).
type Report struct {
	Start sim.Time
	End   sim.Time
	Bytes int64
}

// Elapsed returns the measured window length.
func (r *Report) Elapsed() sim.Duration { return r.End.Sub(r.Start) }

// ThroughputMBps returns the measured window's throughput in MB/s.
func (r *Report) ThroughputMBps() float64 {
	if r.End <= r.Start {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed().Seconds() / 1e6
}

// MPIIOTest returns the benchmark as a cluster workload.
func MPIIOTest(cfg MPIIOTestConfig) cluster.Workload {
	return func(c *cluster.Cluster, p *sim.Proc) {
		f, err := c.FS.Create("mpi-io-test", cfg.FileBytes+cfg.Shift+cfg.RequestSize)
		if err != nil {
			panic(err)
		}
		w := mpiio.NewWorld(c.Engine, c.Client(), f, cfg.Procs)
		n := int64(cfg.Procs)
		s := cfg.RequestSize
		iters := cfg.FileBytes / (n * s)
		if iters == 0 {
			iters = 1
		}
		rootRNG := sim.NewRNG(cfg.Seed + 0x9E37)
		rngs := make([]*sim.RNG, cfg.Procs)
		for i := range rngs {
			rngs[i] = rootRNG.Fork()
		}
		passes := 1
		if cfg.Warm {
			passes = 2
		}
		warmIdle := cfg.WarmIdle
		if warmIdle <= 0 {
			warmIdle = 5 * sim.Second
		}
		var measuredStart sim.Time
		done := w.Spawn("mpi-io-test", func(r *mpiio.Rank) {
			rng := rngs[r.ID]
			for pass := 0; pass < passes; pass++ {
				if pass == passes-1 {
					if cfg.Warm {
						// Quiet period between program runs: iBridge
						// stages fragments identified in the warm run.
						r.Barrier()
						r.Compute(warmIdle)
						r.Barrier()
					}
					if r.ID == 0 {
						measuredStart = r.P.Now()
					}
				}
				for k := int64(0); k < iters; k++ {
					if cfg.Jitter > 0 {
						r.Compute(rng.Duration(0, cfg.Jitter))
					}
					off := k*n*s + int64(r.ID)*s + cfg.Shift
					if cfg.Write {
						r.WriteAt(off, s)
					} else {
						r.ReadAt(off, s)
					}
					if cfg.Barrier {
						r.Barrier()
					}
				}
			}
		})
		done.Wait(p)
		if cfg.Report != nil {
			cfg.Report.Start = measuredStart
			cfg.Report.End = p.Now()
			cfg.Report.Bytes = iters * n * s
		}
	}
}

// IORConfig parameterizes the ior-mpi-io benchmark of Section III-C: the
// file is split into Procs equal chunks; each process accesses its chunk
// sequentially, but because all processes issue requests for the same
// relative offset concurrently, the servers see a random pattern.
type IORConfig struct {
	Procs       int
	RequestSize int64
	FileBytes   int64
	Write       bool
	// Jitter and Seed: per-rank think time as in MPIIOTestConfig.
	Jitter sim.Duration
	Seed   uint64
	// Warm, WarmIdle, Report: as in MPIIOTestConfig.
	Warm     bool
	WarmIdle sim.Duration
	Report   *Report
}

// IOR returns the benchmark as a cluster workload.
func IOR(cfg IORConfig) cluster.Workload {
	return func(c *cluster.Cluster, p *sim.Proc) {
		f, err := c.FS.Create("ior-mpi-io", cfg.FileBytes+cfg.RequestSize)
		if err != nil {
			panic(err)
		}
		w := mpiio.NewWorld(c.Engine, c.Client(), f, cfg.Procs)
		chunk := cfg.FileBytes / int64(cfg.Procs)
		iters := chunk / cfg.RequestSize
		if iters == 0 {
			iters = 1
		}
		rootRNG := sim.NewRNG(cfg.Seed + 0x51D3)
		rngs := make([]*sim.RNG, cfg.Procs)
		for i := range rngs {
			rngs[i] = rootRNG.Fork()
		}
		passes := 1
		if cfg.Warm {
			passes = 2
		}
		warmIdle := cfg.WarmIdle
		if warmIdle <= 0 {
			warmIdle = 5 * sim.Second
		}
		barrier := sim.NewBarrier(c.Engine, cfg.Procs)
		var measuredStart sim.Time
		done := w.Spawn("ior", func(r *mpiio.Rank) {
			rng := rngs[r.ID]
			base := int64(r.ID) * chunk
			for pass := 0; pass < passes; pass++ {
				if pass == passes-1 {
					if cfg.Warm {
						barrier.Wait(r.P)
						r.Compute(warmIdle)
						barrier.Wait(r.P)
					}
					if r.ID == 0 {
						measuredStart = r.P.Now()
					}
				}
				for k := int64(0); k < iters; k++ {
					if cfg.Jitter > 0 {
						r.Compute(rng.Duration(0, cfg.Jitter))
					}
					off := base + k*cfg.RequestSize
					if cfg.Write {
						r.WriteAt(off, cfg.RequestSize)
					} else {
						r.ReadAt(off, cfg.RequestSize)
					}
				}
			}
		})
		done.Wait(p)
		if cfg.Report != nil {
			cfg.Report.Start = measuredStart
			cfg.Report.End = p.Now()
			cfg.Report.Bytes = iters * cfg.RequestSize * int64(cfg.Procs)
		}
	}
}

// BTIOConfig parameterizes the BTIO model of Section III-D: a
// write-intensive Fortran MPI solver whose I/O consists of very small
// strided records; request size shrinks as the process count grows
// (2160 B at 9 processes down to 640 B at 100).
type BTIOConfig struct {
	Procs     int
	DataBytes int64 // 6.8 GB at computing scale C; scaled down here
	Steps     int   // solver steps, each: compute then collective write
	// ComputePerStep is each rank's computation time per step.
	ComputePerStep sim.Duration
	// FinalRead re-reads the solution for verification, as BTIO does.
	FinalRead bool
}

// RecordSize returns the BTIO request size for a process count,
// following the paper's observation (2160 B at 9 procs → 640 B at 100):
// size ≈ 6480/√procs bytes.
func RecordSize(procs int) int64 {
	s := int64(0)
	// integer sqrt
	for i := int64(1); i*i <= int64(procs); i++ {
		s = i
	}
	return 6480 / s
}

// BTIOResult carries BTIO's split of execution time, reported by Fig. 9
// (execution time) and Fig. 11 (I/O time).
type BTIOResult struct {
	IOTime    sim.Duration
	TotalTime sim.Duration
}

// BTIO returns the benchmark as a cluster workload, recording its split
// timing into res (which must outlive the run).
func BTIO(cfg BTIOConfig, res *BTIOResult) cluster.Workload {
	return func(c *cluster.Cluster, p *sim.Proc) {
		f, err := c.FS.Create("btio", cfg.DataBytes+64*KB)
		if err != nil {
			panic(err)
		}
		w := mpiio.NewWorld(c.Engine, c.Client(), f, cfg.Procs)
		rec := RecordSize(cfg.Procs)
		perStep := cfg.DataBytes / int64(cfg.Steps)
		recsPerRank := perStep / int64(cfg.Procs) / rec
		if recsPerRank == 0 {
			recsPerRank = 1
		}
		var ioTime sim.Duration
		start := p.Now()
		done := w.Spawn("btio", func(r *mpiio.Rank) {
			for step := 0; step < cfg.Steps; step++ {
				r.Compute(cfg.ComputePerStep)
				r.Barrier()
				ioStart := r.P.Now()
				base := int64(step) * perStep
				for j := int64(0); j < recsPerRank; j++ {
					// Interleaved strided records: rank r's j-th
					// record is adjacent to other ranks' j-th records.
					off := base + (j*int64(cfg.Procs)+int64(r.ID))*rec
					r.WriteAt(off, rec)
				}
				r.Barrier()
				if r.ID == 0 {
					ioTime += r.P.Now().Sub(ioStart)
				}
			}
			if cfg.FinalRead {
				r.Barrier()
				ioStart := r.P.Now()
				chunk := cfg.DataBytes / int64(cfg.Procs)
				for off := int64(0); off+64*KB <= chunk; off += 64 * KB {
					r.ReadAt(int64(r.ID)*chunk+off, 64*KB)
				}
				if r.ID == 0 {
					ioTime += r.P.Now().Sub(ioStart)
				}
			}
		})
		done.Wait(p)
		if res != nil {
			res.IOTime = ioTime
			res.TotalTime = p.Now().Sub(start)
		}
	}
}

// Fig3Config parameterizes the striping-magnification microbenchmark of
// Section I-A (Figure 3): Procs processes collectively issue synchronous
// requests of size K striping units (plus a 1 KB fragment when Fragment),
// while an interference program reads random 64 KB segments from the
// fragment's server (server K).
type Fig3Config struct {
	Procs    int
	K        int // servers serving non-fragment sub-requests
	Fragment bool
	Barrier  bool
	Iters    int
	Unit     int64
}

// Fig3 returns the microbenchmark as a cluster workload.
func Fig3(cfg Fig3Config) cluster.Workload {
	return func(c *cluster.Cluster, p *sim.Proc) {
		unit := cfg.Unit
		if unit == 0 {
			unit = 64 * KB
		}
		size := int64(cfg.K) * unit
		if cfg.Fragment {
			size += 1 * KB
		}
		stripeBytes := int64(c.Config().Servers) * unit
		fileBytes := int64(cfg.Iters)*int64(cfg.Procs)*stripeBytes + stripeBytes
		f, err := c.FS.Create("fig3", fileBytes)
		if err != nil {
			panic(err)
		}
		w := mpiio.NewWorld(c.Engine, c.Client(), f, cfg.Procs)

		// Interference: a separate file whose data lives on server K
		// (single-server layout trick: use offsets mapping to server K
		// of the shared file's address space).
		interferenceDone := sim.NewEvent(c.Engine)
		ifile, err := c.FS.Create("fig3-interference", fileBytes)
		if err != nil {
			panic(err)
		}
		iclient := c.Client()
		c.Engine.Go("fig3-interference", func(ip *sim.Proc) {
			rng := sim.NewRNG(c.Config().Seed + 77)
			srvK := cfg.K % c.Config().Servers
			for !interferenceDone.Fired() {
				// A 64 KB-aligned unit on server K of the
				// interference file.
				stripes := fileBytes / stripeBytes
				k := rng.Range(0, stripes-1)
				off := k*stripeBytes + int64(srvK)*unit
				iclient.Read(ip, ifile, off, unit)
			}
		})

		done := w.Spawn("fig3", func(r *mpiio.Rank) {
			n := int64(cfg.Procs)
			for k := int64(0); k < int64(cfg.Iters); k++ {
				// Each process accesses its own stripe-aligned region
				// so non-fragment sub-requests go to servers 0..K-1
				// and the 1 KB fragment to server K.
				off := (k*n + int64(r.ID)) * stripeBytes
				r.ReadAt(off, size)
				if cfg.Barrier {
					r.Barrier()
				}
			}
		})
		done.Wait(p)
		interferenceDone.Fire()
	}
}

// Replay replays a trace with a single process, as in Section III-E.
func Replay(tr *trace.Trace, fileBytes int64) cluster.Workload {
	return func(c *cluster.Cluster, p *sim.Proc) {
		f, err := c.FS.Create("replay:"+tr.Name, fileBytes)
		if err != nil {
			panic(err)
		}
		client := c.Client()
		tr.Clamp(fileBytes)
		done := sim.NewCounter(c.Engine, 1)
		c.Engine.Go("replay", func(rp *sim.Proc) {
			for _, rec := range tr.Records {
				if rec.Op == trace.Read {
					client.Read(rp, f, rec.Offset, rec.Size)
				} else {
					client.Write(rp, f, rec.Offset, rec.Size)
				}
			}
			done.Done()
		})
		done.Wait(p)
	}
}

// Combine runs several workloads concurrently on one cluster, returning
// when all complete (the Section III-F heterogeneous experiment).
func Combine(ws ...cluster.Workload) cluster.Workload {
	return func(c *cluster.Cluster, p *sim.Proc) {
		done := sim.NewCounter(c.Engine, len(ws))
		for i, w := range ws {
			w := w
			c.Engine.Go(fmt.Sprintf("combined-%d", i), func(wp *sim.Proc) {
				w(c, wp)
				done.Done()
			})
		}
		done.Wait(p)
	}
}
