package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	orig := Generate(Workloads(500, gib, 3)[1])
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ParseBinary(&buf)
	if err != nil {
		t.Fatalf("ParseBinary: %v", err)
	}
	if got.Name != orig.Name || len(got.Records) != len(orig.Records) {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", got.Name, len(got.Records), orig.Name, len(orig.Records))
	}
	for i := range got.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := Generate(Workloads(2000, gib, 5)[0])
	var text, bin bytes.Buffer
	if err := tr.Write(&text); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d", bin.Len(), text.Len())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	tr := &Trace{Name: "x", Records: []Record{{Read, 0, 4096}}}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ParseBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated records.
	if _, err := ParseBinary(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncated trace accepted")
	}
	// Bad opcode.
	bad = append([]byte(nil), good...)
	bad[len(bad)-17] = 9
	if _, err := ParseBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad opcode accepted")
	}
	// Oversized name length.
	bad = append([]byte(nil), good...)
	bad[12], bad[13], bad[14], bad[15] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ParseBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(name string, offs []uint32, sizes []uint16, write []bool) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		tr := &Trace{Name: name}
		n := len(offs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(write) < n {
			n = len(write)
		}
		for i := 0; i < n; i++ {
			op := Read
			if write[i] {
				op = Write
			}
			tr.Records = append(tr.Records, Record{Op: op, Offset: int64(offs[i]), Size: int64(sizes[i]) + 1})
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ParseBinary(&buf)
		if err != nil || got.Name != tr.Name || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
