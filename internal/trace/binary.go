package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: a fixed 16-byte header ("IBTRACE1", record count,
// name length) followed by the name and 17-byte fixed records. It is
// ~3-4x smaller and ~10x faster to parse than the text format, for large
// replay corpora.

var binaryMagic = [8]byte{'I', 'B', 'T', 'R', 'A', 'C', 'E', '1'}

// WriteBinary serializes the trace in the binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(t.Records)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(t.Name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var rec [17]byte
	for _, r := range t.Records {
		rec[0] = byte(r.Op)
		binary.BigEndian.PutUint64(rec[1:9], uint64(r.Offset))
		binary.BigEndian.PutUint64(rec[9:17], uint64(r.Size))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseBinary reads a trace written by WriteBinary.
func ParseBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	nameLen := binary.BigEndian.Uint32(hdr[4:])
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	t := &Trace{Name: string(name), Records: make([]Record, 0, min32(n, 1<<20))}
	var rec [17]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		op := Op(rec[0])
		if op != Read && op != Write {
			return nil, fmt.Errorf("trace: record %d: bad op %d", i, rec[0])
		}
		off := int64(binary.BigEndian.Uint64(rec[1:9]))
		size := int64(binary.BigEndian.Uint64(rec[9:17]))
		if off < 0 || size <= 0 {
			return nil, fmt.Errorf("trace: record %d: bad extent [%d,+%d)", i, off, size)
		}
		t.Records = append(t.Records, Record{Op: op, Offset: off, Size: size})
	}
	return t, nil
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
