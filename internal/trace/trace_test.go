package trace

import (
	"bytes"
	"math"
	"testing"
)

func TestClassifierRules(t *testing.T) {
	c := DefaultClassifier()
	cases := []struct {
		r    Record
		want Class
	}{
		{Record{Read, 0, 64 * kib}, ClassAligned},
		{Record{Read, 0, 128 * kib}, ClassAligned},
		{Record{Read, 0, 65 * kib}, ClassUnaligned},
		{Record{Read, 1 * kib, 128 * kib}, ClassUnaligned},
		{Record{Read, 0, 4 * kib}, ClassRandom},
		{Record{Read, 12345, 19*kib + 1023}, ClassRandom},
		{Record{Read, 0, 20 * kib}, ClassAligned},   // at threshold: not random
		{Record{Read, 100, 40 * kib}, ClassAligned}, // ≤ unit: never "unaligned"
	}
	for _, tc := range cases {
		if got := c.Classify(tc.r); got != tc.want {
			t.Errorf("Classify(%+v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := &Trace{
		Name: "demo",
		Records: []Record{
			{Read, 0, 4096},
			{Write, 65536, 1024},
			{Read, 1 << 30, 65 * kib},
		},
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Name != "demo" {
		t.Fatalf("name = %q", got.Name)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("%d records, want %d", len(got.Records), len(orig.Records))
	}
	for i := range got.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], orig.Records[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Parse(bytes.NewBufferString("X 1 2\n")); err == nil {
		t.Fatal("bad op accepted")
	}
	if _, err := Parse(bytes.NewBufferString("R notanumber 2\n")); err == nil {
		t.Fatal("bad offset accepted")
	}
}

func TestClamp(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Read, 15 * gib, 64 * kib},
		{Read, 0, 20 * gib},
	}}
	tr.Clamp(10 * gib)
	for i, r := range tr.Records {
		if r.Offset+r.Size > 10*gib {
			t.Fatalf("record %d exceeds limit: %+v", i, r)
		}
	}
}

// TestTableICalibration verifies the generators hit the published Table I
// percentages within 2 points.
func TestTableICalibration(t *testing.T) {
	want := []struct {
		name              string
		unaligned, random float64
	}{
		{"ALEGRA-2744", 35.2, 7.3},
		{"ALEGRA-5832", 35.7, 6.9},
		{"CTH", 24.3, 30.1},
		{"S3D", 62.8, 5.8},
	}
	cls := DefaultClassifier()
	for i, cfg := range Workloads(20000, 10*gib, 42) {
		tr := Generate(cfg)
		b := cls.Analyze(tr)
		if math.Abs(b.UnalignedPct-want[i].unaligned) > 2 {
			t.Errorf("%s unaligned = %.1f%%, want %.1f%%", cfg.Name, b.UnalignedPct, want[i].unaligned)
		}
		if math.Abs(b.RandomPct-want[i].random) > 2 {
			t.Errorf("%s random = %.1f%%, want %.1f%%", cfg.Name, b.RandomPct, want[i].random)
		}
	}
}

func TestS3DLargerRequests(t *testing.T) {
	ws := Workloads(5000, 10*gib, 7)
	var meanAlegra, meanS3D float64
	for _, cfg := range ws {
		tr := Generate(cfg)
		switch cfg.Name {
		case "ALEGRA-2744":
			meanAlegra = tr.MeanSize()
		case "S3D":
			meanS3D = tr.MeanSize()
		}
	}
	if meanS3D < 1.3*meanAlegra {
		t.Fatalf("S3D mean %.0f not clearly above ALEGRA mean %.0f", meanS3D, meanAlegra)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Workloads(1000, gib, 9)[0]
	a, b := Generate(cfg), Generate(cfg)
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("generation not deterministic at record %d", i)
		}
	}
}

func TestGenerateWithinBounds(t *testing.T) {
	cfg := Workloads(5000, gib, 13)[2]
	cfg.FileSize = gib
	tr := Generate(cfg)
	for i, r := range tr.Records {
		if r.Offset < 0 || r.Size <= 0 || r.Offset+r.Size > gib {
			t.Fatalf("record %d out of bounds: %+v", i, r)
		}
	}
}

func TestTableIRendering(t *testing.T) {
	traces := []*Trace{Generate(Workloads(2000, gib, 5)[0])}
	out := TableI(traces)
	if len(out) == 0 || out[:4] != "Apps" {
		t.Fatalf("unexpected rendering:\n%s", out)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	b := DefaultClassifier().Analyze(&Trace{Name: "empty"})
	if b.UnalignedPct != 0 || b.RandomPct != 0 || b.Requests != 0 {
		t.Fatalf("empty analysis = %+v", b)
	}
}
