package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// Classify applies the paper's Table I rules: requests under 20 KB are
// random; requests larger than the 64 KB striping unit that miss the unit
// grid are unaligned.
func ExampleClassifier_Classify() {
	c := trace.DefaultClassifier()
	fmt.Println(c.Classify(trace.Record{Op: trace.Read, Offset: 0, Size: 64 * 1024}))
	fmt.Println(c.Classify(trace.Record{Op: trace.Read, Offset: 0, Size: 65 * 1024}))
	fmt.Println(c.Classify(trace.Record{Op: trace.Write, Offset: 123, Size: 4 * 1024}))
	// Output:
	// aligned
	// unaligned
	// random
}
