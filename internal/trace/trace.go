// Package trace defines the I/O trace format used for the paper's
// Table I analysis and Section III-E trace replay, along with a
// reader/writer and the alignment/randomness classifier.
//
// The paper replays traces from the Sandia Scalable I/O project (ALEGRA,
// CTH, S3D). Those traces provide the offset and size of each request but
// not the issuing process ID; this package mirrors that: a trace is a
// sequence of (op, offset, size) records.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Op is the request direction.
type Op uint8

// Trace operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Record is one traced I/O request.
type Record struct {
	Op     Op
	Offset int64
	Size   int64
}

// Trace is a named sequence of records.
type Trace struct {
	Name    string
	Records []Record
}

// TotalBytes returns the sum of record sizes.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for _, r := range t.Records {
		n += r.Size
	}
	return n
}

// MeanSize returns the mean request size in bytes.
func (t *Trace) MeanSize() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	return float64(t.TotalBytes()) / float64(len(t.Records))
}

// Clamp restricts the trace to offsets within [0, limit), wrapping
// offsets that exceed the limit, mirroring the paper's "we restrict the
// data size to 10GB during trace replay".
func (t *Trace) Clamp(limit int64) {
	for i := range t.Records {
		r := &t.Records[i]
		if r.Size > limit {
			r.Size = limit
		}
		if r.Offset+r.Size > limit {
			r.Offset = r.Offset % (limit - r.Size + 1)
		}
	}
}

// Write serializes the trace in a simple text format: one "op offset size"
// line per record, preceded by a header line with the name.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s records %d\n", t.Name, len(t.Records)); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", r.Op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse parses a trace written by Write.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var n int
			fmt.Sscanf(text, "# trace %s records %d", &t.Name, &n)
			continue
		}
		var op string
		var rec Record
		if _, err := fmt.Sscanf(text, "%s %d %d", &op, &rec.Offset, &rec.Size); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		switch op {
		case "R":
			rec.Op = Read
		case "W":
			rec.Op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, op)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Class is the Table I access category of a request.
type Class uint8

// Access categories as defined in the paper's Table I caption: unaligned
// requests are larger than a striping unit but not aligned to unit
// boundaries; requests smaller than the random threshold (20 KB) are
// random; everything else is aligned/sequential.
const (
	ClassAligned Class = iota
	ClassUnaligned
	ClassRandom
)

func (c Class) String() string {
	switch c {
	case ClassAligned:
		return "aligned"
	case ClassUnaligned:
		return "unaligned"
	default:
		return "random"
	}
}

// Classifier applies the paper's Table I rules.
type Classifier struct {
	// Unit is the striping unit (64 KB in Table I).
	Unit int64
	// RandomThreshold is the size under which a request counts as
	// random (20 KB in Table I).
	RandomThreshold int64
}

// DefaultClassifier returns the Table I parameters.
func DefaultClassifier() Classifier {
	return Classifier{Unit: 64 * 1024, RandomThreshold: 20 * 1024}
}

// Classify categorizes one record.
func (c Classifier) Classify(r Record) Class {
	if r.Size < c.RandomThreshold {
		return ClassRandom
	}
	if r.Size > c.Unit && (r.Offset%c.Unit != 0 || (r.Offset+r.Size)%c.Unit != 0) {
		return ClassUnaligned
	}
	return ClassAligned
}

// Breakdown is the per-class request percentage of a trace (Table I row).
type Breakdown struct {
	Name         string
	Requests     int
	UnalignedPct float64
	RandomPct    float64
	TotalPct     float64 // unaligned + random
	MeanSize     float64
}

// Analyze computes the Table I row for a trace.
func (c Classifier) Analyze(t *Trace) Breakdown {
	var unaligned, random int
	for _, r := range t.Records {
		switch c.Classify(r) {
		case ClassUnaligned:
			unaligned++
		case ClassRandom:
			random++
		}
	}
	n := len(t.Records)
	b := Breakdown{Name: t.Name, Requests: n, MeanSize: t.MeanSize()}
	if n > 0 {
		b.UnalignedPct = 100 * float64(unaligned) / float64(n)
		b.RandomPct = 100 * float64(random) / float64(n)
		b.TotalPct = b.UnalignedPct + b.RandomPct
	}
	return b
}
