package trace

import (
	"fmt"

	"repro/internal/sim"
)

// GenConfig parameterizes a synthetic scientific-workload trace. The
// generators are calibrated so that the DefaultClassifier reproduces the
// paper's Table I percentages for each named workload, and so that
// relative mean request sizes match the paper's Section III-E discussion
// (S3D requests are much larger than the other three).
type GenConfig struct {
	Name string
	// Records is the number of requests to generate.
	Records int
	// UnalignedFrac and RandomFrac are the target fractions of
	// unaligned and random requests (Table I).
	UnalignedFrac float64
	RandomFrac    float64
	// WriteFrac is the fraction of writes (checkpoint-style workloads
	// are write-heavy).
	WriteFrac float64
	// UnalignedMin/Max bound unaligned request sizes (must be > unit).
	UnalignedMin, UnalignedMax int64
	// AlignedUnits bounds aligned request sizes in striping units.
	AlignedUnitsMax int64
	// RandomMax bounds random request sizes (< classifier threshold).
	RandomMax int64
	// FileSize bounds offsets.
	FileSize int64
	// SeqRunLen is the average number of consecutive sequential
	// requests before the offset jumps (checkpoint streams are long
	// sequential runs; analysis workloads jump often).
	SeqRunLen int
	// Unit is the striping unit the generator aligns against.
	Unit int64
	// Seed makes generation deterministic.
	Seed uint64
}

const (
	kib = 1024
	mib = 1024 * 1024
	gib = 1024 * 1024 * 1024
)

// Workloads returns the generator configurations for the four traces in
// Tables I and III, calibrated to the published percentages:
// ALEGRA-2744 35.2/7.3, ALEGRA-5832 35.7/6.9, CTH 24.3/30.1, S3D 62.8/5.8.
func Workloads(records int, fileSize int64, seed uint64) []GenConfig {
	return []GenConfig{
		{
			Name: "ALEGRA-2744", Records: records,
			UnalignedFrac: 0.352, RandomFrac: 0.073, WriteFrac: 0.70,
			UnalignedMin: 65 * kib, UnalignedMax: 160 * kib,
			AlignedUnitsMax: 3, RandomMax: 18 * kib,
			FileSize: fileSize, SeqRunLen: 12, Unit: 64 * kib, Seed: seed,
		},
		{
			Name: "ALEGRA-5832", Records: records,
			UnalignedFrac: 0.357, RandomFrac: 0.069, WriteFrac: 0.70,
			UnalignedMin: 65 * kib, UnalignedMax: 160 * kib,
			AlignedUnitsMax: 3, RandomMax: 18 * kib,
			FileSize: fileSize, SeqRunLen: 12, Unit: 64 * kib, Seed: seed + 1,
		},
		{
			Name: "CTH", Records: records,
			UnalignedFrac: 0.243, RandomFrac: 0.301, WriteFrac: 0.60,
			UnalignedMin: 65 * kib, UnalignedMax: 160 * kib,
			AlignedUnitsMax: 3, RandomMax: 16 * kib,
			FileSize: fileSize, SeqRunLen: 6, Unit: 64 * kib, Seed: seed + 2,
		},
		{
			// S3D: mostly large unaligned requests; mean size roughly
			// twice the other workloads (Section III-E).
			Name: "S3D", Records: records,
			UnalignedFrac: 0.628, RandomFrac: 0.058, WriteFrac: 0.75,
			UnalignedMin: 96 * kib, UnalignedMax: 256 * kib,
			AlignedUnitsMax: 4, RandomMax: 16 * kib,
			FileSize: fileSize, SeqRunLen: 4, Unit: 64 * kib, Seed: seed + 3,
		},
	}
}

// Generate produces a synthetic trace per the configuration.
func Generate(cfg GenConfig) *Trace {
	if cfg.Unit <= 0 {
		cfg.Unit = 64 * kib
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 10 * gib
	}
	if cfg.SeqRunLen <= 0 {
		cfg.SeqRunLen = 16
	}
	rng := sim.NewRNG(cfg.Seed)
	t := &Trace{Name: cfg.Name, Records: make([]Record, 0, cfg.Records)}
	// Current sequential position; jumps re-seed it.
	pos := int64(0)
	runLeft := 0
	for i := 0; i < cfg.Records; i++ {
		if runLeft == 0 {
			// Reposition: jump to a random unit-aligned spot.
			pos = rng.Range(0, cfg.FileSize/cfg.Unit) * cfg.Unit
			runLeft = 1 + rng.Intn(2*cfg.SeqRunLen)
		}
		runLeft--
		op := Read
		if rng.Bool(cfg.WriteFrac) {
			op = Write
		}
		u := rng.Float64()
		var rec Record
		switch {
		case u < cfg.RandomFrac:
			// Random request: small, scattered offset.
			size := rng.Range(512, cfg.RandomMax)
			off := rng.Range(0, cfg.FileSize-size)
			rec = Record{Op: op, Offset: off, Size: size}
			// A random request does not disturb the sequential run.
		case u < cfg.RandomFrac+cfg.UnalignedFrac:
			// Unaligned request: larger than a unit with a size (and
			// hence end offset) off the unit grid. Force the size to
			// be non-multiple of the unit so the classifier always
			// sees it as unaligned regardless of current position.
			size := rng.Range(cfg.UnalignedMin, cfg.UnalignedMax)
			if size%cfg.Unit == 0 {
				size += 1 + rng.Range(0, cfg.Unit-2)
			}
			rec = Record{Op: op, Offset: pos, Size: size}
			pos += size
		default:
			// Aligned request: whole units at an aligned position.
			units := 1 + rng.Range(0, cfg.AlignedUnitsMax)
			size := units * cfg.Unit
			alignedPos := pos - pos%cfg.Unit
			rec = Record{Op: op, Offset: alignedPos, Size: size}
			pos = alignedPos + size
		}
		if rec.Offset+rec.Size > cfg.FileSize {
			rec.Offset = rec.Offset % (cfg.FileSize - rec.Size)
			pos = rec.Offset + rec.Size
		}
		t.Records = append(t.Records, rec)
	}
	return t
}

// TableI renders the Table I analysis of the given traces as text.
func TableI(traces []*Trace) string {
	c := DefaultClassifier()
	out := fmt.Sprintf("%-14s %12s %10s %10s %12s\n", "Apps", "Unaligned(%)", "Random(%)", "Total(%)", "MeanSize(KB)")
	for _, t := range traces {
		b := c.Analyze(t)
		out += fmt.Sprintf("%-14s %12.1f %10.1f %10.1f %12.1f\n",
			b.Name, b.UnalignedPct, b.RandomPct, b.TotalPct, b.MeanSize/1024)
	}
	return out
}
