// Package storetest is the shared conformance suite for object-store
// implementations (pfsnet.MemStore, pfsnet.FileStore,
// logstore.LogStore). It pins the semantic contract the data server
// relies on — sparse zero-fill reads, rejected negative offsets,
// monotone sizes, concurrent readers — so every store misbehaves in no
// way the others don't.
//
// The suite takes a structural interface rather than
// pfsnet.ObjectStore: pfsnet's own tests import this package, and an
// import back into pfsnet would cycle. Any type with the four methods
// conforms, which is the point.
package storetest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// Store is the structural contract under test — identical to
// pfsnet.ObjectStore, restated here to keep this package import-free.
type Store interface {
	WriteAt(file uint64, off int64, data []byte) error
	ReadAt(file uint64, off int64, p []byte) error
	Size(file uint64) (int64, error)
	Close() error
}

// Factory builds a fresh, empty store for one subtest. The suite
// closes each store it opens; cleanup of backing state belongs to the
// factory (t.TempDir does it for file-backed stores).
type Factory func(t *testing.T) Store

// Run executes the full conformance suite against stores built by
// factory.
func Run(t *testing.T, factory Factory) {
	t.Run("EmptyObject", func(t *testing.T) { testEmptyObject(t, factory) })
	t.Run("WriteReadRoundtrip", func(t *testing.T) { testRoundtrip(t, factory) })
	t.Run("SparseReads", func(t *testing.T) { testSparse(t, factory) })
	t.Run("ZeroFillPastEOF", func(t *testing.T) { testZeroFill(t, factory) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, factory) })
	t.Run("NegativeOffsets", func(t *testing.T) { testNegativeOffsets(t, factory) })
	t.Run("ObjectIsolation", func(t *testing.T) { testIsolation(t, factory) })
	t.Run("ConcurrentReaders", func(t *testing.T) { testConcurrentReaders(t, factory) })
	t.Run("ConcurrentMixed", func(t *testing.T) { testConcurrentMixed(t, factory) })
}

// pattern returns n deterministic bytes that differ across seeds.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
	return b
}

func mustWrite(t *testing.T, s Store, file uint64, off int64, data []byte) {
	t.Helper()
	if err := s.WriteAt(file, off, data); err != nil {
		t.Fatalf("WriteAt(%d, %d, %d bytes): %v", file, off, len(data), err)
	}
}

func mustRead(t *testing.T, s Store, file uint64, off int64, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if err := s.ReadAt(file, off, p); err != nil {
		t.Fatalf("ReadAt(%d, %d, %d bytes): %v", file, off, n, err)
	}
	return p
}

func testEmptyObject(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	if n, err := s.Size(42); err != nil || n != 0 {
		t.Fatalf("Size(unwritten) = %d, %v; want 0, nil", n, err)
	}
	// Reading an object that never existed is legal and all zeros.
	if got := mustRead(t, s, 42, 0, 64); !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("read of unwritten object not zero-filled")
	}
}

func testRoundtrip(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	want := pattern(1000, 1)
	mustWrite(t, s, 1, 0, want)
	if got := mustRead(t, s, 1, 0, len(want)); !bytes.Equal(got, want) {
		t.Fatal("roundtrip bytes diverge")
	}
	if n, err := s.Size(1); err != nil || n != int64(len(want)) {
		t.Fatalf("Size = %d, %v; want %d", n, err, len(want))
	}
	// Interior read.
	if got := mustRead(t, s, 1, 100, 50); !bytes.Equal(got, want[100:150]) {
		t.Fatal("interior read diverges")
	}
}

func testSparse(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	data := pattern(10, 2)
	mustWrite(t, s, 1, 1000, data)
	if n, err := s.Size(1); err != nil || n != 1010 {
		t.Fatalf("Size after sparse write = %d, %v; want 1010", n, err)
	}
	// The hole reads as zeros.
	if got := mustRead(t, s, 1, 0, 1000); !bytes.Equal(got, make([]byte, 1000)) {
		t.Fatal("sparse hole not zero-filled")
	}
	// A read straddling hole and data sees both.
	got := mustRead(t, s, 1, 990, 20)
	if !bytes.Equal(got[:10], make([]byte, 10)) || !bytes.Equal(got[10:], data) {
		t.Fatal("straddling read diverges")
	}
}

func testZeroFill(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	data := pattern(100, 3)
	mustWrite(t, s, 1, 0, data)
	// Read twice the object length into a dirty buffer: the tail must
	// come back zeroed, not stale.
	p := bytes.Repeat([]byte{0xAA}, 200)
	if err := s.ReadAt(1, 0, p); err != nil {
		t.Fatalf("ReadAt past EOF: %v", err)
	}
	if !bytes.Equal(p[:100], data) {
		t.Fatal("prefix diverges")
	}
	if !bytes.Equal(p[100:], make([]byte, 100)) {
		t.Fatal("read past EOF left stale bytes")
	}
	// Entirely past EOF.
	if got := mustRead(t, s, 1, 1<<20, 32); !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("read far past EOF not zero-filled")
	}
}

func testOverwrite(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	mustWrite(t, s, 1, 0, pattern(300, 4))
	over := pattern(100, 5)
	mustWrite(t, s, 1, 100, over)
	got := mustRead(t, s, 1, 0, 300)
	want := pattern(300, 4)
	copy(want[100:], over)
	if !bytes.Equal(got, want) {
		t.Fatal("overwrite diverges")
	}
	if n, _ := s.Size(1); n != 300 {
		t.Fatalf("Size after interior overwrite = %d, want 300", n)
	}
}

func testNegativeOffsets(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	if err := s.WriteAt(1, -1, []byte{1}); err == nil {
		t.Fatal("WriteAt(-1) accepted")
	}
	if err := s.ReadAt(1, -1, make([]byte, 1)); err == nil {
		t.Fatal("ReadAt(-1) accepted")
	}
	// The failed calls must not have created state.
	if n, err := s.Size(1); err != nil || n != 0 {
		t.Fatalf("Size after rejected writes = %d, %v; want 0", n, err)
	}
}

func testIsolation(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	a, b := pattern(128, 6), pattern(128, 7)
	mustWrite(t, s, 1, 0, a)
	mustWrite(t, s, 2, 0, b)
	if got := mustRead(t, s, 1, 0, 128); !bytes.Equal(got, a) {
		t.Fatal("object 1 polluted by object 2")
	}
	if got := mustRead(t, s, 2, 0, 128); !bytes.Equal(got, b) {
		t.Fatal("object 2 polluted by object 1")
	}
}

func testConcurrentReaders(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	const objects = 4
	for i := range uint64(objects) {
		mustWrite(t, s, i, 0, pattern(4096, byte(i)))
	}
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := range 32 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			file := uint64(g % objects)
			want := pattern(4096, byte(file))
			p := make([]byte, 512)
			for i := range 50 {
				off := int64((i * 64) % 3584)
				if err := s.ReadAt(file, off, p); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(p, want[off:off+512]) {
					errc <- fmt.Errorf("object %d: concurrent read diverged at %d", file, off)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// testConcurrentMixed runs writers and readers together. Each object
// has one writer cycling through four known patterns, so every byte a
// reader observes must come from one of them — a byte from nowhere is
// corruption. (Whole-buffer atomicity is deliberately NOT asserted:
// FileStore's lockless preads may legally observe a write in
// progress.)
func testConcurrentMixed(t *testing.T, factory Factory) {
	s := factory(t)
	defer s.Close()
	const objects = 3
	var wg sync.WaitGroup
	errc := make(chan error, objects*2)
	for f := range uint64(objects) {
		mustWrite(t, s, f, 0, pattern(1024, byte(f)))
		wg.Add(2)
		go func() { // writer: rewrites the whole object with rotating seeds
			defer wg.Done()
			for i := range 30 {
				if err := s.WriteAt(f, 0, pattern(1024, byte(f)+byte(i%4))); err != nil {
					errc <- err
					return
				}
			}
		}()
		go func() { // reader: every byte must belong to some pattern
			defer wg.Done()
			p := make([]byte, 1024)
			for range 60 {
				if err := s.ReadAt(f, 0, p); err != nil {
					errc <- err
					return
				}
				for i, got := range p {
					ok := false
					for v := range byte(4) {
						if got == byte(i)*31+byte(f)+v {
							ok = true
							break
						}
					}
					if !ok {
						errc <- fmt.Errorf("object %d: byte %d = %#x matches no written pattern", f, i, got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
