// Package runner is the parallel experiment harness: it fans independent,
// deterministic units of work — one simulated cluster build-and-run each —
// out across host goroutines while preserving input order, so that a
// parallel run renders byte-identical output to a serial one.
//
// Determinism contract: a unit of work passed to Map or Stream must be
// self-contained — it builds every stateful object it touches (engine,
// cluster, RNGs seeded from the experiment's own constants) and shares
// nothing mutable with other units. Every simulation in this repository
// already satisfies this: per-cluster RNGs are seed-derived and a
// sim.Engine shares no state across instances. Under that contract the
// result slice is a pure function of the inputs, independent of the jobs
// setting, the host scheduler, and GOMAXPROCS.
//
// The harness has two levels:
//
//   - Map runs a grid of leaf data points (cluster simulations). A
//     package-global token pool caps the number executing at once across
//     ALL concurrent Map calls (default GOMAXPROCS, set via SetJobs), so
//     the host is never oversubscribed no matter how many experiments fan
//     out at the same time. Data points must not call Map or Stream
//     themselves.
//
//   - Stream orchestrates coarse units (whole experiments) concurrently
//     with a single ordered consumer. Stream units hold no pool token —
//     their simulations are throttled by the Map calls they make — so
//     nesting Map inside Stream composes without deadlock even at jobs=1.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	jobsMu sync.Mutex
	// tokens caps concurrently executing Map data points. Replaced
	// wholesale by SetJobs; reads snapshot the current channel.
	tokens = make(chan struct{}, runtime.GOMAXPROCS(0))
)

// SetJobs sets the number of data points allowed to execute concurrently.
// n < 1 resets to GOMAXPROCS. It affects Map/Stream calls that start
// after it returns; it is not intended to be called while work is in
// flight.
func SetJobs(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	jobsMu.Lock()
	tokens = make(chan struct{}, n)
	jobsMu.Unlock()
}

// Jobs returns the current concurrency cap.
func Jobs() int {
	jobsMu.Lock()
	defer jobsMu.Unlock()
	return cap(tokens)
}

func pool() chan struct{} {
	jobsMu.Lock()
	defer jobsMu.Unlock()
	return tokens
}

// Map runs fn(0..n-1) with at most Jobs() data points executing
// concurrently — across all concurrent Map calls — and returns the
// results in index order. If any unit returns an error, Map returns the
// error of the lowest-indexed failing unit (the same failure a serial
// loop would have reported); all units are run regardless.
//
// With Jobs() == 1 the units run strictly one at a time on the calling
// goroutine, an exact serial execution: the determinism regression tests
// compare its output against jobs=8 byte for byte.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	mapRun(n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mapRun executes fn(0..n-1) on worker goroutines. Each data point holds
// a pool token only while it runs; workers waiting for a token hold
// nothing, so concurrent Map calls share the pool fairly.
func mapRun(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p := pool()
	if cap(p) == 1 {
		// Serial mode: run inline, still claiming the token so that
		// concurrent Map calls (from Stream units) interleave at data
		// point granularity rather than truly in parallel.
		for i := 0; i < n; i++ {
			p <- struct{}{}
			fn(i)
			<-p
		}
		return
	}
	workers := cap(p)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var next int64 = -1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				p <- struct{}{}
				fn(i)
				<-p
			}
		}()
	}
	wg.Wait()
}

// Stream runs fn(0..n-1) as concurrent coarse units and delivers each
// result to emit in strict index order as soon as it and all its
// predecessors have completed: a pipeline with a single ordered consumer
// (the "-out file, one writer" path of cmd/ibridge-bench). emit runs on
// the caller's goroutine. Units hold no pool token — they are expected to
// issue their simulations through Map, which throttles globally.
//
// If a unit fails, Stream stops emitting at the first (lowest-indexed)
// error and returns it after all in-flight units finish. If emit returns
// an error, remaining results are discarded but units still run to
// completion. With Jobs() == 1, units run strictly serially, each emitted
// before the next starts.
func Stream[T any](n int, fn func(i int) (T, error), emit func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if Jobs() == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return err
			}
			if err := emit(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		i := i
		ready[i] = make(chan struct{})
		go func() {
			defer close(ready[i])
			out[i], errs[i] = fn(i)
		}()
	}
	var emitErr error
	for i := 0; i < n; i++ {
		<-ready[i]
		if errs[i] != nil {
			// Wait for the stragglers so no goroutine outlives the call.
			for j := i + 1; j < n; j++ {
				<-ready[j]
			}
			return errs[i]
		}
		if emitErr == nil {
			emitErr = emit(i, out[i])
		}
	}
	return emitErr
}
