package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// withJobs runs f under a temporary jobs setting.
func withJobs(t *testing.T, n int, f func()) {
	t.Helper()
	old := Jobs()
	SetJobs(n)
	defer SetJobs(old)
	f()
}

func TestMapOrderAndValues(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		withJobs(t, jobs, func() {
			got, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("jobs=%d: got[%d] = %d, want %d", jobs, i, v, i*i)
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		withJobs(t, jobs, func() {
			wantErr := errors.New("boom 3")
			_, err := Map(10, func(i int) (int, error) {
				if i == 7 {
					return 0, errors.New("boom 7")
				}
				if i == 3 {
					return 0, wantErr
				}
				return i, nil
			})
			if err != wantErr {
				t.Fatalf("jobs=%d: err = %v, want lowest-index error %v", jobs, err, wantErr)
			}
		})
	}
}

func TestMapRespectsJobsCap(t *testing.T) {
	withJobs(t, 3, func() {
		var cur, peak int64
		_, err := Map(64, func(i int) (struct{}, error) {
			n := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			atomic.AddInt64(&cur, -1)
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt64(&peak); got > 3 {
			t.Fatalf("peak concurrency %d exceeds jobs=3", got)
		}
	})
}

func TestSetJobsBounds(t *testing.T) {
	old := Jobs()
	defer SetJobs(old)
	SetJobs(5)
	if Jobs() != 5 {
		t.Fatalf("Jobs() = %d, want 5", Jobs())
	}
	SetJobs(0) // resets to GOMAXPROCS
	if Jobs() < 1 {
		t.Fatalf("Jobs() = %d, want >= 1", Jobs())
	}
}

func TestStreamOrderedEmit(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		withJobs(t, jobs, func() {
			var got []int
			err := Stream(20,
				func(i int) (int, error) { return i * 10, nil },
				func(i, v int) error {
					if v != i*10 {
						return fmt.Errorf("emit(%d, %d)", i, v)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("jobs=%d: emit order %v", jobs, got)
				}
			}
		})
	}
}

func TestStreamStopsAtFirstError(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		withJobs(t, jobs, func() {
			wantErr := errors.New("unit 2")
			var emitted []int
			err := Stream(6,
				func(i int) (int, error) {
					if i == 2 {
						return 0, wantErr
					}
					return i, nil
				},
				func(i, v int) error { emitted = append(emitted, i); return nil })
			if err != wantErr {
				t.Fatalf("jobs=%d: err = %v, want %v", jobs, err, wantErr)
			}
			for _, i := range emitted {
				if i >= 2 {
					t.Fatalf("jobs=%d: emitted %v past the failing unit", jobs, emitted)
				}
			}
		})
	}
}

func TestStreamEmitError(t *testing.T) {
	withJobs(t, 4, func() {
		wantErr := errors.New("sink full")
		calls := 0
		err := Stream(8,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				calls++
				if i == 1 {
					return wantErr
				}
				return nil
			})
		if err != wantErr {
			t.Fatalf("err = %v, want %v", err, wantErr)
		}
		if calls != 2 {
			t.Fatalf("emit called %d times, want 2 (stops after error)", calls)
		}
	})
}

// TestMapInsideStream is the composition the CLI depends on: whole
// experiments run as Stream units, each fanning its grid through Map.
// This must not deadlock even at jobs=1 (Stream units hold no token).
func TestMapInsideStream(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		withJobs(t, jobs, func() {
			var mu sync.Mutex
			sums := map[int]int{}
			err := Stream(5,
				func(u int) (int, error) {
					vals, err := Map(10, func(i int) (int, error) { return u*100 + i, nil })
					if err != nil {
						return 0, err
					}
					s := 0
					for _, v := range vals {
						s += v
					}
					return s, nil
				},
				func(u, s int) error {
					mu.Lock()
					sums[u] = s
					mu.Unlock()
					return nil
				})
			if err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
			for u := 0; u < 5; u++ {
				want := u*1000 + 45
				if sums[u] != want {
					t.Fatalf("jobs=%d: unit %d sum %d, want %d", jobs, u, sums[u], want)
				}
			}
		})
	}
}

// TestDeterministicAcrossJobs asserts the core contract: the result of a
// Map over self-contained units is independent of the jobs setting.
func TestDeterministicAcrossJobs(t *testing.T) {
	grid := func() ([]int, error) {
		return Map(50, func(i int) (int, error) {
			// A little deterministic work with no shared state.
			h := uint64(i) * 0x9e3779b97f4a7c15
			h ^= h >> 31
			return int(h % 1000), nil
		})
	}
	var runs [][]int
	for _, jobs := range []int{1, 8} {
		withJobs(t, jobs, func() {
			got, err := grid()
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, got)
		})
	}
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Fatalf("jobs=1 and jobs=8 diverge at %d: %d vs %d", i, runs[0][i], runs[1][i])
		}
	}
}
