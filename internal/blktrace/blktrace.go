// Package blktrace collects block-layer dispatch records and builds the
// request-size distributions the paper reports with the Linux blktrace
// tool (Figures 2(c)–(e) and 5). Sizes are counted in 512-byte sectors,
// the unit used in the paper's histograms.
package blktrace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/device"
	"repro/internal/sim"
)

// Collector records every request dispatched by an I/O scheduler. It
// implements iosched.Tracer. The zero value is not usable; use New.
type Collector struct {
	name  string
	sizes map[int64]int64 // sectors → dispatch count
	ops   [2]int64
	bytes [2]int64
	first sim.Time
	last  sim.Time
	n     int64
}

// New returns an empty collector labelled name.
func New(name string) *Collector {
	return &Collector{name: name, sizes: make(map[int64]int64)}
}

// Dispatch implements iosched.Tracer.
func (c *Collector) Dispatch(now sim.Time, r device.Request) {
	if c.n == 0 {
		c.first = now
	}
	c.last = now
	c.n++
	c.sizes[r.Sectors]++
	c.ops[r.Op]++
	c.bytes[r.Op] += r.Bytes()
}

// Name returns the collector's label.
func (c *Collector) Name() string { return c.name }

// Requests returns the total number of dispatched requests.
func (c *Collector) Requests() int64 { return c.n }

// Bytes returns the total bytes dispatched.
func (c *Collector) Bytes() int64 { return c.bytes[device.Read] + c.bytes[device.Write] }

// Reset clears all counts, e.g. to discard a warm-up phase before the
// measured window.
func (c *Collector) Reset() {
	c.sizes = make(map[int64]int64)
	c.ops = [2]int64{}
	c.bytes = [2]int64{}
	c.n = 0
	c.first, c.last = 0, 0
}

// Merge folds the counts of other into c (to aggregate per-server
// collectors into a cluster-wide distribution).
func (c *Collector) Merge(other *Collector) {
	for s, n := range other.sizes {
		c.sizes[s] += n
	}
	for op := range c.ops {
		c.ops[op] += other.ops[op]
		c.bytes[op] += other.bytes[op]
	}
	c.n += other.n
}

// SizeCount is one histogram bucket: a request size in sectors and the
// fraction of dispatched requests with exactly that size.
type SizeCount struct {
	Sectors  int64
	Count    int64
	Fraction float64
}

// Distribution returns the request-size histogram sorted by size.
func (c *Collector) Distribution() []SizeCount {
	out := make([]SizeCount, 0, len(c.sizes))
	for s, n := range c.sizes {
		out = append(out, SizeCount{Sectors: s, Count: n, Fraction: float64(n) / float64(c.n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sectors < out[j].Sectors })
	return out
}

// TopSizes returns the k most frequent request sizes, most frequent first.
func (c *Collector) TopSizes(k int) []SizeCount {
	d := c.Distribution()
	sort.Slice(d, func(i, j int) bool {
		if d[i].Count != d[j].Count {
			return d[i].Count > d[j].Count
		}
		return d[i].Sectors < d[j].Sectors
	})
	if k > len(d) {
		k = len(d)
	}
	return d[:k]
}

// FractionAtLeast returns the fraction of dispatched requests whose size
// is at least the given number of sectors.
func (c *Collector) FractionAtLeast(sectors int64) float64 {
	if c.n == 0 {
		return 0
	}
	var n int64
	for s, cnt := range c.sizes {
		if s >= sectors {
			n += cnt
		}
	}
	return float64(n) / float64(c.n)
}

// MeanSectors returns the mean dispatched request size in sectors.
func (c *Collector) MeanSectors() float64 {
	if c.n == 0 {
		return 0
	}
	var sum int64
	for s, cnt := range c.sizes {
		sum += s * cnt
	}
	return float64(sum) / float64(c.n)
}

// Render formats the distribution as an ASCII histogram in the style of
// the paper's figures: one row per size bucket with a percentage bar.
func (c *Collector) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "block-level request size distribution (%s): %d requests\n", c.name, c.n)
	for _, sc := range c.Distribution() {
		if sc.Fraction < 0.005 {
			continue // match the paper's figures, which drop sub-0.5% bins
		}
		bar := strings.Repeat("#", int(sc.Fraction*60+0.5))
		fmt.Fprintf(&b, "%5d sectors (%7s): %5.1f%% %s\n",
			sc.Sectors, fmtBytes(sc.Sectors*device.SectorSize), sc.Fraction*100, bar)
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
