package blktrace

import (
	"strings"
	"testing"

	"repro/internal/device"
)

func TestDistribution(t *testing.T) {
	c := New("test")
	for i := 0; i < 72; i++ {
		c.Dispatch(0, device.Request{Op: device.Read, LBN: 0, Sectors: 128})
	}
	for i := 0; i < 18; i++ {
		c.Dispatch(0, device.Request{Op: device.Read, LBN: 0, Sectors: 256})
	}
	for i := 0; i < 10; i++ {
		c.Dispatch(0, device.Request{Op: device.Write, LBN: 0, Sectors: 8})
	}
	if c.Requests() != 100 {
		t.Fatalf("Requests = %d", c.Requests())
	}
	d := c.Distribution()
	if len(d) != 3 {
		t.Fatalf("distribution has %d bins, want 3", len(d))
	}
	if d[0].Sectors != 8 || d[1].Sectors != 128 || d[2].Sectors != 256 {
		t.Fatalf("bins not sorted: %v", d)
	}
	if d[1].Fraction != 0.72 {
		t.Fatalf("128-sector fraction = %v, want 0.72", d[1].Fraction)
	}
}

func TestTopSizes(t *testing.T) {
	c := New("test")
	sizes := map[int64]int{128: 50, 256: 30, 8: 20}
	for s, n := range sizes {
		for i := 0; i < n; i++ {
			c.Dispatch(0, device.Request{Op: device.Read, Sectors: s})
		}
	}
	top := c.TopSizes(2)
	if len(top) != 2 || top[0].Sectors != 128 || top[1].Sectors != 256 {
		t.Fatalf("TopSizes = %v", top)
	}
}

func TestFractionAtLeast(t *testing.T) {
	c := New("test")
	for _, s := range []int64{8, 64, 128, 256} {
		c.Dispatch(0, device.Request{Op: device.Read, Sectors: s})
	}
	if got := c.FractionAtLeast(128); got != 0.5 {
		t.Fatalf("FractionAtLeast(128) = %v, want 0.5", got)
	}
	if got := c.FractionAtLeast(1); got != 1.0 {
		t.Fatalf("FractionAtLeast(1) = %v, want 1", got)
	}
}

func TestMeanSectors(t *testing.T) {
	c := New("test")
	c.Dispatch(0, device.Request{Op: device.Read, Sectors: 100})
	c.Dispatch(0, device.Request{Op: device.Read, Sectors: 300})
	if got := c.MeanSectors(); got != 200 {
		t.Fatalf("MeanSectors = %v, want 200", got)
	}
	empty := New("e")
	if empty.MeanSectors() != 0 {
		t.Fatal("empty collector mean not 0")
	}
}

func TestMerge(t *testing.T) {
	a, b := New("a"), New("b")
	a.Dispatch(0, device.Request{Op: device.Read, Sectors: 128})
	b.Dispatch(0, device.Request{Op: device.Write, Sectors: 128})
	b.Dispatch(0, device.Request{Op: device.Write, Sectors: 64})
	a.Merge(b)
	if a.Requests() != 3 {
		t.Fatalf("merged requests = %d, want 3", a.Requests())
	}
	if a.Bytes() != (128+128+64)*device.SectorSize {
		t.Fatalf("merged bytes = %d", a.Bytes())
	}
}

func TestRender(t *testing.T) {
	c := New("fig2c")
	for i := 0; i < 72; i++ {
		c.Dispatch(0, device.Request{Op: device.Read, Sectors: 128})
	}
	for i := 0; i < 28; i++ {
		c.Dispatch(0, device.Request{Op: device.Read, Sectors: 256})
	}
	out := c.Render()
	if !strings.Contains(out, "128 sectors") || !strings.Contains(out, "72.0%") {
		t.Fatalf("render missing expected rows:\n%s", out)
	}
	if !strings.Contains(out, "64.0KB") {
		t.Fatalf("render missing byte size:\n%s", out)
	}
}
