// Package plfs implements a miniature PLFS (Bent et al., SC'09), the
// log-structured checkpoint file system the paper's related work compares
// against: every rank's writes to a shared logical file are appended to a
// per-rank log object, with an index mapping logical extents to log
// positions. Writes become perfectly sequential regardless of alignment —
// the software answer to the fragment problem — but reads of the logical
// file scatter across the rank logs, losing the spatial locality iBridge
// preserves ("this approach may not be effective for regular workloads,
// as spatial locality is largely lost in the log file system").
//
// The implementation layers on the simulated parallel file system: each
// rank log is a pfs file, so log appends stripe over the data servers
// like PLFS data droppings do.
package plfs

import (
	"fmt"
	"sort"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// Mount is one PLFS container: a logical file backed by per-rank logs.
type Mount struct {
	fs     *pfs.FileSystem
	client *pfs.Client
	name   string
	size   int64
	ranks  int

	logs    []*pfs.File
	logPos  []int64
	index   []indexEntry // sorted by logical offset, non-overlapping
	entries int64
}

// indexEntry maps a logical extent to a position in one rank's log.
type indexEntry struct {
	off    int64 // logical offset
	length int64
	rank   int
	logOff int64
}

func (e indexEntry) end() int64 { return e.off + e.length }

// Create builds a PLFS container of the given logical size for ranks
// writers. Each rank log is provisioned with capacity/ranks plus slack
// (PLFS logs grow with rewrites; the benchmarks write each byte once).
func Create(fs *pfs.FileSystem, name string, size int64, ranks int) (*Mount, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("plfs: ranks must be positive")
	}
	m := &Mount{
		fs:     fs,
		client: pfs.NewClient(fs),
		name:   name,
		size:   size,
		ranks:  ranks,
		logPos: make([]int64, ranks),
	}
	perLog := size/int64(ranks) + size/4 + (64 << 10)
	for r := 0; r < ranks; r++ {
		f, err := fs.Create(fmt.Sprintf("%s.plfs.log.%d", name, r), perLog)
		if err != nil {
			return nil, err
		}
		m.logs = append(m.logs, f)
	}
	return m, nil
}

// Size returns the logical file size.
func (m *Mount) Size() int64 { return m.size }

// IndexEntries returns the number of live index entries (the metadata
// cost PLFS pays; the paper's criticism includes index growth).
func (m *Mount) IndexEntries() int { return len(m.index) }

// WriteAt appends a write by rank at logical offset off to the rank's
// log and records the index entry. The log append is sequential no matter
// how unaligned the logical write is — PLFS's whole point.
func (m *Mount) WriteAt(p *sim.Proc, rank int, off, length int64) error {
	if rank < 0 || rank >= m.ranks {
		return fmt.Errorf("plfs: rank %d out of range", rank)
	}
	if off < 0 || off+length > m.size {
		return fmt.Errorf("plfs: write [%d,+%d) outside logical size %d", off, length, m.size)
	}
	if length == 0 {
		return nil
	}
	logOff := m.logPos[rank]
	if logOff+length > m.logs[rank].Size {
		return fmt.Errorf("plfs: rank %d log full", rank)
	}
	m.client.WithOrigin(int32(rank+1)).Write(p, m.logs[rank], logOff, length)
	m.logPos[rank] += length
	m.insert(indexEntry{off: off, length: length, rank: rank, logOff: logOff})
	m.entries++
	return nil
}

// insert punches the logical range out of the index and adds the entry,
// keeping the index sorted and non-overlapping (later writes win).
func (m *Mount) insert(e indexEntry) {
	m.punch(e.off, e.length)
	i := sort.Search(len(m.index), func(i int) bool { return m.index[i].off > e.off })
	m.index = append(m.index, indexEntry{})
	copy(m.index[i+1:], m.index[i:])
	m.index[i] = e
}

// punch removes [off, off+n) from the index, splitting entries that
// partially overlap.
func (m *Mount) punch(off, n int64) {
	end := off + n
	var out []indexEntry
	for _, e := range m.index {
		if e.end() <= off || e.off >= end {
			out = append(out, e)
			continue
		}
		if e.off < off {
			out = append(out, indexEntry{off: e.off, length: off - e.off, rank: e.rank, logOff: e.logOff})
		}
		if e.end() > end {
			cut := end - e.off
			out = append(out, indexEntry{off: end, length: e.end() - end, rank: e.rank, logOff: e.logOff + cut})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	m.index = out
}

// ReadAt reads the logical extent [off, off+length): the index resolves
// it into (possibly many) log pieces, each read from its rank log.
// Unwritten gaps read as zeros (they cost no I/O). Returns the number of
// log pieces touched — the locality loss the paper points at.
func (m *Mount) ReadAt(p *sim.Proc, off, length int64) (pieces int, err error) {
	if off < 0 || off+length > m.size {
		return 0, fmt.Errorf("plfs: read [%d,+%d) outside logical size %d", off, length, m.size)
	}
	i := sort.Search(len(m.index), func(i int) bool { return m.index[i].end() > off })
	end := off + length
	for ; i < len(m.index) && m.index[i].off < end; i++ {
		e := m.index[i]
		from := max(e.off, off)
		to := min(e.end(), end)
		m.client.Read(p, m.logs[e.rank], e.logOff+(from-e.off), to-from)
		pieces++
	}
	return pieces, nil
}


