package plfs

import (
	"testing"
	"testing/quick"

	"repro/internal/hdd"
	"repro/internal/iosched"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
)

func testFS(t *testing.T, e *sim.Engine) (*pfs.FileSystem, []*hdd.Disk) {
	t.Helper()
	rng := sim.NewRNG(1)
	disks := make([]*hdd.Disk, 4)
	stores := make([]pfs.Store, 4)
	for i := range stores {
		disks[i] = hdd.New(e, "hdd", hdd.DefaultSpec(), rng.Fork())
		stores[i] = pfs.NewDiskStore(iosched.New(e, disks[i], iosched.DiskDefaults(), nil))
	}
	fs, err := pfs.NewFileSystem(e, pfs.Config{
		Layout: stripe.Layout{Unit: 64 * 1024, Servers: 4},
	}, stores)
	if err != nil {
		t.Fatalf("NewFileSystem: %v", err)
	}
	return fs, disks
}

func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Go("main", func(p *sim.Proc) {
		fn(p)
		e.Halt()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWritesAppendSequentially(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e)
	m, err := Create(fs, "ckpt", 10<<20, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	run(t, e, func(p *sim.Proc) {
		// Wildly unaligned logical writes from rank 0: log stays
		// append-only.
		offs := []int64{65537, 5, 999999, 300000}
		for _, off := range offs {
			if err := m.WriteAt(p, 0, off, 10*1024); err != nil {
				t.Fatalf("WriteAt(%d): %v", off, err)
			}
		}
		if m.logPos[0] != int64(len(offs))*10*1024 {
			t.Fatalf("log position %d, want %d", m.logPos[0], len(offs)*10*1024)
		}
	})
}

func TestReadResolvesLatestWrite(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e)
	m, _ := Create(fs, "ckpt", 10<<20, 2)
	run(t, e, func(p *sim.Proc) {
		m.WriteAt(p, 0, 1000, 4096)
		m.WriteAt(p, 1, 2000, 4096) // overlaps the tail of rank 0's write
		pieces, err := m.ReadAt(p, 1000, 5096)
		if err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		// Index: [1000,2000) from rank 0, [2000,6096) from rank 1.
		if pieces != 2 {
			t.Fatalf("read touched %d pieces, want 2", pieces)
		}
		if got := m.IndexEntries(); got != 2 {
			t.Fatalf("index entries = %d, want 2 (overlap split)", got)
		}
	})
}

func TestIndexPunchSplits(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e)
	m, _ := Create(fs, "ckpt", 10<<20, 1)
	run(t, e, func(p *sim.Proc) {
		m.WriteAt(p, 0, 0, 10000)
		m.WriteAt(p, 0, 4000, 2000) // punches the middle
		if m.IndexEntries() != 3 {
			t.Fatalf("index entries = %d, want 3 (left, new, right)", m.IndexEntries())
		}
		pieces, _ := m.ReadAt(p, 0, 10000)
		if pieces != 3 {
			t.Fatalf("read pieces = %d, want 3", pieces)
		}
	})
}

func TestUnwrittenGapsAreFree(t *testing.T) {
	e := sim.New()
	fs, disks := testFS(t, e)
	m, _ := Create(fs, "ckpt", 10<<20, 1)
	run(t, e, func(p *sim.Proc) {
		before := disks[0].Stats().TotalOps() + disks[1].Stats().TotalOps() +
			disks[2].Stats().TotalOps() + disks[3].Stats().TotalOps()
		pieces, err := m.ReadAt(p, 0, 1<<20)
		if err != nil || pieces != 0 {
			t.Fatalf("empty read: %d pieces, %v", pieces, err)
		}
		var after int64
		for _, d := range disks {
			after += d.Stats().TotalOps()
		}
		if after != before {
			t.Fatal("reading unwritten space cost I/O")
		}
	})
}

func TestBoundsChecked(t *testing.T) {
	e := sim.New()
	fs, _ := testFS(t, e)
	m, _ := Create(fs, "ckpt", 1<<20, 1)
	run(t, e, func(p *sim.Proc) {
		if err := m.WriteAt(p, 0, 1<<20-10, 100); err == nil {
			t.Error("out-of-range write accepted")
		}
		if err := m.WriteAt(p, 5, 0, 100); err == nil {
			t.Error("bad rank accepted")
		}
		if _, err := m.ReadAt(p, -1, 10); err == nil {
			t.Error("negative read accepted")
		}
	})
}

// TestIndexMatchesReference property-checks the index against a naive
// per-byte ownership model under random overlapping writes.
func TestIndexMatchesReference(t *testing.T) {
	type op struct {
		Rank uint8
		Off  uint16
		Len  uint8
	}
	if err := quick.Check(func(ops []op) bool {
		e := sim.New()
		fs, _ := testFS(t, e)
		const logical = 1 << 16
		m, err := Create(fs, "ckpt", logical, 4)
		if err != nil {
			return false
		}
		ref := make([]int, logical) // 0 = unwritten, else rank+1
		ok := true
		e.Go("main", func(p *sim.Proc) {
			for _, o := range ops {
				rank := int(o.Rank % 4)
				off := int64(o.Off) % (logical - 256)
				n := int64(o.Len%64) + 1
				if err := m.WriteAt(p, rank, off, n); err != nil {
					ok = false
					break
				}
				for b := off; b < off+n; b++ {
					ref[b] = rank + 1
				}
			}
			// Validate: every index entry's range is owned by its rank
			// in the reference, and covered bytes match exactly.
			covered := make([]bool, logical)
			for _, ent := range m.index {
				for b := ent.off; b < ent.end(); b++ {
					if ref[b] != ent.rank+1 || covered[b] {
						ok = false
					}
					covered[b] = true
				}
			}
			for b := range ref {
				if (ref[b] != 0) != covered[b] {
					ok = false
				}
			}
			e.Halt()
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
