package logstore

import (
	"os"
	"sort"
	"time"
)

// sortedKeys returns m's keys ascending, so map iterations that feed
// file I/O or on-disk bytes are deterministic.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// compactor is the background compaction goroutine. It owns no state:
// WriteAt signals it (non-blocking) when the garbage ratio crosses the
// threshold and Close shuts it down via quit.
func (s *LogStore) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.compactC:
			s.maybeCompact()
		}
	}
}

// needCompactLocked reports whether the dead-byte ratio warrants a
// compaction (mu held).
func (s *LogStore) needCompactLocked() bool {
	if s.crashed || s.deviceDown || s.dataBytes < s.cfg.CompactMinBytes {
		return false
	}
	dead := s.dataBytes - s.liveBytes
	return float64(dead) > s.cfg.GarbageRatio*float64(s.dataBytes)
}

// maybeCompact compacts when the threshold still holds by the time the
// lock is acquired.
func (s *LogStore) maybeCompact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.needCompactLocked() {
		s.compactLocked()
	}
}

// Compact forces a compaction cycle regardless of the garbage ratio:
// every live extent is rewritten into a fresh segment, a checkpoint
// referencing only that segment is installed, and the old segments are
// deleted. No-op on a crashed or degraded store.
func (s *LogStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.deviceDown {
		return nil
	}
	return s.compactLocked()
}

// compactLocked rewrites the live extents into segment max+1, sorted
// by (object, offset) and stamped with the current generation, then
// checkpoints and deletes the superseded segments (mu held
// exclusively — compaction stops the world, which at simulation scale
// costs less than the machinery to make it concurrent; DESIGN §14).
//
// The crash matrix is covered by recover's two rules — "delete
// segments the checkpoint doesn't reference" and "a corrupt checkpoint
// means full replay, oldest segment first":
//
//   - crash before the new checkpoint installs: the old checkpoint
//     still references only the old segments, so the (possibly torn)
//     new segment is deleted as an orphan; and if the checkpoint is
//     ALSO unreadable, full replay applies the new segment's records
//     after the old ones — they rewrite identical bytes under a
//     generation ≥ every predecessor, so the state is unchanged.
//   - crash after the checkpoint installs but before the old segments
//     are deleted: the new checkpoint references only the new segment,
//     so recover deletes the stale ones.
func (s *LogStore) compactLocked() error {
	start := time.Now()
	var newSeq uint64
	for _, seq := range sortedKeys(s.segs) {
		newSeq = seq
	}
	newSeq++
	f, tail, err := s.openSegment(newSeq, true)
	if err != nil {
		return err
	}
	// The new segment joins the handle map immediately so the store
	// stays readable (and recover-consistent) even if the rewrite fails
	// partway: extents are repointed only after their bytes are in the
	// new segment.
	s.segs[newSeq] = f
	var frame []byte
	var data []byte
	for _, id := range sortedKeys(s.objects) {
		o := s.objects[id]
		for i := range o.ext {
			e := &o.ext[i]
			if int64(cap(data)) < e.n {
				data = make([]byte, e.n)
			}
			d := data[:e.n]
			if _, err := s.segs[e.seg].ReadAt(d, e.pos); err != nil {
				return err
			}
			frame = appendRecord(frame[:0], record{kind: recKindWrite, gen: s.gen, file: id, off: e.off, data: d})
			if _, err := f.WriteAt(frame, tail); err != nil {
				return err
			}
			e.seg, e.pos, e.gen = newSeq, tail+recOverhead, s.gen
			tail += int64(len(frame))
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	s.active, s.tail = newSeq, tail
	s.dataBytes = s.liveBytes
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	for _, seq := range sortedKeys(s.segs) {
		if seq == newSeq {
			continue
		}
		s.segs[seq].Close()
		os.Remove(segPath(s.dir, seq))
		delete(s.segs, seq)
	}
	s.frameBytes = tail
	s.st.compactionRuns++
	if s.oc != nil {
		s.oc.compactionRuns.Inc()
		s.setByteGauges()
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Span(tr.NewID(), tr.NewID(), 0, "logstore.compact", s.cfg.Scope, start, time.Since(start))
	}
	return nil
}
