package logstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// testConfig keeps unit tests deterministic: no background compactor,
// small checkpoint interval so checkpoint paths actually run.
func testConfig() Config {
	return Config{NoCompactor: true, CheckpointBytes: 1 << 16}
}

// fill returns n deterministic bytes seeded by seed.
func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

// shadow is the reference model: plain in-memory byte slices.
type shadow map[uint64][]byte

func (sh shadow) write(file uint64, off int64, data []byte) {
	o := sh[file]
	if end := off + int64(len(data)); int64(len(o)) < end {
		grown := make([]byte, end)
		copy(grown, o)
		o = grown
	}
	copy(o[off:], data)
	sh[file] = o
}

// verify checks every shadow object byte-for-byte against the store,
// including a read past EOF (must zero-fill).
func (sh shadow) verify(t *testing.T, s *LogStore) {
	t.Helper()
	for file, want := range sh {
		size, err := s.Size(file)
		if err != nil {
			t.Fatalf("Size(%d): %v", file, err)
		}
		if size != int64(len(want)) {
			t.Fatalf("Size(%d) = %d, want %d", file, size, len(want))
		}
		got := make([]byte, len(want)+37)
		if err := s.ReadAt(file, 0, got); err != nil {
			t.Fatalf("ReadAt(%d): %v", file, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("object %d: contents diverge from shadow", file)
		}
		if !bytes.Equal(got[len(want):], make([]byte, 37)) {
			t.Fatalf("object %d: read past EOF not zero-filled", file)
		}
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := shadow{}
	// Sparse writes, overlapping overwrites, multiple objects.
	steps := []struct {
		file uint64
		off  int64
		n    int
		seed byte
	}{
		{1, 0, 100, 1}, {1, 50, 100, 2}, {1, 25, 10, 3},
		{2, 1000, 64, 4}, {1, 0, 200, 5}, {2, 990, 30, 6},
		{3, 0, 1, 7}, {1, 149, 2, 8},
	}
	for _, st := range steps {
		data := fill(st.n, st.seed)
		if err := s.WriteAt(st.file, st.off, data); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		sh.write(st.file, st.off, data)
	}
	sh.verify(t, s)
	if n, err := s.Size(99); err != nil || n != 0 {
		t.Fatalf("Size(unwritten) = %d, %v; want 0, nil", n, err)
	}
	if err := s.WriteAt(1, -1, []byte{1}); err == nil {
		t.Fatal("WriteAt negative offset: want error")
	}
	if err := s.ReadAt(1, -1, make([]byte, 1)); err == nil {
		t.Fatal("ReadAt negative offset: want error")
	}
}

func TestReopenPreservesState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	for i := range 50 {
		data := fill(100+i, byte(i))
		if err := s.WriteAt(uint64(i%5), int64(i*40), data); err != nil {
			t.Fatal(err)
		}
		sh.write(uint64(i%5), int64(i*40), data)
	}
	gen0 := s.Generation()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s, err = Open(dir, testConfig())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	sh.verify(t, s)
	st := s.Stats()
	if st.Replays != 1 {
		t.Fatalf("Replays = %d, want 1", st.Replays)
	}
	if st.Generation != gen0+1 {
		t.Fatalf("Generation = %d, want %d", st.Generation, gen0+1)
	}
	// Clean close checkpoints, so the suffix replay applied nothing.
	if st.ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d, want 0 after clean close", st.ReplayedRecords)
	}
}

// TestReplayWithoutCheckpoint deletes the checkpoint: Open must fall
// back to a full replay and reconstruct identical state.
func TestReplayWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	for i := range 30 {
		data := fill(64, byte(i))
		if err := s.WriteAt(7, int64(i*48), data); err != nil {
			t.Fatal(err)
		}
		sh.write(7, int64(i*48), data)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, ckptName)); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh.verify(t, s)
	st := s.Stats()
	if st.BadCheckpoints != 1 {
		t.Fatalf("BadCheckpoints = %d, want 1", st.BadCheckpoints)
	}
	if st.ReplayedRecords != 30 {
		t.Fatalf("ReplayedRecords = %d, want 30", st.ReplayedRecords)
	}
}

// TestTornTailTruncated appends garbage half-frames to the log after a
// clean close: replay must truncate at the first bad record and keep
// every acknowledged write.
func TestTornTailTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		mut  func(frame []byte) []byte
	}{
		{"truncated-frame", func(f []byte) []byte { return f[:len(f)/2] }},
		{"bit-flip", func(f []byte) []byte { f[len(f)-1] ^= 0x40; return f }},
		{"garbage", func(f []byte) []byte { return bytes.Repeat([]byte{0xEE}, 20) }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			sh := shadow{}
			for i := range 10 {
				data := fill(80, byte(i))
				if err := s.WriteAt(1, int64(i*80), data); err != nil {
					t.Fatal(err)
				}
				sh.write(1, int64(i*80), data)
			}
			gen := s.Generation()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Hand-append a torn record past the clean tail.
			frame := appendRecord(nil, record{kind: recKindWrite, gen: gen, file: 1, off: 800, data: fill(80, 99)})
			frame = tear.mut(frame)
			seg := segPath(dir, 1)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(frame); err != nil {
				t.Fatal(err)
			}
			f.Close()
			// The checkpoint from Close covers the clean tail; delete it
			// so replay actually walks over the torn bytes.
			if err := os.Remove(filepath.Join(dir, ckptName)); err != nil {
				t.Fatal(err)
			}
			s, err = Open(dir, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sh.verify(t, s)
			st := s.Stats()
			if st.TruncatedTails != 1 {
				t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
			}
		})
	}
}

// TestCrashAppendEitherOr pins record atomicity around the simulated
// kill: a torn fraction < 1 must vanish on replay, a fully-written
// frame (frac 1.0, crash before the ack) may legitimately survive —
// and with this store's ordering, always does.
func TestCrashAppendEitherOr(t *testing.T) {
	for _, tc := range []struct {
		frac    float64
		applied bool
	}{
		{0, false}, {0.5, false}, {1.0, true},
	} {
		t.Run(fmt.Sprintf("frac=%v", tc.frac), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			sh := shadow{}
			for i := range 5 {
				data := fill(60, byte(i))
				if err := s.WriteAt(3, int64(i*60), data); err != nil {
					t.Fatal(err)
				}
				sh.write(3, int64(i*60), data)
			}
			s.CrashAppend(1, tc.frac)
			crashData := fill(60, 77)
			if err := s.WriteAt(3, 300, crashData); err != ErrCrashed {
				t.Fatalf("crashed WriteAt err = %v, want ErrCrashed", err)
			}
			if !s.Crashed() {
				t.Fatal("Crashed() = false after injected kill")
			}
			if err := s.ReadAt(3, 0, make([]byte, 1)); err != ErrCrashed {
				t.Fatalf("post-crash ReadAt err = %v, want ErrCrashed", err)
			}
			s.Close() // must NOT checkpoint or sync — the process is "dead"
			s, err = Open(dir, testConfig())
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer s.Close()
			if tc.applied {
				// Fully durable frame: replay applies it even though the
				// writer never saw the ack.
				sh.write(3, 300, crashData)
			}
			sh.verify(t, s)
			st := s.Stats()
			if tc.frac > 0 && tc.frac < 1 && st.TruncatedTails == 0 {
				t.Fatal("torn frame survived: TruncatedTails = 0")
			}
			if st.ReplayedRecords == 0 && !tc.applied && tc.frac != 0 {
				t.Log("note: no records replayed (checkpoint covered log)")
			}
		})
	}
}

// TestWrongGenerationTruncated forges a record stamped with a future
// generation past the clean tail: replay must treat it as corruption.
func TestWrongGenerationTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	for i := range 8 {
		data := fill(40, byte(i))
		if err := s.WriteAt(2, int64(i*40), data); err != nil {
			t.Fatal(err)
		}
		sh.write(2, int64(i*40), data)
	}
	gen := s.Generation()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A well-formed record with the wrong generation after the
	// checkpointed tail: suffix replay (strict) must reject it.
	frame := appendRecord(nil, record{kind: recKindWrite, gen: gen + 5, file: 2, off: 0, data: fill(40, 200)})
	f, err := os.OpenFile(segPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err = Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh.verify(t, s) // the forged overwrite of offset 0 must NOT apply
	st := s.Stats()
	if st.BadGenerations != 1 {
		t.Fatalf("BadGenerations = %d, want 1", st.BadGenerations)
	}
	if st.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
	}
}

func TestPeriodicCheckpointAndSuffixReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CheckpointBytes = 2048 // force several periodic checkpoints
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	for i := range 64 {
		data := fill(128, byte(i))
		if err := s.WriteAt(uint64(i%3), int64(i*100), data); err != nil {
			t.Fatal(err)
		}
		sh.write(uint64(i%3), int64(i*100), data)
	}
	if st := s.Stats(); st.Checkpoints < 3 {
		t.Fatalf("Checkpoints = %d, want >= 3", st.Checkpoints)
	}
	// Simulate a kill with zero torn bytes after more writes: replay
	// resumes from the last periodic checkpoint and applies the suffix.
	s.CrashAppend(10, 1.0)
	for i := range 10 {
		data := fill(90, byte(100+i))
		err := s.WriteAt(1, int64(i*77), data)
		if i == 9 {
			if err != ErrCrashed {
				t.Fatalf("write %d err = %v, want ErrCrashed", i, err)
			}
			sh.write(1, int64(i*77), data) // frac 1.0: fully durable
		} else {
			if err != nil {
				t.Fatal(err)
			}
			sh.write(1, int64(i*77), data)
		}
	}
	s.Close()
	s, err = Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh.verify(t, s)
	if st := s.Stats(); st.ReplayedRecords == 0 {
		t.Fatal("expected a nonzero suffix replay past the periodic checkpoint")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	// Overwrite the same ranges repeatedly: most of the log is garbage.
	for round := range 20 {
		for _, file := range []uint64{1, 2} {
			data := fill(512, byte(round))
			if err := s.WriteAt(file, 0, data); err != nil {
				t.Fatal(err)
			}
			sh.write(file, 0, data)
		}
	}
	// One sparse tail so extents are non-trivial.
	if err := s.WriteAt(1, 4096, fill(64, 9)); err != nil {
		t.Fatal(err)
	}
	sh.write(1, 4096, fill(64, 9))
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.CompactionRuns != before.CompactionRuns+1 {
		t.Fatalf("CompactionRuns = %d, want %d", after.CompactionRuns, before.CompactionRuns+1)
	}
	if after.LogBytes >= before.LogBytes {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.LogBytes, after.LogBytes)
	}
	if after.LiveBytes != before.LiveBytes {
		t.Fatalf("compaction changed live bytes: %d -> %d", before.LiveBytes, after.LiveBytes)
	}
	sh.verify(t, s)
	// Old segment must be gone; exactly one segment remains.
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("segments after compaction = %v, want [2]", seqs)
	}
	// Writes keep landing after compaction, and reopen still replays.
	if err := s.WriteAt(2, 100, fill(50, 42)); err != nil {
		t.Fatal(err)
	}
	sh.write(2, 100, fill(50, 42))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh.verify(t, s)
}

// TestCompactionThreshold drives the garbage ratio over the trigger
// via the public write path and checks needCompact fires the
// background signal path (explicitly, compactor disabled).
func TestCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CompactMinBytes = 1024
	cfg.GarbageRatio = 0.5
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for range 10 {
		if err := s.WriteAt(1, 0, fill(512, 3)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	need := s.needCompactLocked()
	s.mu.Unlock()
	if !need {
		t.Fatal("needCompactLocked = false after 90% garbage")
	}
	s.maybeCompact()
	if st := s.Stats(); st.CompactionRuns != 1 {
		t.Fatalf("CompactionRuns = %d, want 1", st.CompactionRuns)
	}
}

// TestOrphanSegmentDeleted models a compaction killed before its
// checkpoint: the half-written output segment is unreferenced and must
// be deleted on the next Open, with state intact.
func TestOrphanSegmentDeleted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	for i := range 6 {
		data := fill(100, byte(i))
		if err := s.WriteAt(1, int64(i*100), data); err != nil {
			t.Fatal(err)
		}
		sh.write(1, int64(i*100), data)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Fake the torn compaction output.
	if err := os.WriteFile(segPath(dir, 2), append(append([]byte{}, segMagic[:]...), 0, 0, 0, 0, 0, 0, 0, 2, 0xDE, 0xAD), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh.verify(t, s)
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("segments = %v, want orphan seg-2 deleted", seqs)
	}
}

func TestFailDeviceDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Obs = reg
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := shadow{}
	for i := range 10 {
		data := fill(200, byte(i))
		if err := s.WriteAt(uint64(i%2), int64(i*150), data); err != nil {
			t.Fatal(err)
		}
		sh.write(uint64(i%2), int64(i*150), data)
	}
	if err := s.FailDevice(); err != nil {
		t.Fatalf("FailDevice: %v", err)
	}
	if !s.DeviceFailed() {
		t.Fatal("DeviceFailed = false")
	}
	// Acknowledged bytes survive within the process...
	sh.verify(t, s)
	// ...and the store keeps accepting I/O from the overlay.
	if err := s.WriteAt(5, 10, fill(30, 50)); err != nil {
		t.Fatal(err)
	}
	sh.write(5, 10, fill(30, 50))
	sh.verify(t, s)
	if err := s.FailDevice(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := reg.CounterValues()["logstore.device_failures"]; got != 1 {
		t.Fatalf("logstore.device_failures = %d, want 1", got)
	}
}

func TestObsMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Obs = reg
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if err := s.WriteAt(1, int64(i*10), fill(10, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	cv := reg.CounterValues()
	if cv["logstore.appends"] != 5 {
		t.Fatalf("logstore.appends = %d, want 5", cv["logstore.appends"])
	}
	if cv["logstore.checkpoints"] < 2 { // Open + Close
		t.Fatalf("logstore.checkpoints = %d, want >= 2", cv["logstore.checkpoints"])
	}
}

func TestRecordAppendsCounter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := range 7 {
		if err := s.WriteAt(1, int64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.RecordAppends(); got != 7 {
		t.Fatalf("RecordAppends = %d, want 7", got)
	}
}

func TestEmptyWriteIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteAt(1, 100, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Size(1); err != nil || n != 0 {
		t.Fatalf("Size = %d, %v after empty write; want 0", n, err)
	}
	if got := s.RecordAppends(); got != 0 {
		t.Fatalf("RecordAppends = %d after empty write, want 0", got)
	}
}

func BenchmarkLogStoreAppend(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Config{NoCompactor: true, CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	data := fill(4096, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteAt(uint64(i%16), int64((i%256)*4096), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogStoreReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Config{NoCompactor: true, CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	data := fill(4096, 2)
	const records = 2000
	for i := range records {
		if err := s.WriteAt(uint64(i%16), int64((i%256)*4096), data); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(records * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Deleting the checkpoint forces a full journal replay: the
		// benchmark measures honest recovery cost, not checkpoint load.
		b.StopTimer()
		if err := os.Remove(filepath.Join(dir, ckptName)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s, err := Open(dir, Config{NoCompactor: true, CheckpointBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.ReplayedRecords != records {
			b.Fatalf("ReplayedRecords = %d, want %d", st.ReplayedRecords, records)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
