package logstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestMalformedCheckpointRecovers feeds loadCheckpoint (and then a
// full Open) every corruption class the format must survive:
// truncated, bit-flipped, oversized counts, wrong magic. None may
// panic; all must force the full-replay fallback, which recovers the
// store to the exact acknowledged contents.
func TestMalformedCheckpointRecovers(t *testing.T) {
	// Build a real store with real state so the checkpoint is
	// representative, then corrupt it.
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow{}
	for i := range 20 {
		data := fill(100, byte(i))
		if err := s.WriteAt(uint64(i%4), int64(i*64), data); err != nil {
			t.Fatal(err)
		}
		sh.write(uint64(i%4), int64(i*64), data)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(dir, ckptName)
	good, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-tail-crc", func(b []byte) []byte { return b[:len(b)-2] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bit-flip-body", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{"bit-flip-crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"huge-object-count", func(b []byte) []byte {
			// Object count lives after magic+gen+seg+off+dataBytes.
			binary.BigEndian.PutUint64(b[8+4*8:], 1<<40)
			return b // CRC now wrong too, but the count guard must also hold alone
		}},
		{"zeroed", func(b []byte) []byte { return make([]byte, len(b)) }},
		{"all-ones", func(b []byte) []byte { return bytes.Repeat([]byte{0xFF}, len(b)) }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			bad := c.mut(append([]byte(nil), good...))
			if err := os.WriteFile(ckPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := loadCheckpoint(ckPath); ok {
				t.Fatal("loadCheckpoint accepted corrupt bytes")
			}
			s, err := Open(dir, testConfig())
			if err != nil {
				t.Fatalf("Open with corrupt checkpoint: %v", err)
			}
			sh.verify(t, s)
			st := s.Stats()
			if st.BadCheckpoints != 1 {
				t.Fatalf("BadCheckpoints = %d, want 1", st.BadCheckpoints)
			}
			if st.ReplayedRecords != 20 {
				t.Fatalf("ReplayedRecords = %d, want full replay of 20", st.ReplayedRecords)
			}
			// Close reinstalls a good checkpoint; restore the corrupt one
			// for the next case from the saved copy... except Close already
			// wrote a fresh valid one, which is what the next mutation runs
			// against — equivalent to `good` structurally. Re-read it.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			good, err = os.ReadFile(ckPath)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointRejectsInconsistentTables hand-crafts structurally
// invalid but CRC-valid checkpoints: the semantic guards must reject
// them (never panic, never accept).
func TestCheckpointRejectsInconsistentTables(t *testing.T) {
	seal := func(body []byte) []byte {
		return binary.BigEndian.AppendUint32(body, crcOf(body))
	}
	header := func(gen, seg, off, dataBytes, nObj uint64) []byte {
		b := append([]byte(nil), ckptMagic[:]...)
		for _, v := range []uint64{gen, seg, off, dataBytes, nObj} {
			b = binary.BigEndian.AppendUint64(b, v)
		}
		return b
	}
	u64s := func(b []byte, vs ...uint64) []byte {
		for _, v := range vs {
			b = binary.BigEndian.AppendUint64(b, v)
		}
		return b
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"coverage-below-header", seal(header(1, 1, 3, 0, 0))},
		{"trailing-garbage", seal(append(header(1, 1, 16, 0, 0), 0xAB))},
		{"object-count-overruns", seal(header(1, 1, 16, 0, 7))},
		// One object claiming one extent but no extent bytes follow.
		{"extent-count-overruns", seal(u64s(header(1, 1, 16, 0, 1), 5, 100, 1))},
		// Extent end past object size.
		{"extent-past-size", seal(u64s(header(1, 1, 16, 10, 1), 5, 50, 1, 40, 20, 1, 16, 1))},
		// Overlapping extents (off 0..20 then 10..30).
		{"overlapping-extents", seal(u64s(header(1, 1, 16, 40, 1), 5, 30, 2, 0, 20, 1, 16, 1, 10, 20, 1, 44, 1))},
		// Extent data position inside the segment header.
		{"pos-in-header", seal(u64s(header(1, 1, 16, 10, 1), 5, 10, 1, 0, 10, 1, 4, 1))},
		// Duplicate object id.
		{"dup-object", seal(u64s(header(1, 1, 16, 0, 2), 5, 0, 0, 5, 0, 0))},
	}
	dir := t.TempDir()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := filepath.Join(dir, "ck")
			if err := os.WriteFile(p, c.raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := loadCheckpoint(p); ok {
				t.Fatal("loadCheckpoint accepted inconsistent table")
			}
		})
	}
}

// crcOf mirrors the checkpoint trailer computation for test inputs.
func crcOf(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}
