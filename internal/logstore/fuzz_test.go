package logstore

import (
	"bytes"
	"testing"
)

// FuzzLogRecord throws arbitrary bytes at the record decoder — the
// function that walks untrusted on-disk state during journal replay.
// Properties pinned:
//
//   - decodeRecord never panics (the replay path must survive any
//     torn or bit-rotted log tail);
//   - a decode either fails or consumes a frame that re-encodes to
//     byte-identical wire form (decode∘encode is the identity on
//     accepted inputs, so replay and compaction can round-trip
//     records without drift);
//   - consumed byte counts stay inside the input.
func FuzzLogRecord(f *testing.F) {
	// Seed with a valid frame, a truncation, a bit-flip, and noise.
	valid := appendRecord(nil, record{kind: recKindWrite, gen: 3, file: 7, off: 4096, data: []byte("fragment payload")})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(appendRecord(nil, record{kind: recKindWrite, gen: 0, file: 0, off: 0, data: nil}))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < recOverhead || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if rec.off < 0 {
			t.Fatalf("accepted negative offset %d", rec.off)
		}
		if rec.kind != recKindWrite {
			t.Fatalf("accepted unknown kind %d", rec.kind)
		}
		if rec.frameLen() != n {
			t.Fatalf("frameLen %d != consumed %d", rec.frameLen(), n)
		}
		// Re-encoding the decoded record must reproduce the exact
		// accepted frame.
		if got := appendRecord(nil, rec); !bytes.Equal(got, data[:n]) {
			t.Fatal("decode/encode round trip diverged")
		}
	})
}
